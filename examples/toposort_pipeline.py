#!/usr/bin/env python3
"""Ordering application: topological sorting of a citation DAG.

The paper motivates DFS through its applications — "ordering problems
(e.g. topological sorting [48])".  This example builds a synthetic
citation network (a DAG: papers cite earlier papers), topologically
sorts it via DFS finish order, verifies the order, and then breaks the
DAG with a single back-arc to show cycle reporting.

Run:  python examples/toposort_pipeline.py
"""

import numpy as np

from repro.apps import CycleFound, topological_sort, verify_topological_order
from repro.graphs import generators as gen
from repro.graphs.csr import from_edges


def main() -> None:
    # A 3,000-paper citation DAG: every arc points from a newer paper to
    # an older one it cites.
    dag = gen.citation_graph(3000, refs_per_paper=5, seed=11,
                             symmetrize=False)
    print(f"citation DAG: {dag}")

    order = topological_sort(dag)
    verify_topological_order(dag, order)
    pos = np.empty(dag.n_vertices, dtype=np.int64)
    pos[order] = np.arange(dag.n_vertices)
    print(f"topological order verified: every citation arc points forward")
    print(f"first five in order: {order[:5].tolist()}")

    # Sanity property of citation DAGs: a paper precedes everything it
    # cites, so the newest paper can never be last.
    newest = dag.n_vertices - 1
    print(f"newest paper sits at position {pos[newest]} of {dag.n_vertices}")

    # Now corrupt the DAG: make an old paper "cite" a newer one, closing
    # a citation loop.  The sorter reports the offending cycle.
    edges = dag.edge_array()
    u, v = int(edges[0][0]), int(edges[0][1])   # arc newer -> older
    broken = from_edges(dag.n_vertices,
                        np.vstack([edges, [[v, u]]]),
                        directed=True, name="broken")
    try:
        topological_sort(broken)
        raise AssertionError("cycle went undetected!")
    except CycleFound as exc:
        print(f"\nafter adding arc ({v} -> {u}), sorting fails as expected:")
        print(f"  witness cycle: {exc.cycle}")


if __name__ == "__main__":
    main()
