#!/usr/bin/env python3
"""Quickstart: run DiggerBees on a small road network and validate it.

Demonstrates the three core public APIs:
  1. build a graph (`repro.graphs.generators` / `repro.collections`),
  2. run the simulated-GPU DFS (`repro.diggerbees`),
  3. validate the output tree (`repro.validate_traversal`).

Run:  python examples/quickstart.py
"""

from repro import diggerbees, validate_traversal
from repro.core import DiggerBeesConfig
from repro.graphs import generators as gen
from repro.sim.device import H100
from repro.utils.tables import format_kv


def main() -> None:
    # 1. A 2,000-vertex synthetic road network (deep, narrow: DFS country).
    graph = gen.road_network(2000, seed=42)
    print(f"graph: {graph}")

    # 2. DiggerBees on a simulated H100 slice: 8 blocks x 4 warps, the
    #    paper's default two-level-stack parameters.
    config = DiggerBeesConfig(n_blocks=8, warps_per_block=4, seed=42)
    result = diggerbees(graph, root=0, config=config, device=H100)

    print("\nDiggerBees run:")
    print(format_kv([
        ("vertices visited", result.n_visited),
        ("edges traversed", result.traversal.edges_traversed),
        ("simulated time", f"{result.seconds * 1e6:.1f} us"),
        ("throughput", f"{result.mteps:.1f} MTEPS"),
        ("intra-block steals", result.counters.intra_steal_successes),
        ("inter-block steals", result.counters.inter_steal_successes),
        ("HotRing flushes", result.counters.flushes),
        ("ColdSeg refills", result.counters.refills),
    ]))

    # 3. Validate: the parent array must be a spanning tree of the
    #    reachable set; the strict-DFS violation fraction is informational
    #    (unordered parallel DFS, paper Figure 1(c)).
    report = validate_traversal(graph, result.traversal)
    print("\nvalidation:")
    print(format_kv([
        ("tree valid", report.tree_valid),
        ("visited correct", report.visited_correct),
        ("strict-DFS violations", f"{report.dfs_violation_fraction:.2%}"),
    ]))

    root_children = [v for v in range(graph.n_vertices)
                     if result.traversal.parent[v] == 0]
    print(f"\nthe root has {len(root_children)} children in this DFS tree")

    # Bonus: the one-shot dashboard (repro.analysis.render_run_report)
    # bundles throughput, the cycle budget, steal traffic, and balance.
    from repro.analysis import render_run_report

    traced = diggerbees(graph, root=0,
                        config=config.with_overrides(trace=True),
                        device=H100)
    print("\n" + render_run_report(traced))


if __name__ == "__main__":
    main()
