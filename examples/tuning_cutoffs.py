#!/usr/bin/env python3
"""Tuning the hierarchical-stealing cutoffs (paper §4.7 in miniature).

Sweeps ``hot_cutoff`` (intra-block stealing threshold) and
``cold_cutoff`` (inter-block) on one deep graph and prints the
normalized heatmap plus the steal statistics that explain it: small
cutoffs mean frequent fine-grained steals (contention, victim-side
slowdown); large cutoffs starve idle warps.

Run:  python examples/tuning_cutoffs.py
"""

from repro.core import DiggerBeesConfig, run_diggerbees
from repro.graphs import generators as gen
from repro.sim.device import H100
from repro.utils.tables import print_table

HOTS = (4, 16, 64)
COLDS = (8, 32, 128)


def main() -> None:
    graph = gen.road_network(6000, seed=5)
    print(f"tuning on {graph}\n")

    results = {}
    for hot in HOTS:
        for cold in COLDS:
            cfg = DiggerBeesConfig(
                n_blocks=16, warps_per_block=8,
                hot_cutoff=hot, cold_cutoff=cold, seed=5,
            )
            results[(hot, cold)] = run_diggerbees(graph, 0, config=cfg,
                                                  device=H100)

    base = results[(16, 32)].mteps
    rows = [
        [f"hot={hot}"] + [results[(hot, cold)].mteps / base for cold in COLDS]
        for hot in HOTS
    ]
    print_table([r"hot\cold"] + [str(c) for c in COLDS], rows,
                floatfmt=".2f",
                title="normalized MTEPS (1.00 = hot 16 / cold 32)")

    print()
    stat_rows = []
    for hot in HOTS:
        for cold in COLDS:
            c = results[(hot, cold)].counters
            stat_rows.append([
                f"({hot},{cold})",
                c.intra_steal_successes,
                c.inter_steal_successes,
                f"{c.intra_steal_fail_rate:.0%}",
                c.idle_polls,
            ])
    print_table(
        ["(hot,cold)", "intra steals", "inter steals", "intra fail", "idle polls"],
        stat_rows,
        title="why: steal traffic per configuration",
    )
    print(
        "\nSmaller cutoffs steal more often (more contention, finer\n"
        "balance); larger cutoffs leave warps idle-polling. The paper's\n"
        "defaults (32, 64) sit at the sweet spot at full GPU scale; at\n"
        "simulator scale the optimum shifts proportionally smaller."
    )


if __name__ == "__main__":
    main()
