#!/usr/bin/env python3
"""Extension: DiggerBees across multiple (simulated) GPUs.

The paper's related work points at remote work stealing for multi-GPU
graph analytics as the natural extension of hierarchical block-level
stealing.  This example partitions the grid across 1/2/4 GPUs: stealing
stays GPU-local until an entire GPU runs dry, then that GPU's leader
block steals across NVLink at ~4x the cost of a local inter-block steal.

It also exports a Chrome-tracing timeline of the 2-GPU run so you can
watch the second GPU wake up (load the JSON in chrome://tracing or
https://ui.perfetto.dev).

Run:  python examples/multigpu_scaling.py
"""

import tempfile
from pathlib import Path

from repro.core import DiggerBeesConfig, run_diggerbees
from repro.graphs import generators as gen
from repro.sim.chrometrace import export_chrome_trace
from repro.sim.device import H100
from repro.utils.tables import print_table
from repro.validate import validate_traversal


def main() -> None:
    graph = gen.road_network(12000, seed=7)
    print(f"graph: {graph}\n")

    rows = []
    traced = None
    for gpus in (1, 2, 4):
        cfg = DiggerBeesConfig(
            n_blocks=gpus * 8, warps_per_block=8, n_gpus=gpus,
            seed=7, trace=(gpus == 2),
        )
        res = run_diggerbees(graph, 0, config=cfg, device=H100)
        validate_traversal(graph, res.traversal)
        if gpus == 2:
            traced = res
        c = res.counters
        rows.append([
            gpus, cfg.n_blocks, f"{res.mteps:.1f}",
            c.intra_steal_successes, c.inter_steal_successes,
            c.remote_steal_successes,
        ])

    print_table(
        ["GPUs", "blocks", "MTEPS", "intra steals", "inter steals",
         "remote (NVLink) steals"],
        rows,
        title="multi-GPU DiggerBees on a 12k-vertex road network",
    )

    out = Path(tempfile.gettempdir()) / "diggerbees_2gpu_trace.json"
    n = export_chrome_trace(traced.trace, out, clock_hz=H100.clock_hz)
    print(f"\nwrote {n} trace events to {out}")
    print("open it in chrome://tracing to watch GPU 1's blocks activate "
          "after the first remote steal")


if __name__ == "__main__":
    main()
