#!/usr/bin/env python3
"""The paper's headline scenario: DFS beats BFS on deep, narrow graphs.

Compares DiggerBees against the two GPU BFS baselines (Gunrock-style and
BerryBees-style) on a deep road network and on a shallow social network,
reproducing the crossover of paper §4.3: on 'euro_osm'-like graphs BFS
pays one kernel launch per level (17,346 levels in the paper!) while
DiggerBees streams deep paths through its two-level stacks; on
'ljournal'-like graphs BFS finishes in ~4 levels and wins.

Run:  python examples/road_network_vs_bfs.py
"""

from repro.baselines import run_berrybees_bfs, run_gunrock_bfs
from repro.bench.harness import BenchConfig
from repro.core import DiggerBeesConfig, run_diggerbees
from repro.graphs import generators as gen
from repro.graphs.properties import num_bfs_levels
from repro.sim.device import H100
from repro.utils.tables import print_table

CFG = BenchConfig(sim_scale=0.125, warps_per_block=8, seed=7)


def compare(graph, root: int = 0) -> list:
    db = run_diggerbees(graph, root, config=CFG.diggerbees_config(),
                        device=H100)
    gun = run_gunrock_bfs(graph, root, device=H100, sim_scale=CFG.sim_scale)
    bb = run_berrybees_bfs(graph, root, device=H100, sim_scale=CFG.sim_scale)
    best_bfs = max(gun.mteps, bb.mteps)
    return [
        graph.name,
        num_bfs_levels(graph, root),
        f"{db.mteps:.0f}",
        f"{gun.mteps:.0f}",
        f"{bb.mteps:.0f}",
        f"{db.mteps / best_bfs:.2f}x",
    ]


def main() -> None:
    deep = gen.road_network(9000, seed=7, name="road_9000")
    mesh = gen.delaunay_mesh(5000, seed=7, name="mesh_5000")
    shallow = gen.preferential_attachment(5000, m=8, seed=7,
                                          name="social_5000")

    rows = [compare(g) for g in (deep, mesh, shallow)]
    print_table(
        ["graph", "BFS levels", "DiggerBees", "Gunrock", "BerryBees",
         "DB / best BFS"],
        rows,
        title="DFS vs BFS on the simulated H100 (MTEPS)",
    )
    print(
        "\nShape to observe (paper §4.3): the deeper the graph (more BFS\n"
        "levels), the larger DiggerBees' advantage; on the shallow social\n"
        "graph the level-parallel BFS wins."
    )


if __name__ == "__main__":
    main()
