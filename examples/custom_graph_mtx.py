#!/usr/bin/env python3
"""Evaluating your own graph (paper Appendix A.6: "Customization").

The paper's artifact accepts Matrix Market (`.mtx`) files; so does this
reproduction.  This example writes a graph out as `.mtx`, reads it back
(round-trip through the SuiteSparse exchange format), preprocesses it
the way traversal papers do (symmetrize, take the giant component, sort
adjacency), and benchmarks every method on it.

Run:  python examples/custom_graph_mtx.py [path/to/your.mtx]
"""

import sys
import tempfile
from pathlib import Path

from repro.bench.harness import ALL_METHODS, BenchConfig, run_method
from repro.graphs import generators as gen
from repro.graphs.io import read_matrix_market, write_matrix_market
from repro.graphs.properties import largest_component, profile_graph
from repro.utils.tables import print_table


def load_or_synthesize(argv) -> Path:
    if len(argv) > 1:
        return Path(argv[1])
    # No file given: synthesize one and write it to a temp .mtx, so the
    # example demonstrates the full import path end to end.
    g = gen.small_world(3000, k=6, seed=99, name="user_graph")
    path = Path(tempfile.gettempdir()) / "repro_example_user_graph.mtx"
    write_matrix_market(g, path)
    print(f"(no .mtx given; synthesized one at {path})")
    return path


def main() -> None:
    path = load_or_synthesize(sys.argv)
    raw = read_matrix_market(path, name=path.stem)
    print(f"loaded: {raw}")

    # Standard traversal-paper preprocessing.
    graph = raw.symmetrize() if raw.directed else raw
    graph, _ = largest_component(graph)
    graph = graph.with_name(path.stem)

    profile = profile_graph(graph)
    print(f"preprocessed giant component: |V|={profile.n_vertices} "
          f"|E|={profile.n_edges}, {profile.bfs_levels_from_0} BFS levels "
          f"-> '{profile.regime}' regime\n")

    cfg = BenchConfig(sim_scale=0.125, warps_per_block=8, seed=1)
    rows = []
    for method in ("Serial-DFS", "CKL-PDFS", "ACR-PDFS", "NVG-DFS",
                   "DiggerBees", "Gunrock", "BerryBees"):
        sample = run_method(method, graph, 0, cfg)
        rows.append([method,
                     "failed" if sample.failed else f"{sample.mteps:.1f}"])
    print_table(["method", "MTEPS"], rows,
                title=f"all methods on '{graph.name}' (simulated)")
    print("\nTip: deep graphs (many BFS levels) favour DiggerBees; "
          "shallow ones favour the BFS baselines.")


if __name__ == "__main__":
    main()
