#!/usr/bin/env python3
"""Structural analysis: strongly connected components of a synthetic web.

The paper's first motivating application — "structural analysis (e.g.
strongly connected components [92])" — is Tarjan's DFS-based SCC
algorithm.  This example runs it on a directed R-MAT web crawl,
summarizes the component-size distribution (web graphs famously have one
giant SCC plus a long tail), and verifies that the condensation is a
DAG via the topological-sort application.

Run:  python examples/scc_analysis.py
"""

from collections import Counter

import numpy as np

from repro.apps import (
    condensation_edges,
    strongly_connected_components,
    topological_sort,
    verify_topological_order,
)
from repro.graphs import generators as gen
from repro.graphs.csr import from_edges
from repro.utils.tables import print_table


def main() -> None:
    web = gen.rmat(11, edge_factor=8, seed=23, symmetrize=False)
    print(f"directed web crawl: {web}")

    comp = strongly_connected_components(web)
    sizes = Counter(np.bincount(comp).tolist())
    dist = sorted(sizes.items(), key=lambda kv: -kv[0])[:8]
    print_table(
        ["SCC size", "count"],
        [[size, count] for size, count in dist],
        title="\ncomponent size distribution (top sizes)",
    )
    giant = int(np.bincount(comp).max())
    print(f"\ngiant SCC: {giant} vertices "
          f"({giant / web.n_vertices:.1%} of the graph)")

    # The condensation (one vertex per SCC) must be a DAG; prove it by
    # topologically sorting it.
    cedges = condensation_edges(web, comp)
    n_comp = int(comp.max()) + 1
    condensation = from_edges(n_comp, cedges, directed=True,
                              name="condensation")
    order = topological_sort(condensation)
    verify_topological_order(condensation, order)
    print(f"condensation: {n_comp} components, {cedges.shape[0]} arcs — "
          f"topologically sorted OK (it is a DAG)")


if __name__ == "__main__":
    main()
