"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one paper table/figure: it runs the
experiment once under ``benchmark.pedantic`` (the experiment itself is
the timed unit), prints the paper-shaped table, archives it under
``benchmarks/out/``, and asserts the DESIGN.md shape criteria.

Environment knobs:

* ``REPRO_BENCH_QUICK=1`` — shrink corpora/repeats for a fast smoke run.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.bench.harness import BenchConfig

OUT_DIR = pathlib.Path(__file__).parent / "out"

QUICK = os.environ.get("REPRO_BENCH_QUICK", "0") == "1"


@pytest.fixture(scope="session")
def bench_cfg() -> BenchConfig:
    """The calibrated default configuration (DESIGN.md §4.3)."""
    return BenchConfig(sim_scale=0.125, warps_per_block=8,
                       n_roots=1 if QUICK else 2, seed=7)


@pytest.fixture(scope="session")
def quick() -> bool:
    return QUICK


@pytest.fixture(scope="session")
def archive():
    """Write a rendered experiment report to benchmarks/out/<name>.txt."""
    OUT_DIR.mkdir(exist_ok=True)

    def _write(name: str, text: str) -> None:
        (OUT_DIR / f"{name}.txt").write_text(text + "\n")
        print()
        print(text)

    return _write
