"""Figure 9 — block-level load balance: random vs two-choice victims.

Paper shape: the load-aware two-choice policy reduces the coefficient of
variation of tasks/block versus random victim selection (paper: more
than halved; at simulator scale inter-block steal events are ~100x fewer
so the statistical advantage is smaller but consistently >= 1 where
stealing engages — the deviation is recorded in EXPERIMENTS.md).
"""

from repro.bench import experiments as E
from repro.utils.stats import geometric_mean


def test_fig9_load_balance(benchmark, bench_cfg, archive, quick):
    repeats = 2 if quick else 3
    scale = 1 if quick else 2
    result = benchmark.pedantic(
        lambda: E.fig9(bench_cfg, repeats=repeats, scale=scale),
        rounds=1, iterations=1)
    archive("fig9_load_balance", result.render())

    improvements = [r["improvement"] for r in result.rows
                    if r["improvement"] != float("inf")]
    # Two-choice must not be worse on average, and must help somewhere.
    assert geometric_mean([max(i, 1e-9) for i in improvements]) >= 0.98
    assert max(improvements) > 1.05
    # The balanced policy never produces a *more* extreme maximum.
    for r in result.rows:
        assert r["diggerbees"].max <= r["baseline"].max * 1.25, r["graph"]
