"""Figure 6 — 12 representative graphs: 4 DFS methods + best BFS.

Paper shape: DiggerBees beats the best BFS on deep road/mesh graphs
(euro_osm, hugebubbles, il2010: long narrow traversal paths) and loses
on shallow social graphs (ljournal: paper 3.70x slower than BFS).
"""

from repro.bench import experiments as E


def test_fig6_representative(benchmark, bench_cfg, archive):
    result = benchmark.pedantic(lambda: E.fig6(bench_cfg),
                                rounds=1, iterations=1)
    archive("fig6_representative", result.render())

    rows = {r["graph"]: r for r in result.rows}

    # Deep graphs: DiggerBees wins against the best BFS.
    for name in ("euro_osm", "hugebubbles", "il2010"):
        assert rows[name]["DiggerBees"] > rows[name]["BestBFS"], name

    # Shallow social graphs: BFS wins (paper: 3.70x on ljournal).
    for name in ("ljournal", "google", "wiki"):
        assert rows[name]["BestBFS"] > rows[name]["DiggerBees"], name
    lj = rows["ljournal"]
    assert 1.5 < lj["BestBFS"] / lj["DiggerBees"] < 12.0

    # DiggerBees beats every other DFS method on every deep graph.
    for name in ("euro_osm", "hugebubbles", "il2010"):
        r = rows[name]
        assert r["DiggerBees"] > max(r["CKL-PDFS"], r["ACR-PDFS"], r["NVG-DFS"])
