"""Tables 1-4 — platforms, output semantics, corpus groups, representative
graphs.  Table 2 is *measured*: each method runs and its actual outputs
are classified."""

from repro.bench import experiments as E


def test_table1_platforms(benchmark, archive):
    text = benchmark.pedantic(E.table1, rounds=1, iterations=1)
    archive("table1_platforms", text)
    assert "H100" in text and "132 SMs" in text
    assert "A100" in text and "108 SMs" in text
    assert "XeonMax9462" in text and "64 cores" in text


def test_table2_semantics(benchmark, archive):
    text = benchmark.pedantic(E.table2, rounds=1, iterations=1)
    archive("table2_semantics", text)
    lines = {l.split("|")[0].strip(): l for l in text.splitlines() if "|" in l}
    # Paper Table 2, verified by observation:
    assert "N/A" in lines["CKL-PDFS"]                  # no tree
    assert "ordered" in lines["NVG-DFS"]               # lexicographic
    assert "unordered" in lines["DiggerBees (this work)"]
    assert "yes" in lines["Gunrock/BerryBees"]         # levels


def test_table3_groups(benchmark, archive):
    text = benchmark.pedantic(E.table3, rounds=1, iterations=1)
    archive("table3_groups", text)
    for group in ("dimacs10", "snap", "law"):
        assert group in text


def test_table4_representative(benchmark, archive):
    text = benchmark.pedantic(E.table4, rounds=1, iterations=1)
    archive("table4_representative", text)
    for name in ("euro_osm", "delaunay", "hollywood", "ljournal"):
        assert name in text
    # The regime axis that carries the paper's conclusions must be present.
    assert "deep" in text and "shallow" in text
