"""Figure 7 — A100 vs H100 scalability of DiggerBees vs NVG-DFS.

Paper shape: both methods speed up on H100, but DiggerBees' geomean
H100/A100 ratio (paper 1.33x) exceeds NVG-DFS's (paper 1.18x), tracking
the 1.22x SM-count increase.
"""

from repro.bench import experiments as E
from repro.graphs import collections as col


def test_fig7_scalability(benchmark, bench_cfg, archive, quick):
    sizes = [1200] if quick else [1200, 3600, 9000]
    corpus = col.build_corpus(sizes=sizes)
    result = benchmark.pedantic(
        lambda: E.fig7(bench_cfg, corpus=corpus), rounds=1, iterations=1)
    archive("fig7_scalability", result.render())

    sc = result.geomean_scalability
    assert sc["DiggerBees"] > 1.0
    assert sc["NVG-DFS"] > 0.95
    # The headline claim: DiggerBees scales better across generations.
    assert sc["DiggerBees"] > sc["NVG-DFS"]
    # And tracks the hardware scaling (1.22x SMs + clock) within reason.
    assert 1.03 < sc["DiggerBees"] < 1.6
