"""Multi-device extension benchmark (beyond the paper).

The paper's related work cites remote work stealing for multi-GPU graph
analytics (Meng et al. ICDE'23, Lima et al. SBAC-PAD'12) as the natural
next step for DiggerBees.  Two execution models are measured side by
side on the same graph:

* **modeled** — one engine, blocks partitioned across 1/2/4 GPUs via
  the ``n_gpus`` knob; stealing stays GPU-local until a whole GPU runs
  dry, then the GPU's leader block steals across NVLink at ~4x the cost
  of a local inter-block steal.  Everything runs in one process; the
  multi-device cost is *modeled* in the cycle ledger.
* **sharded** — the :mod:`repro.core.shard` tier: the graph is cut into
  k districts (one per device), one engine per district runs **truly
  concurrently** across worker processes, and cut edges carry a
  message-passing round protocol priced with the same NVLink remote
  steal costs.  ``remote_steal_successes`` counts (src, dst) district
  pairs that exchanged activations per barrier — real inter-partition
  traffic, not a modeled funnel.

Expected shape: correctness always (sharded visited/edges bit-identical
to the unsharded engine); remote steals appear exactly when devices > 1
in both models; the shard tier's round accounting is internally
consistent (successes == sum of per-round district pairs, entries ==
sum of delivered activations); modeled throughput never collapses from
the partitioning (NVLink funnel bounded — an honest Amdahl story).
"""

import numpy as np

from repro.core import DiggerBeesConfig, run_diggerbees, run_sharded
from repro.graphs import collections as col
from repro.sim.device import H100
from repro.utils.tables import format_table
from repro.validate import validate_traversal


def _run_modeled(graph, gpus, blocks_per_gpu=8, seed=7):
    cfg = DiggerBeesConfig(n_blocks=gpus * blocks_per_gpu, warps_per_block=8,
                           n_gpus=gpus, seed=seed)
    return run_diggerbees(graph, 0, config=cfg, device=H100)


def _run_sharded(graph, gpus, blocks_per_gpu=8, seed=7):
    cfg = DiggerBeesConfig(n_blocks=blocks_per_gpu, warps_per_block=8,
                           seed=seed, turbo=True)
    return run_sharded(graph, 0, config=cfg, k=gpus, jobs=gpus,
                       device=H100)


def test_multigpu_scaling(benchmark, archive, quick):
    g = col.load("euro_osm", scale=1 if quick else 2)

    def run():
        rows = []
        for gpus in (1, 2, 4):
            res = _run_modeled(g, gpus)
            validate_traversal(g, res.traversal)
            rows.append([gpus, gpus * 8, res.mteps,
                         res.counters.inter_steal_successes,
                         res.counters.remote_steal_successes])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    archive("multigpu_scaling",
            format_table(
                ["GPUs", "blocks", "MTEPS", "inter steals", "remote steals"],
                rows, floatfmt=".1f",
                title="Extension — modeled multi-GPU DiggerBees (euro_osm)"))

    by_gpus = {r[0]: r for r in rows}
    # Remote steals never happen on one GPU; with several they only
    # happen when a whole GPU actually runs dry, which needs the
    # full-scale graph (the quick corpus drains before any GPU starves
    # — the *sharded* model below has guaranteed cross-device traffic
    # at every scale, because district boundaries are structural).
    assert by_gpus[1][4] == 0
    if not quick:
        assert by_gpus[2][4] > 0
    # Partitioning never collapses throughput (NVLink funnel bounded).
    assert by_gpus[2][2] > 0.7 * by_gpus[1][2]
    assert by_gpus[4][2] > 0.5 * by_gpus[1][2]


def test_sharded_concurrency(benchmark, archive, quick):
    """Real concurrency: one engine per district across worker processes."""
    g = col.load("euro_osm", scale=1 if quick else 2)
    base = run_diggerbees(
        g, 0, config=DiggerBeesConfig(n_blocks=8, warps_per_block=8,
                                      seed=7, turbo=True), device=H100)

    def run():
        rows = []
        for gpus in (1, 2, 4):
            res = _run_sharded(g, gpus)
            validate_traversal(g, res.traversal)
            rows.append([gpus, res.n_rounds, res.mteps,
                         res.counters.remote_steal_successes,
                         res.counters.remote_steal_entries,
                         res.partition.edge_cut_fraction, res])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    archive("multigpu_sharded",
            format_table(
                ["districts", "rounds", "MTEPS", "remote steals",
                 "remote entries", "cut"],
                [r[:-1] for r in rows], floatfmt=".3f",
                title="Extension — sharded multi-device DiggerBees "
                      "(euro_osm, concurrent district processes)"))

    by_k = {r[0]: r for r in rows}
    for gpus, res in ((k, r[-1]) for k, r in by_k.items()):
        # Sharded traversal is bit-identical to the unsharded engine on
        # reachability and edge inspections, for every district count.
        assert np.array_equal(res.traversal.visited, base.traversal.visited)
        assert (res.traversal.edges_traversed
                == base.traversal.edges_traversed)
        # remote_steal_successes accounting: the counter is exactly the
        # per-round district-pair activity the round log records, and
        # entries are exactly the delivered activations.
        assert res.counters.remote_steal_successes == sum(
            r["district_pairs"] for r in res.rounds)
        assert res.counters.remote_steal_entries == sum(
            r["delivered_activations"] for r in res.rounds)
    # Remote steals appear exactly when there is more than one district.
    assert by_k[1][3] == 0
    assert by_k[2][3] > 0
    assert by_k[4][3] > 0
