"""Multi-GPU extension benchmark (beyond the paper).

The paper's related work cites remote work stealing for multi-GPU graph
analytics (Meng et al. ICDE'23, Lima et al. SBAC-PAD'12) as the natural
next step for DiggerBees.  This benchmark measures that extension on the
simulator: blocks are partitioned across 1/2/4 GPUs, stealing stays
GPU-local until a whole GPU runs dry, then the GPU's leader block steals
across NVLink at ~4x the cost of a local inter-block steal.

Expected shape: correctness always; throughput never collapses from the
partitioning; remote steals appear exactly when GPUs > 1; scaling
efficiency decays with GPU count (NVLink steals are the serial funnel,
an honest Amdahl story).
"""

from repro.core import DiggerBeesConfig, run_diggerbees
from repro.graphs import collections as col
from repro.sim.device import H100
from repro.utils.tables import format_table
from repro.validate import validate_traversal


def _run(graph, gpus, blocks_per_gpu=8, seed=7):
    cfg = DiggerBeesConfig(n_blocks=gpus * blocks_per_gpu, warps_per_block=8,
                           n_gpus=gpus, seed=seed)
    return run_diggerbees(graph, 0, config=cfg, device=H100)


def test_multigpu_scaling(benchmark, archive, quick):
    g = col.load("euro_osm", scale=1 if quick else 2)

    def run():
        rows = []
        for gpus in (1, 2, 4):
            res = _run(g, gpus)
            validate_traversal(g, res.traversal)
            rows.append([gpus, gpus * 8, res.mteps,
                         res.counters.inter_steal_successes,
                         res.counters.remote_steal_successes])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    archive("multigpu_scaling",
            format_table(
                ["GPUs", "blocks", "MTEPS", "inter steals", "remote steals"],
                rows, floatfmt=".1f",
                title="Extension — multi-GPU DiggerBees (euro_osm)"))

    by_gpus = {r[0]: r for r in rows}
    # Remote steals appear exactly when there is more than one GPU.
    assert by_gpus[1][4] == 0
    assert by_gpus[2][4] > 0
    # Partitioning never collapses throughput (NVLink funnel bounded).
    assert by_gpus[2][2] > 0.7 * by_gpus[1][2]
    assert by_gpus[4][2] > 0.5 * by_gpus[1][2]
