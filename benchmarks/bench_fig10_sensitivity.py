"""Figure 10 — sensitivity to hot_cutoff x cold_cutoff.

Paper shape: performance degrades when cutoffs grow too large (idle
warps cannot acquire work), and the cost surface is unimodal in each
axis.  Known scale deviation (EXPERIMENTS.md): at simulator scale the
optimum shifts from the paper's (32, 64) toward (8-16, 16-32) because
per-warp work is ~100x smaller; the extended grid shows the full
U-shape.
"""

import numpy as np

from repro.bench import experiments as E
from repro.graphs import collections as col


def test_fig10_paper_grid(benchmark, bench_cfg, archive, quick):
    graphs = list(col.BREAKDOWN_NAMES[:3]) if quick else None
    result = benchmark.pedantic(
        lambda: E.fig10(bench_cfg, graphs=graphs), rounds=1, iterations=1)
    archive("fig10_sensitivity", result.render())

    for name, grid in result.grids.items():
        # Too-large cutoffs degrade: the (64, 128) corner is the worst
        # region of the paper grid.
        assert grid[-1, -1] <= grid.max() * 0.95, name
        # cold_cutoff = 128 never beats the default column (paper: up to
        # 20% degradation on 'google').
        assert grid[1, 2] <= grid[1, 1] * 1.1, name


def test_fig10_extended_u_shape(benchmark, bench_cfg, archive, quick):
    """Extended grid demonstrating the qualitative U-shape at sim scale."""
    graphs = ["euro_osm"] if quick else ["euro_osm", "google"]
    result = benchmark.pedantic(
        lambda: E.fig10(bench_cfg, graphs=graphs,
                        hot_values=(2, 8, 32, 64),
                        cold_values=(4, 16, 64, 128)),
        rounds=1, iterations=1)
    archive("fig10_extended", result.render())

    for name, grid in result.grids.items():
        best = np.unravel_index(np.argmax(grid), grid.shape)
        # The optimum is interior-ish: neither the largest cutoffs...
        assert best != (grid.shape[0] - 1, grid.shape[1] - 1), name
        # ...nor the absolute smallest cold value on the smallest hot row.
        assert grid[best] > grid[-1, -1], name
