"""Intra-device block scaling (supports the paper's §4.4 claim).

The paper argues DiggerBees "scales naturally with increased SM count".
This benchmark sweeps the block count on one device and records the
MTEPS curve: rising while the graph can feed more blocks, then flat
(never collapsing) once parallelism saturates — the within-device view
of Figure 7's cross-device ratio and of Figure 8's v3 -> v4 step.
"""

from repro.bench.harness import BenchConfig, pick_roots
from repro.core import run_diggerbees
from repro.graphs import collections as col
from repro.sim.device import H100
from repro.utils.tables import format_table

CFG = BenchConfig(warps_per_block=8, seed=7)

BLOCK_COUNTS = (1, 2, 4, 8, 17, 33)


def test_block_scaling_curve(benchmark, archive, quick):
    big = col.load("euro_osm", scale=1 if quick else 2)
    small = col.load("amazon")

    def run():
        rows = []
        for g in (big, small):
            root = pick_roots(g, CFG)[0]   # GAP-style source, as elsewhere
            for nb in BLOCK_COUNTS:
                cfg = CFG.diggerbees_config(n_blocks=nb)
                res = run_diggerbees(g, root, config=cfg, device=H100)
                rows.append([g.name, nb, res.mteps])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    archive("block_scaling",
            format_table(["graph", "blocks", "MTEPS"], rows, floatfmt=".1f",
                         title="Block scaling on H100 (paper §4.4 claim)"))

    curves = {}
    for graph, nb, m in rows:
        curves.setdefault(graph, {})[nb] = m
    big_curve = curves[big.name]
    small_curve = curves[small.name]

    # The big deep graph keeps gaining well past one block...
    assert big_curve[8] > 1.5 * big_curve[1]
    assert big_curve[33] >= 0.9 * big_curve[17]      # never collapses
    # ...while the small graph saturates early (paper: 'amazon'/'google'
    # gain only 2-12% from v3 to v4).
    assert small_curve[33] < 1.3 * small_curve[4]
