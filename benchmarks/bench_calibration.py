"""Calibration benchmark: pin the cost tables to their physical anchors.

Prints the derived-vs-target table (DESIGN.md §4.3) and measures the
achieved MTEPS ranges per method on a reference graph pair, so any
drift in ``repro.sim.device`` shows up in benchmark logs.
"""

from repro.bench.harness import BenchConfig, run_method
from repro.graphs import collections as col
from repro.sim.calibration import calibration_table, derive_anchors
from repro.utils.tables import format_table


def test_calibration_anchors(benchmark, archive):
    table = benchmark.pedantic(calibration_table, rounds=1, iterations=1)
    archive("calibration_anchors", table)
    for anchor in derive_anchors():
        assert anchor.within_tolerance, anchor.name


def test_calibration_mteps_ranges(benchmark, archive):
    """The absolute MTEPS ranges must stay in the plausible envelope the
    calibration was aimed at (order of magnitude, not exact values)."""
    cfg = BenchConfig(sim_scale=0.125, warps_per_block=8, n_roots=1, seed=7)
    deep = col.load("euro_osm")
    shallow = col.load("ljournal")

    def run():
        rows = []
        for g in (deep, shallow):
            for m in ("DiggerBees", "CKL-PDFS", "BerryBees"):
                rows.append([g.name, m, run_method(m, g, 0, cfg).mteps])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    archive("calibration_mteps",
            format_table(["graph", "method", "MTEPS"], rows, floatfmt=".1f",
                         title="Calibration — achieved MTEPS envelope"))
    perf = {(r[0], r[1]): r[2] for r in rows}
    # Envelope checks (an order-of-magnitude corridor, scaled machines).
    assert 20 < perf[("euro_osm", "DiggerBees")] < 3000
    assert 10 < perf[("euro_osm", "CKL-PDFS")] < 1000
    assert 100 < perf[("ljournal", "BerryBees")] < 50000
