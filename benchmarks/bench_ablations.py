"""Ablation benchmarks for DESIGN.md's called-out design choices.

These go beyond the paper's figures: each isolates one design decision
the paper argues for in prose and measures its effect on the simulator.

* **flush-from-tail vs flush-from-head** (paper §3.3 gives two reasons
  for tail: head locality for the owner, big old branches for thieves);
* **TMA-accelerated refill** (paper §3.3: ~5% on H100);
* **warps per block** (intra-block parallelism vs vulture contention);
* **two-choice victim selection** end-to-end performance (Fig 9 showed
  balance; this shows time);
* **vertex ordering** (natural vs random vs BFS vs degree labelling).
"""

import numpy as np

from repro.bench.harness import BenchConfig
from repro.core import DiggerBeesConfig, run_diggerbees
from repro.graphs import collections as col
from repro.graphs.transform import apply_ordering
from repro.sim.device import H100
from repro.utils.tables import format_table

CFG = BenchConfig(sim_scale=0.125, warps_per_block=8, seed=7)


def _mteps(graph, config):
    return run_diggerbees(graph, 0, config=config, device=H100).mteps


def test_ablation_flush_policy(benchmark, archive):
    """Tail-flush (the paper's choice) vs head-flush across graphs.

    Recorded finding: at simulator scale the two are within noise of
    each other (the paper's locality argument needs the real memory
    hierarchy to bite, and its steal-quality argument needs full-scale
    branch lifetimes).  The assertion therefore only requires that the
    paper's choice never *loses* materially — the ablation's value is
    the archived measurement itself.
    """
    def run():
        rows = []
        for name in ("euro_osm", "delaunay", "ljournal"):
            g = col.load(name)
            t = _mteps(g, CFG.diggerbees_config(flush_policy="tail"))
            h = _mteps(g, CFG.diggerbees_config(flush_policy="head"))
            rows.append([name, t, h, t / h])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    archive("ablation_flush_policy",
            format_table(["graph", "tail (paper)", "head", "ratio"], rows,
                         floatfmt=".2f",
                         title="Ablation — flush from tail (paper) vs head"))
    ratios = [r[3] for r in rows]
    assert float(np.exp(np.mean(np.log(ratios)))) > 0.9


def test_ablation_tma_refill(benchmark, archive):
    """H100's TMA refill discount (~5% of refill cost) has a visible but
    small end-to-end effect, matching the paper's 'approximately 5%'."""
    g = col.load("euro_osm")
    no_tma = H100.scaled(costs=H100.costs.__class__(
        **{**H100.costs.__dict__, "refill_base": H100.costs.flush_base}))

    def run():
        cfg = CFG.diggerbees_config()
        with_tma = run_diggerbees(g, 0, config=cfg, device=H100)
        without = run_diggerbees(g, 0, config=cfg, device=no_tma)
        return with_tma.mteps, without.mteps

    tma, plain = benchmark.pedantic(run, rounds=1, iterations=1)
    archive("ablation_tma_refill",
            format_table(["variant", "MTEPS"],
                         [["TMA refill (H100)", tma], ["plain refill", plain]],
                         floatfmt=".2f",
                         title="Ablation — TMA-accelerated refill"))
    # The paper measures ~5%; at simulator scale the 8-cycle refill delta
    # is below scheduling noise, so assert only that the effect is small
    # in either direction.
    assert abs(tma / plain - 1.0) < 0.08


def test_ablation_warps_per_block(benchmark, archive):
    """More warps per block add intra-block parallelism with diminishing
    returns (fixed total block count)."""
    g = col.load("delaunay")

    def run():
        rows = []
        for wpb in (1, 2, 4, 8, 16):
            cfg = CFG.with_(warps_per_block=wpb).diggerbees_config()
            rows.append([wpb, _mteps(g, cfg)])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    archive("ablation_warps_per_block",
            format_table(["warps/block", "MTEPS"], rows, floatfmt=".1f",
                         title="Ablation — warps per block (delaunay)"))
    perf = [r[1] for r in rows]
    assert perf[2] > perf[0]                 # 4 warps beat 1
    assert max(perf) / perf[0] > 1.3         # parallelism is real
    # Diminishing returns: the last doubling gains less than the first.
    assert perf[-1] / perf[-2] < perf[1] / perf[0] + 0.5


def test_ablation_victim_policy_performance(benchmark, archive):
    """Two-choice should not cost end-to-end time vs random victims."""
    def run():
        rows = []
        for name in ("euro_osm", "ljournal"):
            g = col.load(name, scale=2)
            t = _mteps(g, CFG.diggerbees_config(victim_policy="two_choice"))
            r = _mteps(g, CFG.diggerbees_config(victim_policy="random"))
            rows.append([name, t, r, t / r])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    archive("ablation_victim_policy",
            format_table(["graph", "two-choice", "random", "ratio"], rows,
                         floatfmt=".2f",
                         title="Ablation — victim policy end-to-end MTEPS"))
    ratios = [r[3] for r in rows]
    assert float(np.exp(np.mean(np.log(ratios)))) > 0.9


def test_ablation_vertex_ordering(benchmark, archive):
    """Vertex labelling changes DFS branch choices and therefore
    stealing behaviour; all orderings must stay correct, and the spread
    quantifies the sensitivity."""
    base = col.load("euro_osm")

    def run():
        rows = []
        for ordering in ("natural", "random", "bfs", "degree"):
            g, _ = apply_ordering(base, ordering, seed=7)
            rows.append([ordering, _mteps(g, CFG.diggerbees_config())])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    archive("ablation_vertex_ordering",
            format_table(["ordering", "MTEPS"], rows, floatfmt=".1f",
                         title="Ablation — vertex labelling (euro_osm)"))
    perf = [r[1] for r in rows]
    assert min(perf) > 0
    assert max(perf) / min(perf) < 5.0       # sensitivity bounded
