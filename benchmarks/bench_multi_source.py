"""Multi-source warm-start benchmark (extension, GAP-style sourcing).

Single-source DFS pays a ramp-up while one warp's subtree feeds the
grid; `run_diggerbees_multi` scatters k seed roots over the blocks.
Expected shape: cycles fall monotonically-ish with k on a deep graph,
with diminishing returns once every block is seeded; coverage and forest
validity always hold.
"""

from repro.bench.harness import BenchConfig, pick_roots
from repro.core.multi_source import run_diggerbees_multi
from repro.graphs import collections as col
from repro.sim.device import H100
from repro.utils.rng import derive_seed, make_rng
from repro.utils.tables import format_table


def test_multi_source_warm_start(benchmark, bench_cfg, archive, quick):
    g = col.load("euro_osm", scale=1 if quick else 2)
    rng = make_rng(derive_seed(7, "multisource", g.name))
    all_roots = [int(v) for v in rng.choice(g.n_vertices, size=16,
                                            replace=False)]
    cfg = bench_cfg.diggerbees_config()

    def run():
        rows = []
        for k in (1, 2, 4, 8, 16):
            res = run_diggerbees_multi(g, all_roots[:k], config=cfg,
                                       device=H100)
            assert res.traversal.n_visited == g.n_vertices
            rows.append([k, res.n_trees, res.cycles, res.mteps])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    archive("multi_source_warm_start",
            format_table(["seed roots", "trees", "cycles", "MTEPS"], rows,
                         floatfmt=".1f",
                         title="Extension — multi-source warm start "
                               f"({g.name})"))

    cycles = {r[0]: r[2] for r in rows}
    # Warm starts help on a deep graph: 8 seeds beat 1 seed clearly.
    assert cycles[8] < cycles[1]
    # And the effect saturates rather than degrading badly.
    assert cycles[16] < cycles[1] * 1.1
