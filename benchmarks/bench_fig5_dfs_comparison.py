"""Figure 5 — DiggerBees vs CKL-PDFS / ACR-PDFS / NVG-DFS over the corpus.

Paper claims reproduced in shape:
* geomean speedup > 1 vs both CPU baselines (paper: 1.37x / 1.83x);
* geomean speedup >> 10 vs NVG-DFS (paper: 30.18x, up to 1841x);
* NVG-DFS fails on a nonzero fraction of the corpus (paper: 44/234).
"""

from repro.bench import experiments as E
from repro.graphs import collections as col


def _corpus(quick):
    sizes = [1200, 3600] if quick else [400, 1200, 3600, 9000]
    return col.build_corpus(sizes=sizes)


def test_fig5_dfs_comparison(benchmark, bench_cfg, archive, quick):
    corpus = _corpus(quick)
    result = benchmark.pedantic(
        lambda: E.fig5(bench_cfg, corpus=corpus), rounds=1, iterations=1)
    archive("fig5_dfs_comparison", result.render())

    assert result.geomean_vs["NVG-DFS"] > 10.0
    # ACR is the slower CPU baseline overall, as in the paper.
    assert result.geomean_vs["ACR-PDFS"] >= result.geomean_vs["CKL-PDFS"] * 0.98
    if not quick:
        # The GPU advantage needs graphs big enough to feed the grid
        # (the paper's corpus averages millions of vertices); the quick
        # corpus is dominated by start-up ramp.
        assert result.geomean_vs["CKL-PDFS"] > 1.0
        assert result.geomean_vs["ACR-PDFS"] > 1.0
        assert result.nvg_failures > 0
