"""Sharded-execution speedup sweep: device wall-clock vs district count.

The shard tier (:mod:`repro.core.shard`) cuts a graph into ``k``
balanced districts (:mod:`repro.graphs.partition`), runs one DiggerBees
engine per district, and synchronizes over cut edges in message-passing
rounds.  Its makespan — the modeled device wall-clock,
``device.cycles_to_seconds`` over ``sum(max district cycles + comm)``
per round — is what a fleet of k devices would take.  This sweep
records that speedup curve against the unsharded engine::

    python benchmarks/bench_shard.py --quick
    python benchmarks/bench_shard.py --gate --record

Two regimes bound the curve, and the corpus includes both:

* **saturating graphs** (large grids/meshes) — every district is big
  enough to keep its 64 warps busy, and the round schedule is short
  (root district first, every neighbour in round two), so k=4 beats the
  floor.  Sharding pays only past ~10^6 vertices: below that, k
  engines on n/k-vertex districts burn more total cycles than one
  engine on n (warp starvation inflates small-graph cost), which is
  the classic "multi-GPU needs a big enough graph" story.
* **wavefront-bound graphs** (roads) — district activation crawls
  across the partition one adjacency hop per round, so the makespan
  stays near the unsharded engine no matter how many devices you add.

District runs fan out over the worker pool (``jobs = min(k, cores)``);
the modeled metrics are jobs-invariant, and the *host* wall recorded
per row is informational — host-side speedup needs >= k cores, while
the modeled makespan prices the k-device fleet the tier simulates.

``--gate`` asserts, on the flagship case: speedup >= ``SPEEDUP_FLOOR``
(1.5x) at k=4 with edge-cut fraction <= ``CUT_CEILING`` (0.25) and
balance factor <= ``BALANCE_CEILING`` (1.2), a monotone-ish climb up
to k=4 (each step >= 0.9x the previous speedup; past k=4 a rolloff to
0.75x is tolerated — round synchronization genuinely bites there),
and sharded traversals bit-identical to the unsharded engine on every
case.  ``--record`` appends the run to
``benchmarks/out/trajectory.jsonl`` (kind ``shard``).
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time
from datetime import datetime, timezone
from typing import Dict, List, Optional

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.core import DiggerBeesConfig, run_diggerbees  # noqa: E402
from repro.core.shard import run_sharded  # noqa: E402
from repro.graphs import generators as gen  # noqa: E402
from repro.graphs.partition import partition_graph  # noqa: E402
from repro.sim.device import H100  # noqa: E402

#: Flagship-case speedup the gate requires at k=4.
SPEEDUP_FLOOR = 1.5

#: Partition-quality ceilings the gate holds the flagship case to.
CUT_CEILING = 0.25
BALANCE_CEILING = 1.2

#: Monotone-ish tolerances: climbing to k=4 each step must keep >= 90%
#: of the previous speedup; past k=4 a rolloff to 75% is tolerated.
CLIMB_TOLERANCE = 0.9
ROLLOFF_TOLERANCE = 0.75

TRAJECTORY_PATH = REPO_ROOT / "benchmarks" / "out" / "trajectory.jsonl"

FULL_KS = (1, 2, 4, 8)
QUICK_KS = (1, 4)

PARTITION_SEED = 7


def build_corpus(quick: bool) -> List[Dict]:
    """(graph, root, ks, gate?) cases bounding both sharding regimes.

    The flagship grid is identical in quick and full mode: the gate's
    floor is only honest at saturation scale, so quick mode trims the
    k axis and the corpus, never the graph.
    """
    cases: List[Dict] = [{
        "graph": gen.grid2d(1200, 1200, name="grid1200"),
        "root": 0,
        "ks": QUICK_KS if quick else FULL_KS,
        "gate": True,
    }]
    if quick:
        cases.append({
            "graph": gen.road_network(20000, seed=3, name="road20k"),
            "root": 0,
            "ks": QUICK_KS,
            "gate": False,
        })
    else:
        cases.append({
            "graph": gen.delaunay_mesh(160000, seed=3,
                                       name="delaunay160k"),
            "root": 0,
            "ks": FULL_KS,
            "gate": False,
        })
        cases.append({
            "graph": gen.road_network(60000, seed=3, name="road60k"),
            "root": 0,
            "ks": FULL_KS,
            "gate": False,
        })
    return cases


def measure_case(case: Dict, *, config: DiggerBeesConfig) -> Dict:
    """Speedup-vs-k rows for one graph; k=1 is the unsharded engine."""
    graph, root = case["graph"], case["root"]
    t0 = time.perf_counter()
    base = run_diggerbees(graph, root, config=config, device=H100)
    base_host = time.perf_counter() - t0
    rows: List[Dict] = [{
        "k": 1,
        "rounds": 1,
        "cycles": int(base.cycles),
        "device_seconds": base.seconds,
        "mteps": base.mteps,
        "speedup": 1.0,
        "edge_cut_fraction": 0.0,
        "balance_factor": 1.0,
        "remote_steal_successes": 0,
        "remote_steal_entries": 0,
        "jobs": 1,
        "partition_host_seconds": 0.0,
        "sim_host_seconds": base_host,
        "bit_identical": True,
    }]
    cores = os.cpu_count() or 1
    for k in case["ks"]:
        if k < 2:
            continue
        t0 = time.perf_counter()
        part = partition_graph(graph, k, seed=PARTITION_SEED)
        part_host = time.perf_counter() - t0
        jobs = min(k, cores)
        t0 = time.perf_counter()
        res = run_sharded(graph, root, config=config, partition=part,
                          jobs=jobs, device=H100)
        sim_host = time.perf_counter() - t0
        rows.append({
            "k": k,
            "rounds": res.n_rounds,
            "cycles": int(res.cycles),
            "device_seconds": res.seconds,
            "mteps": res.mteps,
            "speedup": base.seconds / res.seconds,
            "edge_cut_fraction": res.partition.edge_cut_fraction,
            "balance_factor": res.partition.balance_factor,
            "remote_steal_successes":
                int(res.counters.remote_steal_successes),
            "remote_steal_entries":
                int(res.counters.remote_steal_entries),
            "jobs": jobs,
            "partition_host_seconds": part_host,
            "sim_host_seconds": sim_host,
            "bit_identical": bool(
                np.array_equal(res.traversal.visited,
                               base.traversal.visited)
                and res.traversal.edges_traversed
                == base.traversal.edges_traversed),
        })
    return {
        "name": graph.name,
        "n_vertices": int(graph.n_vertices),
        "n_edges": int(graph.n_edges),
        "root": int(root),
        "gate_case": bool(case["gate"]),
        "rows": rows,
    }


def run_sweep(*, quick: bool) -> Dict:
    config = DiggerBeesConfig(n_blocks=8, warps_per_block=8, seed=7,
                              turbo=True)
    cases = [measure_case(c, config=config) for c in build_corpus(quick)]
    return {
        "bench": "shard",
        "quick": quick,
        "host_cores": os.cpu_count() or 1,
        "device": H100.name,
        "engine": {"n_blocks": config.n_blocks,
                   "warps_per_block": config.warps_per_block,
                   "turbo": config.turbo, "seed": config.seed},
        "partition_seed": PARTITION_SEED,
        "cases": cases,
    }


def apply_gate(result: Dict) -> int:
    """Assert the flagship curve clears the floor with a quality cut."""
    failures: List[str] = []
    for case in result["cases"]:
        for row in case["rows"]:
            if not row["bit_identical"]:
                failures.append(
                    f"{case['name']} k={row['k']}: sharded traversal "
                    f"diverged from the unsharded engine")
    gate_cases = [c for c in result["cases"] if c["gate_case"]]
    if not gate_cases:
        failures.append("no gate case in the corpus")
    for case in gate_cases:
        by_k = {r["k"]: r for r in case["rows"]}
        k4 = by_k.get(4)
        if k4 is None:
            failures.append(f"{case['name']}: no k=4 row to gate on")
            continue
        if k4["speedup"] < SPEEDUP_FLOOR:
            failures.append(
                f"{case['name']}: k=4 speedup {k4['speedup']:.2f}x is "
                f"under the {SPEEDUP_FLOOR:.1f}x floor")
        if k4["edge_cut_fraction"] > CUT_CEILING:
            failures.append(
                f"{case['name']}: k=4 edge-cut fraction "
                f"{k4['edge_cut_fraction']:.3f} exceeds {CUT_CEILING}")
        if k4["balance_factor"] > BALANCE_CEILING:
            failures.append(
                f"{case['name']}: k=4 balance factor "
                f"{k4['balance_factor']:.3f} exceeds {BALANCE_CEILING}")
        prev = None
        for row in sorted(case["rows"], key=lambda r: r["k"]):
            if prev is not None:
                floor = (CLIMB_TOLERANCE if row["k"] <= 4
                         else ROLLOFF_TOLERANCE) * prev["speedup"]
                if row["speedup"] < floor:
                    failures.append(
                        f"{case['name']}: speedup collapses "
                        f"{prev['speedup']:.2f}x (k={prev['k']}) -> "
                        f"{row['speedup']:.2f}x (k={row['k']}); curve "
                        f"is not monotone-ish")
            prev = row
    if failures:
        for f in failures:
            print(f"SHARD GATE FAIL: {f}", file=sys.stderr)
        return 1
    flag = gate_cases[0]
    k4 = {r["k"]: r for r in flag["rows"]}[4]
    print(f"gate: ok — {flag['name']} reaches {k4['speedup']:.2f}x at "
          f"k=4 (cut {k4['edge_cut_fraction']:.3f}, balance "
          f"{k4['balance_factor']:.2f}, {k4['rounds']} rounds), all "
          f"sharded traversals bit-identical")
    return 0


def record_run(result: Dict) -> None:
    TRAJECTORY_PATH.parent.mkdir(parents=True, exist_ok=True)
    entry = dict(result)
    entry["timestamp"] = datetime.now(timezone.utc).isoformat(
        timespec="seconds")
    with TRAJECTORY_PATH.open("a", encoding="utf-8") as f:
        f.write(json.dumps(entry) + "\n")
    print(f"recorded -> {TRAJECTORY_PATH}")


def render(result: Dict) -> str:
    lines = []
    for case in result["cases"]:
        flag = " [gate]" if case["gate_case"] else ""
        lines.append(f"{case['name']}{flag}  n={case['n_vertices']} "
                     f"m={case['n_edges']} root={case['root']}")
        lines.append(f"  {'k':>3s} {'rounds':>6s} {'device':>10s} "
                     f"{'speedup':>8s} {'cut':>6s} {'bal':>5s} "
                     f"{'rsteals':>8s} {'host':>8s}")
        for r in case["rows"]:
            lines.append(
                f"  {r['k']:>3d} {r['rounds']:>6d} "
                f"{r['device_seconds']*1e3:>8.3f}ms "
                f"{r['speedup']:>7.2f}x {r['edge_cut_fraction']:>6.3f} "
                f"{r['balance_factor']:>5.2f} "
                f"{r['remote_steal_successes']:>8d} "
                f"{r['sim_host_seconds']:>7.1f}s")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Sharded-execution speedup-vs-k sweep")
    parser.add_argument("--quick", action="store_true",
                        help="trim the k axis and corpus; the flagship "
                             "graph stays full-size (the floor is only "
                             "honest at saturation scale)")
    parser.add_argument("--gate", action="store_true",
                        help=f"fail unless the flagship case reaches "
                             f"{SPEEDUP_FLOOR:.1f}x at k=4 with cut <= "
                             f"{CUT_CEILING} and balance <= "
                             f"{BALANCE_CEILING}")
    parser.add_argument("--record", action="store_true",
                        help="append to benchmarks/out/trajectory.jsonl")
    parser.add_argument("--json", default=None,
                        help="write the full result payload to this file")
    args = parser.parse_args(argv)

    result = run_sweep(quick=args.quick)
    print(render(result))
    if args.json:
        pathlib.Path(args.json).write_text(
            json.dumps(result, indent=2, sort_keys=True) + "\n")
    if args.record:
        record_run(result)
    if args.gate:
        return apply_gate(result)
    return 0


if __name__ == "__main__":
    sys.exit(main())
