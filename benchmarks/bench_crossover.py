"""BFS-vs-DFS crossover sweep: where each engine family wins, by depth.

The frontier engine (:mod:`repro.core.frontier`) advances whole BFS
levels with bit-packed vectors — its cost scales with the number of
levels, not the number of vertices, so shallow-wide graphs are its
winning shape.  The DFS simulation tiers amortize differently: the hive
engine's lockstep batching makes per-run cost nearly independent of
shape.  This sweep measures both families across a depth-controlled
corpus and records where the crossover sits::

    python benchmarks/bench_crossover.py --quick
    python benchmarks/bench_crossover.py --gate --record

The depth axis holds the vertex budget fixed (``wide_layers`` with
``width x depth = N``) and swings depth from a handful of huge levels to
hundreds of narrow ones, bracketed by a shallow hub-mesh anchor
(``star_mesh``) and two deep anchors (``path_graph``, ``skewed_tree``).
Per case the sweep records the frontier engine's median wall and MTEPS,
the hive-DFS per-run wall (a ``--batch``-wide lockstep batch's wall
divided by its width — the cost a served query actually pays), the
swarm engine's per-root wall over a ``--swarm-batch``-wide root batch,
and the backend the ``auto`` dispatch policy would pick for the graph.

Swarm measurement protocol: wall-clock noise on this host swings a
sequential baseline by +-20% between measurement blocks, which is fatal
to a 3x gate sitting near 3.3x.  The two flagship gate cases therefore
run an *interleaved best-of-R* protocol — each round times one
sequential ``run_frontier`` sweep over the batch roots, then one
``run_swarm`` batch over the same roots, and both sides keep their
minimum across rounds.  Alternating inside the same measurement window
means load spikes hit both engines symmetrically instead of landing on
whichever side happened to run during the spike.  Non-flagship cases
skip the (expensive) sequential sweep and report the single-root
frontier median as a proxy baseline.

``--gate`` asserts the crossover exists and the router sits on the
right side of both flagship cases:

* on at least one shallow-regime case the frontier engine is >=
  ``SPEEDUP_FLOOR`` (2x) faster than per-run hive-DFS, and ``auto``
  picks frontier there;
* on at least one deep-regime case DFS wins outright (speedup < 1),
  and ``auto`` picks DFS on the deepest win;
* on both swarm flagships (``starmesh6000``, ``layers2000x3``) the
  swarm engine's per-root wall beats the sequential frontier sweep by
  >= ``SWARM_SPEEDUP_FLOOR`` (3x, env-overridable);
* routing with the freshly fitted calibration table never picks a
  backend more than ``ROUTING_SLACK`` (1.2x) slower than the best
  backend measured on any anchor case, at batch hints of 1 and
  ``--swarm-batch``; with calibration disabled the decision falls back
  to the regime proxy.

Mid-sweep cases where the frontier engine leads despite a ``deep``
regime label are expected — the regime boundary is an asymptotic
proxy, while at simulation scale the measured crossover sits near the
path-graph end of the axis (see docs/PERFORMANCE.md).

``--record`` appends the run to ``benchmarks/out/trajectory.jsonl``
(kind ``crossover``) and fits the per-regime calibration table the
dispatch layer routes by, persisting it to
``benchmarks/calibration_routing.json``; the micro sweep's
``BENCH_engine.json`` snapshot is untouched.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import statistics
import sys
import time
from datetime import datetime, timezone
from typing import Dict, List, Optional

import numpy as np

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.config import DiggerBeesConfig  # noqa: E402
from repro.core.dispatch import (  # noqa: E402
    SWARM_MIN_BATCH,
    calibration_path,
    choose_backend,
)
from repro.core.frontier import run_frontier  # noqa: E402
from repro.core.hive import run_hive  # noqa: E402
from repro.core.swarm import run_swarm  # noqa: E402
from repro.graphs import generators as gen  # noqa: E402
from repro.utils.malloc import retain_large_blocks  # noqa: E402

#: Shallow-case frontier speedup the gate requires on >= 1 case.
SPEEDUP_FLOOR = 2.0

#: Per-root swarm-over-sequential-frontier floor on the flagship cases
#: (override with the SWARM_SPEEDUP_FLOOR environment variable).
SWARM_SPEEDUP_FLOOR = 3.0

#: Calibrated routing may pick a backend at most this much slower than
#: the best backend measured on an anchor case.
ROUTING_SLACK = 1.2

#: Cases that run the full interleaved swarm-vs-sequential protocol and
#: carry the SWARM_SPEEDUP_FLOOR gate.
SWARM_FLAGSHIPS = ("starmesh6000", "layers2000x3")

#: Decisive-winner cases the ROUTING_SLACK check anchors on (mid-sweep
#: cases sit too close to the crossover for a regime-median table to
#: bound per-case regret).
ROUTING_ANCHORS = ("starmesh6000", "layers2000x3", "path6000",
                   "skew6000")

TRAJECTORY_PATH = REPO_ROOT / "benchmarks" / "out" / "trajectory.jsonl"

#: Fixed vertex budget of the depth sweep (width x depth = N).
SWEEP_N = 6000

#: Depth axis: few huge levels -> hundreds of narrow ones.
SWEEP_DEPTHS = (3, 6, 12, 30, 75, 150, 300)

QUICK_DEPTHS = (3, 30, 300)


def build_corpus(quick: bool) -> List:
    """Depth-controlled sweep graphs plus the shallow/deep anchors."""
    graphs = []
    for depth in (QUICK_DEPTHS if quick else SWEEP_DEPTHS):
        width = SWEEP_N // depth
        graphs.append(gen.wide_layers(width, depth, seed=depth,
                                      name=f"layers{width}x{depth}"))
    graphs.append(gen.star_mesh(300, leaves_per_hub=19, seed=41,
                                name="starmesh6000"))
    graphs.append(gen.path_graph(SWEEP_N, name="path6000"))
    # skew -> 1 keeps nearly every vertex on one spine: thousands of
    # near-singleton BFS levels, the frontier engine's worst case.
    graphs.append(gen.skewed_tree(SWEEP_N, skew=0.999, seed=43,
                                  name="skew6000"))
    return graphs


def swarm_roots(graph, swarm_batch: int) -> np.ndarray:
    """Evenly spread root batch (the admission layer's coalesced shape)."""
    return np.linspace(0, graph.n_vertices - 1,
                       swarm_batch).astype(np.int64)


def measure_swarm_interleaved(graph, *, swarm_batch: int,
                              rounds: int) -> Dict:
    """Best-of-``rounds`` interleaved swarm vs sequential frontier.

    Each round times one sequential single-root sweep over the batch
    roots and one swarm batch over the same roots, back to back; both
    sides keep their minimum.  Interleaving samples both engines across
    the same load windows, so host noise cancels out of the ratio
    instead of landing on one side.
    """
    roots = swarm_roots(graph, swarm_batch)
    run_swarm(graph, roots)  # warm both engines + allocator
    run_frontier(graph, int(roots[0]))
    seq_best = swarm_best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        for r in roots:
            run_frontier(graph, int(r))
        seq_best = min(seq_best, time.perf_counter() - t0)
        t0 = time.perf_counter()
        run_swarm(graph, roots)
        swarm_best = min(swarm_best, time.perf_counter() - t0)
    return {
        "swarm_protocol": "interleaved",
        "swarm_rounds": rounds,
        "swarm_per_root_wall_seconds": swarm_best / swarm_batch,
        "frontier_seq_per_root_wall_seconds": seq_best / swarm_batch,
    }


def measure_swarm_proxy(graph, *, swarm_batch: int, rounds: int,
                        frontier_wall: float) -> Dict:
    """Swarm per-root wall with the single-root frontier median as the
    baseline (skips the sequential sweep, which on the deep anchors
    costs tens of seconds per round)."""
    roots = swarm_roots(graph, swarm_batch)
    run_swarm(graph, roots)
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        run_swarm(graph, roots)
        best = min(best, time.perf_counter() - t0)
    return {
        "swarm_protocol": "proxy-baseline",
        "swarm_rounds": rounds,
        "swarm_per_root_wall_seconds": best / swarm_batch,
        "frontier_seq_per_root_wall_seconds": frontier_wall,
    }


def measure_case(graph, *, repeats: int, batch: int, swarm_batch: int,
                 swarm_rounds: int, config: DiggerBeesConfig) -> Dict:
    """All three engine families on one graph."""
    f_walls, d_walls = [], []
    fres = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        fres = run_frontier(graph, 0)
        f_walls.append(time.perf_counter() - t0)
    tasks = [(0, config)] * batch
    for _ in range(repeats):
        t0 = time.perf_counter()
        run_hive(graph, tasks)
        d_walls.append((time.perf_counter() - t0) / batch)
    frontier_wall = statistics.median(f_walls)
    dfs_wall = statistics.median(d_walls)
    if graph.name in SWARM_FLAGSHIPS:
        swarm = measure_swarm_interleaved(graph, swarm_batch=swarm_batch,
                                          rounds=swarm_rounds)
    else:
        swarm = measure_swarm_proxy(graph, swarm_batch=swarm_batch,
                                    rounds=swarm_rounds,
                                    frontier_wall=frontier_wall)
    # calibration={} pins the decision to the regime proxy so the sweep
    # reads the same regardless of any artifact already on disk; the
    # gate exercises calibrated routing separately against the table
    # fitted from this very run.
    decision = choose_backend(graph, requested="auto", calibration={})
    auto_wall = (frontier_wall if decision.backend == "frontier"
                 else dfs_wall)
    seq_wall = swarm["frontier_seq_per_root_wall_seconds"]
    return {
        **swarm,
        "swarm_batch": swarm_batch,
        "speedup_swarm_over_frontier": (
            seq_wall / swarm["swarm_per_root_wall_seconds"]
            if swarm["swarm_per_root_wall_seconds"] > 0
            else float("inf")),
        "name": graph.name,
        "n_vertices": int(graph.n_vertices),
        "n_levels": int(fres.n_levels),
        "regime": decision.regime,
        "frontier_wall_seconds": frontier_wall,
        "frontier_mteps": (fres.edges_scanned / frontier_wall / 1e6
                           if frontier_wall > 0 else 0.0),
        "pushes": int(fres.pushes),
        "pulls": int(fres.pulls),
        "dfs_wall_seconds": dfs_wall,
        "batch": batch,
        # > 1 means the frontier engine is faster on this graph.
        "speedup_frontier_over_dfs": (dfs_wall / frontier_wall
                                      if frontier_wall > 0
                                      else float("inf")),
        "auto_backend": decision.backend,
        "auto_wall_seconds": auto_wall,
    }


def run_sweep(*, quick: bool, repeats: int, batch: int,
              swarm_batch: int, swarm_rounds: int) -> Dict:
    config = DiggerBeesConfig(n_blocks=8, warps_per_block=4, seed=9)
    cases = [measure_case(g, repeats=repeats, batch=batch,
                          swarm_batch=swarm_batch,
                          swarm_rounds=swarm_rounds, config=config)
             for g in build_corpus(quick)]
    return {
        "bench": "crossover",
        "quick": quick,
        "repeats": repeats,
        "batch": batch,
        "swarm_batch": swarm_batch,
        "swarm_rounds": swarm_rounds,
        "sweep_n": SWEEP_N,
        "cases": cases,
    }


def fit_calibration(result: Dict) -> Dict:
    """Per-regime median wall per backend, in the dispatch table schema.

    ``frontier`` is the single-root engine's median wall, ``dfs`` the
    per-run wall of a lockstep hive batch, ``swarm`` the per-root wall
    of a ``swarm_batch``-wide root batch — all directly comparable
    per-query costs.  The dispatch layer picks the cheapest eligible
    entry for a query's regime (:func:`repro.core.dispatch.choose_backend`).
    """
    per_regime: Dict[str, Dict[str, List[float]]] = {}
    for c in result["cases"]:
        walls = per_regime.setdefault(c["regime"], {})
        walls.setdefault("frontier", []).append(
            c["frontier_wall_seconds"])
        walls.setdefault("dfs", []).append(c["dfs_wall_seconds"])
        walls.setdefault("swarm", []).append(
            c["swarm_per_root_wall_seconds"])
    return {
        "version": 1,
        "fitted_at": datetime.now(timezone.utc).isoformat(
            timespec="seconds"),
        "swarm_batch": result["swarm_batch"],
        "regimes": {
            regime: {backend: statistics.median(vals)
                     for backend, vals in walls.items()}
            for regime, walls in per_regime.items()
        },
    }


def write_calibration(table: Dict) -> pathlib.Path:
    path = calibration_path()
    path.write_text(json.dumps(table, indent=2, sort_keys=True) + "\n")
    return path


def apply_gate(result: Dict) -> int:
    """Assert the crossover exists and auto routes both sides of it."""
    cases = result["cases"]
    shallow = [c for c in cases if c["regime"] == "shallow"]
    deep = [c for c in cases if c["regime"] == "deep"]
    failures: List[str] = []
    if not shallow or not deep:
        failures.append(
            f"corpus degenerated: {len(shallow)} shallow / {len(deep)} "
            f"deep cases (need both regimes to bracket a crossover)")
    best_shallow = max(shallow,
                       key=lambda c: c["speedup_frontier_over_dfs"],
                       default=None)
    if best_shallow is not None:
        if best_shallow["speedup_frontier_over_dfs"] < SPEEDUP_FLOOR:
            failures.append(
                f"no shallow case reaches the {SPEEDUP_FLOOR:.0f}x "
                f"frontier speedup floor (best: "
                f"{best_shallow['name']} at "
                f"{best_shallow['speedup_frontier_over_dfs']:.2f}x)")
        elif best_shallow["auto_backend"] != "frontier":
            failures.append(
                f"auto routed {best_shallow['name']} to "
                f"{best_shallow['auto_backend']} but the frontier engine "
                f"measured {best_shallow['speedup_frontier_over_dfs']:.2f}x "
                f"faster there")
    best_deep = min(deep, key=lambda c: c["speedup_frontier_over_dfs"],
                    default=None)
    if best_deep is not None:
        if best_deep["speedup_frontier_over_dfs"] >= 1.0:
            failures.append(
                f"DFS wins no deep case (closest: {best_deep['name']}, "
                f"frontier still "
                f"{best_deep['speedup_frontier_over_dfs']:.2f}x ahead) — "
                f"no crossover to route around")
        elif best_deep["auto_backend"] != "dfs":
            failures.append(
                f"auto routed {best_deep['name']} to "
                f"{best_deep['auto_backend']} but DFS measured "
                f"{1.0 / best_deep['speedup_frontier_over_dfs']:.2f}x "
                f"faster there")
    failures.extend(_gate_swarm_floor(cases))
    failures.extend(_gate_calibrated_routing(result))
    if failures:
        for f in failures:
            print(f"CROSSOVER GATE FAIL: {f}", file=sys.stderr)
        return 1
    floor = _swarm_floor()
    flagship = {c["name"]: c for c in cases}
    swarm_bits = ", ".join(
        f"{name} {flagship[name]['speedup_swarm_over_frontier']:.1f}x"
        for name in SWARM_FLAGSHIPS if name in flagship)
    print(f"gate: ok — frontier wins shallow "
          f"({best_shallow['name']} "
          f"{best_shallow['speedup_frontier_over_dfs']:.1f}x), DFS wins "
          f"deep ({best_deep['name']} "
          f"{1.0 / best_deep['speedup_frontier_over_dfs']:.1f}x), auto "
          f"on the winner both times; swarm >= {floor:.1f}x per root "
          f"({swarm_bits}); calibrated routing within "
          f"{ROUTING_SLACK:.1f}x of best on all anchors")
    return 0


def _swarm_floor() -> float:
    return float(os.environ.get("SWARM_SPEEDUP_FLOOR",
                                SWARM_SPEEDUP_FLOOR))


def _gate_swarm_floor(cases: List[Dict]) -> List[str]:
    """Both flagships must clear the per-root swarm speedup floor."""
    floor = _swarm_floor()
    failures = []
    by_name = {c["name"]: c for c in cases}
    for name in SWARM_FLAGSHIPS:
        case = by_name.get(name)
        if case is None:
            failures.append(f"swarm flagship {name} missing from corpus")
            continue
        got = case["speedup_swarm_over_frontier"]
        if got < floor:
            failures.append(
                f"swarm on {name}: {got:.2f}x per root vs sequential "
                f"frontier, below the {floor:.1f}x floor "
                f"(swarm {case['swarm_per_root_wall_seconds']*1e6:.0f}us"
                f"/root, frontier "
                f"{case['frontier_seq_per_root_wall_seconds']*1e6:.0f}us"
                f"/root over {case['swarm_rounds']} interleaved rounds)")
    return failures


def _gate_calibrated_routing(result: Dict) -> List[str]:
    """Calibrated picks stay within ROUTING_SLACK of the measured best
    on every anchor case, at single-query and swarm-batch hints; with
    calibration disabled the decision falls back to the regime proxy."""
    table = fit_calibration(result)
    swarm_batch = result["swarm_batch"]
    failures = []
    by_name = {c["name"]: c for c in result["cases"]}
    for name in ROUTING_ANCHORS:
        case = by_name.get(name)
        if case is None:
            continue
        walls = {
            "frontier": case["frontier_wall_seconds"],
            "dfs": case["dfs_wall_seconds"],
            "swarm": case["swarm_per_root_wall_seconds"],
        }
        for hint in (1, swarm_batch):
            eligible = {b: w for b, w in walls.items()
                        if b != "swarm" or hint >= SWARM_MIN_BATCH}
            best_backend = min(eligible, key=eligible.get)
            decision = choose_backend(regime=case["regime"],
                                      batch_hint=hint,
                                      calibration=table)
            if decision.reason != "calibrated":
                failures.append(
                    f"routing {name} (hint={hint}): expected a "
                    f"calibrated decision, got reason "
                    f"{decision.reason!r}")
                continue
            picked = eligible.get(decision.backend)
            if picked is None:
                failures.append(
                    f"routing {name} (hint={hint}): calibrated pick "
                    f"{decision.backend!r} is not eligible at this "
                    f"batch hint")
            elif picked > ROUTING_SLACK * eligible[best_backend]:
                failures.append(
                    f"routing {name} (hint={hint}): calibrated pick "
                    f"{decision.backend} measured {picked*1e3:.2f}ms "
                    f"vs best {best_backend} "
                    f"{eligible[best_backend]*1e3:.2f}ms — "
                    f"{picked/eligible[best_backend]:.2f}x, over the "
                    f"{ROUTING_SLACK:.1f}x slack")
    # No artifact -> the regime proxy must still answer.
    fallback = choose_backend(regime="shallow", batch_hint=swarm_batch,
                              calibration={})
    if fallback.reason != "regime" or fallback.backend != "swarm":
        failures.append(
            f"regime-proxy fallback broken: expected swarm/regime for "
            f"a shallow batch, got {fallback.backend}/{fallback.reason}")
    return failures


def record_run(result: Dict) -> None:
    TRAJECTORY_PATH.parent.mkdir(parents=True, exist_ok=True)
    entry = dict(result)
    entry["timestamp"] = datetime.now(timezone.utc).isoformat(
        timespec="seconds")
    with TRAJECTORY_PATH.open("a", encoding="utf-8") as f:
        f.write(json.dumps(entry) + "\n")
    print(f"recorded -> {TRAJECTORY_PATH}")
    path = write_calibration(fit_calibration(result))
    print(f"calibration -> {path}")


def render(result: Dict) -> str:
    lines = [f"{'case':<16s} {'n':>6s} {'levels':>6s} {'regime':<8s} "
             f"{'frontier':>10s} {'dfs/run':>10s} {'speedup':>8s} "
             f"{'swarm/root':>11s} {'sw-spdup':>9s} {'auto':>8s}"]
    for c in result["cases"]:
        flag = "*" if c["swarm_protocol"] == "interleaved" else " "
        lines.append(
            f"{c['name']:<16s} {c['n_vertices']:>6d} {c['n_levels']:>6d} "
            f"{c['regime']:<8s} {c['frontier_wall_seconds']*1e3:>8.2f}ms "
            f"{c['dfs_wall_seconds']*1e3:>8.2f}ms "
            f"{c['speedup_frontier_over_dfs']:>7.2f}x "
            f"{c['swarm_per_root_wall_seconds']*1e3:>9.3f}ms "
            f"{c['speedup_swarm_over_frontier']:>7.2f}x{flag} "
            f"{c['auto_backend']:>8s}")
    lines.append("(* = interleaved sequential baseline; others compare "
                 "against the single-root median)")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="BFS-vs-DFS crossover sweep over a depth-controlled "
                    "corpus")
    parser.add_argument("--quick", action="store_true",
                        help="3-point depth axis, single repeat")
    parser.add_argument("--repeats", type=int, default=3,
                        help="per-case repeats; the median wall is kept")
    parser.add_argument("--batch", type=int, default=32,
                        help="hive lockstep width; DFS cost is per run "
                             "(wide batches amortize the lockstep "
                             "sweep, the daemon's steady-state shape)")
    parser.add_argument("--swarm-batch", type=int, default=256,
                        help="root-batch width for the swarm tier")
    parser.add_argument("--swarm-rounds", type=int, default=5,
                        help="interleaved best-of rounds for the swarm "
                             "protocol (quick mode drops to 3)")
    parser.add_argument("--gate", action="store_true",
                        help="fail unless frontier wins shallow >= "
                             f"{SPEEDUP_FLOOR:.0f}x, DFS wins deep, "
                             "auto picks the winner on both, swarm "
                             f"clears {SWARM_SPEEDUP_FLOOR:.0f}x per "
                             "root on the flagships, and calibrated "
                             "routing stays within "
                             f"{ROUTING_SLACK:.1f}x of best")
    parser.add_argument("--record", action="store_true",
                        help="append to benchmarks/out/trajectory.jsonl "
                             "and refit benchmarks/"
                             "calibration_routing.json")
    parser.add_argument("--json", default=None,
                        help="write the full result payload to this file")
    args = parser.parse_args(argv)

    # Batch engines re-fault tens of MB of transient state per call
    # under the default allocator policy; retain the arena so the sweep
    # measures the engines, not the kernel's page zeroing.
    retain_large_blocks()

    repeats = 1 if args.quick else max(1, args.repeats)
    swarm_rounds = (min(args.swarm_rounds, 3) if args.quick
                    else max(1, args.swarm_rounds))
    result = run_sweep(quick=args.quick, repeats=repeats,
                       batch=args.batch, swarm_batch=args.swarm_batch,
                       swarm_rounds=swarm_rounds)
    print(render(result))
    if args.json:
        pathlib.Path(args.json).write_text(
            json.dumps(result, indent=2, sort_keys=True) + "\n")
    if args.record:
        record_run(result)
    if args.gate:
        return apply_gate(result)
    return 0


if __name__ == "__main__":
    sys.exit(main())
