"""BFS-vs-DFS crossover sweep: where each engine family wins, by depth.

The frontier engine (:mod:`repro.core.frontier`) advances whole BFS
levels with bit-packed vectors — its cost scales with the number of
levels, not the number of vertices, so shallow-wide graphs are its
winning shape.  The DFS simulation tiers amortize differently: the hive
engine's lockstep batching makes per-run cost nearly independent of
shape.  This sweep measures both families across a depth-controlled
corpus and records where the crossover sits::

    python benchmarks/bench_crossover.py --quick
    python benchmarks/bench_crossover.py --gate --record

The depth axis holds the vertex budget fixed (``wide_layers`` with
``width x depth = N``) and swings depth from a handful of huge levels to
hundreds of narrow ones, bracketed by a shallow hub-mesh anchor
(``star_mesh``) and two deep anchors (``path_graph``, ``skewed_tree``).
Per case the sweep records the frontier engine's median wall and MTEPS,
the hive-DFS per-run wall (a ``--batch``-wide lockstep batch's wall
divided by its width — the cost a served query actually pays), and the
backend the ``auto`` dispatch policy would pick for the graph.

``--gate`` asserts the crossover exists and the router sits on the
right side of both flagship cases:

* on at least one shallow-regime case the frontier engine is >=
  ``SPEEDUP_FLOOR`` (2x) faster than per-run hive-DFS, and ``auto``
  picks frontier there;
* on at least one deep-regime case DFS wins outright (speedup < 1),
  and ``auto`` picks DFS on the deepest win.

Mid-sweep cases where the frontier engine leads despite a ``deep``
regime label are expected — the regime boundary is an asymptotic
proxy, while at simulation scale the measured crossover sits near the
path-graph end of the axis (see docs/PERFORMANCE.md).

``--record`` appends the run to ``benchmarks/out/trajectory.jsonl``
(kind ``crossover``); the micro sweep's ``BENCH_engine.json`` snapshot
is untouched.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import statistics
import sys
import time
from datetime import datetime, timezone
from typing import Dict, List, Optional

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.config import DiggerBeesConfig  # noqa: E402
from repro.core.dispatch import choose_backend  # noqa: E402
from repro.core.frontier import run_frontier  # noqa: E402
from repro.core.hive import run_hive  # noqa: E402
from repro.graphs import generators as gen  # noqa: E402

#: Shallow-case frontier speedup the gate requires on >= 1 case.
SPEEDUP_FLOOR = 2.0

TRAJECTORY_PATH = REPO_ROOT / "benchmarks" / "out" / "trajectory.jsonl"

#: Fixed vertex budget of the depth sweep (width x depth = N).
SWEEP_N = 6000

#: Depth axis: few huge levels -> hundreds of narrow ones.
SWEEP_DEPTHS = (3, 6, 12, 30, 75, 150, 300)

QUICK_DEPTHS = (3, 30, 300)


def build_corpus(quick: bool) -> List:
    """Depth-controlled sweep graphs plus the shallow/deep anchors."""
    graphs = []
    for depth in (QUICK_DEPTHS if quick else SWEEP_DEPTHS):
        width = SWEEP_N // depth
        graphs.append(gen.wide_layers(width, depth, seed=depth,
                                      name=f"layers{width}x{depth}"))
    graphs.append(gen.star_mesh(300, leaves_per_hub=19, seed=41,
                                name="starmesh6000"))
    graphs.append(gen.path_graph(SWEEP_N, name="path6000"))
    # skew -> 1 keeps nearly every vertex on one spine: thousands of
    # near-singleton BFS levels, the frontier engine's worst case.
    graphs.append(gen.skewed_tree(SWEEP_N, skew=0.999, seed=43,
                                  name="skew6000"))
    return graphs


def measure_case(graph, *, repeats: int, batch: int,
                 config: DiggerBeesConfig) -> Dict:
    """Both engine families on one graph; medians over ``repeats``."""
    f_walls, d_walls = [], []
    fres = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        fres = run_frontier(graph, 0)
        f_walls.append(time.perf_counter() - t0)
    tasks = [(0, config)] * batch
    for _ in range(repeats):
        t0 = time.perf_counter()
        run_hive(graph, tasks)
        d_walls.append((time.perf_counter() - t0) / batch)
    frontier_wall = statistics.median(f_walls)
    dfs_wall = statistics.median(d_walls)
    decision = choose_backend(graph, requested="auto")
    auto_wall = (frontier_wall if decision.backend == "frontier"
                 else dfs_wall)
    return {
        "name": graph.name,
        "n_vertices": int(graph.n_vertices),
        "n_levels": int(fres.n_levels),
        "regime": decision.regime,
        "frontier_wall_seconds": frontier_wall,
        "frontier_mteps": (fres.edges_scanned / frontier_wall / 1e6
                           if frontier_wall > 0 else 0.0),
        "pushes": int(fres.pushes),
        "pulls": int(fres.pulls),
        "dfs_wall_seconds": dfs_wall,
        "batch": batch,
        # > 1 means the frontier engine is faster on this graph.
        "speedup_frontier_over_dfs": (dfs_wall / frontier_wall
                                      if frontier_wall > 0
                                      else float("inf")),
        "auto_backend": decision.backend,
        "auto_wall_seconds": auto_wall,
    }


def run_sweep(*, quick: bool, repeats: int, batch: int) -> Dict:
    config = DiggerBeesConfig(n_blocks=8, warps_per_block=4, seed=9)
    cases = [measure_case(g, repeats=repeats, batch=batch, config=config)
             for g in build_corpus(quick)]
    return {
        "bench": "crossover",
        "quick": quick,
        "repeats": repeats,
        "batch": batch,
        "sweep_n": SWEEP_N,
        "cases": cases,
    }


def apply_gate(result: Dict) -> int:
    """Assert the crossover exists and auto routes both sides of it."""
    cases = result["cases"]
    shallow = [c for c in cases if c["regime"] == "shallow"]
    deep = [c for c in cases if c["regime"] == "deep"]
    failures: List[str] = []
    if not shallow or not deep:
        failures.append(
            f"corpus degenerated: {len(shallow)} shallow / {len(deep)} "
            f"deep cases (need both regimes to bracket a crossover)")
    best_shallow = max(shallow,
                       key=lambda c: c["speedup_frontier_over_dfs"],
                       default=None)
    if best_shallow is not None:
        if best_shallow["speedup_frontier_over_dfs"] < SPEEDUP_FLOOR:
            failures.append(
                f"no shallow case reaches the {SPEEDUP_FLOOR:.0f}x "
                f"frontier speedup floor (best: "
                f"{best_shallow['name']} at "
                f"{best_shallow['speedup_frontier_over_dfs']:.2f}x)")
        elif best_shallow["auto_backend"] != "frontier":
            failures.append(
                f"auto routed {best_shallow['name']} to "
                f"{best_shallow['auto_backend']} but the frontier engine "
                f"measured {best_shallow['speedup_frontier_over_dfs']:.2f}x "
                f"faster there")
    best_deep = min(deep, key=lambda c: c["speedup_frontier_over_dfs"],
                    default=None)
    if best_deep is not None:
        if best_deep["speedup_frontier_over_dfs"] >= 1.0:
            failures.append(
                f"DFS wins no deep case (closest: {best_deep['name']}, "
                f"frontier still "
                f"{best_deep['speedup_frontier_over_dfs']:.2f}x ahead) — "
                f"no crossover to route around")
        elif best_deep["auto_backend"] != "dfs":
            failures.append(
                f"auto routed {best_deep['name']} to "
                f"{best_deep['auto_backend']} but DFS measured "
                f"{1.0 / best_deep['speedup_frontier_over_dfs']:.2f}x "
                f"faster there")
    if failures:
        for f in failures:
            print(f"CROSSOVER GATE FAIL: {f}", file=sys.stderr)
        return 1
    print(f"gate: ok — frontier wins shallow "
          f"({best_shallow['name']} "
          f"{best_shallow['speedup_frontier_over_dfs']:.1f}x), DFS wins "
          f"deep ({best_deep['name']} "
          f"{1.0 / best_deep['speedup_frontier_over_dfs']:.1f}x), auto "
          f"on the winner both times")
    return 0


def record_run(result: Dict) -> None:
    TRAJECTORY_PATH.parent.mkdir(parents=True, exist_ok=True)
    entry = dict(result)
    entry["timestamp"] = datetime.now(timezone.utc).isoformat(
        timespec="seconds")
    with TRAJECTORY_PATH.open("a", encoding="utf-8") as f:
        f.write(json.dumps(entry) + "\n")
    print(f"recorded -> {TRAJECTORY_PATH}")


def render(result: Dict) -> str:
    lines = [f"{'case':<16s} {'n':>6s} {'levels':>6s} {'regime':<8s} "
             f"{'frontier':>10s} {'dfs/run':>10s} {'speedup':>8s} "
             f"{'auto':>8s}"]
    for c in result["cases"]:
        lines.append(
            f"{c['name']:<16s} {c['n_vertices']:>6d} {c['n_levels']:>6d} "
            f"{c['regime']:<8s} {c['frontier_wall_seconds']*1e3:>8.2f}ms "
            f"{c['dfs_wall_seconds']*1e3:>8.2f}ms "
            f"{c['speedup_frontier_over_dfs']:>7.2f}x "
            f"{c['auto_backend']:>8s}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="BFS-vs-DFS crossover sweep over a depth-controlled "
                    "corpus")
    parser.add_argument("--quick", action="store_true",
                        help="3-point depth axis, single repeat")
    parser.add_argument("--repeats", type=int, default=3,
                        help="per-case repeats; the median wall is kept")
    parser.add_argument("--batch", type=int, default=32,
                        help="hive lockstep width; DFS cost is per run "
                             "(wide batches amortize the lockstep "
                             "sweep, the daemon's steady-state shape)")
    parser.add_argument("--gate", action="store_true",
                        help="fail unless frontier wins shallow >= "
                             f"{SPEEDUP_FLOOR:.0f}x, DFS wins deep, and "
                             "auto picks the winner on both")
    parser.add_argument("--record", action="store_true",
                        help="append to benchmarks/out/trajectory.jsonl")
    parser.add_argument("--json", default=None,
                        help="write the full result payload to this file")
    args = parser.parse_args(argv)

    repeats = 1 if args.quick else max(1, args.repeats)
    result = run_sweep(quick=args.quick, repeats=repeats, batch=args.batch)
    print(render(result))
    if args.json:
        pathlib.Path(args.json).write_text(
            json.dumps(result, indent=2, sort_keys=True) + "\n")
    if args.record:
        record_run(result)
    if args.gate:
        return apply_gate(result)
    return 0


if __name__ == "__main__":
    sys.exit(main())
