"""Figure 8 — performance breakdown of DiggerBees v1 -> v4 on six graphs.

Paper shape:
* v2 > v1 on every graph (~45% average: the two-level stack removes the
  global-memory latency from every push/pop);
* v3 >> v2 on large graphs (inter-block stealing activates the rest of
  the GPU; paper up to 37x, scale-limited here);
* v4 >= v3 with large graphs gaining and small graphs nearly flat
  (paper: 'amazon'/'google' gain only 2-12%).
"""

from repro.bench import experiments as E
from repro.utils.stats import geometric_mean


def test_fig8_breakdown(benchmark, bench_cfg, archive, quick):
    scale = 1 if quick else 2
    result = benchmark.pedantic(lambda: E.fig8(bench_cfg, scale=scale),
                                rounds=1, iterations=1)
    archive("fig8_breakdown", result.render())

    rows = {r["graph"]: r for r in result.rows}
    geo = result.step_geomeans()

    # v2/v1: the two-level stack helps everywhere (paper ~1.45x geomean).
    for name, r in rows.items():
        assert r["v2/v1"] > 1.05, f"two-level stack did not help on {name}"
    assert 1.1 < geo["v2/v1"] < 2.5

    # v3/v2: inter-block stealing gives the dominant jump on big deep
    # graphs (paper 25.9x on euro_osm; scale-limited here but clear).
    assert rows["euro_osm"]["v3/v2"] > 1.8
    assert geo["v3/v2"] > 1.2

    # v4/v3: more blocks never hurt much; small graphs stay ~flat.
    for name, r in rows.items():
        assert r["v4/v3"] > 0.85, f"v4 regressed badly on {name}"
    assert rows["euro_osm"]["v4/v3"] >= rows["amazon"]["v4/v3"] - 0.15
