"""Micro-benchmarks of the substrate itself (not a paper figure).

These time the host-side costs of the simulator: two-level stack
operations, one full DiggerBees simulation step loop, graph generation,
and the reference serial DFS.  Useful for tracking simulator performance
regressions across commits.

``test_micro_engine_sweep_json`` additionally runs the fixed engine
micro-sweep from :mod:`repro.bench.micro` and refreshes the
machine-readable ``BENCH_engine.json`` at the repo root — the same
payload that ``python -m repro.bench micro`` emits and that the
``perf_smoke`` gate compares against ``benchmarks/baseline_micro.json``.
"""

import json
import pathlib

import numpy as np
import pytest

from repro.bench import micro
from repro.core import DiggerBeesConfig, run_diggerbees
from repro.core.twolevel_stack import HotRing, WarpStack
from repro.graphs import generators as gen
from repro.validate.reference import serial_dfs

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


def test_micro_hotring_push_pop(benchmark):
    ring = HotRing(128)

    def cycle():
        for i in range(100):
            ring.push(i, i)
        for _ in range(100):
            ring.pop()

    benchmark(cycle)
    assert ring.is_empty


def test_micro_flush_refill(benchmark):
    stack = WarpStack(hot_size=128, flush_batch=32, refill_batch=32)

    def cycle():
        for i in range(120):
            if stack.needs_flush():
                stack.flush()
            stack.hot.push(i, i)
        while len(stack):
            if stack.hot.is_empty and stack.can_refill():
                stack.refill()
            stack.hot.pop()

    benchmark(cycle)
    assert stack.is_empty


def test_micro_serial_dfs(benchmark):
    g = gen.road_network(2000, seed=1)
    result = benchmark(lambda: serial_dfs(g, 0))
    assert result.n_visited == g.n_vertices


def test_micro_diggerbees_simulation(benchmark):
    g = gen.road_network(1000, seed=1)
    cfg = DiggerBeesConfig(n_blocks=4, warps_per_block=4, seed=1)
    result = benchmark.pedantic(
        lambda: run_diggerbees(g, 0, config=cfg), rounds=2, iterations=1)
    assert result.n_visited == g.n_vertices


def test_micro_graph_generation(benchmark):
    g = benchmark(lambda: gen.preferential_attachment(2000, m=5, seed=1))
    assert g.n_vertices == 2000


@pytest.mark.perf_smoke
def test_micro_engine_sweep_json():
    """Refresh BENCH_engine.json and gate against the recorded baseline."""
    result = micro.run_micro(repeats=3)
    out = REPO_ROOT / "BENCH_engine.json"
    out.write_text(json.dumps(result, indent=1) + "\n")

    baseline_path = micro.default_baseline_path()
    if not baseline_path.exists():
        pytest.skip(f"no recorded baseline at {baseline_path}")
    baseline = json.loads(baseline_path.read_text())
    problems = micro.check_against_baseline(result, baseline)
    assert not problems, "; ".join(problems)
