"""Open-loop load test for the traversal service (``repro.serve``).

Drives a daemon at a configured arrival rate and reports what the
service actually sustained::

    # self-contained: spawns an in-process daemon over the micro corpus
    python benchmarks/bench_serve.py --self --qps 1200 --seconds 10

    # against an already-running daemon
    python benchmarks/bench_serve.py --socket /tmp/repro-serve.sock \\
        --qps 300 --seconds 30 --verify --gate --record

The driver is **open-loop**: request *i* is launched at its intended
time ``t0 + i/qps`` regardless of how many responses are outstanding,
and every latency is measured from the *intended* start — so a daemon
that stalls accumulates the backlog in its latency tail instead of
silently slowing the arrival rate (no coordinated omission).

The query mix is a seeded random walk over (graph, root) pairs from the
corpus — ``--roots-per-graph`` distinct roots per graph, each run with
that graph's micro-sweep engine config — so the steady state exercises
the result-cache hit path while the first touch of every pair pays a
real simulation.  Warmup-window responses are excluded from the stats.

``--verify`` replays every distinct (graph, root) pair twice after the
load phase — once bypassing the cache, once through it — and compares
both served payloads against direct in-process execution; any drift is
a hard failure (the load test must never trade correctness for rate).
Verification is backend-aware: it reads the daemon's ``backend`` knob
from ``status`` and resolves each query through the same
:func:`repro.core.dispatch.choose_backend` policy, so the direct
payload is computed by whichever engine family actually served it.
``--backend {auto,dfs,frontier}`` sets that knob on ``--self`` daemons.
``--record`` appends the run to ``benchmarks/out/trajectory.jsonl``
(kind ``serve``); ``--gate`` compares against
``benchmarks/baseline_serve.json`` and fails on a p99 regression
beyond ``GATE_FACTOR`` or on falling short of the requested rate;
``--record-baseline`` (re)writes that baseline from this run.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import pathlib
import sys
import tempfile
from dataclasses import asdict
from datetime import datetime, timezone
from typing import Dict, List, Optional, Tuple

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.errors import ReproError  # noqa: E402

#: p99 regression factor over the recorded baseline at which --gate fails.
GATE_FACTOR = 2.0

#: Fraction of the requested rate the run must sustain under --gate.
MIN_RATE_FRACTION = 0.90

BASELINE_PATH = REPO_ROOT / "benchmarks" / "baseline_serve.json"
TRAJECTORY_PATH = REPO_ROOT / "benchmarks" / "out" / "trajectory.jsonl"


# ---------------------------------------------------------------------------
# Query mix.
# ---------------------------------------------------------------------------

def build_mix(corpus_names: List[str], configs: Dict[str, dict],
              n_queries: int, roots_per_graph: int,
              graph_sizes: Dict[str, int], seed: int,
              ) -> List[Tuple[str, int, dict]]:
    """Seeded open-loop query sequence: ``[(graph, root, config), ...]``."""
    rng = np.random.RandomState(seed)
    pools = {
        name: rng.choice(graph_sizes[name],
                         size=min(roots_per_graph, graph_sizes[name]),
                         replace=False)
        for name in corpus_names
    }
    mix = []
    for _ in range(n_queries):
        name = corpus_names[rng.randint(len(corpus_names))]
        root = int(pools[name][rng.randint(len(pools[name]))])
        mix.append((name, root, configs[name]))
    return mix


def micro_configs() -> Dict[str, dict]:
    """Per-graph engine configs from the micro sweep (canonical dicts)."""
    from repro.bench.micro import MICRO_CASES

    return {name: asdict(cfg) for name, _, cfg in MICRO_CASES}


# ---------------------------------------------------------------------------
# Load phase.
# ---------------------------------------------------------------------------

async def prewarm(client, mix) -> float:
    """Closed-loop pass over every distinct query to fill the cache.

    The mix's distinct (graph, root, config) simulations are GIL-bound
    Python; paying them *inside* an open-loop phase would measure the
    backlog they cause, not the service's steady-state behavior.  The
    prewarm is untimed (its duration is merely reported) so the load
    phase measures the serving path the daemon was built for: mostly
    cache hits, occasional coalesced misses.
    """
    loop = asyncio.get_running_loop()
    distinct = sorted({(name, root, json.dumps(cfg, sort_keys=True))
                       for name, root, cfg in mix})
    t0 = loop.time()
    for chunk_start in range(0, len(distinct), 8):
        chunk = distinct[chunk_start:chunk_start + 8]
        await asyncio.gather(*[
            client.dfs(name, root, config=json.loads(cfg_json))
            for name, root, cfg_json in chunk])
    dt = loop.time() - t0
    print(f"prewarm: {len(distinct)} distinct queries in {dt:.1f}s")
    return dt


async def run_load(clients, mix, qps: float, warmup: float,
                   ) -> Dict[str, object]:
    """Fire the mix open-loop; returns raw per-request samples + stats."""
    loop = asyncio.get_running_loop()
    samples: List[Tuple[float, float, bool, bool]] = []
    # (intended_start, latency_s, cached, ok); latency from intended start.

    async def one(idx: int, intended: float) -> None:
        name, root, config = mix[idx]
        client = clients[idx % len(clients)]
        ok = True
        cached = False
        try:
            resp = await client.dfs(name, root, config=config)
            cached = resp.cached
        except ReproError:
            ok = False
        samples.append((intended, loop.time() - intended, cached, ok))

    t0 = loop.time()
    tasks = []
    for i in range(len(mix)):
        intended = t0 + i / qps
        now = loop.time()
        if intended > now:
            await asyncio.sleep(intended - now)
        tasks.append(asyncio.ensure_future(one(i, intended)))
    await asyncio.gather(*tasks)
    t_end = loop.time()

    cut = t0 + warmup
    measured = [s for s in samples if s[0] >= cut]
    lat_ms = sorted(s[1] * 1000.0 for s in measured)
    n = len(lat_ms)
    span = max(t_end - cut, 1e-9)

    def pct(p: float) -> float:
        if not n:
            return 0.0
        return lat_ms[min(n - 1, int(round(p / 100.0 * (n - 1))))]

    return {
        "requests": len(mix),
        "measured": n,
        "warmup_excluded": len(samples) - n,
        "errors": sum(1 for s in measured if not s[3]),
        "cache_hit_rate": (sum(1 for s in measured if s[2]) / n
                           if n else 0.0),
        "throughput_qps": n / span,
        "p50_ms": pct(50), "p90_ms": pct(90), "p99_ms": pct(99),
        "max_ms": lat_ms[-1] if n else 0.0,
        "histogram_ms": _histogram(lat_ms),
    }


def _histogram(lat_ms: List[float]) -> Dict[str, int]:
    """Latency counts in power-of-two millisecond buckets."""
    edges = [0.25, 0.5, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024]
    buckets = {f"<{e}ms": 0 for e in edges}
    buckets[f">={edges[-1]}ms"] = 0
    for v in lat_ms:
        for e in edges:
            if v < e:
                buckets[f"<{e}ms"] += 1
                break
        else:
            buckets[f">={edges[-1]}ms"] += 1
    return {k: v for k, v in buckets.items() if v}


# ---------------------------------------------------------------------------
# Verification phase.
# ---------------------------------------------------------------------------

async def verify_mix(client, mix, graphs, backend_knob: str = "dfs",
                     batch_hint: int = 1) -> int:
    """Compare served payloads to direct execution; returns #mismatches.

    Every distinct (graph, root, config) is checked twice: once with
    ``no_cache`` (forcing a fresh daemon-side computation) and once
    through the cache — both must equal the payload computed directly
    in this process.  ``backend_knob`` / ``batch_hint`` are the
    daemon's configured backend and admission width; the expected
    payload is resolved through the same routing policy, so the check
    is bit-exact whichever engine family answered (swarm lanes are
    bit-identical to single-root frontier runs, so a one-lane direct
    swarm reproduces any daemon-side batch width).
    """
    from repro.core.dispatch import choose_backend
    from repro.serve.exec import execute_query

    distinct = sorted({(name, root, json.dumps(cfg, sort_keys=True))
                       for name, root, cfg in mix})
    bad = 0
    for name, root, cfg_json in distinct:
        config = json.loads(cfg_json)
        decision = choose_backend(graphs[name], requested=backend_knob,
                                  overrides=config,
                                  batch_hint=batch_hint)
        expected = execute_query(graphs[name], "dfs", root, config,
                                 backend=decision.backend)
        for no_cache in (True, False):
            resp = await client.dfs(name, root, config=config,
                                    no_cache=no_cache)
            if resp.result != expected:
                bad += 1
                path = "no-cache" if no_cache else "cached"
                print(f"VERIFY FAIL {name} root={root} ({path}): "
                      f"served payload != direct execution",
                      file=sys.stderr)
    print(f"verify: {len(distinct)} distinct queries x 2 paths, "
          f"{bad} mismatches")
    return bad


# ---------------------------------------------------------------------------
# Gate / record.
# ---------------------------------------------------------------------------

def apply_gate(result: Dict, qps: float) -> int:
    if not BASELINE_PATH.exists():
        print(f"gate: no baseline at {BASELINE_PATH}; "
              f"run with --record-baseline first", file=sys.stderr)
        return 1
    baseline = json.loads(BASELINE_PATH.read_text())
    base_qps = baseline.get("qps", 0.0)
    if not base_qps or abs(base_qps - qps) / base_qps > 0.10:
        # p99 grows with arrival rate; comparing across rates would
        # gate on the offered load, not on a service regression.
        print(f"gate: baseline was recorded at {base_qps:g} q/s, this "
              f"run offered {qps:g} q/s — rerun at the baseline rate "
              f"(or --record-baseline at this one)", file=sys.stderr)
        return 1
    failures = []
    limit = baseline["p99_ms"] * GATE_FACTOR
    if result["p99_ms"] > limit:
        failures.append(
            f"p99 {result['p99_ms']:.2f}ms exceeds "
            f"{GATE_FACTOR}x baseline ({baseline['p99_ms']:.2f}ms)")
    floor = qps * MIN_RATE_FRACTION
    if result["throughput_qps"] < floor:
        failures.append(
            f"throughput {result['throughput_qps']:.0f} q/s below "
            f"{MIN_RATE_FRACTION:.0%} of requested {qps:.0f} q/s")
    if result["errors"]:
        failures.append(f"{result['errors']} failed responses")
    if failures:
        for f in failures:
            print(f"GATE FAIL: {f}", file=sys.stderr)
        return 1
    print(f"gate: ok (p99 {result['p99_ms']:.2f}ms <= {limit:.2f}ms, "
          f"{result['throughput_qps']:.0f} q/s >= {floor:.0f} q/s)")
    return 0


def record_run(entry: Dict) -> None:
    TRAJECTORY_PATH.parent.mkdir(parents=True, exist_ok=True)
    entry = dict(entry)
    entry["timestamp"] = datetime.now(timezone.utc).isoformat(
        timespec="seconds")
    with TRAJECTORY_PATH.open("a", encoding="utf-8") as f:
        f.write(json.dumps(entry) + "\n")
    print(f"recorded -> {TRAJECTORY_PATH}")


# ---------------------------------------------------------------------------
# Driver.
# ---------------------------------------------------------------------------

async def amain(args) -> int:
    from repro.serve.client import AsyncServeClient

    server = None
    corpus = None
    socket_path = args.socket
    if args.self:
        from repro.core.config import ServeConfig
        from repro.serve.corpus import load_corpus
        from repro.serve.server import ServeServer

        corpus = load_corpus(args.corpus, share=args.jobs > 0)
        server = ServeServer(corpus, ServeConfig(
            batch_window=args.window, max_batch=args.max_batch,
            jobs=args.jobs, cache_dir="off", backend=args.backend))
        socket_path = os.path.join(
            tempfile.mkdtemp(prefix="repro-bench-serve-"), "bench.sock")
        await server.start(socket_path)
    elif not socket_path:
        print("need --self or --socket PATH", file=sys.stderr)
        return 2

    clients = []
    try:
        for _ in range(args.connections):
            clients.append(await AsyncServeClient().connect(socket_path))

        names = await clients[0].graphs()
        graph_names = [g["name"] for g in names]
        sizes = {g["name"]: g["n_vertices"] for g in names}
        configs = micro_configs()
        for name in graph_names:
            configs.setdefault(name, {})

        n_queries = max(1, int(args.qps * args.seconds))
        mix = build_mix(graph_names, configs, n_queries,
                        args.roots_per_graph, sizes, args.seed)

        print(f"load: {n_queries} queries at {args.qps:g} q/s over "
              f"{len(graph_names)} graphs "
              f"({args.connections} connections, "
              f"{args.roots_per_graph} roots/graph, seed {args.seed})")
        prewarm_s = 0.0
        if not args.no_prewarm:
            prewarm_s = await prewarm(clients[0], mix)
        result = await run_load(clients, mix, args.qps, args.warmup)
        result["prewarm_seconds"] = round(prewarm_s, 2)
        result.update({
            "bench": "serve",
            "qps_requested": args.qps,
            "seconds": args.seconds,
            "corpus": args.corpus if args.self else socket_path,
            "connections": args.connections,
            "roots_per_graph": args.roots_per_graph,
            "seed": args.seed,
            "self_hosted": bool(args.self),
            "backend": args.backend,
        })
        print(f"sustained {result['throughput_qps']:.0f} q/s | "
              f"p50 {result['p50_ms']:.2f}ms  p90 {result['p90_ms']:.2f}ms "
              f"p99 {result['p99_ms']:.2f}ms  max {result['max_ms']:.1f}ms "
              f"| cache hit {result['cache_hit_rate']:.1%} | "
              f"errors {result['errors']}")

        rc = 0
        if args.verify:
            if corpus is not None:
                graphs = {n: corpus.get(n).graph for n in graph_names}
            else:
                from repro.serve.corpus import load_corpus

                local = load_corpus(args.corpus, share=False)
                graphs = {n: local.get(n).graph for n in graph_names}
            status = await clients[0].status()
            backend_knob = status.get("config", {}).get("backend", "dfs")
            batch_hint = int(status.get("config", {}).get("max_batch", 1))
            mismatches = await verify_mix(clients[0], mix, graphs,
                                          backend_knob, batch_hint)
            result["verify_mismatches"] = mismatches
            if mismatches:
                rc = 1

        if args.json:
            pathlib.Path(args.json).write_text(
                json.dumps(result, indent=2, sort_keys=True) + "\n")
        if args.record:
            record_run(result)
        if args.record_baseline:
            BASELINE_PATH.write_text(json.dumps({
                "qps": args.qps,
                "throughput_qps": round(result["throughput_qps"], 1),
                "p50_ms": round(result["p50_ms"], 3),
                "p99_ms": round(result["p99_ms"], 3),
                "recorded": datetime.now(timezone.utc).isoformat(
                    timespec="seconds"),
            }, indent=2) + "\n")
            print(f"baseline -> {BASELINE_PATH}")
        if args.gate:
            rc = max(rc, apply_gate(result, args.qps))
        return rc
    finally:
        for c in clients:
            await c.close()
        if server is not None:
            await server.stop()
        if corpus is not None:
            corpus.close()


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        description="Open-loop load test for the repro.serve daemon")
    p.add_argument("--self", action="store_true",
                   help="spawn an in-process daemon (default corpus: "
                        "micro)")
    p.add_argument("--socket", default=None,
                   help="socket of an externally running daemon")
    p.add_argument("--corpus", default="micro")
    p.add_argument("--qps", type=float, default=500.0,
                   help="open-loop arrival rate (default 500)")
    p.add_argument("--seconds", type=float, default=10.0)
    p.add_argument("--warmup", type=float, default=1.0,
                   help="leading seconds excluded from the stats")
    p.add_argument("--no-prewarm", action="store_true",
                   help="skip the closed-loop cache-fill pass (the "
                        "open-loop phase then pays every cold miss)")
    p.add_argument("--connections", type=int, default=4)
    p.add_argument("--roots-per-graph", type=int, default=8)
    p.add_argument("--seed", type=int, default=123)
    p.add_argument("--window", type=float, default=0.002,
                   help="daemon batch window for --self (seconds)")
    p.add_argument("--max-batch", type=int, default=64)
    p.add_argument("--jobs", type=int, default=0,
                   help="daemon worker processes for --self")
    p.add_argument("--backend", default="dfs",
                   choices=("auto", "dfs", "frontier"),
                   help="backend knob for --self daemons (external "
                        "daemons keep their own; --verify always reads "
                        "the effective knob from status)")
    p.add_argument("--verify", action="store_true",
                   help="check every distinct query against direct "
                        "execution after the load phase")
    p.add_argument("--gate", action="store_true",
                   help="fail on p99/throughput regression vs "
                        "benchmarks/baseline_serve.json")
    p.add_argument("--record", action="store_true",
                   help="append this run to benchmarks/out/"
                        "trajectory.jsonl")
    p.add_argument("--record-baseline", action="store_true",
                   help="(re)write benchmarks/baseline_serve.json")
    p.add_argument("--json", default=None,
                   help="write the full result payload to this file")
    return p


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return asyncio.run(amain(args))


if __name__ == "__main__":
    sys.exit(main())
