"""Unit tests for the run-report renderer and sparkline."""

import pytest

from repro.analysis.report import render_run_report, sparkline
from repro.core import DiggerBeesConfig, run_diggerbees
from repro.graphs import generators as gen

CFG = DiggerBeesConfig(n_blocks=2, warps_per_block=2, hot_size=16,
                       hot_cutoff=4, cold_cutoff=4, flush_batch=4,
                       refill_batch=4, cold_reserve=16, seed=1)


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant(self):
        line = sparkline([5, 5, 5, 5], width=4)
        assert len(line) == 4
        assert len(set(line)) == 1

    def test_peak_is_full_block(self):
        line = sparkline([0, 1, 10], width=3)
        assert line[-1] == "█"
        assert line[0] == " "

    def test_rebuckets_long_series(self):
        line = sparkline(list(range(200)), width=10)
        assert len(line) == 10

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            sparkline([1], width=0)

    def test_all_zero(self):
        assert sparkline([0, 0], width=2) == "  "


class TestRunReport:
    @pytest.fixture(scope="class")
    def report(self):
        g = gen.road_network(800, seed=1)
        res = run_diggerbees(g, 0, config=CFG.with_overrides(trace=True))
        return render_run_report(res)

    def test_sections_present(self, report):
        for token in ("run report", "MTEPS", "cycle budget", "stealing:",
                      "block balance", "visit activity"):
            assert token in report

    def test_no_timeline_without_trace(self):
        g = gen.path_graph(60)
        res = run_diggerbees(g, 0, config=CFG)
        rep = render_run_report(res)
        assert "visit activity" not in rep
        assert "MTEPS" in rep

    def test_multigpu_header(self):
        g = gen.road_network(600, seed=1)
        cfg = CFG.with_overrides(n_blocks=4, n_gpus=2)
        rep = render_run_report(run_diggerbees(g, 0, config=cfg))
        assert "on 2 GPUs" in rep
