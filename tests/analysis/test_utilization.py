"""Unit tests for the utilization analysis."""

import pytest

from repro.analysis.utilization import (
    UtilizationReport,
    utilization_report,
    warp_activity_timeline,
)
from repro.core import DiggerBeesConfig, run_diggerbees
from repro.graphs import generators as gen

CFG = DiggerBeesConfig(n_blocks=2, warps_per_block=4, hot_size=32,
                       hot_cutoff=8, cold_cutoff=8, flush_batch=8,
                       refill_batch=8, cold_reserve=32, seed=2)


@pytest.fixture(scope="module")
def run():
    g = gen.road_network(1500, seed=2)
    return run_diggerbees(g, 0, config=CFG.with_overrides(trace=True))


class TestUtilizationReport:
    def test_budget_components_positive(self, run):
        rep = utilization_report(run)
        assert rep.expand_cycles > 0
        assert rep.elapsed_cycles == run.cycles
        assert rep.total_busy > 0

    def test_parallelism_bounded(self, run):
        rep = utilization_report(run)
        assert 0 < rep.parallelism <= rep.n_warps

    def test_utilization_fraction(self, run):
        rep = utilization_report(run)
        assert 0.0 < rep.utilization <= 1.0

    def test_as_dict(self, run):
        d = utilization_report(run).as_dict()
        assert set(d) >= {"expand_cycles", "steal_cycles", "parallelism"}

    def test_more_warps_lower_utilization(self):
        """A tiny graph cannot feed a big grid: utilization must drop."""
        g = gen.road_network(800, seed=3)
        small = run_diggerbees(g, 0, config=CFG)
        big = run_diggerbees(g, 0, config=CFG.with_overrides(n_blocks=16))
        assert (utilization_report(big).utilization
                < utilization_report(small).utilization)


class TestTimeline:
    def test_histogram_covers_all_visits(self, run):
        hist = warp_activity_timeline(run)
        assert sum(hist.values()) == len(run.trace.filter(kind="visit"))

    def test_buckets_sorted(self, run):
        keys = list(warp_activity_timeline(run).keys())
        assert keys == sorted(keys)

    def test_requires_trace(self):
        g = gen.path_graph(50)
        res = run_diggerbees(g, 0, config=CFG)
        with pytest.raises(ValueError):
            warp_activity_timeline(res)

    def test_custom_bucket(self, run):
        coarse = warp_activity_timeline(run, bucket_cycles=run.cycles)
        assert len(coarse) <= 2
