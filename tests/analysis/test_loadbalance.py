"""Unit tests for load-balance analysis (Fig 9 machinery)."""

import pytest

from repro.analysis.loadbalance import (
    LoadBalanceReport,
    analyze_block_balance,
    balance_improvement,
)
from repro.sim.trace import SimCounters


def counters_with(tasks: dict) -> SimCounters:
    c = SimCounters()
    for block, n in tasks.items():
        c.record_task(block, 0, count=n)
    return c


class TestAnalyze:
    def test_active_only_default(self):
        c = counters_with({0: 10, 2: 30})
        rep = analyze_block_balance(c, n_blocks=4)
        assert rep.tasks == (10, 30)
        assert rep.active_blocks == 2
        assert rep.min == 10 and rep.max == 30

    def test_include_idle(self):
        c = counters_with({0: 10, 2: 30})
        rep = analyze_block_balance(c, n_blocks=4, include_idle=True)
        assert rep.tasks == (10, 0, 30, 0)
        assert rep.min == 0

    def test_variation_zero_for_balanced(self):
        c = counters_with({0: 5, 1: 5, 2: 5})
        rep = analyze_block_balance(c, n_blocks=3)
        assert rep.variation == 0.0

    def test_variation_high_for_skewed(self):
        balanced = analyze_block_balance(counters_with({0: 10, 1: 10}), 2)
        skewed = analyze_block_balance(counters_with({0: 1, 1: 19}), 2)
        assert skewed.variation > balanced.variation

    def test_spread(self):
        rep = analyze_block_balance(counters_with({0: 2, 1: 20}), 2)
        assert rep.spread == 10.0


class TestImprovement:
    def make(self, var):
        return LoadBalanceReport(tasks=(1,), min=1, median=1, max=1,
                                 variation=var, active_blocks=1)

    def test_ratio(self):
        assert balance_improvement(self.make(2.4), self.make(0.8)) == pytest.approx(3.0)

    def test_perfect_balance(self):
        assert balance_improvement(self.make(1.0), self.make(0.0)) == float("inf")
        assert balance_improvement(self.make(0.0), self.make(0.0)) == 1.0
