"""Smoke tests of the top-level public API surface."""

import pytest

import repro


class TestTopLevel:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_path(self):
        """The README's four-line quickstart must work verbatim."""
        graph = repro.collections.load("amazon")
        result = repro.diggerbees(graph, root=0)
        report = repro.validate_traversal(graph, result.traversal)
        assert result.mteps > 0
        assert report.tree_valid and report.visited_correct

    def test_diggerbees_kwargs_forwarded(self):
        from repro.core import DiggerBeesConfig

        g = repro.from_adjacency([[1], [0, 2], [1]])
        cfg = DiggerBeesConfig(n_blocks=1, warps_per_block=1)
        res = repro.diggerbees(g, 0, config=cfg, record_order=True)
        assert list(res.traversal.order) == [0, 1, 2]

    def test_error_hierarchy(self):
        assert issubclass(repro.GraphFormatError, repro.ReproError)
        assert issubclass(repro.DeadlockError, repro.SimulationError)
        assert issubclass(repro.SimulationError, repro.ReproError)
        assert issubclass(repro.MemoryLimitExceeded, repro.ReproError)

    def test_serial_dfs_reexport(self):
        g = repro.from_edges(3, [(0, 1), (1, 0), (1, 2), (2, 1)])
        r = repro.serial_dfs(g, 0)
        assert r.n_visited == 3

    def test_subpackages_importable(self):
        import repro.analysis
        import repro.apps
        import repro.baselines
        import repro.bench
        import repro.core
        import repro.graphs
        import repro.sim
        import repro.validate

        assert repro.apps.biconnectivity is not None
        assert repro.sim.EventLoop is not None
