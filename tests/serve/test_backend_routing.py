"""Backend routing in the daemon: knob, auto dispatch, counters, keys."""

import numpy as np
import pytest

from repro.core.config import ServeConfig
from repro.core.diggerbees import run_diggerbees
from repro.core.frontier import run_frontier
from repro.errors import SimulationError
from repro.graphs import generators as gen
from repro.serve.cache import result_key
from repro.serve.protocol import frontier_result_to_dict

from tests.serve.conftest import serve_session


@pytest.fixture(autouse=True)
def _no_calibration(monkeypatch):
    """Pin these tests to the regime proxy: a recorded calibration
    artifact under benchmarks/ must not change routing expectations."""
    import repro.core.dispatch as dispatch

    monkeypatch.setattr(dispatch, "load_calibration",
                        lambda path=None: None)


def routing_graphs():
    return {
        "wide": gen.star_mesh(12, leaves_per_hub=9, seed=8),   # shallow
        "spine": gen.path_graph(120),                          # deep
    }


def make_config(backend):
    return ServeConfig(batch_window=0.01, max_batch=8, jobs=0,
                       cache_dir="off", backend=backend)


def test_default_daemon_stays_dfs():
    async def scenario(client, server, **_):
        resp = await client.dfs("wide", 0)
        assert resp.ok and "cycles" in resp.result
        status = await client.status()
        assert status["config"]["backend"] == "dfs"
        assert status["stats"]["backend_dfs"] == 1
        assert status["stats"]["backend_frontier"] == 0

    serve_session(scenario, graphs=routing_graphs())


def test_forced_frontier_daemon_answers_with_frontier_payloads():
    async def scenario(client, server, corpus, **_):
        for name in ("wide", "spine"):  # forced: regime is irrelevant
            resp = await client.dfs(name, 0)
            assert resp.ok and resp.result["backend"] == "frontier"
            expected = frontier_result_to_dict(
                run_frontier(corpus.get(name).graph, 0))
            assert resp.result == expected
        status = await client.status()
        assert status["stats"]["backend_frontier"] == 2
        assert status["stats"]["backend_dfs"] == 0
        assert status["config"]["backend"] == "frontier"
        # Forced knobs never pay the regime BFS.
        assert corpus.get("wide")._regime is None

    serve_session(scenario, graphs=routing_graphs(),
                  config=make_config("frontier"))


def test_auto_routes_by_regime_and_pins_overrides():
    async def scenario(client, server, corpus, **_):
        # A batching daemon (max_batch=8) routes shallow graphs to the
        # swarm tier; the payload is the frontier payload with the
        # swarm backend marker.
        shallow = await client.dfs("wide", 0)
        assert shallow.result["backend"] == "swarm"
        expected = frontier_result_to_dict(
            run_frontier(corpus.get("wide").graph, 0), backend="swarm")
        assert shallow.result == expected
        deep = await client.dfs("spine", 0)
        assert "cycles" in deep.result  # DFS simulation payload
        # Engine-config overrides pin the query to the DFS simulation
        # even on a shallow graph.
        pinned = await client.query(
            "dfs", "wide", root=0, config={"seed": 5}, no_cache=True)
        assert "cycles" in pinned.result
        status = await client.status()
        assert status["stats"]["backend_swarm"] == 1
        assert status["stats"]["backend_frontier"] == 0
        assert status["stats"]["backend_dfs"] == 2
        # The regime was profiled once per resident graph and memoized.
        assert corpus.get("wide")._regime == "shallow"
        assert corpus.get("spine")._regime == "deep"

    serve_session(scenario, graphs=routing_graphs(),
                  config=make_config("auto"))


def test_auto_without_batching_stays_on_single_root_frontier():
    async def scenario(client, server, corpus, **_):
        resp = await client.dfs("wide", 0)
        assert resp.result["backend"] == "frontier"
        status = await client.status()
        assert status["stats"]["backend_frontier"] == 1
        assert status["stats"]["backend_swarm"] == 0

    serve_session(scenario, graphs=routing_graphs(),
                  config=ServeConfig(batch_window=0.01, max_batch=1,
                                     jobs=0, cache_dir="off",
                                     backend="auto"))


def test_forced_swarm_daemon_coalesces_into_one_lockstep_batch():
    async def scenario(client, server, corpus, **_):
        import asyncio

        roots = [0, 3, 7, 11]
        resps = await asyncio.gather(*[
            client.dfs("spine", r) for r in roots])
        for r, resp in zip(roots, resps):
            assert resp.ok and resp.result["backend"] == "swarm"
            expected = frontier_result_to_dict(
                run_frontier(corpus.get("spine").graph, r),
                backend="swarm")
            assert resp.result == expected
        # All four rode one admission group -> one swarm execution.
        widths = {resp.batch for resp in resps}
        assert widths == {len(roots)}
        status = await client.status()
        assert status["stats"]["backend_swarm"] == len(roots)
        assert status["stats"]["backend_frontier"] == 0
        # Forced knobs never pay the regime BFS.
        assert corpus.get("spine")._regime is None

    serve_session(scenario, graphs=routing_graphs(),
                  config=make_config("swarm"))


def test_swarm_batch_isolates_bad_roots():
    async def scenario(client, server, corpus, **_):
        import asyncio

        from repro.errors import ServeError

        good, bad = 0, 10**6
        ok_resp, bad_exc = await asyncio.gather(
            client.dfs("wide", good),
            client.query("dfs", "wide", root=bad, no_cache=True),
            return_exceptions=True)
        assert ok_resp.ok and ok_resp.result["backend"] == "swarm"
        assert isinstance(bad_exc, ServeError)
        assert "out of range" in str(bad_exc)

    serve_session(scenario, graphs=routing_graphs(),
                  config=make_config("swarm"))


def test_frontier_payload_matches_dfs_reachability():
    # Different engine family, same graph truth: identical visited set
    # and visit count (the parent trees legitimately differ).
    async def scenario(client, corpus, **_):
        resp = await client.dfs("wide", 0)
        ref = run_diggerbees(corpus.get("wide").graph, 0)
        assert resp.result["visited"] == \
            np.flatnonzero(ref.traversal.visited).tolist()
        assert resp.result["n_visited"] == int(ref.traversal.n_visited)

    serve_session(scenario, graphs=routing_graphs(),
                  config=make_config("frontier"))


def test_non_dfs_ops_ignore_the_backend_knob():
    async def scenario(client, server, **_):
        resp = await client.query("spanning", "wide")
        assert resp.ok and resp.result["n_components"] == 1
        status = await client.status()
        assert status["stats"]["backend_frontier"] == 0

    serve_session(scenario, graphs=routing_graphs(),
                  config=make_config("frontier"))


def test_cached_frontier_results_replay():
    async def scenario(client, server, **_):
        first = await client.dfs("wide", 3)
        second = await client.dfs("wide", 3)
        assert second.cached and second.result == first.result
        status = await client.status()
        # One real frontier execution served both requests.
        assert status["stats"]["backend_frontier"] == 1

    serve_session(scenario, graphs=routing_graphs(),
                  config=make_config("frontier"))


def test_result_key_separates_backends():
    fp = "deadbeef"
    dfs_key = result_key("dfs", 0, None, fp)
    assert result_key("dfs", 0, None, fp, "frontier") != dfs_key
    assert result_key("dfs", 0, None, fp, "swarm") != dfs_key
    assert result_key("dfs", 0, None, fp, "swarm") != \
        result_key("dfs", 0, None, fp, "frontier")
    # The default backend is un-keyed so pre-existing DFS cache entries
    # (including disk spills) stay addressable.
    assert result_key("dfs", 0, None, fp, "dfs") == dfs_key


def test_serve_config_backend_validation():
    with pytest.raises(SimulationError):
        ServeConfig(backend="gpu")
    assert ServeConfig(backend="auto").backend == "auto"
