"""Wire-protocol unit tests: round trips, validation, canonical payloads."""

import json

import numpy as np
import pytest

from repro.core.diggerbees import run_diggerbees
from repro.errors import ProtocolError
from repro.graphs import generators as gen
from repro.serve.protocol import (
    OPS,
    QUERY_OPS,
    Request,
    Response,
    counters_to_wire,
    decode_request,
    decode_response,
    dfs_result_to_dict,
    encode_request,
    encode_response,
    encode_response_with_raw_result,
    error_response,
)


# ---------------------------------------------------------------------------
# Requests.
# ---------------------------------------------------------------------------

def test_request_roundtrip_all_fields():
    req = Request(op="dfs", id="q-1", graph="g", root=7,
                  config={"seed": 3, "turbo": True}, no_cache=True)
    back = decode_request(encode_request(req))
    assert back == req


def test_request_roundtrip_defaults():
    req = Request(op="ping")
    back = decode_request(encode_request(req))
    assert back == req
    assert back.root == 0 and back.config is None and not back.no_cache


def test_request_unknown_op_rejected():
    with pytest.raises(ProtocolError, match="unknown op"):
        Request(op="explode")


def test_request_query_requires_graph():
    for op in QUERY_OPS:
        with pytest.raises(ProtocolError, match="requires a graph"):
            Request(op=op)


def test_request_root_must_be_int():
    with pytest.raises(ProtocolError, match="root"):
        Request(op="dfs", graph="g", root="zero")
    with pytest.raises(ProtocolError, match="root"):
        Request(op="dfs", graph="g", root=True)  # bools are not roots


def test_request_config_must_be_object():
    with pytest.raises(ProtocolError, match="config"):
        Request(op="dfs", graph="g", config=[1, 2])


def test_decode_request_rejects_malformed_lines():
    for line in (b"not json\n", b"[1,2,3]\n", b'{"id": 1}\n',
                 b'{"op": "dfs", "graph": "g", "wat": 1}\n'):
        with pytest.raises(ProtocolError):
            decode_request(line)


# ---------------------------------------------------------------------------
# Responses.
# ---------------------------------------------------------------------------

def test_response_roundtrip():
    resp = Response(op="dfs", id="q-9", result={"a": [1, 2]}, cached=True,
                    batch=4, elapsed_ms=1.25)
    back = decode_response(encode_response(resp))
    assert back == resp


def test_error_response_carries_type_and_message():
    resp = error_response(Request(op="dfs", graph="g", id="e1"),
                          ValueError("boom"))
    back = decode_response(encode_response(resp))
    assert not back.ok
    assert back.error == {"type": "ValueError", "message": "boom"}
    assert back.id == "e1"


def test_error_response_without_request_uses_fallbacks():
    resp = error_response(None, ProtocolError("bad line"), req_id="x")
    assert resp.op == "?" and resp.id == "x" and not resp.ok


def test_decode_response_rejects_unknown_fields():
    with pytest.raises(ProtocolError):
        decode_response(b'{"op": "dfs", "ok": true, "surprise": 1}\n')


def test_raw_result_splice_is_byte_identical():
    """The cache-hit fast path must emit exactly encode_response bytes."""
    payloads = [
        {"parent": [-1, 0, 1], "n": 3},
        {"empty": {}, "nested": {"k": [1.5, None, True]}},
        {},
    ]
    for result in payloads:
        for rid in ("q-1", 7, None):
            resp = Response(op="dfs", id=rid, result=result, cached=True,
                            batch=2, elapsed_ms=0.5)
            raw = json.dumps(result, separators=(",", ":"))
            assert (encode_response_with_raw_result(resp, raw)
                    == encode_response(resp))


# ---------------------------------------------------------------------------
# Canonical payloads.
# ---------------------------------------------------------------------------

def test_counters_to_wire_string_keys_sorted():
    class C:
        pass

    c = C()
    c.steals = 7
    c.tasks_per_block = {3: 10, 0: 5}
    c.tasks_per_warp = {(1, 2): 4, (0, 1): 9}
    wire = counters_to_wire(c)
    assert wire["steals"] == 7
    assert wire["tasks_per_block"] == {"0": 5, "3": 10}
    assert wire["tasks_per_warp"] == {"0,1": 9, "1,2": 4}
    # JSON-stable: round trip changes nothing.
    assert json.loads(json.dumps(wire)) == wire


def test_dfs_result_to_dict_is_canonical_and_json_safe():
    g = gen.binary_tree(5)
    res = run_diggerbees(g, 0)
    payload = dfs_result_to_dict(res)
    # Pure JSON types, visited sparse, parent dense.
    assert json.loads(json.dumps(payload)) == payload
    assert payload["n_vertices"] == g.n_vertices
    assert len(payload["parent"]) == g.n_vertices
    assert payload["n_visited"] == len(payload["visited"])
    assert payload["root"] == 0
    dense = np.zeros(g.n_vertices, bool)
    dense[payload["visited"]] = True
    assert np.array_equal(dense, res.traversal.visited)


def test_ops_cover_executors():
    from repro.serve.exec import _EXECUTORS

    assert set(_EXECUTORS) == set(QUERY_OPS)
    assert len(set(OPS)) == len(OPS)
