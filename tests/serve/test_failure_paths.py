"""Failure paths: the daemon degrades to correct-but-slower, never wrong.

Three induced failures, each verified against direct execution:

* the worker pool's processes are killed mid-service (BrokenProcessPool)
  -> one retry on a fresh pool answers correctly;
* the shm segments backing a resident graph are unlinked behind the
  daemon's back -> the graph demotes to pickle hand-off and the query
  still answers correctly;
* the on-disk result cache is corrupted between daemon lifetimes -> the
  corrupt file is discarded and results are recomputed, not poisoned.
"""

import json

import pytest

from repro.bench import harness
from repro.core.config import ServeConfig
from repro.core.diggerbees import run_diggerbees
from repro.graphs import generators as gen
from repro.serve.protocol import dfs_result_to_dict

from tests.serve.conftest import serve_session


@pytest.fixture(autouse=True)
def _fresh_pool():
    harness._shutdown_pool()
    yield
    harness._shutdown_pool()


def _expected(graph, root):
    return dfs_result_to_dict(run_diggerbees(graph, root))


def test_daemon_survives_worker_pool_death():
    graphs = {"g": gen.binary_tree(5)}

    async def scenario(client, server, **_):
        first = await client.dfs("g", 0, no_cache=True)
        assert first.ok and first.result == _expected(graphs["g"], 0)
        # Kill every live worker: the next submit on this executor
        # raises BrokenProcessPool.
        handle = harness._HANDLE
        assert handle is not None and handle.jobs == 1
        for proc in list(handle.executor._processes.values()):
            proc.kill()
        resp = await client.dfs("g", 7, no_cache=True)
        assert resp.ok and resp.result == _expected(graphs["g"], 7)
        assert server.stats.pool_broken >= 1
        # The replacement pool keeps serving.
        again = await client.dfs("g", 11, no_cache=True)
        assert again.ok and again.result == _expected(graphs["g"], 11)

    serve_session(scenario, graphs=graphs,
                  config=ServeConfig(batch_window=0.0, max_batch=1,
                                     jobs=1, cache_dir="off"))


def test_dangling_shm_demotes_to_pickle_and_stays_correct():
    graphs = {"warm": gen.path_graph(16)}
    fresh = gen.path_graph(24)

    async def scenario(client, server, corpus, **_):
        # Warm the pool so workers exist, on a *different* graph — the
        # worker-side attach cache is keyed per export, so the doomed
        # graph's segments are guaranteed cold.
        await client.dfs("warm", 0, no_cache=True)
        await client.add_graph("fresh", fresh.row_ptr, fresh.column_idx)
        entry = corpus.get("fresh")
        assert entry.shm_ok and entry.shared is not None
        # Unlink the segment names behind the daemon's back.  The
        # parent's own mapping stays valid; worker attach now fails.
        for shm in entry.shared._segments:
            shm.unlink()
        resp = await client.dfs("fresh", 0, no_cache=True)
        assert resp.ok and resp.result == _expected(fresh, 0)
        assert server.stats.shm_fallbacks >= 1
        assert entry.shm_ok is False        # demoted, not retried forever
        # Follow-up queries take the pickle path directly and stay right.
        resp2 = await client.dfs("fresh", 5, no_cache=True)
        assert resp2.ok and resp2.result == _expected(fresh, 5)
        assert server.stats.shm_fallbacks == 1

    serve_session(scenario, graphs=graphs, share=True,
                  config=ServeConfig(batch_window=0.0, max_batch=1,
                                     jobs=1, cache_dir="off"))


def test_all_fallbacks_exhausted_runs_in_process():
    """Pool broken twice in a row -> the query still answers correctly
    via the in-process executor (the ladder's last rung)."""
    graphs = {"g": gen.binary_tree(4)}

    async def scenario(client, server, **_):
        await client.dfs("g", 0, no_cache=True)   # spawn workers

        real = harness.lease_pool

        def poisoned_lease(jobs):
            import time

            handle = real(jobs)
            # Workers spawn lazily: force them into existence, then
            # kill them and wait for the executor to flag itself.
            handle.executor.submit(abs, 1).result()
            for proc in list(handle.executor._processes.values()):
                proc.kill()
            deadline = time.time() + 5.0
            while not handle.executor._broken and time.time() < deadline:
                time.sleep(0.01)
            return handle

        harness_lease, harness.lease_pool = harness.lease_pool, poisoned_lease
        try:
            resp = await client.dfs("g", 3, no_cache=True)
        finally:
            harness.lease_pool = harness_lease
        assert resp.ok and resp.result == _expected(graphs["g"], 3)
        assert server.stats.pool_broken >= 2
        assert server.stats.inline_fallbacks >= 1

    serve_session(scenario, graphs=graphs,
                  config=ServeConfig(batch_window=0.0, max_batch=1,
                                     jobs=1, cache_dir="off"))


def test_cache_file_corruption_recomputes_correctly(tmp_path):
    graphs = {"g": gen.binary_tree(4)}
    expected = _expected(graphs["g"], 2)

    async def populate(client, **_):
        resp = await client.dfs("g", 2)
        assert resp.result == expected

    serve_session(populate, graphs=graphs,
                  config=ServeConfig(batch_window=0.0, max_batch=1,
                                     jobs=0, cache_dir=str(tmp_path)))

    files = list(tmp_path.glob("*.json"))
    assert files, "daemon shutdown should have flushed the result cache"
    for f in files:
        f.write_text("{ definitely not valid json")

    async def recompute(client, server, **_):
        resp = await client.dfs("g", 2)
        assert resp.ok and resp.result == expected
        assert not resp.cached               # corrupt file was discarded
        assert server.stats.cache_misses >= 1

    serve_session(recompute, graphs=graphs,
                  config=ServeConfig(batch_window=0.0, max_batch=1,
                                     jobs=0, cache_dir=str(tmp_path)))


def test_cache_survives_daemon_restart_when_intact(tmp_path):
    """Control for the corruption test: an *intact* cache file is served
    as a hit by the next daemon lifetime."""
    graphs = {"g": gen.binary_tree(4)}
    expected = _expected(graphs["g"], 2)

    async def populate(client, **_):
        await client.dfs("g", 2)

    async def reuse(client, **_):
        resp = await client.dfs("g", 2)
        assert resp.cached and resp.result == expected

    cfg = ServeConfig(batch_window=0.0, max_batch=1, jobs=0,
                      cache_dir=str(tmp_path))
    serve_session(populate, graphs=graphs, config=cfg)
    serve_session(reuse, graphs=graphs, config=cfg)


def test_dangling_shm_with_jobs_zero_is_a_non_event():
    """jobs=0 never touches shm for execution: unlinking segments must
    not even register."""
    graphs = {"g": gen.path_graph(12)}

    async def scenario(client, server, corpus, **_):
        entry = corpus.get("g")
        if entry.shared is not None:
            for shm in entry.shared._segments:
                shm.unlink()
        resp = await client.dfs("g", 0, no_cache=True)
        assert resp.ok and resp.result == _expected(graphs["g"], 0)
        assert server.stats.shm_fallbacks == 0

    serve_session(scenario, graphs=graphs, share=True,
                  config=ServeConfig(batch_window=0.0, max_batch=1,
                                     jobs=0, cache_dir="off"))
