"""Shard-tier promotion in the daemon: knob, size floor, pinning, keys."""

import numpy as np
import pytest

from repro.core.config import SHARD_MIN_VERTICES, ServeConfig
from repro.core.diggerbees import run_diggerbees
from repro.errors import SimulationError
from repro.graphs import generators as gen
from repro.serve.cache import result_key

from tests.serve.conftest import serve_session


def routing_graphs():
    big = gen.grid2d(36, 36, name="big")       # 1296 >= SHARD_MIN_VERTICES
    small = gen.path_graph(120, name="small")  # under the floor
    assert big.n_vertices >= SHARD_MIN_VERTICES
    assert small.n_vertices < SHARD_MIN_VERTICES
    return {"big": big, "small": small}


def make_config(shards):
    return ServeConfig(batch_window=0.01, max_batch=8, jobs=0,
                       cache_dir="off", shards=shards)


def test_default_daemon_never_shards():
    async def scenario(client, **_):
        resp = await client.dfs("big", 0)
        assert resp.ok and "cycles" in resp.result
        assert resp.result.get("backend") != "shard"
        status = await client.status()
        assert status["config"]["shards"] == 0
        assert status["stats"]["backend_shard"] == 0

    serve_session(scenario, graphs=routing_graphs())


def test_promotion_answers_big_graphs_with_the_shard_tier():
    async def scenario(client, corpus, **_):
        resp = await client.dfs("big", 0)
        assert resp.ok
        assert resp.result["backend"] == "shard"
        assert resp.result["shards"] == 4
        assert resp.result["rounds"] >= 1
        # Reachability identical to the unsharded engine on this graph.
        ref = run_diggerbees(corpus.get("big").graph, 0)
        assert resp.result["n_visited"] == int(ref.traversal.n_visited)
        status = await client.status()
        assert status["config"]["shards"] == 4
        assert status["stats"]["backend_shard"] == 1
        assert status["stats"]["backend_dfs"] == 0

    serve_session(scenario, graphs=routing_graphs(),
                  config=make_config(4))


def test_small_graphs_stay_on_plain_dfs():
    async def scenario(client, **_):
        resp = await client.dfs("small", 0)
        assert resp.ok and "cycles" in resp.result
        assert resp.result.get("backend") != "shard"
        status = await client.status()
        assert status["stats"]["backend_shard"] == 0
        assert status["stats"]["backend_dfs"] == 1

    serve_session(scenario, graphs=routing_graphs(),
                  config=make_config(4))


def test_engine_overrides_pin_to_plain_dfs():
    # A parameterized query asks for one specific single-engine
    # simulation; promotion must not reroute it.
    async def scenario(client, **_):
        resp = await client.query("dfs", "big", root=0,
                                  config={"seed": 5}, no_cache=True)
        assert resp.ok and "cycles" in resp.result
        assert resp.result.get("backend") != "shard"
        status = await client.status()
        assert status["stats"]["backend_shard"] == 0
        assert status["stats"]["backend_dfs"] == 1

    serve_session(scenario, graphs=routing_graphs(),
                  config=make_config(2))


def test_repeat_query_hits_the_cache_byte_identically():
    async def scenario(client, **_):
        first = await client.dfs("big", 0)
        again = await client.dfs("big", 0)
        assert first.result == again.result
        status = await client.status()
        assert status["stats"]["cache_hits"] == 1
        assert status["stats"]["backend_shard"] == 1  # executed once

    serve_session(scenario, graphs=routing_graphs(),
                  config=make_config(2))


def test_cache_key_carries_the_district_count():
    # Shard payloads carry k-dependent modeled cost, so a daemon
    # reconfigured to a different k must not replay k-stale payloads.
    fp = "deadbeef"
    keys = {result_key("dfs", 0, None, fp, backend)
            for backend in ("dfs", "shard:2", "shard:4")}
    assert len(keys) == 3


def test_shards_knob_validated():
    with pytest.raises(SimulationError):
        ServeConfig(shards=-1)
    # 0 and 1 both mean "off" and are accepted.
    assert ServeConfig(shards=0).shards == 0
    assert ServeConfig(shards=1).shards == 1
