"""End-to-end daemon tests: real socket, real protocol, full stack."""

import asyncio
import json

import numpy as np
import pytest

from repro.core.config import ServeConfig
from repro.core.diggerbees import run_diggerbees
from repro.errors import ServeError
from repro.graphs import generators as gen
from repro.serve.client import AsyncServeClient
from repro.serve.protocol import dfs_result_to_dict

from tests.serve.conftest import serve_session


# ---------------------------------------------------------------------------
# Query round trips.
# ---------------------------------------------------------------------------

def test_dfs_roundtrip_matches_direct_execution():
    async def scenario(client, corpus, **_):
        resp = await client.dfs("tree", 0)
        expected = dfs_result_to_dict(
            run_diggerbees(corpus.get("tree").graph, 0))
        assert resp.ok and resp.result == expected
        return resp

    resp = serve_session(scenario)
    assert not resp.cached


def test_all_app_ops_roundtrip():
    async def scenario(client, **_):
        scc = await client.query("scc", "dag")
        assert scc.result["n_components"] >= 1
        topo = await client.query("toposort", "dag")
        assert (topo.result["order"] is None) != (
            topo.result["cycle"] is None)
        cyc = await client.query("cycles", "tree")
        assert cyc.result["has_cycle"] is False
        bic = await client.query("biconnectivity", "tree")
        assert bic.result["n_components"] >= 1
        span = await client.query("spanning", "path")
        assert span.result["n_components"] == 1

    serve_session(scenario)


def test_cache_hit_is_identical_and_flagged():
    async def scenario(client, server, **_):
        first = await client.dfs("path", 0)
        second = await client.dfs("path", 0)
        assert not first.cached and second.cached
        assert first.result == second.result
        assert server.stats.cache_hits == 1
        third = await client.dfs("path", 0, no_cache=True)
        assert not third.cached and third.result == first.result

    serve_session(scenario)


def test_concurrent_queries_coalesce_into_hive_batch():
    async def scenario(client, server, **_):
        resps = await asyncio.gather(*[
            client.dfs("tree", r, no_cache=True) for r in range(6)])
        assert all(r.ok for r in resps)
        assert {r.batch for r in resps} == {6}
        assert server.stats.hive_batches >= 1
        # Batched results still equal scalar execution.
        for root, resp in enumerate(resps):
            direct = await client.dfs("tree", root, no_cache=True)
            assert resp.result == direct.result or direct.batch > 1

    serve_session(scenario)


def test_identical_inflight_queries_singleflight():
    async def scenario(client, server, **_):
        resps = await asyncio.gather(*[
            client.dfs("tree", 2) for _ in range(8)])
        assert len({json.dumps(r.result, sort_keys=True)
                    for r in resps}) == 1
        assert server.stats.coalesced >= 1
        # Only one real execution happened for the eight requests.
        assert server.stats.cache_misses + server.stats.cache_hits == 8
        assert server.stats.batched_queries == 1

    serve_session(scenario)


def test_out_of_order_responses_correlate_by_id():
    async def scenario(client, **_):
        slow = asyncio.ensure_future(client.dfs("tree", 1))  # miss
        await client.dfs("tree", 1, no_cache=False)          # coalesces
        fast = await client.query("scc", "dag")              # app op
        assert fast.ok
        resp = await slow
        assert resp.ok

    serve_session(scenario)


# ---------------------------------------------------------------------------
# Error handling: per-request, daemon survives.
# ---------------------------------------------------------------------------

def test_error_responses_do_not_kill_the_daemon():
    async def scenario(client, **_):
        with pytest.raises(ServeError, match="unknown graph"):
            await client.dfs("nope", 0)
        with pytest.raises(ServeError, match="out of range"):
            await client.dfs("path", 10_000)
        with pytest.raises(ServeError, match="unknown engine-config"):
            await client.dfs("path", 0, config={"warp_speed": 9})
        with pytest.raises(ServeError):
            await client.query("scc", "tree")   # undirected -> error
        resp = await client.dfs("path", 0)      # still serving
        assert resp.ok

    serve_session(scenario)


def test_bad_root_inside_batch_fails_only_that_request():
    async def scenario(client, **_):
        good = [client.dfs("tree", r, no_cache=True) for r in (0, 1)]
        bad = client.dfs("tree", 10_000, no_cache=True)
        results = await asyncio.gather(*good, bad, return_exceptions=True)
        assert results[0].ok and results[1].ok
        assert isinstance(results[2], ServeError)

    serve_session(scenario)


def test_malformed_line_gets_error_response_and_connection_survives():
    async def scenario(client, socket_path, **_):
        reader, writer = await asyncio.open_unix_connection(socket_path)
        writer.write(b'{"op": "dfs", "id": "x1"}\n')   # missing graph
        await writer.drain()
        line = json.loads(await reader.readline())
        assert line["ok"] is False and line["id"] == "x1"
        writer.write(b"this is not json\n")
        await writer.drain()
        line = json.loads(await reader.readline())
        assert line["ok"] is False
        writer.write(b'{"op": "ping", "id": "x2"}\n')  # still usable
        await writer.drain()
        line = json.loads(await reader.readline())
        assert line["ok"] is True and line["id"] == "x2"
        writer.close()
        await writer.wait_closed()

    serve_session(scenario)


# ---------------------------------------------------------------------------
# Control ops.
# ---------------------------------------------------------------------------

def test_status_and_graphs_payloads():
    async def scenario(client, **_):
        await client.dfs("path", 0)
        status = await client.status()
        assert set(status["graphs"]) == {"path", "tree", "dag"}
        assert status["stats"]["requests"] >= 1
        assert status["config"]["max_batch"] == 8
        graphs = await client.graphs()
        by_name = {g["name"]: g for g in graphs}
        assert by_name["path"]["n_vertices"] == 48
        assert by_name["dag"]["directed"] is True

    serve_session(scenario)


def test_add_graph_then_query_and_idempotent_readd():
    async def scenario(client, corpus, **_):
        g = gen.path_graph(10)
        resp = await client.add_graph("fresh", g.row_ptr, g.column_idx)
        assert resp.result["added"] == "fresh"
        before = corpus.get("fresh").fingerprint
        r = await client.dfs("fresh", 0)
        assert r.result["n_visited"] == 10
        # Same content: idempotent.
        await client.add_graph("fresh", g.row_ptr, g.column_idx)
        assert corpus.get("fresh").fingerprint == before
        # Different content under the same name: replaced, cache keyed
        # by the new fingerprint (old entries unreachable).
        g2 = gen.path_graph(12)
        await client.add_graph("fresh", g2.row_ptr, g2.column_idx)
        assert corpus.get("fresh").fingerprint != before
        r2 = await client.dfs("fresh", 0)
        assert r2.result["n_visited"] == 12 and not r2.cached

    serve_session(scenario)


def test_add_graph_rejects_bad_payloads():
    from repro.serve.protocol import Request

    async def scenario(client, **_):
        resp = await client.request(
            Request(op="add_graph", payload={"name": "x"}))
        assert not resp.ok and "missing" in resp.error["message"]
        with pytest.raises(ServeError):
            await client.add_graph("bad", [0, 5], [1])  # inconsistent CSR

    serve_session(scenario)


def test_shutdown_op_stops_the_server():
    async def scenario(client, server, **_):
        resp = await client.shutdown()
        assert resp.result == {"stopping": True}
        await asyncio.wait_for(server.serve_until_shutdown(), timeout=10)

    serve_session(scenario)


# ---------------------------------------------------------------------------
# Invariance: responses do not depend on (jobs, window, max_batch).
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("window,max_batch,jobs", [
    (0.0, 1, 0),      # no coalescing at all
    (0.02, 4, 0),     # batched in-process
    (0.0, 1, 1),      # scalar through the worker pool
    (0.02, 4, 2),     # batched through the worker pool (shm hand-off)
])
def test_responses_invariant_to_execution_shape(window, max_batch, jobs):
    graphs = {"g": gen.binary_tree(4)}
    expected = [
        dfs_result_to_dict(run_diggerbees(graphs["g"], r,
                                          config=_cfg()))
        for r in range(4)
    ]

    async def scenario(client, **_):
        resps = await asyncio.gather(*[
            client.dfs("g", r, config={"seed": 5}, no_cache=True)
            for r in range(4)])
        return [r.result for r in resps]

    got = serve_session(
        scenario, graphs=graphs, share=jobs > 0,
        config=ServeConfig(batch_window=window, max_batch=max_batch,
                           jobs=jobs, cache_dir="off"))
    assert got == expected


def _cfg():
    from repro.core.config import DiggerBeesConfig

    return DiggerBeesConfig(seed=5)


def test_visited_payload_reconstructs_dense_array():
    async def scenario(client, corpus, **_):
        resp = await client.dfs("tree", 3)
        g = corpus.get("tree").graph
        direct = run_diggerbees(g, 3)
        dense = np.zeros(g.n_vertices, bool)
        dense[resp.result["visited"]] = True
        assert np.array_equal(dense, direct.traversal.visited)
        assert resp.result["parent"] == direct.traversal.parent.tolist()

    serve_session(scenario)
