"""Admission-policy properties: bounds, conservation, invariance.

The policy is pure and time-injected, so Hypothesis can drive it with
arbitrary synthetic schedules — arrivals interleaved with timer polls —
and check the contract exhaustively:

* no batch ever exceeds ``max_batch``;
* once ``due()`` is polled at/after a group's deadline, its items flush
  (no request waits past the window unless the batch filled first);
* every admitted item flushes exactly once, in arrival order, never
  mixed across keys (conservation);
* and the *results* of batched DFS execution are invariant to how the
  admission knobs sliced the work (the execution-level half of the
  "(jobs, batch, window) invariance" acceptance criterion; the socket
  e2e half lives in ``test_server.py``).
"""

from collections import defaultdict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.admission import BatchPolicy

# Schedule alphabet: ("add", key, item_id, dt) | ("poll", dt) — dt is the
# time advance before the event fires.
_events = st.lists(
    st.one_of(
        st.tuples(st.just("add"), st.integers(0, 2),
                  st.integers(), st.floats(0, 0.05)),
        st.tuples(st.just("poll"), st.floats(0, 0.05)),
    ),
    min_size=1, max_size=60,
)


@given(events=_events, window=st.floats(0.001, 0.1),
       max_batch=st.integers(1, 6))
@settings(max_examples=200)
def test_policy_bounds_and_conservation(events, window, max_batch):
    policy = BatchPolicy(window, max_batch)
    now = 0.0
    admitted = defaultdict(list)   # key -> item ids in arrival order
    flushed = defaultdict(list)
    deadlines = {}                 # item id -> latest allowed flush poll
    item_seq = 0

    def consume(batches, at):
        for batch in batches:
            assert 1 <= len(batch.items) <= max_batch
            assert batch.reason in ("full", "window", "drain")
            for key, item in batch.items:
                assert key == batch.key
                flushed[key].append(item)

    for ev in events:
        if ev[0] == "add":
            _, key, _, dt = ev
            now += dt
            item_seq += 1
            admitted[key].append(item_seq)
            deadlines[item_seq] = now + window
            out = policy.add(key, (key, item_seq), now)
            consume([out] if out is not None else [], now)
        else:
            now += ev[1]
            due = policy.due(now)
            consume(due, now)
            # Window bound: nothing still pending is past its deadline.
            nd = policy.next_deadline()
            if nd is not None:
                assert nd > now or abs(nd - now) < 1e-12

    consume(policy.flush_all(now), now)
    assert policy.pending_count() == 0

    # Conservation: exactly once, in arrival order, per key.
    assert dict(flushed) == {k: v for k, v in admitted.items() if v}


@given(window=st.floats(0.001, 0.1), max_batch=st.integers(2, 8),
       n=st.integers(0, 20))
@settings(max_examples=100)
def test_policy_full_flush_fires_at_capacity(window, max_batch, n):
    policy = BatchPolicy(window, max_batch)
    full_batches = 0
    for i in range(n):
        out = policy.add("k", i, 0.0)
        if out is not None:
            assert out.reason == "full"
            assert len(out.items) == max_batch
            full_batches += 1
    assert full_batches == n // max_batch
    assert policy.pending_count() == n % max_batch


def test_zero_window_dispatches_immediately():
    policy = BatchPolicy(0.0, 64)
    out = policy.add("k", "item", 123.0)
    assert out is not None and out.items == ("item",)
    assert policy.pending_count() == 0
    assert policy.next_deadline() is None


def test_max_batch_one_dispatches_immediately():
    policy = BatchPolicy(10.0, 1)
    out = policy.add("k", "item", 0.0)
    assert out is not None and out.items == ("item",)


def test_due_respects_per_key_deadlines():
    policy = BatchPolicy(1.0, 64)
    policy.add("a", 1, 0.0)
    policy.add("b", 2, 0.5)
    assert policy.next_deadline() == pytest.approx(1.0)
    first = policy.due(1.0)
    assert [b.key for b in first] == ["a"]
    assert policy.due(1.2) == []
    second = policy.due(1.5)
    assert [b.key for b in second] == ["b"]


def test_rejects_bad_max_batch():
    with pytest.raises(ValueError):
        BatchPolicy(0.01, 0)


# ---------------------------------------------------------------------------
# Result invariance under arbitrary batch slicings.
# ---------------------------------------------------------------------------

@given(data=st.data())
@settings(max_examples=15, deadline=None)
def test_batched_results_invariant_to_slicing(data):
    """However admission slices the same queries into batches, every
    query's result equals its scalar execution bit-for-bit."""
    from repro.graphs import generators as gen
    from repro.serve.exec import execute_dfs_batch, execute_query

    graph = gen.binary_tree(4)
    roots = data.draw(st.lists(
        st.integers(0, graph.n_vertices - 1), min_size=1, max_size=6))
    tasks = [(r, {"seed": 1}) for r in roots]
    expected = [execute_query(graph, "dfs", r, {"seed": 1})
                for r in roots]

    # Random partition into contiguous batches (what admission produces).
    cuts = data.draw(st.sets(st.integers(1, max(1, len(tasks) - 1)),
                             max_size=len(tasks) - 1)) if len(tasks) > 1 \
        else set()
    bounds = [0] + sorted(cuts) + [len(tasks)]
    got = []
    for lo, hi in zip(bounds, bounds[1:]):
        got.extend(execute_dfs_batch(graph, tasks[lo:hi]))
    assert got == expected
