"""Shared helpers for the serve suite: one-call daemon sessions.

No pytest-asyncio in the environment, so async scenarios run through
:func:`serve_session`: it stands up a real daemon (unix socket, wire
protocol, the works) plus one connected client inside ``asyncio.run``,
hands both to the scenario coroutine, and guarantees teardown.
"""

from __future__ import annotations

import asyncio
import os
import tempfile

import pytest

from repro.core.config import ServeConfig
from repro.graphs import generators as gen
from repro.serve.client import AsyncServeClient
from repro.serve.corpus import ResidentCorpus
from repro.serve.server import ServeServer


def default_graphs():
    return {
        "path": gen.path_graph(48),
        "tree": gen.binary_tree(5),
        "dag": gen.citation_graph(32, seed=3, symmetrize=False),
    }


def serve_session(scenario, *, graphs=None, config=None, share=False,
                  connect=True):
    """Run ``scenario(server=, client=, corpus=, socket_path=)`` against
    a live daemon; returns the coroutine's result."""

    async def main():
        corpus = ResidentCorpus(share=share)
        for name, g in (graphs if graphs is not None
                        else default_graphs()).items():
            corpus.add(g, name)
        server = ServeServer(corpus, config or ServeConfig(
            batch_window=0.01, max_batch=8, jobs=0, cache_dir="off"))
        sock = os.path.join(
            tempfile.mkdtemp(prefix="repro-serve-test-"), "t.sock")
        await server.start(sock)
        client = None
        try:
            if connect:
                client = await AsyncServeClient().connect(sock)
            return await scenario(server=server, client=client,
                                  corpus=corpus, socket_path=sock)
        finally:
            if client is not None:
                await client.close()
            await server.stop()
            corpus.close()

    return asyncio.run(main())


@pytest.fixture
def session():
    return serve_session
