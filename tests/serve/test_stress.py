"""Correctness under concurrency: many clients, cancellations, deaths.

The contract under stress: every surviving request gets exactly one
response, that response is the bit-identical result for *its* query (no
cross-request bleed), and a draining shutdown answers everything that
was admitted.  Client misbehavior — cancelling coroutines mid-flight,
dropping whole connections mid-batch — must cost only the misbehaving
client its own responses.
"""

import asyncio
import random

import numpy as np

from repro.core.config import ServeConfig
from repro.core.diggerbees import run_diggerbees
from repro.graphs import generators as gen
from repro.serve.client import AsyncServeClient
from repro.serve.protocol import dfs_result_to_dict

from tests.serve.conftest import serve_session


def _graphs():
    return {"a": gen.binary_tree(5), "b": gen.path_graph(40)}


def _expected_payloads(graphs):
    return {
        (name, root): dfs_result_to_dict(run_diggerbees(g, root))
        for name, g in graphs.items()
        for root in range(0, g.n_vertices, 7)
    }


def test_many_clients_no_lost_duplicated_or_bled_responses():
    graphs = _graphs()
    expected = _expected_payloads(graphs)
    keys = sorted(expected)
    rng = random.Random(42)
    n_clients, per_client = 8, 24

    async def scenario(socket_path, server, **_):
        clients = [await AsyncServeClient().connect(socket_path)
                   for _ in range(n_clients)]
        try:
            plans = [[keys[rng.randrange(len(keys))]
                      for _ in range(per_client)]
                     for _ in range(n_clients)]

            async def drive(client, plan):
                resps = await asyncio.gather(*[
                    client.dfs(name, root,
                               no_cache=rng.random() < 0.25)
                    for name, root in plan])
                return resps

            all_resps = await asyncio.gather(*[
                drive(c, p) for c, p in zip(clients, plans)])
            for plan, resps in zip(plans, all_resps):
                assert len(resps) == per_client          # none lost
                for (name, root), resp in zip(plan, resps):
                    assert resp.ok
                    # No bleed: the payload is for THIS (graph, root).
                    assert resp.result == expected[(name, root)], (
                        f"response for {name}/{root} carries a "
                        f"different query's payload")
            assert server.stats.dropped_responses == 0
        finally:
            for c in clients:
                await c.close()

    serve_session(scenario, graphs=graphs,
                  config=ServeConfig(batch_window=0.005, max_batch=16,
                                     jobs=0, cache_dir="off"))


def test_randomized_cancellation_leaves_survivors_intact():
    graphs = _graphs()
    expected = _expected_payloads(graphs)
    keys = sorted(expected)
    rng = random.Random(7)

    async def scenario(client, server, socket_path, **_):
        other = await AsyncServeClient().connect(socket_path)
        try:
            tasks = []
            for i in range(40):
                name, root = keys[rng.randrange(len(keys))]
                owner = client if i % 2 else other
                tasks.append((name, root, asyncio.ensure_future(
                    owner.dfs(name, root, no_cache=True))))
            await asyncio.sleep(0)          # let requests hit the wire
            cancelled = set()
            for i, (_, _, t) in enumerate(tasks):
                if rng.random() < 0.4:
                    t.cancel()
                    cancelled.add(i)
            for i, (name, root, t) in enumerate(tasks):
                if i in cancelled:
                    try:
                        await t
                    except (asyncio.CancelledError, Exception):
                        pass
                else:
                    resp = await t
                    assert resp.ok
                    assert resp.result == expected[(name, root)]
            # The daemon is still fully functional afterwards.
            resp = await client.dfs("a", 0)
            assert resp.ok and resp.result == expected[("a", 0)]
        finally:
            await other.close()

    serve_session(scenario, graphs=graphs,
                  config=ServeConfig(batch_window=0.005, max_batch=8,
                                     jobs=0, cache_dir="off"))


def test_disconnect_mid_batch_does_not_hurt_batchmates():
    graphs = _graphs()
    expected = _expected_payloads(graphs)

    async def scenario(client, server, socket_path, **_):
        doomed = await AsyncServeClient().connect(socket_path)
        # Both queries land in the same admission group (same graph,
        # same config, window long enough to hold them).
        doomed_task = asyncio.ensure_future(
            doomed.dfs("a", 7, no_cache=True))
        survivor_task = asyncio.ensure_future(
            client.dfs("a", 0, no_cache=True))
        await asyncio.sleep(0.02)           # inside the 0.2s window
        await doomed.close()                # connection dies pre-flush
        doomed_task.cancel()
        try:
            await doomed_task
        except (asyncio.CancelledError, Exception):
            pass
        resp = await asyncio.wait_for(survivor_task, timeout=30)
        assert resp.ok and resp.result == expected[("a", 0)]
        # The dead client's response was dropped, not crashed on.
        await asyncio.sleep(0.05)
        assert server.stats.errors == 0

    serve_session(scenario, graphs=graphs,
                  config=ServeConfig(batch_window=0.2, max_batch=8,
                                     jobs=0, cache_dir="off"))


def test_clean_shutdown_drains_admitted_queries():
    graphs = _graphs()
    expected = _expected_payloads(graphs)

    async def scenario(client, server, **_):
        # Park queries in an admission group with a long window, then
        # stop: the drain must flush and answer them.
        tasks = [asyncio.ensure_future(
            client.dfs("a", r, no_cache=True)) for r in (0, 7, 14)]
        await asyncio.sleep(0.05)           # admitted, not yet flushed
        assert server.policy.pending_count() == 3
        await server.stop(drain=True)
        for root, t in zip((0, 7, 14), tasks):
            resp = await asyncio.wait_for(t, timeout=10)
            assert resp.ok and resp.result == expected[("a", root)]

    serve_session(scenario, graphs=graphs,
                  config=ServeConfig(batch_window=30.0, max_batch=64,
                                     jobs=0, cache_dir="off"))


def test_pipelined_single_connection_interleaving():
    """One connection, interleaved misses/hits/errors: ids never cross."""
    graphs = _graphs()
    expected = _expected_payloads(graphs)

    async def scenario(client, **_):
        outcomes = await asyncio.gather(
            client.dfs("a", 0),
            client.dfs("b", 7),
            client.dfs("a", 10_000),        # error
            client.dfs("a", 0),             # coalesces/hits
            client.query("spanning", "b"),
            return_exceptions=True)
        assert outcomes[0].result == expected[("a", 0)]
        assert outcomes[1].result == expected[("b", 7)]
        assert isinstance(outcomes[2], Exception)
        assert outcomes[3].result == expected[("a", 0)]
        assert outcomes[4].result["n_components"] == 1

    serve_session(scenario, graphs=graphs)


def test_visited_arrays_differ_across_roots():
    """Sanity for the bleed assertions: distinct queries really do have
    distinct payloads, so equality checks above are discriminating."""
    graphs = _graphs()
    expected = _expected_payloads(graphs)
    payloads = [np.array(v["parent"]) for v in expected.values()]
    assert len({p.tobytes() for p in payloads}) > 1
