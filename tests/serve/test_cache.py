"""Result-cache unit tests: keys, LRU, disk spill, corruption recovery."""

import json

from repro.serve.cache import (
    CACHE_VERSION,
    FLUSH_EVERY,
    GraphResultCache,
    default_cache_dir,
    result_key,
)


def _mk(tmp_path=None, *, fp="f" * 16, max_entries=8):
    return GraphResultCache("g", fp, tmp_path, max_entries=max_entries)


# ---------------------------------------------------------------------------
# Keys.
# ---------------------------------------------------------------------------

def test_result_key_deterministic_and_discriminating():
    base = result_key("dfs", 0, {"seed": 1}, "aa")
    assert base == result_key("dfs", 0, {"seed": 1}, "aa")
    assert base != result_key("scc", 0, {"seed": 1}, "aa")
    assert base != result_key("dfs", 1, {"seed": 1}, "aa")
    assert base != result_key("dfs", 0, {"seed": 2}, "aa")
    assert base != result_key("dfs", 0, {"seed": 1}, "bb")
    assert base != result_key("dfs", 0, None, "aa")


def test_result_key_order_independent_config():
    assert (result_key("dfs", 0, {"a": 1, "b": 2}, "aa")
            == result_key("dfs", 0, {"b": 2, "a": 1}, "aa"))


# ---------------------------------------------------------------------------
# In-memory LRU.
# ---------------------------------------------------------------------------

def test_lru_eviction_prefers_least_recently_used():
    cache = _mk(max_entries=2)
    cache.put("a", {"v": 1})
    cache.put("b", {"v": 2})
    assert cache.get("a") is not None   # refresh a
    cache.put("c", {"v": 3})            # evicts b
    assert cache.get("b") is None
    assert cache.get("a")[0] == {"v": 1}
    assert cache.get("c")[0] == {"v": 3}


def test_get_returns_result_and_raw_json():
    cache = _mk()
    cache.put("k", {"x": [1, 2]})
    result, raw = cache.get("k")
    assert result == {"x": [1, 2]}
    assert json.loads(raw) == result


def test_stats_track_hits_and_misses():
    cache = _mk()
    cache.put("k", {})
    cache.get("k")
    cache.get("nope")
    s = cache.stats()
    assert s["hits"] == 1 and s["misses"] == 1 and s["entries"] == 1


def test_zero_capacity_disables_cache(tmp_path):
    cache = GraphResultCache("g", "f" * 16, tmp_path, max_entries=0)
    cache.put("k", {"v": 1})
    assert cache.get("k") is None
    assert len(list(tmp_path.iterdir())) == 0


# ---------------------------------------------------------------------------
# Disk spill.
# ---------------------------------------------------------------------------

def test_flush_and_reload_roundtrip(tmp_path):
    cache = _mk(tmp_path)
    cache.put("k1", {"v": 1})
    cache.put("k2", {"v": [1, 2, 3]})
    cache.flush()
    again = _mk(tmp_path)
    assert again.get("k1")[0] == {"v": 1}
    assert again.get("k2")[0] == {"v": [1, 2, 3]}


def test_autoflush_after_flush_every_inserts(tmp_path):
    cache = _mk(tmp_path, max_entries=FLUSH_EVERY + 8)
    for i in range(FLUSH_EVERY):
        cache.put(f"k{i}", {"v": i})
    assert _mk(tmp_path, max_entries=FLUSH_EVERY + 8).get("k0") is not None


def test_corrupt_cache_file_discarded_and_unlinked(tmp_path):
    cache = _mk(tmp_path)
    cache.put("k", {"v": 1})
    cache.flush()
    path = cache._path
    path.write_text("{ not json at all")
    again = _mk(tmp_path)
    assert again.get("k") is None       # corrupt content was dropped
    assert not path.exists()            # and the bad file removed
    again.put("k", {"v": 2})            # cache still fully functional
    assert again.get("k")[0] == {"v": 2}


def test_version_skew_discards_file(tmp_path):
    cache = _mk(tmp_path)
    cache.put("k", {"v": 1})
    cache.flush()
    data = json.loads(cache._path.read_text())
    data["version"] = CACHE_VERSION + 1
    cache._path.write_text(json.dumps(data))
    assert _mk(tmp_path).get("k") is None


def test_fingerprint_mismatch_discards_file(tmp_path):
    cache = _mk(tmp_path, fp="a" * 16)
    cache.put("k", {"v": 1})
    cache.flush()
    # Same graph name, different content: stale entries must not load.
    other = GraphResultCache("g", "b" * 16, tmp_path, max_entries=8)
    assert other.get("k") is None


def test_truncated_file_discarded(tmp_path):
    cache = _mk(tmp_path)
    cache.put("k", {"v": 1})
    cache.flush()
    body = cache._path.read_text()
    cache._path.write_text(body[: len(body) // 2])
    assert _mk(tmp_path).get("k") is None


def test_default_cache_dir_env_override(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_SERVE_CACHE", str(tmp_path))
    assert default_cache_dir() == tmp_path
    monkeypatch.setenv("REPRO_SERVE_CACHE", "off")
    assert default_cache_dir() is None
    monkeypatch.delenv("REPRO_SERVE_CACHE")
    assert default_cache_dir() is not None
