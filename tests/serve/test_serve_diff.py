"""Serve-diff acceptance: daemon responses bit-identical to direct runs.

Every fuzz graph family must pass the full oracle ladder with the serve
rung active — the daemon (real socket, admission, cache, dispatch) must
reproduce direct execution exactly, parents, visited sets, step counts
and counters included.
"""

import pytest

from repro.check.cases import FAMILIES, case_from_seed
from repro.check.differential import check_case
from repro.check.serve_oracle import serve_oracle
from repro.core.diggerbees import run_diggerbees
from repro.serve.protocol import dfs_result_to_dict


def _seed_for_family(family: str, limit: int = 4000) -> int:
    for seed in range(limit):
        if case_from_seed(seed).family == family:
            return seed
    raise AssertionError(f"no seed below {limit} maps to {family!r}")


@pytest.mark.parametrize("family", FAMILIES)
def test_serve_diff_green_on_family(family):
    """The oracle ladder with the serve rung passes on every family."""
    case = case_from_seed(_seed_for_family(family))
    failure = check_case(case, serve=True)
    assert failure is None, failure.report()


def test_serve_diff_green_on_stress_and_perturbed_cases():
    base = case_from_seed(1, stress=True)
    assert check_case(base, stress=True, serve=True) is None
    perturbed = case_from_seed(2).with_(perturb_seed=77, jitter=2)
    assert check_case(perturbed, serve=True) is None


def test_oracle_payload_equals_direct_execution():
    """The oracle daemon's payload is the canonical payload, both on the
    compute path and on the repeat (cached) path."""
    from dataclasses import asdict

    case = case_from_seed(5)
    graph = case.build_graph()
    config = case.build_config()
    expected = dfs_result_to_dict(
        run_diggerbees(graph, case.root, config=config))
    served, _ = serve_oracle().query_dfs(graph, case.root, asdict(config),
                                         no_cache=True)
    assert served == expected
    cached, was_cached = serve_oracle().query_dfs(
        graph, case.root, asdict(config))
    # First cache-path query may miss (the no_cache one didn't populate)
    # but the payload must be identical either way; the second must hit.
    assert cached == expected
    again, was_cached2 = serve_oracle().query_dfs(
        graph, case.root, asdict(config))
    assert was_cached2 and again == expected


def test_oracle_reuses_resident_graph_by_fingerprint():
    case = case_from_seed(9)
    g1 = case.build_graph()
    g2 = case.build_graph()
    oracle = serve_oracle()
    assert oracle.register(g1) == oracle.register(g2)


def test_serve_rung_detects_payload_drift(monkeypatch):
    """If serving ever changed a payload, the rung must fail loudly.

    Simulated by corrupting the client-visible payload of the oracle's
    query — the rung should report a serve-diff failure, proving the
    comparison has teeth (it is not comparing a value to itself).
    """
    from repro.check import serve_oracle as oracle_mod

    real = oracle_mod.ServeOracle.query_dfs

    def corrupting(self, graph, root, overrides=None, **kwargs):
        result, cached = real(self, graph, root, overrides, **kwargs)
        bad = dict(result)
        bad["cycles"] = bad.get("cycles", 0) + 1
        return bad, cached

    monkeypatch.setattr(oracle_mod.ServeOracle, "query_dfs", corrupting)
    case = case_from_seed(3)
    failure = check_case(case, serve=True)
    assert failure is not None and failure.stage == "serve-diff"
    assert "--serve" in failure.repro_command
