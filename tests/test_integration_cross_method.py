"""Cross-method integration: all seven methods agree on reachability.

One graph, every method in the registry: whatever else their output
semantics differ in (Table 2), the visited set is ground truth and must
be identical across Serial-DFS, CKL/ACR-PDFS, NVG-DFS, Naive-GPU-DFS,
DiggerBees, and both BFS baselines — for multiple roots, including roots
in a small component.
"""

import numpy as np
import pytest

from repro.baselines import (
    run_acr_pdfs,
    run_berrybees_bfs,
    run_ckl_pdfs,
    run_gunrock_bfs,
    run_naive_gpu_dfs,
    run_nvg_dfs,
    run_serial_dfs,
)
from repro.core import DiggerBeesConfig, run_diggerbees
from repro.graphs import generators as gen
from repro.graphs.csr import from_edges
from repro.utils.rng import make_rng
from repro.validate import reachable_mask

CFG = DiggerBeesConfig(n_blocks=2, warps_per_block=4, hot_size=16,
                       hot_cutoff=4, cold_cutoff=4, flush_batch=4,
                       refill_batch=4, cold_reserve=16, seed=6)


def all_visited_sets(graph, root):
    outs = {
        "serial": run_serial_dfs(graph, root).traversal.visited,
        "ckl": run_ckl_pdfs(graph, root, cores=4, seed=6).traversal.visited,
        "acr": run_acr_pdfs(graph, root, cores=4, seed=6).traversal.visited,
        "naive": run_naive_gpu_dfs(graph, root, n_warps=4).traversal.visited,
        "diggerbees": run_diggerbees(graph, root, config=CFG).traversal.visited,
        "gunrock": run_gunrock_bfs(graph, root).traversal.visited,
        "berrybees": run_berrybees_bfs(graph, root).traversal.visited,
    }
    try:
        outs["nvg"] = run_nvg_dfs(
            graph, root, memory_budget_per_vertex=10**9).traversal.visited
    except Exception:  # pragma: no cover - NVG memory path tested elsewhere
        pass
    return outs


@pytest.mark.parametrize("builder,seed", [
    (lambda s: gen.road_network(700, seed=s), 1),
    (lambda s: gen.preferential_attachment(500, m=4, seed=s), 2),
    (lambda s: gen.delaunay_mesh(400, seed=s), 3),
])
def test_all_methods_agree_on_connected_graphs(builder, seed):
    g = builder(seed)
    truth = reachable_mask(g, 0)
    for name, visited in all_visited_sets(g, 0).items():
        assert np.array_equal(visited, truth), f"{name} disagrees"


def test_all_methods_agree_on_fragmented_graph():
    """Random sparse graph with several components; roots inside both a
    large and a tiny component."""
    rng = make_rng(9)
    edges = rng.integers(0, 300, size=(260, 2))
    both = np.vstack([edges, edges[:, ::-1]])
    g = from_edges(300, both, dedupe=True, drop_self_loops=True)
    for root in (0, 137, 299):
        truth = reachable_mask(g, root)
        for name, visited in all_visited_sets(g, root).items():
            assert np.array_equal(visited, truth), f"{name} at root {root}"


def test_dfs_methods_agree_on_edge_work():
    """Work-efficient DFS methods inspect exactly the reachable arcs."""
    g = gen.co_purchase(600, seed=4)
    expected = int(g.degree()[reachable_mask(g, 0)].sum())
    assert run_serial_dfs(g, 0).traversal.edges_traversed == expected
    assert run_ckl_pdfs(g, 0, cores=4).traversal.edges_traversed == expected
    assert run_diggerbees(g, 0, config=CFG).traversal.edges_traversed == expected
    assert run_naive_gpu_dfs(g, 0, n_warps=4).traversal.edges_traversed == expected
