"""Unit tests for the serial DFS baseline wrapper."""

import pytest

from repro.baselines.serial import run_serial_dfs
from repro.graphs import generators as gen
from repro.validate import validate_traversal


class TestSerialBaseline:
    def test_output_is_strict_lexicographic(self, small_road):
        res = run_serial_dfs(small_road, 0)
        rep = validate_traversal(small_road, res.traversal, check_lex=True)
        assert rep.strict_dfs and rep.lexicographic

    def test_timing_scales_with_size(self):
        small = run_serial_dfs(gen.path_graph(100), 0)
        big = run_serial_dfs(gen.path_graph(1000), 0)
        assert big.cycles > 5 * small.cycles

    def test_mteps_positive(self, tiny_tree):
        assert run_serial_dfs(tiny_tree, 0).mteps > 0

    def test_method_label(self, tiny_path):
        assert run_serial_dfs(tiny_path, 0).method == "Serial-DFS"

    def test_high_degree_cheaper_per_edge(self):
        """Cache-line amortization: a dense graph is cheaper per edge."""
        dense = gen.complete_graph(60)      # degree 59
        sparse = gen.path_graph(60)         # degree 2
        d = run_serial_dfs(dense, 0)
        s = run_serial_dfs(sparse, 0)
        assert (d.cycles / d.traversal.edges_traversed
                < s.cycles / s.traversal.edges_traversed)
