"""White-box tests for the BFS kernel cost model internals."""

import numpy as np
import pytest

from repro.baselines.gpu_bfs import (
    _frontier_edge_counts,
    run_berrybees_bfs,
    run_gunrock_bfs,
)
from repro.graphs import generators as gen
from repro.graphs.properties import bfs_levels
from repro.sim.device import H100


class TestFrontierEdgeCounts:
    def test_path(self):
        g = gen.path_graph(4)
        counts = _frontier_edge_counts(g, bfs_levels(g, 0))
        # Levels: {0}, {1}, {2}, {3} with degrees 1,2,2,1.
        assert counts == [1, 2, 2, 1]

    def test_star(self):
        g = gen.star_graph(6)
        counts = _frontier_edge_counts(g, bfs_levels(g, 0))
        assert counts == [5, 5]  # hub then all leaves

    def test_total_equals_reachable_degree_sum(self, small_social):
        lv = bfs_levels(small_social, 0)
        counts = _frontier_edge_counts(small_social, lv)
        assert sum(counts) == int(small_social.degree()[lv >= 0].sum())

    def test_unreachable_excluded(self, disconnected_graph):
        lv = bfs_levels(disconnected_graph, 0)
        counts = _frontier_edge_counts(disconnected_graph, lv)
        assert sum(counts) == 6  # the triangle's arcs only

    def test_empty_when_nothing_reached(self):
        g = gen.path_graph(3)
        level = np.full(3, -1, dtype=np.int64)
        assert _frontier_edge_counts(g, level) == []


class TestCostComposition:
    def test_cycles_are_launches_plus_work(self):
        g = gen.path_graph(50)
        res = run_gunrock_bfs(g, 0, device=H100, sim_scale=0.125)
        costs = H100.costs
        sms = H100.default_blocks(0.125)
        expect = 0.0
        for fe in _frontier_edge_counts(g, bfs_levels(g, 0)):
            expect += costs.kernel_launch + fe / (costs.bfs_edge_throughput * sms)
        assert res.cycles == int(expect)

    def test_berrybees_bitmap_bonus_only_on_wide_frontiers(self):
        """Narrow frontiers (deep path) gain only the cheaper launch; wide
        frontiers also gain streaming speedup."""
        deep = gen.path_graph(400)
        wide = gen.star_graph(4000)
        for g in (deep, wide):
            gun = run_gunrock_bfs(g, 0, device=H100, sim_scale=0.125)
            bb = run_berrybees_bfs(g, 0, device=H100, sim_scale=0.125)
            assert bb.cycles < gun.cycles
        # The wide graph's relative gain exceeds the launch-only 20%.
        deep_gain = (run_gunrock_bfs(deep, 0).cycles
                     / run_berrybees_bfs(deep, 0).cycles)
        wide_gain = (run_gunrock_bfs(wide, 0).cycles
                     / run_berrybees_bfs(wide, 0).cycles)
        assert wide_gain > deep_gain

    def test_single_vertex_graph(self):
        g = gen.path_graph(1)
        res = run_gunrock_bfs(g, 0)
        assert res.n_levels == 1
        assert res.traversal.edges_traversed == 0
        assert res.cycles > 0
