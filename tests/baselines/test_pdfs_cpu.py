"""Unit + integration tests for the CPU PDFS baselines (CKL / ACR)."""

import numpy as np
import pytest

from repro.baselines.pdfs_cpu import run_acr_pdfs, run_ckl_pdfs
from repro.errors import SimulationError
from repro.graphs import generators as gen
from repro.validate.reference import reachable_mask


@pytest.mark.parametrize("runner", [run_ckl_pdfs, run_acr_pdfs],
                         ids=["ckl", "acr"])
class TestBothProtocols:
    def test_reachability_correct(self, runner, small_road):
        res = runner(small_road, 0, cores=4, seed=1)
        assert np.array_equal(res.traversal.visited,
                              reachable_mask(small_road, 0))

    def test_reachability_on_social(self, runner, small_social):
        res = runner(small_social, 0, cores=4, seed=1)
        assert np.array_equal(res.traversal.visited,
                              reachable_mask(small_social, 0))

    def test_disconnected(self, runner, disconnected_graph):
        res = runner(disconnected_graph, 0, cores=2, seed=1)
        assert res.traversal.n_visited == 3

    def test_single_core_works(self, runner, tiny_path):
        res = runner(tiny_path, 0, cores=1, seed=1)
        assert res.traversal.n_visited == 10

    def test_single_vertex(self, runner):
        g = gen.path_graph(1)
        res = runner(g, 0, cores=4, seed=1)
        assert res.traversal.n_visited == 1

    def test_no_tree_output(self, runner, small_road):
        """Table 2: CPU baselines report reachability only."""
        res = runner(small_road, 0, cores=4, seed=1)
        parent = res.traversal.parent
        assert np.all(parent[1:][res.traversal.visited[1:]] == -2)

    def test_deterministic(self, runner, small_road):
        a = runner(small_road, 0, cores=4, seed=5)
        b = runner(small_road, 0, cores=4, seed=5)
        assert a.cycles == b.cycles
        assert a.counters.edges_traversed == b.counters.edges_traversed

    def test_work_conservation(self, runner, small_road):
        res = runner(small_road, 0, cores=4, seed=1)
        assert res.counters.pushes == res.counters.pops
        assert res.counters.pushes == res.traversal.n_visited

    def test_mteps_positive(self, runner, small_road):
        assert runner(small_road, 0, cores=4, seed=1).mteps > 0

    def test_invalid_cores(self, runner, tiny_path):
        with pytest.raises(SimulationError):
            runner(tiny_path, 0, cores=0)


class TestProtocolDifferences:
    def test_methods_labelled(self, small_road):
        assert run_ckl_pdfs(small_road, 0, cores=2).method == "CKL-PDFS"
        assert run_acr_pdfs(small_road, 0, cores=2).method == "ACR-PDFS"

    def test_stealing_happens_with_multiple_cores(self, small_road):
        res = run_ckl_pdfs(small_road, 0, cores=8, seed=1)
        assert res.counters.intra_steal_successes > 0

    def test_acr_donations_happen(self, small_road):
        res = run_acr_pdfs(small_road, 0, cores=8, seed=1)
        assert res.counters.intra_steal_successes > 0

    def test_parallel_faster_than_single_core(self):
        g = gen.delaunay_mesh(1500, seed=2)
        one = run_ckl_pdfs(g, 0, cores=1, seed=1)
        eight = run_ckl_pdfs(g, 0, cores=8, seed=1)
        assert eight.cycles < one.cycles

    def test_sim_scale_sets_cores(self, small_road):
        res = run_ckl_pdfs(small_road, 0, sim_scale=0.125, seed=1)
        assert res.cores == 8

    def test_acr_not_faster_than_ckl_on_average(self):
        """The paper's speedup over ACR (1.83x) exceeds CKL's (1.37x):
        ACR's donation latency makes it the slower baseline overall.
        Check the geomean relation over a few graphs rather than any
        single run."""
        import math

        ratios = []
        for seed in (1, 2, 3):
            g = gen.road_network(1200, seed=seed)
            c = run_ckl_pdfs(g, 0, cores=8, seed=seed)
            a = run_acr_pdfs(g, 0, cores=8, seed=seed)
            ratios.append(a.cycles / c.cycles)
        geo = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
        assert geo >= 0.95  # ACR is not systematically faster
