"""Unit + integration tests for the NVG-DFS baseline."""

import numpy as np
import pytest

from repro.baselines.nvg_dfs import is_dag, nvg_memory_footprint, run_nvg_dfs
from repro.errors import MemoryLimitExceeded
from repro.graphs import generators as gen
from repro.graphs.csr import from_edges
from repro.graphs.properties import bfs_levels
from repro.validate import check_lexicographic, serial_dfs, validate_traversal


class TestIsDag:
    def test_dag_detected(self, dag_graph):
        assert is_dag(dag_graph)

    def test_cycle_detected(self):
        g = from_edges(3, [(0, 1), (1, 2), (2, 0)], directed=True)
        assert not is_dag(g)

    def test_undirected_never_dag(self, small_road):
        assert not is_dag(small_road)


class TestDagMode:
    """On true DAGs the mechanical path propagation must match serial
    lexicographic DFS exactly — the core correctness claim of Naumov's
    construction."""

    def test_diamond_dag(self, dag_graph):
        res = run_nvg_dfs(dag_graph, 0)
        ref = serial_dfs(dag_graph, 0)
        assert np.array_equal(res.traversal.parent, ref.parent)
        assert np.array_equal(res.traversal.order, ref.order)

    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_random_citation_dags(self, seed):
        g = gen.citation_graph(300, seed=seed, symmetrize=False)
        assert is_dag(g)
        res = run_nvg_dfs(g, g.n_vertices - 1)  # newest paper reaches back
        check_lexicographic(g, res.traversal)

    def test_dag_with_unreachable(self, dag_graph):
        res = run_nvg_dfs(dag_graph, 1)  # vertex 0 unreachable from 1
        assert not res.traversal.visited[0]
        assert res.traversal.visited[3]


class TestGeneralMode:
    def test_lexicographic_on_undirected(self, small_road):
        res = run_nvg_dfs(small_road, 0)
        check_lexicographic(small_road, res.traversal)
        validate_traversal(small_road, res.traversal, check_lex=True)

    def test_rounds_equal_tree_depth(self, paper_example_graph):
        res = run_nvg_dfs(paper_example_graph, 0)
        # Serial tree a->b->d->e->c->f has depth 5 (f at depth 5).
        assert res.rounds == 6

    def test_slower_on_deeper_graphs(self):
        shallow = gen.star_graph(1000)
        deep = gen.path_graph(1000)
        rs = run_nvg_dfs(shallow, 0)
        # The deep run needs a raised memory budget just to complete.
        rd = run_nvg_dfs(deep, 0, memory_budget_per_vertex=10**9)
        assert rd.cycles > 10 * rs.cycles


class TestMemoryFailure:
    def test_deep_graph_fails(self):
        """The paper's headline failure mode: path tracking explodes on
        deep graphs (44/234 graphs fail)."""
        g = gen.path_graph(2000)
        with pytest.raises(MemoryLimitExceeded) as exc:
            run_nvg_dfs(g, 0)
        assert exc.value.required_bytes > exc.value.available_bytes

    def test_shallow_graph_succeeds(self):
        g = gen.star_graph(2000)
        res = run_nvg_dfs(g, 0)
        assert res.traversal.n_visited == 2000

    def test_budget_override(self):
        g = gen.path_graph(500)
        with pytest.raises(MemoryLimitExceeded):
            run_nvg_dfs(g, 0, memory_budget_per_vertex=100)
        res = run_nvg_dfs(g, 0, memory_budget_per_vertex=10**9)
        assert res.traversal.n_visited == 500

    def test_footprint_monotone_in_depth(self):
        deep = gen.path_graph(400)
        shallow = gen.star_graph(400)
        fd = nvg_memory_footprint(deep, bfs_levels(deep, 0))
        fs = nvg_memory_footprint(shallow, bfs_levels(shallow, 0))
        assert fd > fs


class TestTiming:
    def test_mteps_positive(self, small_social):
        assert run_nvg_dfs(small_social, 0).mteps > 0

    def test_levels_reported(self, tiny_path):
        res = run_nvg_dfs(tiny_path, 0)
        assert res.levels == 10
