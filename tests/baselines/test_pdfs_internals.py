"""White-box tests of the CPU PDFS protocol internals (CKL vs ACR)."""

import numpy as np
import pytest

from repro.baselines.pdfs_cpu import (
    CPU_SCAN_WIDTH,
    _CoreAgent,
    _CpuRunState,
    run_acr_pdfs,
    run_ckl_pdfs,
)
from repro.graphs import generators as gen
from repro.sim.device import XEON_MAX_9462


def make_state(graph, cores=4, root=0, seed=1):
    return _CpuRunState(graph, root, cores, XEON_MAX_9462, seed)


class TestCklProtocol:
    def test_steal_takes_half_from_oldest_end(self):
        g = gen.path_graph(64)
        state = make_state(g, cores=2)
        # Hand-build a victim deque of 8 entries on core 0.
        state.deques[0] = [[v, 0] for v in range(10, 18)]
        thief = _CoreAgent(state, 1, "ckl")
        # Force the RNG to pick victim 0 by monkeypatching the stream.
        state.rngs[1] = np.random.default_rng(0)
        for _ in range(20):
            if state.deques[1]:
                break
            thief.step(0)
        assert state.deques[1], "thief never stole"
        stolen = [v for v, _ in state.deques[1]]
        assert stolen == list(range(10, 14))       # oldest half
        assert [v for v, _ in state.deques[0]] == list(range(14, 18))

    def test_steal_is_adaptive(self):
        """The amount scales with the victim's deque (steal-half)."""
        g = gen.path_graph(64)
        for size, expected in ((2, 1), (8, 4), (20, 10)):
            state = make_state(g, cores=2)
            state.deques[0] = [[v, 0] for v in range(size)]
            thief = _CoreAgent(state, 1, "ckl")
            state.rngs[1] = np.random.default_rng(0)
            for _ in range(30):
                if state.deques[1]:
                    break
                thief.step(0)
            assert len(state.deques[1]) == expected

    def test_no_steal_from_singleton(self):
        g = gen.path_graph(8)
        state = make_state(g, cores=2)
        # Core 0 holds only the root entry: not a valid victim.
        thief = _CoreAgent(state, 1, "ckl")
        for _ in range(10):
            thief.step(0)
        assert not state.deques[1]


class TestAcrProtocol:
    def test_request_then_donate_then_collect(self):
        g = gen.path_graph(64)
        state = make_state(g, cores=2)
        state.deques[0] = [[v, 0] for v in range(10, 18)]
        victim = _CoreAgent(state, 0, "acr")
        thief = _CoreAgent(state, 1, "acr")
        state.rngs[1] = np.random.default_rng(0)
        # 1. Thief posts a request.
        for _ in range(10):
            if state.requests[0] is not None:
                break
            thief.step(0)
        assert state.requests[0] == 1
        # 2. Victim services it on its next step (donates half).
        victim.step(0)
        assert state.requests[0] is None
        assert state.mailboxes[1] is not None
        assert [v for v, _ in state.mailboxes[1]] == list(range(10, 14))
        # 3. Thief collects the donation.
        thief.step(0)
        assert state.mailboxes[1] is None
        assert [v for v, _ in state.deques[1]] == list(range(10, 14))

    def test_victim_declines_when_too_small(self):
        g = gen.path_graph(8)
        state = make_state(g, cores=2)
        state.requests[0] = 1        # pending request, deque has 1 entry
        victim = _CoreAgent(state, 0, "acr")
        victim.step(0)
        assert state.requests[0] is None     # cleared
        assert state.mailboxes[1] is None    # but nothing donated

    def test_stale_request_on_idle_victim_cleared(self):
        g = gen.path_graph(8)
        state = make_state(g, cores=2, root=0)
        state.deques[0].clear()
        state.pending = 1            # keep the run notionally alive
        state.requests[0] = 1
        victim = _CoreAgent(state, 0, "acr")
        victim.step(0)
        assert state.requests[0] is None

    def test_one_outstanding_request_per_victim(self):
        g = gen.path_graph(64)
        state = make_state(g, cores=3)
        state.deques[0] = [[v, 0] for v in range(10, 18)]
        state.requests[0] = 2        # core 2 already asked
        thief = _CoreAgent(state, 1, "acr")
        state.rngs[1] = np.random.default_rng(0)
        for _ in range(10):
            thief.step(0)
        assert state.requests[0] == 2  # never overwritten


class TestScanWindow:
    def test_cpu_scan_width(self):
        assert CPU_SCAN_WIDTH == 8

    def test_wide_rows_take_multiple_steps(self):
        g = gen.star_graph(40)  # hub degree 39
        state = make_state(g, cores=1)
        core = _CoreAgent(state, 0, "ckl")
        core.step(0)  # first window claims leaf at offset 0
        assert state.counters.edges_traversed == 1
        # Hub entry's offset advanced by exactly one claim.
        assert state.deques[0][0][0] == 0  # hub still at the bottom


class TestEndToEndAgreement:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_protocols_agree_on_visited(self, seed):
        g = gen.co_purchase(500, seed=seed)
        a = run_ckl_pdfs(g, 0, cores=6, seed=seed)
        b = run_acr_pdfs(g, 0, cores=6, seed=seed)
        assert np.array_equal(a.traversal.visited, b.traversal.visited)
