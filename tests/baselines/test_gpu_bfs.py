"""Unit tests for the GPU BFS baselines (Gunrock / BerryBees)."""

import numpy as np
import pytest

from repro.baselines.gpu_bfs import best_bfs, run_berrybees_bfs, run_gunrock_bfs
from repro.graphs import generators as gen
from repro.sim.device import A100, H100
from repro.validate.reference import reachable_mask


@pytest.mark.parametrize("runner", [run_gunrock_bfs, run_berrybees_bfs],
                         ids=["gunrock", "berrybees"])
class TestCorrectness:
    def test_visited_matches_reachable(self, runner, small_road):
        res = runner(small_road, 0)
        assert np.array_equal(res.traversal.visited,
                              reachable_mask(small_road, 0))

    def test_levels_output(self, runner, tiny_path):
        """Table 2: BFS baselines output levels."""
        res = runner(tiny_path, 0)
        assert list(res.level) == list(range(10))
        assert res.n_levels == 10

    def test_disconnected(self, runner, disconnected_graph):
        res = runner(disconnected_graph, 0)
        assert res.traversal.n_visited == 3
        assert res.level[4] == -1

    def test_edges_counted_once(self, runner, small_social):
        res = runner(small_social, 0)
        deg = small_social.degree()
        assert res.traversal.edges_traversed == int(
            deg[res.traversal.visited].sum())

    def test_deterministic(self, runner, small_road):
        assert runner(small_road, 0).cycles == runner(small_road, 0).cycles


class TestCostModel:
    def test_launch_overhead_dominates_deep_graphs(self):
        """The paper's core BFS pathology: cost scales with level count on
        deep graphs even at equal edge counts."""
        deep = gen.path_graph(3000)
        shallow = gen.star_graph(3000)
        assert run_gunrock_bfs(deep, 0).cycles > 50 * run_gunrock_bfs(shallow, 0).cycles

    def test_berrybees_wins_on_wide_frontiers(self, small_social):
        g = run_gunrock_bfs(small_social, 0)
        b = run_berrybees_bfs(small_social, 0)
        assert b.cycles < g.cycles

    def test_best_bfs_picks_faster(self, small_social, small_road):
        for g in (small_social, small_road):
            best = best_bfs(g, 0)
            gun = run_gunrock_bfs(g, 0)
            bb = run_berrybees_bfs(g, 0)
            assert best.cycles == min(gun.cycles, bb.cycles)

    def test_sim_scale_reduces_throughput(self, small_social):
        full = run_gunrock_bfs(small_social, 0, sim_scale=1.0)
        tiny = run_gunrock_bfs(small_social, 0, sim_scale=0.1)
        assert tiny.cycles >= full.cycles

    def test_device_difference(self, small_social):
        h = run_gunrock_bfs(small_social, 0, device=H100)
        a = run_gunrock_bfs(small_social, 0, device=A100)
        assert h.cycles != a.cycles

    def test_methods_labelled(self, tiny_path):
        assert run_gunrock_bfs(tiny_path, 0).method == "Gunrock"
        assert run_berrybees_bfs(tiny_path, 0).method == "BerryBees"
