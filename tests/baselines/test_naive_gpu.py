"""Tests for the naive per-thread-stack GPU DFS strawman."""

import numpy as np
import pytest

from repro.baselines.naive_gpu import run_naive_gpu_dfs
from repro.core import DiggerBeesConfig, run_diggerbees
from repro.errors import SimulationError
from repro.graphs import generators as gen
from repro.validate import reachable_mask, validate_traversal


class TestCorrectness:
    def test_valid_tree(self, small_road):
        res = run_naive_gpu_dfs(small_road, 0, n_warps=8)
        validate_traversal(small_road, res.traversal)

    def test_visits_reachable(self, disconnected_graph):
        res = run_naive_gpu_dfs(disconnected_graph, 0, n_warps=4)
        assert np.array_equal(res.traversal.visited,
                              reachable_mask(disconnected_graph, 0))

    def test_single_vertex(self):
        res = run_naive_gpu_dfs(gen.path_graph(1), 0, n_warps=4)
        assert res.traversal.n_visited == 1

    def test_work_conserved(self, small_social):
        res = run_naive_gpu_dfs(small_social, 0, n_warps=8)
        c = res.counters
        assert c.pushes == c.pops == res.traversal.n_visited

    def test_invalid_warps(self, tiny_path):
        with pytest.raises(SimulationError):
            run_naive_gpu_dfs(tiny_path, 0, n_warps=0)

    def test_deterministic(self, small_road):
        a = run_naive_gpu_dfs(small_road, 0, n_warps=8)
        b = run_naive_gpu_dfs(small_road, 0, n_warps=8)
        assert a.cycles == b.cycles


class TestStrawmanBehaviour:
    def test_only_seeded_warp_works(self, small_road):
        """No stealing: all tasks stay on warp 0 (the seeded one)."""
        res = run_naive_gpu_dfs(small_road, 0, n_warps=8)
        assert set(res.counters.tasks_per_block) == {0}

    def test_diggerbees_beats_naive(self):
        """The paper's machinery must decisively beat the naive port —
        this is the quantified version of §2.3's three challenges."""
        g = gen.road_network(2000, seed=3)
        naive = run_naive_gpu_dfs(g, 0, n_warps=64)
        cfg = DiggerBeesConfig(n_blocks=8, warps_per_block=8, seed=3)
        db = run_diggerbees(g, 0, config=cfg)
        assert db.mteps > 2.0 * naive.mteps

    def test_extra_warps_do_not_help(self):
        """Issue #3 with no remedy: without stealing, adding warps adds
        nothing — the seeded warp does all the work either way."""
        g = gen.road_network(1200, seed=3)
        one = run_naive_gpu_dfs(g, 0, n_warps=1)
        many = run_naive_gpu_dfs(g, 0, n_warps=64)
        assert many.cycles >= one.cycles * 0.95

    def test_divergent_lanes_serialize(self):
        """Per-step cost grows with the number of active lanes: the same
        vertex count costs more warp-cycles when spread over lanes."""
        from repro.baselines.naive_gpu import (
            LANE_SERIALIZATION,
            LOCAL_STACK_OP,
            _NaiveState,
            _NaiveWarp,
        )
        from repro.sim.device import H100

        g = gen.star_graph(40)
        state = _NaiveState(g, 0, 1, H100)
        warp = _NaiveWarp(state, 0)
        one_lane = warp.step(0).cost       # only the hub's lane active
        for _ in range(6):                 # spread work over lanes
            warp.step(0)
        many = warp.step(0).cost
        assert many > one_lane
        assert many >= H100.costs.visit_base + 2 * (LANE_SERIALIZATION
                                                    + LOCAL_STACK_OP)
