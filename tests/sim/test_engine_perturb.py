"""Schedule-perturbation tests: fuzzing must stay deterministic per seed
and only ever produce alternative *legal* interleavings."""

import numpy as np
import pytest

from repro.core import DiggerBeesConfig, run_diggerbees
from repro.errors import SimulationError
from repro.graphs import generators as gen
from repro.sim.engine import EventLoop
from repro.validate.reference import serial_dfs
from repro.validate.tree import validate_traversal

CFG = DiggerBeesConfig(n_blocks=2, warps_per_block=4, hot_size=8,
                       hot_cutoff=2, cold_cutoff=2, flush_batch=2,
                       refill_batch=2, cold_reserve=16, seed=11)


def perturbed(seed, jitter=2):
    return CFG.with_overrides(perturb_seed=seed, jitter=jitter)


class TestDeterminism:
    def test_same_perturb_seed_is_bit_identical(self):
        g = gen.delaunay_mesh(200, seed=11)
        a = run_diggerbees(g, 0, config=perturbed(42))
        b = run_diggerbees(g, 0, config=perturbed(42))
        assert a.cycles == b.cycles
        assert a.engine.steps == b.engine.steps
        assert np.array_equal(a.traversal.parent, b.traversal.parent)

    def test_different_perturb_seeds_explore_different_schedules(self):
        """Across a handful of seeds the perturber must actually change
        the interleaving (otherwise it fuzzes nothing)."""
        g = gen.delaunay_mesh(200, seed=11)
        runs = {run_diggerbees(g, 0, config=perturbed(s)).engine.steps
                for s in range(5)}
        assert len(runs) > 1


class TestLegality:
    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_perturbed_runs_remain_valid(self, seed):
        g = gen.road_network(300, seed=11)
        res = run_diggerbees(g, 0, config=perturbed(seed, jitter=3),
                             check_invariants=True)
        validate_traversal(g, res.traversal)
        ref = serial_dfs(g, 0)
        assert np.array_equal(ref.visited, res.traversal.visited)

    def test_adversarial_victims_remain_valid(self):
        g = gen.preferential_attachment(240, m=3, seed=11)
        cfg = CFG.with_overrides(perturb_seed=5, jitter=2,
                                 adversarial_victims=True)
        res = run_diggerbees(g, 0, config=cfg, check_invariants=True)
        ref = serial_dfs(g, 0)
        assert np.array_equal(ref.visited, res.traversal.visited)


class TestValidation:
    def test_jitter_without_seed_rejected_by_config(self):
        with pytest.raises(SimulationError, match="jitter"):
            CFG.with_overrides(jitter=1)

    def test_negative_jitter_rejected_by_config(self):
        with pytest.raises(SimulationError, match="jitter"):
            CFG.with_overrides(jitter=-1, perturb_seed=0)

    def test_engine_rejects_inconsistent_fuzz_args(self):
        agent = object()  # constructor-arg validation fires before use
        with pytest.raises(SimulationError, match="jitter"):
            EventLoop([agent], is_terminated=lambda: True, jitter=-1)
        with pytest.raises(SimulationError, match="jitter"):
            EventLoop([agent], is_terminated=lambda: True, jitter=2)


class TestDefaultPathUnchanged:
    def test_unperturbed_schedule_matches_pre_fuzz_engine(self):
        """perturb_seed=None must take the production scheduler path:
        heap and calendar agree and results are reproducible."""
        g = gen.road_network(300, seed=11)
        heap = run_diggerbees(g, 0, config=CFG)
        cal = run_diggerbees(g, 0,
                             config=CFG.with_overrides(scheduler="calendar"))
        assert heap.cycles == cal.cycles
        assert heap.engine.steps == cal.engine.steps
        assert np.array_equal(heap.traversal.parent, cal.traversal.parent)
