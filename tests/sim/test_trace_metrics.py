"""Unit tests for counters, tracing, and performance metrics."""

import pytest

from repro.sim.metrics import PerfSample, mteps
from repro.sim.trace import SimCounters, TraceLog


class TestCounters:
    def test_record_task(self):
        c = SimCounters()
        c.record_task(0, 1)
        c.record_task(0, 1)
        c.record_task(2, 0, count=3)
        assert c.tasks_per_block == {0: 2, 2: 3}
        assert c.tasks_per_warp == {(0, 1): 2, (2, 0): 3}

    def test_block_task_array_dense(self):
        c = SimCounters()
        c.record_task(1, 0)
        assert c.block_task_array(3) == [0, 1, 0]

    def test_fail_rates(self):
        c = SimCounters()
        assert c.intra_steal_fail_rate == 0.0
        c.intra_steal_attempts = 10
        c.intra_steal_successes = 7
        assert c.intra_steal_fail_rate == pytest.approx(0.3)
        c.cas_attempts = 4
        c.cas_failures = 1
        assert c.cas_failure_rate == 0.25

    def test_as_dict_summarizes_maps(self):
        c = SimCounters()
        c.record_task(0, 0)
        d = c.as_dict()
        assert d["n_blocks_with_tasks"] == 1
        assert "tasks_per_block" not in d


class TestTraceLog:
    def test_record_and_filter(self):
        t = TraceLog()
        t.record(0, 0, 0, "visit", (1, 2))
        t.record(5, 1, 2, "flush")
        t.record(9, 0, 0, "visit")
        assert len(t) == 3
        assert len(t.filter(kind="visit")) == 2
        assert len(t.filter(block=1)) == 1
        assert len(t.filter(kind="visit", block=0, warp=0)) == 2

    def test_kinds_histogram(self):
        t = TraceLog()
        for _ in range(3):
            t.record(0, 0, 0, "pop")
        assert t.kinds() == {"pop": 3}

    def test_limit_truncates_not_raises(self):
        t = TraceLog(limit=2)
        for i in range(5):
            t.record(i, 0, 0, "visit")
        assert len(t) == 2
        assert t.truncated

    def test_bad_limit(self):
        with pytest.raises(ValueError):
            TraceLog(limit=0)


class TestMetrics:
    def test_mteps(self):
        assert mteps(2_000_000, 1.0) == 2.0
        assert mteps(500_000, 0.5) == 1.0

    def test_mteps_invalid(self):
        with pytest.raises(ValueError):
            mteps(100, 0.0)
        with pytest.raises(ValueError):
            mteps(-1, 1.0)

    def test_perf_sample(self):
        s = PerfSample(method="X", graph="g", device="H100", root=0,
                       edges_traversed=1_000_000, cycles=10, seconds=1.0)
        assert s.mteps == 1.0
        assert not s.failed

    def test_failure_sample(self):
        s = PerfSample.failure("NVG-DFS", "euro", "H100", 0, "OOM")
        assert s.failed
        assert s.mteps == 0.0
        assert s.failure_reason == "OOM"
