"""Unit tests for device models and cost tables."""

import pytest

from repro.sim.device import (
    A100,
    H100,
    XEON_MAX_9462,
    DeviceSpec,
    get_device,
    hotring_smem_bytes,
    required_stack_bytes,
    stack_entry_bytes,
)


class TestPresets:
    def test_table1_sm_counts(self):
        assert A100.sm_count == 108
        assert H100.sm_count == 132

    def test_table1_memory(self):
        assert A100.memory_bytes == 80 * 2**30
        assert H100.memory_bytes == 64 * 2**30

    def test_cpu_cores(self):
        assert XEON_MAX_9462.cores == 64

    def test_h100_has_tma_refill_advantage(self):
        """Paper §3.3: TMA-driven refill ~5% faster; Ampere lacks TMA."""
        assert H100.costs.refill_base < H100.costs.flush_base
        assert A100.costs.refill_base == A100.costs.flush_base

    def test_lookup(self):
        assert get_device("a100") is A100
        assert get_device("H100") is H100
        with pytest.raises(KeyError):
            get_device("V100")


class TestScaling:
    def test_default_blocks_full(self):
        assert H100.default_blocks() == 132
        assert A100.default_blocks() == 108

    def test_default_blocks_scaled_keeps_ratio(self):
        h = H100.default_blocks(0.25)
        a = A100.default_blocks(0.25)
        assert h == 33 and a == 27

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            H100.default_blocks(0)
        with pytest.raises(ValueError):
            H100.default_blocks(1.5)
        with pytest.raises(ValueError):
            XEON_MAX_9462.default_cores(-1)

    def test_cpu_scaled_cores(self):
        assert XEON_MAX_9462.default_cores(0.125) == 8

    def test_cycles_to_seconds(self):
        assert H100.cycles_to_seconds(H100.clock_hz) == pytest.approx(1.0)

    def test_scaled_override(self):
        mini = H100.scaled(sm_count=4)
        assert mini.sm_count == 4
        assert H100.sm_count == 132  # frozen original


class TestMemoryHelpers:
    def test_entry_is_eight_bytes(self):
        assert stack_entry_bytes() == 8

    def test_hotring_fits_smem(self):
        """Paper defaults (128 entries, up to 32 warps) must fit an SM."""
        need = hotring_smem_bytes(128, 32)
        assert need <= H100.shared_mem_per_block
        assert need <= A100.shared_mem_per_block

    def test_deep_stack_does_not_fit(self):
        """Paper issue #1: a road-network path of tens of thousands of
        vertices needs far more stack than shared memory offers."""
        assert required_stack_bytes(50_000) > H100.shared_mem_per_block

    def test_smem_grows_with_warps(self):
        assert hotring_smem_bytes(128, 8) > hotring_smem_bytes(128, 4)
