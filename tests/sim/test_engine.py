"""Unit tests for the event-driven execution engine."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim.engine import EventLoop, StepOutcome


class CountdownAgent:
    """Performs `work` steps of the given cost, then finishes."""

    def __init__(self, work, cost=10):
        self.work = work
        self.cost = cost
        self.steps_at = []

    def step(self, now):
        self.steps_at.append(now)
        self.work -= 1
        if self.work <= 0:
            return StepOutcome(cost=self.cost, done=True)
        return StepOutcome(cost=self.cost)


class TestEventLoop:
    def test_single_agent_runs_to_completion(self):
        a = CountdownAgent(5, cost=7)
        res = EventLoop([a], is_terminated=lambda: False).run()
        assert len(a.steps_at) == 5
        assert res.steps == 5
        assert a.steps_at == [0, 7, 14, 21, 28]

    def test_cycles_reflect_last_event_time(self):
        a = CountdownAgent(3, cost=100)
        res = EventLoop([a], is_terminated=lambda: False).run()
        assert res.cycles == 200  # events at 0, 100, 200

    def test_agents_interleave_by_time(self):
        fast = CountdownAgent(4, cost=5)
        slow = CountdownAgent(2, cost=50)
        EventLoop([fast, slow], is_terminated=lambda: False).run()
        assert fast.steps_at == [0, 5, 10, 15]
        assert slow.steps_at == [0, 50]

    def test_deterministic_tie_break_by_insertion(self):
        order = []

        class Recorder:
            def __init__(self, tag):
                self.tag = tag

            def step(self, now):
                order.append(self.tag)
                return StepOutcome(cost=10, done=True)

        EventLoop([Recorder("a"), Recorder("b"), Recorder("c")],
                  is_terminated=lambda: False).run()
        assert order == ["a", "b", "c"]

    def test_termination_predicate_stops_early(self):
        a = CountdownAgent(1000)
        counter = {"n": 0}

        def terminated():
            counter["n"] += 1
            return counter["n"] > 10

        res = EventLoop([a], is_terminated=terminated).run()
        assert res.steps <= 10

    def test_no_agents_rejected(self):
        with pytest.raises(SimulationError):
            EventLoop([], is_terminated=lambda: False)

    def test_zero_cost_without_done_rejected(self):
        class Bad:
            def step(self, now):
                return StepOutcome(cost=0)

        with pytest.raises(SimulationError, match="non-positive cost"):
            EventLoop([Bad()], is_terminated=lambda: False).run()

    def test_max_cycles_guard(self):
        a = CountdownAgent(10**9, cost=1000)
        loop = EventLoop([a], is_terminated=lambda: False, max_cycles=5000)
        with pytest.raises(SimulationError, match="max_cycles"):
            loop.run()

    def test_deadlock_detection(self):
        class Spinner:
            def step(self, now):
                return StepOutcome(cost=10, made_progress=False)

        loop = EventLoop([Spinner()], is_terminated=lambda: False,
                         deadlock_window=100)
        with pytest.raises(DeadlockError):
            loop.run()

    def test_progress_resets_deadlock_window(self):
        class Mostly:
            def __init__(self):
                self.n = 0

            def step(self, now):
                self.n += 1
                if self.n >= 500:
                    return StepOutcome(cost=1, done=True)
                # Progress every 50 steps keeps the guard quiet.
                return StepOutcome(cost=1, made_progress=self.n % 50 == 0)

        loop = EventLoop([Mostly()], is_terminated=lambda: False,
                         deadlock_window=100)
        loop.run()  # must not raise

    def test_engine_result_seconds(self):
        a = CountdownAgent(2, cost=1000)
        res = EventLoop([a], is_terminated=lambda: False).run()
        assert res.seconds(1e9) == pytest.approx(res.cycles / 1e9)


class TestMaxCyclesBoundary:
    """The budget is checked against ``ready_at`` *before* executing."""

    @pytest.mark.parametrize("scheduler", ["heap", "calendar"])
    def test_event_exactly_at_budget_executes(self, scheduler):
        # Events at 0, 10, 20; max_cycles=20 admits all three.
        a = CountdownAgent(3, cost=10)
        res = EventLoop([a], is_terminated=lambda: False,
                        max_cycles=20, scheduler=scheduler).run()
        assert a.steps_at == [0, 10, 20]
        assert res.cycles == 20 and res.steps == 3

    @pytest.mark.parametrize("scheduler", ["heap", "calendar"])
    def test_over_budget_event_never_executes(self, scheduler):
        # The event at 20 exceeds max_cycles=19 and must raise without
        # the agent ever observing now=20.
        a = CountdownAgent(3, cost=10)
        loop = EventLoop([a], is_terminated=lambda: False,
                         max_cycles=19, scheduler=scheduler)
        with pytest.raises(SimulationError, match="max_cycles"):
            loop.run()
        assert a.steps_at == [0, 10]


class TestSchedulerEquivalence:
    """heap and calendar implement the same (ready_at, seq) total order."""

    @pytest.mark.parametrize("scheduler", ["auto", "heap", "calendar"])
    def test_scheduler_names_accepted(self, scheduler):
        a = CountdownAgent(2, cost=3)
        EventLoop([a], is_terminated=lambda: False, scheduler=scheduler).run()

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(SimulationError, match="scheduler"):
            EventLoop([CountdownAgent(1)], is_terminated=lambda: False,
                      scheduler="fifo")

    def test_identical_step_order_and_result(self):
        def make_agents():
            # Mixed costs force both shared-timestamp buckets and
            # interleaving reschedules.
            return [CountdownAgent(6, cost=c) for c in (3, 3, 7, 1, 5)]

        results = {}
        traces = {}
        for scheduler in ("heap", "calendar"):
            agents = make_agents()
            results[scheduler] = EventLoop(
                agents, is_terminated=lambda: False, scheduler=scheduler
            ).run()
            traces[scheduler] = [a.steps_at for a in agents]
        assert results["heap"] == results["calendar"]
        assert traces["heap"] == traces["calendar"]

    def test_poll_interval_validation(self):
        with pytest.raises(SimulationError, match="poll_interval"):
            EventLoop([CountdownAgent(1)], is_terminated=lambda: False,
                      poll_interval=0)
