"""Property-based tests of the event engine's scheduling semantics."""

from typing import List

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import EventLoop, StepOutcome


class ScriptedAgent:
    """Executes a fixed list of step costs, recording when it ran."""

    def __init__(self, costs: List[int]):
        self.costs = list(costs)
        self.ran_at: List[int] = []

    def step(self, now: int) -> StepOutcome:
        self.ran_at.append(now)
        cost = self.costs.pop(0)
        return StepOutcome(cost=cost, done=not self.costs)


@given(st.lists(st.lists(st.integers(1, 50), min_size=1, max_size=12),
                min_size=1, max_size=6))
@settings(max_examples=80)
def test_agents_run_at_their_cumulative_cost_times(cost_lists):
    """Each agent's k-th step must occur at the sum of its first k-1
    costs — agents are independent clocks merged by the scheduler."""
    agents = [ScriptedAgent(costs) for costs in cost_lists]
    result = EventLoop(agents, is_terminated=lambda: False).run()
    for agent, costs in zip(agents, cost_lists):
        expected = [0]
        for c in costs[:-1]:
            expected.append(expected[-1] + c)
        assert agent.ran_at == expected
    assert result.steps == sum(len(c) for c in cost_lists)
    # Elapsed time is the max completion start across agents.
    assert result.cycles == max(a.ran_at[-1] for a in agents)


@given(st.lists(st.integers(1, 30), min_size=2, max_size=30))
@settings(max_examples=60)
def test_global_order_is_nondecreasing_in_time(costs):
    """Interleaved execution must be globally time-ordered."""
    order: List[int] = []

    class Recorder(ScriptedAgent):
        def step(self, now):
            order.append(now)
            return super().step(now)

    agents = [Recorder(costs), Recorder(list(reversed(costs)))]
    EventLoop(agents, is_terminated=lambda: False).run()
    assert order == sorted(order)


@given(st.integers(0, 2**31), st.lists(st.integers(1, 9), min_size=1,
                                       max_size=8))
@settings(max_examples=40)
def test_runs_are_reproducible(seed, costs):
    """Two identical schedules produce identical engine results."""
    r1 = EventLoop([ScriptedAgent(costs)], is_terminated=lambda: False).run()
    r2 = EventLoop([ScriptedAgent(costs)], is_terminated=lambda: False).run()
    assert (r1.cycles, r1.steps) == (r2.cycles, r2.steps)
