"""Unit tests for the Chrome trace exporter."""

import io
import json

import pytest

from repro.core import DiggerBeesConfig, run_diggerbees
from repro.graphs import generators as gen
from repro.sim.chrometrace import chrome_trace_events, export_chrome_trace
from repro.sim.trace import TraceLog


@pytest.fixture(scope="module")
def traced_run():
    g = gen.road_network(600, seed=1)
    cfg = DiggerBeesConfig(n_blocks=2, warps_per_block=2, hot_size=16,
                           hot_cutoff=4, cold_cutoff=4, flush_batch=4,
                           refill_batch=4, cold_reserve=16, seed=1, trace=True)
    return run_diggerbees(g, 0, config=cfg)


class TestConversion:
    def test_events_match_trace(self, traced_run):
        events = chrome_trace_events(traced_run.trace,
                                     clock_hz=traced_run.device.clock_hz)
        instants = [e for e in events if e["ph"] == "i"]
        assert len(instants) == len(traced_run.trace)

    def test_metadata_per_thread(self, traced_run):
        events = chrome_trace_events(traced_run.trace)
        metas = [e for e in events if e["ph"] == "M" and e["name"] == "thread_name"]
        threads = {(e["pid"], e["tid"]) for e in metas}
        active = {(ev.block, ev.warp) for ev in traced_run.trace.events}
        assert threads == active

    def test_timestamps_microseconds(self, traced_run):
        clock = traced_run.device.clock_hz
        events = [e for e in chrome_trace_events(traced_run.trace,
                                                 clock_hz=clock)
                  if e["ph"] == "i"]
        last = max(e["ts"] for e in events)
        assert last <= traced_run.cycles / clock * 1e6 + 1e-6

    def test_invalid_clock(self, traced_run):
        with pytest.raises(ValueError):
            chrome_trace_events(traced_run.trace, clock_hz=0)

    def test_visit_events_coloured(self, traced_run):
        events = chrome_trace_events(traced_run.trace)
        visit = next(e for e in events if e.get("cat") == "visit")
        assert visit["cname"] == "good"


class TestExport:
    def test_to_file(self, tmp_path, traced_run):
        path = tmp_path / "trace.json"
        count = export_chrome_trace(traced_run.trace, path,
                                    clock_hz=traced_run.device.clock_hz)
        data = json.loads(path.read_text())
        assert len(data["traceEvents"]) == count
        assert data["displayTimeUnit"] == "ns"

    def test_to_stream(self, traced_run):
        buf = io.StringIO()
        export_chrome_trace(traced_run.trace, buf)
        buf.seek(0)
        assert json.load(buf)["traceEvents"]

    def test_requires_trace(self, tmp_path):
        with pytest.raises(ValueError, match="trace=True"):
            export_chrome_trace(None, tmp_path / "x.json")

    def test_empty_trace_ok(self, tmp_path):
        count = export_chrome_trace(TraceLog(), tmp_path / "e.json")
        assert count == 0
