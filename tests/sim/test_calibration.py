"""Unit tests for the calibration-anchor machinery."""

import pytest

from repro.sim.calibration import (
    CalibrationAnchor,
    calibration_table,
    derive_anchors,
)


class TestAnchors:
    def test_all_within_tolerance(self):
        """The shipped cost tables must honour every physical anchor;
        this is the test that catches accidental recalibration."""
        for anchor in derive_anchors():
            assert anchor.within_tolerance, (
                f"{anchor.name}: derived {anchor.derived:.2f} "
                f"vs target {anchor.target:.2f}"
            )

    def test_covers_both_devices_and_cpu(self):
        names = " ".join(a.name for a in derive_anchors())
        assert "H100" in names and "A100" in names and "Xeon" in names

    def test_cache_amortization_anchor(self):
        """High-degree rows must be far cheaper per edge than low-degree
        ones (the Xeon Max row-open model)."""
        anchors = {a.name: a for a in derive_anchors()}
        deg3 = anchors["Xeon per-edge latency (deg-3 rows)"]
        deg30 = anchors["Xeon per-edge latency (deg-30 rows)"]
        assert deg3.derived > 3 * deg30.derived

    def test_within_tolerance_logic(self):
        a = CalibrationAnchor("x", "ns", derived=110.0, target=100.0,
                              tolerance=0.15)
        assert a.within_tolerance
        b = CalibrationAnchor("x", "ns", derived=130.0, target=100.0,
                              tolerance=0.15)
        assert not b.within_tolerance

    def test_zero_target(self):
        a = CalibrationAnchor("x", "ns", derived=0.0, target=0.0,
                              tolerance=0.1)
        assert a.within_tolerance

    def test_table_renders(self):
        out = calibration_table()
        assert "paper target" in out
        assert "DRIFTED" not in out
