"""Hypothesis round-trip tests for the bit-packed vertex sets."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import bitset
from repro.utils.rng import make_rng


def random_mask(seed, n_max=600):
    rng = make_rng(seed)
    n = int(rng.integers(1, n_max))
    return rng.random(n) < rng.random()


@given(seed=st.integers(0, 10**6))
@settings(max_examples=80)
def test_pack_unpack_roundtrip(seed):
    mask = random_mask(seed)
    words = bitset.pack_bits(mask)
    assert words.dtype == np.uint64
    assert words.size == bitset.n_words(mask.size)
    assert np.array_equal(bitset.unpack_bits(words, mask.size), mask)


@given(seed=st.integers(0, 10**6))
@settings(max_examples=80)
def test_popcount_matches_dense_sum(seed):
    mask = random_mask(seed)
    assert bitset.popcount(bitset.pack_bits(mask)) == int(mask.sum())


@given(seed=st.integers(0, 10**6))
@settings(max_examples=80)
def test_set_bits_equals_pack_of_dense(seed):
    """Building a set by set_bits equals packing the dense mask —
    including duplicate indices, which must be idempotent."""
    mask = random_mask(seed)
    idx = np.flatnonzero(mask).astype(np.int64)
    rng = make_rng(seed + 1)
    if idx.size:
        dupes = rng.choice(idx, size=min(idx.size, 7))
        idx = np.concatenate([idx, dupes])
    words = bitset.empty_bitset(mask.size)
    bitset.set_bits(words, idx)
    assert np.array_equal(words, bitset.pack_bits(mask))


@given(seed=st.integers(0, 10**6))
@settings(max_examples=80)
def test_test_bits_matches_mask(seed):
    mask = random_mask(seed)
    words = bitset.pack_bits(mask)
    probe = make_rng(seed + 2).integers(0, mask.size, size=32)
    assert np.array_equal(bitset.test_bits(words, probe), mask[probe])


@given(seed=st.integers(0, 10**6))
@settings(max_examples=80)
def test_nonzero_bits_matches_flatnonzero(seed):
    mask = random_mask(seed)
    words = bitset.pack_bits(mask)
    assert np.array_equal(bitset.nonzero_bits(words, mask.size),
                          np.flatnonzero(mask))


def test_complement_respects_tail_bits():
    """~words sets the pad bits past n; consumers must slice by n."""
    mask = np.zeros(70, dtype=bool)
    mask[3] = True
    words = bitset.pack_bits(mask)
    inv = bitset.nonzero_bits(~words, mask.size)
    assert np.array_equal(inv, np.flatnonzero(~mask))


def test_empty_and_edge_sizes():
    assert bitset.n_words(0) == 0
    assert bitset.n_words(1) == 1
    assert bitset.n_words(64) == 1
    assert bitset.n_words(65) == 2
    assert bitset.empty_bitset(0).size == 0
    assert bitset.popcount(bitset.empty_bitset(130)) == 0
    with pytest.raises(ValueError):
        bitset.n_words(-1)
    with pytest.raises(ValueError):
        bitset.unpack_bits(np.zeros(1, dtype=np.uint64), 65)
    with pytest.raises(ValueError):
        bitset.pack_bits(np.zeros((2, 2), dtype=bool))


def _lut_popcount(words):
    """The original per-byte LUT path, kept as the equivalence oracle."""
    words = np.ascontiguousarray(words, dtype=np.uint64)
    return int(bitset._POPCOUNT8[words.view(np.uint8)].sum())


@pytest.mark.parametrize("dtype", [
    np.uint8, np.uint16, np.uint32, np.uint64, np.int64, np.int32,
])
def test_popcount_native_matches_lut_across_dtypes(dtype):
    """np.bitwise_count path == LUT path for every input dtype the
    helpers accept (everything is normalized through uint64)."""
    rng = make_rng(7)
    info = np.iinfo(dtype)
    raw = rng.integers(0, min(info.max, 2**31 - 1), size=37,
                       endpoint=True).astype(dtype)
    words = np.ascontiguousarray(raw, dtype=np.uint64)
    assert bitset.popcount(raw) == _lut_popcount(words)


@pytest.mark.parametrize("n_bits", [1, 63, 64, 65, 127, 128, 129, 600])
def test_popcount_native_matches_lut_edge_words(n_bits):
    """Equivalence on ragged final words: all-ones masks of sizes that
    straddle the 64-bit word boundary, plus their complements."""
    mask = np.ones(n_bits, dtype=bool)
    words = bitset.pack_bits(mask)
    assert bitset.popcount(words) == _lut_popcount(words) == n_bits
    full = np.full(bitset.n_words(n_bits), np.uint64(2**64 - 1))
    assert bitset.popcount(full) == _lut_popcount(full) \
        == full.size * bitset.WORD_BITS


# ---------------------------------------------------------------------------
# Lane-batched (2-d) variants — one bitset per row, used by core.swarm.
# ---------------------------------------------------------------------------

def random_matrix(seed, rows_max=9, n_max=300):
    rng = make_rng(seed)
    rows = int(rng.integers(1, rows_max))
    n = int(rng.integers(1, n_max))
    return rng.random((rows, n)) < rng.random()


@given(seed=st.integers(0, 10**6))
@settings(max_examples=60)
def test_pack_unpack_2d_roundtrip(seed):
    mask = random_matrix(seed)
    words = bitset.pack_bits_2d(mask)
    assert words.dtype == np.uint64
    assert words.shape == (mask.shape[0], bitset.n_words(mask.shape[1]))
    assert np.array_equal(bitset.unpack_bits_2d(words, mask.shape[1]), mask)


@given(seed=st.integers(0, 10**6))
@settings(max_examples=60)
def test_rowwise_2d_matches_1d_helpers(seed):
    """Every 2-d helper agrees with the 1-d helper applied per row."""
    mask = random_matrix(seed)
    words = bitset.pack_bits_2d(mask)
    for r in range(mask.shape[0]):
        assert np.array_equal(words[r], bitset.pack_bits(mask[r]))
    assert np.array_equal(
        bitset.popcount_2d(words),
        np.array([bitset.popcount(words[r])
                  for r in range(mask.shape[0])]))


@given(seed=st.integers(0, 10**6))
@settings(max_examples=60)
def test_set_and_test_bits_2d(seed):
    mask = random_matrix(seed)
    rows_n, n = mask.shape
    rr, cc = np.nonzero(mask)
    words = bitset.empty_bitmatrix(rows_n, n)
    bitset.set_bits_2d(words, rr, cc)
    # Duplicates must be idempotent.
    bitset.set_bits_2d(words, rr[:5], cc[:5])
    assert np.array_equal(words, bitset.pack_bits_2d(mask))
    rng = make_rng(seed + 3)
    pr = rng.integers(0, rows_n, size=40)
    pc = rng.integers(0, n, size=40)
    assert np.array_equal(bitset.test_bits_2d(words, pr, pc), mask[pr, pc])


def _nonzero_oracle(words):
    """Row-major (rows, bits) pairs via the dense unpack round-trip."""
    full = bitset.unpack_bits_2d(words, words.shape[1] * bitset.WORD_BITS)
    rows, idx = np.nonzero(full)
    return rows.astype(np.int64), idx.astype(np.int64)


@given(seed=st.integers(0, 10**6))
@settings(max_examples=60)
def test_nonzero_bits_2d_matches_oracle(seed):
    mask = random_matrix(seed)
    words = bitset.pack_bits_2d(mask)
    rows, idx = bitset.nonzero_bits_2d(words)
    orows, oidx = _nonzero_oracle(words)
    assert rows.dtype == np.int64 and idx.dtype == np.int64
    assert np.array_equal(rows, orows)
    assert np.array_equal(idx, oidx)


@pytest.mark.parametrize("density", [0.0, 0.01, 0.04, 1 / 16, 0.08, 0.3, 0.9])
@pytest.mark.parametrize("width", [64, 192, 256])
def test_nonzero_bits_2d_both_paths_agree(density, width):
    """Densities straddling the 1/16 dense/sparse switch, across
    power-of-two and non-power-of-two row widths, must all produce the
    oracle's row-major pair stream."""
    rng = make_rng(int(density * 1000) + width)
    mask = rng.random((257, width)) < density
    mask[13] = False  # an all-zero row mid-matrix
    if density > 0:
        mask[41] = True  # and a saturated one
    words = bitset.pack_bits_2d(mask)
    rows, idx = bitset.nonzero_bits_2d(words)
    orows, oidx = _nonzero_oracle(words)
    assert np.array_equal(rows, orows)
    assert np.array_equal(idx, oidx)
    # Row-major invariant: rows ascend, bits ascend within a row.
    assert np.all(np.diff(rows) >= 0)
    pair = rows * (words.shape[1] * bitset.WORD_BITS) + idx
    assert np.all(np.diff(pair) > 0)


def test_nonzero_bits_2d_empty_and_validation():
    empty_rows, empty_idx = bitset.nonzero_bits_2d(
        bitset.empty_bitmatrix(5, 200))
    assert empty_rows.size == 0 and empty_idx.size == 0
    rows, idx = bitset.nonzero_bits_2d(bitset.empty_bitmatrix(0, 100))
    assert rows.size == 0 and idx.size == 0
    with pytest.raises(ValueError):
        bitset.nonzero_bits_2d(np.zeros(4, dtype=np.uint64))


def test_2d_validation_and_empty():
    assert bitset.empty_bitmatrix(0, 100).shape == (0, 2)
    assert bitset.popcount_2d(bitset.empty_bitmatrix(3, 130)).tolist() == \
        [0, 0, 0]
    with pytest.raises(ValueError):
        bitset.pack_bits_2d(np.zeros(4, dtype=bool))
    with pytest.raises(ValueError):
        bitset.unpack_bits_2d(np.zeros((2, 1), dtype=np.uint64), 65)
    with pytest.raises(ValueError):
        bitset.popcount_2d(np.zeros(4, dtype=np.uint64))
    with pytest.raises(ValueError):
        bitset.empty_bitmatrix(-1, 10)
