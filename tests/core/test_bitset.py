"""Hypothesis round-trip tests for the bit-packed vertex sets."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import bitset
from repro.utils.rng import make_rng


def random_mask(seed, n_max=600):
    rng = make_rng(seed)
    n = int(rng.integers(1, n_max))
    return rng.random(n) < rng.random()


@given(seed=st.integers(0, 10**6))
@settings(max_examples=80)
def test_pack_unpack_roundtrip(seed):
    mask = random_mask(seed)
    words = bitset.pack_bits(mask)
    assert words.dtype == np.uint64
    assert words.size == bitset.n_words(mask.size)
    assert np.array_equal(bitset.unpack_bits(words, mask.size), mask)


@given(seed=st.integers(0, 10**6))
@settings(max_examples=80)
def test_popcount_matches_dense_sum(seed):
    mask = random_mask(seed)
    assert bitset.popcount(bitset.pack_bits(mask)) == int(mask.sum())


@given(seed=st.integers(0, 10**6))
@settings(max_examples=80)
def test_set_bits_equals_pack_of_dense(seed):
    """Building a set by set_bits equals packing the dense mask —
    including duplicate indices, which must be idempotent."""
    mask = random_mask(seed)
    idx = np.flatnonzero(mask).astype(np.int64)
    rng = make_rng(seed + 1)
    if idx.size:
        dupes = rng.choice(idx, size=min(idx.size, 7))
        idx = np.concatenate([idx, dupes])
    words = bitset.empty_bitset(mask.size)
    bitset.set_bits(words, idx)
    assert np.array_equal(words, bitset.pack_bits(mask))


@given(seed=st.integers(0, 10**6))
@settings(max_examples=80)
def test_test_bits_matches_mask(seed):
    mask = random_mask(seed)
    words = bitset.pack_bits(mask)
    probe = make_rng(seed + 2).integers(0, mask.size, size=32)
    assert np.array_equal(bitset.test_bits(words, probe), mask[probe])


@given(seed=st.integers(0, 10**6))
@settings(max_examples=80)
def test_nonzero_bits_matches_flatnonzero(seed):
    mask = random_mask(seed)
    words = bitset.pack_bits(mask)
    assert np.array_equal(bitset.nonzero_bits(words, mask.size),
                          np.flatnonzero(mask))


def test_complement_respects_tail_bits():
    """~words sets the pad bits past n; consumers must slice by n."""
    mask = np.zeros(70, dtype=bool)
    mask[3] = True
    words = bitset.pack_bits(mask)
    inv = bitset.nonzero_bits(~words, mask.size)
    assert np.array_equal(inv, np.flatnonzero(~mask))


def test_empty_and_edge_sizes():
    assert bitset.n_words(0) == 0
    assert bitset.n_words(1) == 1
    assert bitset.n_words(64) == 1
    assert bitset.n_words(65) == 2
    assert bitset.empty_bitset(0).size == 0
    assert bitset.popcount(bitset.empty_bitset(130)) == 0
    with pytest.raises(ValueError):
        bitset.n_words(-1)
    with pytest.raises(ValueError):
        bitset.unpack_bits(np.zeros(1, dtype=np.uint64), 65)
    with pytest.raises(ValueError):
        bitset.pack_bits(np.zeros((2, 2), dtype=bool))
