"""Unit tests for DiggerBeesConfig (paper parameters and §4.5 versions)."""

import pytest

from repro.core.config import DiggerBeesConfig
from repro.errors import SimulationError
from repro.sim.device import A100, H100


class TestDefaults:
    def test_paper_defaults(self):
        cfg = DiggerBeesConfig()
        assert cfg.hot_size == 128
        assert cfg.hot_cutoff == 32
        assert cfg.cold_cutoff == 64

    def test_steal_amounts_are_half_cutoffs(self):
        cfg = DiggerBeesConfig()
        assert cfg.intra_steal_amount == 16
        assert cfg.inter_steal_amount == 32

    def test_n_warps(self):
        cfg = DiggerBeesConfig(n_blocks=3, warps_per_block=5)
        assert cfg.n_warps == 15


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        dict(n_blocks=0),
        dict(warps_per_block=0),
        dict(warps_per_block=33),      # 32-bit active mask
        dict(hot_size=2),
        dict(hot_cutoff=0),
        dict(hot_cutoff=128),          # must be < hot_size
        dict(cold_cutoff=1),
        dict(flush_batch=0),
        dict(flush_batch=128),
        dict(refill_batch=200),
        dict(victim_policy="fastest"),
        dict(cold_reserve=10),         # < cold_cutoff
    ])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(SimulationError):
            DiggerBeesConfig(**kwargs)

    def test_fits_device(self):
        DiggerBeesConfig(hot_size=128, warps_per_block=8).check_fits_device(H100)

    def test_too_big_for_smem(self):
        cfg = DiggerBeesConfig(hot_size=2**16, warps_per_block=32,
                               flush_batch=32, refill_batch=32)
        with pytest.raises(SimulationError, match="shared memory"):
            cfg.check_fits_device(H100)

    def test_one_level_skips_smem_check(self):
        cfg = DiggerBeesConfig(hot_size=2**16, warps_per_block=32,
                               flush_batch=32, refill_batch=32,
                               two_level=False)
        cfg.check_fits_device(H100)  # stack lives in global memory


class TestVersions:
    def test_v1(self):
        cfg = DiggerBeesConfig.v1(H100)
        assert cfg.n_blocks == 1
        assert not cfg.two_level
        assert not cfg.enable_inter_steal

    def test_v2(self):
        cfg = DiggerBeesConfig.v2(H100)
        assert cfg.n_blocks == 1
        assert cfg.two_level
        assert not cfg.enable_inter_steal

    def test_v3_half_sms(self):
        cfg = DiggerBeesConfig.v3(H100)
        assert cfg.n_blocks == 66
        assert cfg.enable_inter_steal

    def test_v4_one_block_per_sm(self):
        assert DiggerBeesConfig.v4(H100).n_blocks == 132
        assert DiggerBeesConfig.v4(A100).n_blocks == 108

    def test_sim_scale_preserves_ratio(self):
        h = DiggerBeesConfig.v4(H100, sim_scale=0.25).n_blocks
        a = DiggerBeesConfig.v4(A100, sim_scale=0.25).n_blocks
        assert h == 33 and a == 27
        assert abs(h / a - 132 / 108) < 0.02

    def test_version_dispatch(self):
        for v in (1, 2, 3, 4):
            cfg = DiggerBeesConfig.version(v, H100)
            assert isinstance(cfg, DiggerBeesConfig)
        with pytest.raises(SimulationError):
            DiggerBeesConfig.version(5, H100)

    def test_overrides(self):
        cfg = DiggerBeesConfig.v4(H100, seed=99, hot_cutoff=16)
        assert cfg.seed == 99
        assert cfg.hot_cutoff == 16

    def test_with_overrides(self):
        base = DiggerBeesConfig()
        mod = base.with_overrides(victim_policy="random")
        assert mod.victim_policy == "random"
        assert base.victim_policy == "two_choice"
