"""Swarm engine contract: every lane bit-identical to single-root
run_frontier — visited, levels, min-parent tree, AND the execution
profile (pushes/pulls/edges_scanned) that the Beamer switch drives."""

import numpy as np
import pytest

from repro.core.frontier import FrontierConfig, run_frontier
from repro.core.swarm import run_swarm
from repro.graphs import generators as gen
from repro.validate.tree import validate_traversal

GRAPHS = {
    "path": lambda: gen.path_graph(300),
    "star": lambda: gen.star_graph(200),
    "btree": lambda: gen.binary_tree(8),
    "road": lambda: gen.road_network(n_vertices=400, seed=5),
    "pa": lambda: gen.preferential_attachment(n_vertices=400, m=4, seed=6),
    "ws": lambda: gen.small_world(400, k=6, rewire_p=0.1, seed=7),
    "grid": lambda: gen.grid2d(18, 18),
    "starmesh": lambda: gen.star_mesh(12, leaves_per_hub=9, seed=8),
    "layers": lambda: gen.wide_layers(60, 5, seed=9),
    "skew": lambda: gen.skewed_tree(400, seed=10),
    "rmat": lambda: gen.rmat(8, edge_factor=6, seed=11),
}


@pytest.fixture(params=sorted(GRAPHS), scope="module")
def graph(request):
    return GRAPHS[request.param]()


def _roots_for(graph, k=6):
    n = graph.n_vertices
    roots = sorted({int(r) for r in
                    np.linspace(0, n - 1, num=min(k, n), dtype=np.int64)})
    # A duplicate lane exercises lane independence.
    return roots + [roots[0]]


def assert_lane_identical(swarm_res, single_res):
    assert np.array_equal(swarm_res.traversal.visited,
                          single_res.traversal.visited)
    assert np.array_equal(swarm_res.traversal.parent,
                          single_res.traversal.parent)
    assert np.array_equal(swarm_res.level, single_res.level)
    assert swarm_res.n_levels == single_res.n_levels
    assert swarm_res.pushes == single_res.pushes
    assert swarm_res.pulls == single_res.pulls
    assert swarm_res.edges_scanned == single_res.edges_scanned
    assert swarm_res.traversal.edges_traversed == \
        single_res.traversal.edges_traversed
    assert swarm_res.traversal.root == single_res.traversal.root


def test_every_lane_matches_single_root(graph):
    roots = _roots_for(graph)
    batch = run_swarm(graph, roots)
    assert len(batch) == len(roots)
    for root, res in zip(roots, batch):
        single = run_frontier(graph, root)
        assert_lane_identical(res, single)
        validate_traversal(graph, res.traversal)


@pytest.mark.parametrize("mode", ["push", "pull"])
def test_forced_modes_match_single_root(graph, mode):
    cfg = FrontierConfig(mode=mode)
    roots = _roots_for(graph, k=4)
    batch = run_swarm(graph, roots, config=cfg)
    for root, res in zip(roots, batch):
        assert_lane_identical(res, run_frontier(graph, root, config=cfg))


def test_mixed_direction_lanes():
    """Lanes must switch direction independently: a hub root goes
    pull-heavy while a rim root of the same graph stays pushing longer;
    both must still match their single-root runs."""
    g = gen.star_mesh(12, leaves_per_hub=9, seed=8)
    roots = [0, g.n_vertices - 1, 1, g.n_vertices // 2]
    batch = run_swarm(g, roots)
    profiles = set()
    for root, res in zip(roots, batch):
        single = run_frontier(g, root)
        assert_lane_identical(res, single)
        profiles.add((res.pushes, res.pulls))
    # The corpus pick guarantees at least two distinct switch profiles,
    # so the per-lane (not global) Beamer switch is actually exercised.
    assert len(profiles) >= 2


def test_lanes_retire_at_different_depths():
    """A lane on a short component retires while deep lanes continue."""
    from repro.graphs.csr import from_edges

    edges = [(i, i + 1) for i in range(49)] + [(60, 61)]
    both = edges + [(v, u) for u, v in edges]
    g = from_edges(70, np.array(both, dtype=np.int64))
    roots = [0, 60, 65, 25]  # long path, 2-vertex component, isolated, mid
    batch = run_swarm(g, roots)
    for root, res in zip(roots, batch):
        assert_lane_identical(res, run_frontier(g, root))
    assert batch[2].n_levels == 1          # isolated root: root-only level
    assert batch[1].n_levels == 2
    assert batch[0].n_levels == 50


def test_directed_runs_push_only():
    g = gen.citation_graph(120, seed=3, symmetrize=False)
    batch = run_swarm(g, [0, 5, 11], config=FrontierConfig(mode="pull"))
    for root, res in zip([0, 5, 11], batch):
        assert res.pulls == 0
        assert_lane_identical(
            res, run_frontier(g, root, config=FrontierConfig(mode="pull")))


def test_batch_of_one_and_empty_batch():
    g = gen.road_network(n_vertices=200, seed=4)
    only = run_swarm(g, [7])[0]
    assert_lane_identical(only, run_frontier(g, 7))
    assert run_swarm(g, []) == []


def test_root_validation():
    g = gen.path_graph(10)
    with pytest.raises(Exception):
        run_swarm(g, [0, 99])


def test_amortized_seconds_shared_across_lanes():
    g = gen.star_mesh(10, leaves_per_hub=7, seed=2)
    batch = run_swarm(g, [0, 1, 2, 3])
    secs = {res.seconds for res in batch}
    assert len(secs) == 1
    assert batch[0].seconds >= 0.0
    assert batch[0].mteps >= 0.0
