"""Structural-equivariance property tests for DiggerBees.

The algorithm's *outputs that matter* (the visited set; validity of the
tree) must be invariant under irrelevant transformations: relabelling
vertices, permuting adjacency order, or re-rooting within a connected
component.  Timing may change (branch choices differ), correctness may
not.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DiggerBeesConfig, run_diggerbees
from repro.graphs import generators as gen
from repro.graphs.transform import random_relabel
from repro.utils.rng import make_rng
from repro.validate import validate_traversal

CFG = DiggerBeesConfig(n_blocks=2, warps_per_block=2, hot_size=16,
                       hot_cutoff=4, cold_cutoff=4, flush_batch=4,
                       refill_batch=4, cold_reserve=16, seed=9)


class TestRelabelEquivariance:
    @given(seed=st.integers(0, 5000))
    @settings(max_examples=10)
    def test_visited_set_maps_through_permutation(self, seed):
        g = gen.co_purchase(200, seed=seed)
        perm_g, perm = random_relabel(g, seed=seed + 1)
        a = run_diggerbees(g, 0, config=CFG)
        b = run_diggerbees(perm_g, int(perm[0]), config=CFG)
        # visited sets correspond under the permutation.
        mapped = np.zeros_like(a.traversal.visited)
        mapped[perm] = a.traversal.visited
        assert np.array_equal(mapped, b.traversal.visited)
        # Both trees are valid in their own labellings.
        validate_traversal(perm_g, b.traversal)

    def test_edge_count_invariant(self, small_road):
        perm_g, perm = random_relabel(small_road, seed=3)
        a = run_diggerbees(small_road, 0, config=CFG)
        b = run_diggerbees(perm_g, int(perm[0]), config=CFG)
        assert (a.traversal.edges_traversed == b.traversal.edges_traversed)


class TestRootInvariance:
    @given(seed=st.integers(0, 5000))
    @settings(max_examples=10)
    def test_any_root_covers_the_component(self, seed):
        rng = make_rng(seed)
        g = gen.delaunay_mesh(150, seed=seed)  # connected
        root = int(rng.integers(0, g.n_vertices))
        res = run_diggerbees(g, root, config=CFG)
        assert res.n_visited == g.n_vertices
        validate_traversal(g, res.traversal)


class TestAdjacencyOrderIrrelevance:
    def test_unsorted_adjacency_still_valid(self):
        """DiggerBees never requires sorted neighbour lists."""
        from repro.graphs.csr import from_edges

        rng = make_rng(4)
        edges = rng.integers(0, 120, size=(500, 2))
        both = np.vstack([edges, edges[:, ::-1]])
        g = from_edges(120, both, dedupe=True, drop_self_loops=True,
                       sort_neighbors=False)
        res = run_diggerbees(g, 0, config=CFG, check_invariants=True)
        validate_traversal(g, res.traversal)
