"""Focused unit tests for the warp-level DFS agent (paper §3.3)."""

import numpy as np
import pytest

from repro.core.config import DiggerBeesConfig
from repro.core.state import RunState
from repro.core.warp_dfs import WARP_WIDTH, WarpAgent
from repro.graphs import generators as gen
from repro.graphs.csr import from_adjacency
from repro.sim.device import H100
from repro.sim.engine import EventLoop


def make_run(graph, root=0, **cfg_kwargs):
    defaults = dict(n_blocks=1, warps_per_block=2, hot_size=16, hot_cutoff=4,
                    cold_cutoff=4, flush_batch=4, refill_batch=4,
                    cold_reserve=16, seed=0)
    defaults.update(cfg_kwargs)
    cfg = DiggerBeesConfig(**defaults)
    state = RunState(graph, root, cfg, H100)
    agents = [WarpAgent(state, b, w) for b in range(cfg.n_blocks)
              for w in range(cfg.warps_per_block)]
    return state, agents


def run_to_completion(state, agents):
    EventLoop(agents, is_terminated=state.is_terminated).run()
    assert state.pending == 0


class TestExpansion:
    def test_scan_window_is_warp_width(self):
        """A single step inspects at most 32 neighbours (one warp-wide
        coalesced window)."""
        hub_degree = 100
        g = gen.star_graph(hub_degree + 1)
        state, agents = make_run(g, hot_size=256, flush_batch=32,
                                 refill_batch=32, cold_reserve=64)
        worker = agents[0]
        # First step expands the hub: claims exactly one leaf and
        # consumes exactly one edge (first unvisited is at offset 0).
        worker.step(0)
        assert state.counters.edges_traversed == 1
        # Visit all leaves; per step at most one claim happens.
        for _ in range(3 * hub_degree + 50):
            if state.is_terminated():
                break
            worker.step(0)
        assert state.counters.vertices_visited == hub_degree + 1

    def test_offset_resumes_mid_row(self):
        """The <vertex|offset> pair resumes scanning where it stopped."""
        # Root 0 with neighbours [1, 2]; 1 links back to 0 and 2.
        g = from_adjacency([[1, 2], [0, 2], [0, 1]])
        state, agents = make_run(g)
        worker = agents[0]
        worker.step(0)  # claims 1, root offset -> 1
        stack = state.blocks[0].stacks[0]
        entries = dict(stack.hot.snapshot())
        assert entries[0] == 1  # root's next neighbour index
        run_to_completion(state, agents)
        assert state.counters.vertices_visited == 3

    def test_pop_on_exhausted_row(self):
        g = gen.path_graph(3)
        state, agents = make_run(g)
        run_to_completion(state, agents)
        assert state.counters.pops == 3

    def test_isolated_root_terminates_fast(self):
        g = from_adjacency([[], [0]])  # vertex 0 isolated from 1's view
        state, agents = make_run(g)
        result = EventLoop(agents, is_terminated=state.is_terminated).run()
        assert state.counters.vertices_visited == 1
        assert result.steps < 20


class TestOneLevelAblation:
    def test_v1_pays_global_stack_penalty(self):
        """The same traversal must cost more cycles with the one-level
        (global-memory) stack than with the two-level stack."""
        g = gen.path_graph(600)
        s1, a1 = make_run(g, two_level=False, enable_inter_steal=False)
        r1 = EventLoop(a1, is_terminated=s1.is_terminated).run()
        s2, a2 = make_run(g, two_level=True, enable_inter_steal=False)
        r2 = EventLoop(a2, is_terminated=s2.is_terminated).run()
        assert s1.counters.vertices_visited == s2.counters.vertices_visited
        assert r1.cycles > r2.cycles

    def test_v1_correct_on_cyclic(self):
        g = gen.small_world(300, k=4, seed=1)
        state, agents = make_run(g, two_level=False, enable_inter_steal=False)
        run_to_completion(state, agents)
        assert state.counters.vertices_visited == 300


class TestContentionDebt:
    def test_debt_charged_and_cleared(self):
        """A stolen-from warp pays its contention debt on the next step."""
        g = gen.path_graph(400)
        state, agents = make_run(g, warps_per_block=4, hot_size=64,
                                 flush_batch=8, refill_batch=8)
        victim = agents[0]
        # Let the victim build a stack.
        for _ in range(40):
            victim.step(0)
        block = state.blocks[0]
        assert len(block.stacks[0]) >= 4
        # Thief performs selection then reservation.
        thief = agents[1]
        thief.step(0)
        thief.step(0)
        assert state.counters.intra_steal_successes == 1
        assert block.contention_debt[0] == H100.costs.victim_debt_intra
        cost_with_debt = victim.step(0).cost
        assert block.contention_debt[0] == 0
        cost_plain = victim.step(0).cost
        assert cost_with_debt > cost_plain

    def test_debt_in_full_run_conserved(self):
        g = gen.road_network(800, seed=4)
        state, agents = make_run(g, n_blocks=2, warps_per_block=4)
        run_to_completion(state, agents)
        for blk in state.blocks:
            # A terminated run may leave debt on warps that never ran
            # again, but never negative values.
            assert all(d >= 0 for d in blk.contention_debt)


class TestBackoff:
    def test_idle_backoff_grows_and_caps(self):
        g = gen.path_graph(4)  # finishes instantly; peer stays idle
        state, agents = make_run(g, warps_per_block=2)
        idler = agents[1]
        costs = []
        for _ in range(12):
            out = idler.step(0)
            costs.append(out.cost)
        assert max(costs) <= (H100.costs.idle_backoff_max
                              + H100.costs.steal_scan_per_warp * 2 + 200)
        assert costs[-1] >= costs[0]  # monotone growth until the cap

    def test_backoff_resets_after_acquiring_work(self):
        g = gen.road_network(600, seed=2)
        state, agents = make_run(g, warps_per_block=2, hot_size=32,
                                 flush_batch=8, refill_batch=8)
        run_to_completion(state, agents)
        # Both warps ended up doing real work (steals reset the backoff).
        assert len(state.counters.tasks_per_warp) == 2
