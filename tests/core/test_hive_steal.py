"""Coverage for the vectorized steal protocol in the hive engine.

``repro.core.hive`` executes refills, intra-block steals and inter-block
leader steals as batched NumPy passes when ``hive_steal="vector"`` (the
default).  The contract is unchanged from the scalar protocol: every run
must stay bit-identical to the scalar engines, including the protocol
counters.  These tests drive the vector passes with real steal traffic
(skewed trees and hub graphs on tight stack geometry) and check them
against two independent oracles — the turbo scalar engine and the hive
engine's own ``hive_steal="scalar"`` mode — plus the execution-path
accounting in the ``stats`` dict.

The scenarios deliberately include the protocol's racy corners: every
live lane bailing out in the same tick, two thieves reserving the same
victim across consecutive ticks (token CAS failure), and steals landing
on rings that a refill repopulated one tick earlier.
"""

import numpy as np
import pytest

from repro.core import intra_steal
from repro.core.config import DiggerBeesConfig
from repro.core.diggerbees import run_diggerbees
from repro.core.hive import run_hive
from repro.graphs import generators as gen


def _steal_heavy_config(**overrides) -> DiggerBeesConfig:
    """Tight rings and low cutoffs: frequent refills, steals and CAS
    races, but honest (non-adversarial) victim choice so the vector
    protocol stays engaged."""
    kwargs = dict(
        n_blocks=4, warps_per_block=4, hot_size=16, hot_cutoff=4,
        cold_cutoff=8, flush_batch=4, refill_batch=4, cold_reserve=64,
        seed=5,
    )
    kwargs.update(overrides)
    return DiggerBeesConfig(**kwargs)


def _assert_same(ref, res, label):
    assert res.cycles == ref.cycles, label
    assert res.engine.steps == ref.engine.steps, label
    assert np.array_equal(res.traversal.parent, ref.traversal.parent), label
    assert np.array_equal(res.traversal.visited, ref.traversal.visited), label
    assert res.counters == ref.counters, label
    assert res.engine.exact_cycles, label


GRAPHS = {
    "skewed_tree": lambda: gen.skewed_tree(2000, seed=3),
    "hub": lambda: gen.preferential_attachment(1500, m=4, seed=6),
    "road": lambda: gen.road_network(1200, seed=1),
}


@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
def test_vector_bit_identical_and_nonvacuous(graph_name):
    """Vector hive == turbo == scalar-mode hive, with real steal traffic
    (refills, intra + inter successes, CAS failures all nonzero) and no
    lanes routed through the scalar fallback."""
    graph = GRAPHS[graph_name]()
    cfg = _steal_heavy_config()
    turbo = run_diggerbees(graph, 0, config=cfg.with_overrides(turbo=True))

    stats = {}
    vec = run_hive(graph, [(0, cfg)] * 4, stats=stats)
    scal = run_hive(graph, [(0, cfg.with_overrides(hive_steal="scalar"))] * 4)
    for i, (v, s) in enumerate(zip(vec, scal)):
        _assert_same(turbo, v, f"{graph_name} vector run {i}")
        _assert_same(turbo, s, f"{graph_name} scalar-mode run {i}")

    c = turbo.counters
    assert c.refills > 0 and c.refill_entries > 0
    assert c.intra_steal_successes > 0
    assert c.inter_steal_successes > 0
    assert c.cas_failures > 0  # two thieves hit one victim at least once
    assert stats["fallback_lane_fraction"] == 0.0
    assert stats["vector_refills"] > 0
    assert stats["vector_steal_selects"] > 0
    assert stats["vector_reserves_intra"] > 0
    assert stats["vector_reserves_inter"] > 0


@pytest.mark.parametrize("batch", [1, 64])
def test_batch_one_and_batch_exceeding_tasks(batch):
    """batch=1 (every run its own lockstep batch) and batch far larger
    than the task list both reproduce the scalar result."""
    graph = GRAPHS["skewed_tree"]()
    cfg = _steal_heavy_config()
    turbo = run_diggerbees(graph, 0, config=cfg.with_overrides(turbo=True))
    results = run_hive(graph, [(0, cfg)] * 3, batch=batch)
    assert len(results) == 3
    for i, res in enumerate(results):
        _assert_same(turbo, res, f"batch={batch} run {i}")


def test_all_lanes_steal_same_tick_lockstep():
    """Identical seeds keep every lane in perfect lockstep, so whenever
    one lane bails out to steal, *all* live lanes do — the vector passes
    must handle a full-width reservation wave."""
    graph = GRAPHS["hub"]()
    cfg = _steal_heavy_config(seed=9)
    stats = {}
    results = run_hive(graph, [(0, cfg)] * 8, stats=stats)
    first = results[0]
    assert first.counters.intra_steal_successes > 0
    for i, res in enumerate(results[1:], start=1):
        _assert_same(first, res, f"lockstep lane {i}")
    assert stats["vector_reserves_intra"] >= 8
    assert stats["fallback_lane_fraction"] == 0.0


def test_steal_racing_refill():
    """Refill traffic interleaved with steals on the same warps: the
    deep skewed spine starves rings while the cold segments stay loaded,
    so the same drain alternates refills and steals tick by tick."""
    graph = gen.skewed_tree(3000, skew=0.9, seed=4)
    cfg = _steal_heavy_config(hot_cutoff=6, refill_batch=6)
    turbo = run_diggerbees(graph, 0, config=cfg.with_overrides(turbo=True))
    assert turbo.counters.refills > 0
    assert turbo.counters.intra_steal_successes > 0
    for i, res in enumerate(run_hive(graph, [(0, cfg)] * 4)):
        _assert_same(turbo, res, f"refill-race run {i}")


def test_heterogeneous_seeds_cas_validation():
    """Different seeds desynchronize the lanes; thieves whose observed
    token went stale must fail their CAS exactly as the scalar protocol
    does, with identical per-run counters."""
    graph = GRAPHS["road"]()
    cfg = _steal_heavy_config()
    tasks = [(0, cfg.with_overrides(seed=s)) for s in (1, 2, 3, 4, 5)]
    refs = [run_diggerbees(graph, 0, config=c.with_overrides(turbo=True))
            for _, c in tasks]
    results = run_hive(graph, tasks)
    assert any(r.counters.cas_failures > 0 for r in refs)
    for i, (ref, res) in enumerate(zip(refs, results)):
        _assert_same(ref, res, f"hetero-seed run {i}")


def test_patched_protocol_routes_to_fallback(monkeypatch):
    """Monkeypatching a protocol function (as repro.check's mutation
    harness does) must disable the vector passes for the whole drain and
    route every event through the scalar per-agent step — same results,
    nonzero fallback fraction."""
    graph = GRAPHS["skewed_tree"]()
    cfg = _steal_heavy_config()
    turbo = run_diggerbees(graph, 0, config=cfg.with_overrides(turbo=True))

    orig = intra_steal.select_victim

    def wrapper(state, block, warp_id):
        return orig(state, block, warp_id)

    monkeypatch.setattr(intra_steal, "select_victim", wrapper)
    stats = {}
    results = run_hive(graph, [(0, cfg)] * 2, stats=stats)
    for i, res in enumerate(results):
        _assert_same(turbo, res, f"patched run {i}")
    assert stats["fallback_lane_fraction"] > 0.0
    assert stats["vector_refills"] == 0
    assert stats["vector_reserves_intra"] == 0


def test_scalar_mode_stats_report_fallback():
    """hive_steal="scalar" keeps the batched expand path but routes all
    protocol events through the scalar fallback; the stats dict makes
    that visible."""
    graph = GRAPHS["hub"]()
    cfg = _steal_heavy_config(hive_steal="scalar")
    stats = {}
    run_hive(graph, [(0, cfg)] * 2, stats=stats)
    assert stats["events_total"] > 0
    assert stats["events_fallback"] > 0
    assert stats["fallback_lane_fraction"] > 0.0
    assert stats["vector_refills"] == 0


def test_hive_steal_config_validation():
    assert DiggerBeesConfig(hive_steal="scalar").hive_steal == "scalar"
    assert DiggerBeesConfig().hive_steal == "vector"
    with pytest.raises(Exception):
        DiggerBeesConfig(hive_steal="bogus")
