"""Tests for the multi-source (forest / warm-start) DiggerBees mode."""

import numpy as np
import pytest

from repro.core import DiggerBeesConfig
from repro.core.multi_source import run_diggerbees_multi
from repro.errors import SimulationError, ValidationError
from repro.graphs import generators as gen
from repro.graphs.csr import from_edges
from repro.validate import check_tree_validity

CFG = DiggerBeesConfig(n_blocks=4, warps_per_block=2, hot_size=16,
                       hot_cutoff=4, cold_cutoff=4, flush_batch=4,
                       refill_batch=4, cold_reserve=16, seed=3)


def forest_is_valid(graph, result):
    """Each claimed root's tree must be valid over its component."""
    parent = result.traversal.parent
    for root in result.roots:
        assert parent[root] == -1
    # Validate tree-ness globally: every visited non-root has a visited
    # parent via a real edge, chains reach some root.
    from repro.validate.euler import build_euler_tour

    visited = result.traversal.visited
    for root in result.roots:
        comp = np.zeros_like(visited)
        # membership: walk chains (cheap at test sizes)
        for v in np.flatnonzero(visited):
            cur = v
            while parent[cur] >= 0:
                cur = parent[cur]
            if cur == root:
                comp[v] = True
        build_euler_tour(parent, root, comp)


class TestForestCoverage:
    def test_disconnected_covered_in_one_run(self, disconnected_graph):
        res = run_diggerbees_multi(disconnected_graph, [0, 3, 5], config=CFG,
                                   check_invariants=True)
        assert res.traversal.n_visited == 6
        assert set(res.roots) == {0, 3, 5}
        forest_is_valid(disconnected_graph, res)

    def test_same_component_roots_partition_it(self, small_road):
        """Distinct roots in one component each claim a tree: the
        component is partitioned (parallel multi-source semantics)."""
        res = run_diggerbees_multi(small_road, [0, 100, 200], config=CFG,
                                   check_invariants=True)
        assert set(res.roots) == {0, 100, 200}
        assert res.traversal.n_visited == small_road.n_vertices
        forest_is_valid(small_road, res)

    def test_duplicate_roots(self, disconnected_graph):
        res = run_diggerbees_multi(disconnected_graph, [0, 0, 3, 3], config=CFG)
        assert set(res.roots) == {0, 3}

    def test_empty_roots_rejected(self, tiny_path):
        with pytest.raises(SimulationError):
            run_diggerbees_multi(tiny_path, [], config=CFG)

    def test_root_out_of_range(self, tiny_path):
        from repro.errors import GraphFormatError

        with pytest.raises(GraphFormatError):
            run_diggerbees_multi(tiny_path, [0, 99], config=CFG)


class TestWarmStart:
    def test_multi_seed_speeds_up_deep_graph(self):
        """Seeding spread-out roots removes the single-source ramp-up on
        a deep graph: the forest covers the same vertices in fewer
        cycles."""
        g = gen.road_network(4000, seed=3)
        single = run_diggerbees_multi(g, [0], config=CFG)
        multi = run_diggerbees_multi(g, [0, 1000, 2000, 3000], config=CFG)
        assert multi.traversal.n_visited == single.traversal.n_visited
        assert multi.cycles < single.cycles

    def test_seeds_distributed_round_robin(self, disconnected_graph):
        res = run_diggerbees_multi(disconnected_graph, [0, 3, 5], config=CFG)
        # Root 3 seeded on block 1, root 5 on block 2 -> those blocks
        # recorded tasks.
        assert 1 in res.counters.tasks_per_block
        assert 2 in res.counters.tasks_per_block

    def test_deterministic(self, disconnected_graph):
        a = run_diggerbees_multi(disconnected_graph, [0, 3, 5], config=CFG)
        b = run_diggerbees_multi(disconnected_graph, [0, 3, 5], config=CFG)
        assert a.cycles == b.cycles
        assert a.roots == b.roots

    def test_mteps_positive(self, small_road):
        assert run_diggerbees_multi(small_road, [0], config=CFG).mteps > 0


class TestSwarmEquivalence:
    """Warm-start forest vs the swarm lockstep tier on the same roots.

    The two batch either-side engines answer different questions from
    the same seeds: the DFS forest *partitions* each component among
    the roots that landed in it, while every swarm lane traverses its
    root's whole component independently.  What must agree is the
    reachability they establish — and each swarm lane must stay
    bit-identical to its own single-root frontier run even when lanes
    overlap on a component.
    """

    def _swarm(self, graph, roots):
        from repro.core.swarm import run_swarm

        return run_swarm(graph, np.asarray(roots, dtype=np.int64))

    def test_union_reachability_matches(self, disconnected_graph):
        roots = [0, 3, 5]
        forest = run_diggerbees_multi(disconnected_graph, roots, config=CFG)
        lanes = self._swarm(disconnected_graph, roots)
        union = np.zeros(disconnected_graph.n_vertices, dtype=bool)
        for res in lanes:
            union |= res.traversal.visited
        assert np.array_equal(union, forest.traversal.visited)

    def test_overlapping_roots_same_component(self, small_road):
        """Roots sharing one component: the forest partitions it, the
        lanes each cover it — visited sets agree in the union, parents
        are independent per lane."""
        from repro.core.frontier import run_frontier

        roots = [0, 100, 200]
        forest = run_diggerbees_multi(small_road, roots, config=CFG)
        lanes = self._swarm(small_road, roots)
        for root, res in zip(roots, lanes):
            # Every lane claims the whole component on its own...
            assert np.array_equal(res.traversal.visited,
                                  forest.traversal.visited)
            # ...with its own min-parent tree rooted at its own seed,
            # bit-identical to the single-root frontier engine.
            single = run_frontier(small_road, root)
            assert res.traversal.parent[root] == -1
            assert np.array_equal(res.traversal.parent,
                                  single.traversal.parent)
            assert np.array_equal(res.level, single.level)
        # Independent parents: overlapping lanes disagree on parents
        # (different roots induce different min-parent trees) while the
        # forest assigned each vertex to exactly one tree.
        assert not np.array_equal(lanes[0].traversal.parent,
                                  lanes[1].traversal.parent)

    def test_duplicate_roots_give_identical_lanes(self, disconnected_graph):
        forest = run_diggerbees_multi(disconnected_graph, [0, 0, 3],
                                      config=CFG)
        lanes = self._swarm(disconnected_graph, [0, 0, 3])
        # multi_source drops exact duplicates; swarm runs both lanes
        # and they must be bit-identical.
        assert set(forest.roots) == {0, 3}
        assert np.array_equal(lanes[0].traversal.parent,
                              lanes[1].traversal.parent)
        assert np.array_equal(lanes[0].level, lanes[1].level)
        assert np.array_equal(lanes[0].traversal.visited,
                              lanes[1].traversal.visited)
