"""Tests for the multi-source (forest / warm-start) DiggerBees mode."""

import numpy as np
import pytest

from repro.core import DiggerBeesConfig
from repro.core.multi_source import run_diggerbees_multi
from repro.errors import SimulationError, ValidationError
from repro.graphs import generators as gen
from repro.graphs.csr import from_edges
from repro.validate import check_tree_validity

CFG = DiggerBeesConfig(n_blocks=4, warps_per_block=2, hot_size=16,
                       hot_cutoff=4, cold_cutoff=4, flush_batch=4,
                       refill_batch=4, cold_reserve=16, seed=3)


def forest_is_valid(graph, result):
    """Each claimed root's tree must be valid over its component."""
    parent = result.traversal.parent
    for root in result.roots:
        assert parent[root] == -1
    # Validate tree-ness globally: every visited non-root has a visited
    # parent via a real edge, chains reach some root.
    from repro.validate.euler import build_euler_tour

    visited = result.traversal.visited
    for root in result.roots:
        comp = np.zeros_like(visited)
        # membership: walk chains (cheap at test sizes)
        for v in np.flatnonzero(visited):
            cur = v
            while parent[cur] >= 0:
                cur = parent[cur]
            if cur == root:
                comp[v] = True
        build_euler_tour(parent, root, comp)


class TestForestCoverage:
    def test_disconnected_covered_in_one_run(self, disconnected_graph):
        res = run_diggerbees_multi(disconnected_graph, [0, 3, 5], config=CFG,
                                   check_invariants=True)
        assert res.traversal.n_visited == 6
        assert set(res.roots) == {0, 3, 5}
        forest_is_valid(disconnected_graph, res)

    def test_same_component_roots_partition_it(self, small_road):
        """Distinct roots in one component each claim a tree: the
        component is partitioned (parallel multi-source semantics)."""
        res = run_diggerbees_multi(small_road, [0, 100, 200], config=CFG,
                                   check_invariants=True)
        assert set(res.roots) == {0, 100, 200}
        assert res.traversal.n_visited == small_road.n_vertices
        forest_is_valid(small_road, res)

    def test_duplicate_roots(self, disconnected_graph):
        res = run_diggerbees_multi(disconnected_graph, [0, 0, 3, 3], config=CFG)
        assert set(res.roots) == {0, 3}

    def test_empty_roots_rejected(self, tiny_path):
        with pytest.raises(SimulationError):
            run_diggerbees_multi(tiny_path, [], config=CFG)

    def test_root_out_of_range(self, tiny_path):
        from repro.errors import GraphFormatError

        with pytest.raises(GraphFormatError):
            run_diggerbees_multi(tiny_path, [0, 99], config=CFG)


class TestWarmStart:
    def test_multi_seed_speeds_up_deep_graph(self):
        """Seeding spread-out roots removes the single-source ramp-up on
        a deep graph: the forest covers the same vertices in fewer
        cycles."""
        g = gen.road_network(4000, seed=3)
        single = run_diggerbees_multi(g, [0], config=CFG)
        multi = run_diggerbees_multi(g, [0, 1000, 2000, 3000], config=CFG)
        assert multi.traversal.n_visited == single.traversal.n_visited
        assert multi.cycles < single.cycles

    def test_seeds_distributed_round_robin(self, disconnected_graph):
        res = run_diggerbees_multi(disconnected_graph, [0, 3, 5], config=CFG)
        # Root 3 seeded on block 1, root 5 on block 2 -> those blocks
        # recorded tasks.
        assert 1 in res.counters.tasks_per_block
        assert 2 in res.counters.tasks_per_block

    def test_deterministic(self, disconnected_graph):
        a = run_diggerbees_multi(disconnected_graph, [0, 3, 5], config=CFG)
        b = run_diggerbees_multi(disconnected_graph, [0, 3, 5], config=CFG)
        assert a.cycles == b.cycles
        assert a.roots == b.roots

    def test_mteps_positive(self, small_road):
        assert run_diggerbees_multi(small_road, [0], config=CFG).mteps > 0
