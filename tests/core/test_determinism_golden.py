"""Golden determinism tests for the fast-path engine.

The tentpole contract of the fast-path work (vectorized expand, slot-reuse
heap, calendar queue) is that it changes *nothing observable*: for a given
seed, the old-style configuration (``fastpath=False`` + ``scheduler="heap"``,
the seed repo's semantics) and the fast-path configuration
(``fastpath=True`` + ``scheduler="calendar"``, today's default) must produce
bit-identical schedules — same cycle count, same step count, same DFS tree.
"""

import numpy as np
import pytest

from repro.core import DiggerBeesConfig, run_diggerbees
from repro.graphs import generators as gen

#: (graph builder, config) pairs spanning the structural regimes that
#: exercise different engine paths (deep road, shallow heavy-tail, mesh).
GOLDEN_CASES = [
    ("road", lambda: gen.road_network(800, seed=5),
     dict(n_blocks=4, warps_per_block=4, seed=5)),
    ("social", lambda: gen.preferential_attachment(900, m=5, seed=6),
     dict(n_blocks=4, warps_per_block=4, seed=6)),
    ("mesh", lambda: gen.delaunay_mesh(700, seed=7),
     dict(n_blocks=2, warps_per_block=8, seed=7)),
]


def _run(graph, cfg_kwargs, *, fastpath, scheduler):
    cfg = DiggerBeesConfig(fastpath=fastpath, scheduler=scheduler,
                           **cfg_kwargs)
    return run_diggerbees(graph, 0, config=cfg)


@pytest.mark.parametrize("name,build,cfg_kwargs", GOLDEN_CASES,
                         ids=[c[0] for c in GOLDEN_CASES])
def test_fastpath_matches_reference_schedule(name, build, cfg_kwargs):
    graph = build()
    old = _run(graph, cfg_kwargs, fastpath=False, scheduler="heap")
    new = _run(graph, cfg_kwargs, fastpath=True, scheduler="calendar")

    assert new.cycles == old.cycles
    assert new.engine.steps == old.engine.steps
    assert new.n_visited == old.n_visited
    assert new.traversal.edges_traversed == old.traversal.edges_traversed
    # Identical schedule implies the identical DFS tree, vertex by vertex.
    assert np.array_equal(new.traversal.parent, old.traversal.parent)


@pytest.mark.parametrize("scheduler", ["heap", "calendar"])
def test_schedulers_agree_on_fastpath(scheduler):
    """Both schedulers yield the same run for the same fastpath setting."""
    graph = gen.road_network(600, seed=9)
    base = _run(graph, dict(n_blocks=4, warps_per_block=2, seed=9),
                fastpath=True, scheduler="auto")
    other = _run(graph, dict(n_blocks=4, warps_per_block=2, seed=9),
                 fastpath=True, scheduler=scheduler)
    assert other.cycles == base.cycles
    assert other.engine.steps == base.engine.steps
    assert np.array_equal(other.traversal.parent, base.traversal.parent)


def test_repeated_runs_are_bit_identical():
    """Same config twice => same everything (no hidden global state)."""
    graph = gen.preferential_attachment(700, m=4, seed=11)
    kwargs = dict(n_blocks=4, warps_per_block=4, seed=11)
    a = _run(graph, kwargs, fastpath=True, scheduler="calendar")
    b = _run(graph, kwargs, fastpath=True, scheduler="calendar")
    assert a.cycles == b.cycles
    assert a.engine.steps == b.engine.steps
    assert np.array_equal(a.traversal.parent, b.traversal.parent)
