"""Unit + property tests for the two-level stack (paper §3.2, Figure 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.twolevel_stack import ColdSeg, HotRing, OneLevelStack, WarpStack
from repro.errors import SimulationError, StackOverflowError


class TestHotRing:
    def test_empty_full_conditions(self):
        h = HotRing(4)
        assert h.is_empty and not h.is_full
        for i in range(3):  # capacity is size - 1
            h.push(i, i * 10)
        assert h.is_full and not h.is_empty
        assert len(h) == 3

    def test_push_pop_lifo(self):
        h = HotRing(8)
        h.push(1, 10)
        h.push(2, 20)
        assert h.pop() == (2, 20)
        assert h.pop() == (1, 10)
        assert h.is_empty

    def test_paper_figure2c_push(self):
        """Fig 2(c): push <a|i> at head=0, head becomes 1."""
        h = HotRing(4)
        h.push(ord("a"), 42)
        assert h.head == 1 and h.tail == 0
        assert h.peek() == (ord("a"), 42)

    def test_paper_figure2d_pop_wraps(self):
        """Fig 2(d): pop at head=0 wraps to (0+4-1)%4 = 3."""
        h = HotRing(4)
        # Fill positions 2, 3 then wrap head to 0 (tail=2 like the figure).
        h.head = 2
        h.tail = 2
        h.push(5, 50)   # pos 2, head 3
        h.push(6, 60)   # pos 3, head 0
        assert h.head == 0
        assert h.pop() == (6, 60)
        assert h.head == 3

    def test_wraparound_many(self):
        h = HotRing(5)
        for round_ in range(7):
            for i in range(4):
                h.push(i, round_)
            for i in reversed(range(4)):
                assert h.pop() == (i, round_)

    def test_overflow_raises(self):
        h = HotRing(3)
        h.push(0, 0)
        h.push(1, 1)
        with pytest.raises(StackOverflowError):
            h.push(2, 2)

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            HotRing(4).pop()

    def test_peek_empty_raises(self):
        with pytest.raises(SimulationError):
            HotRing(4).peek()

    def test_update_top_offset(self):
        h = HotRing(4)
        h.push(7, 1)
        h.update_top_offset(9)
        assert h.peek() == (7, 9)

    def test_take_from_tail_oldest_first(self):
        h = HotRing(8)
        for i in range(5):
            h.push(i, i)
        verts, offs = h.take_from_tail(2)
        assert list(verts) == [0, 1]
        assert len(h) == 3
        assert h.pop() == (4, 4)  # head side untouched

    def test_take_too_many_raises(self):
        h = HotRing(8)
        h.push(0, 0)
        with pytest.raises(SimulationError):
            h.take_from_tail(2)

    def test_put_batch_preserves_order(self):
        h = HotRing(8)
        h.put_batch(np.array([1, 2, 3]), np.array([10, 20, 30]))
        assert h.pop() == (3, 30)
        assert h.pop() == (2, 20)

    def test_put_batch_overflow(self):
        h = HotRing(4)
        with pytest.raises(StackOverflowError):
            h.put_batch(np.arange(4), np.arange(4))

    def test_snapshot(self):
        h = HotRing(6)
        for i in range(3):
            h.push(i, i * 2)
        assert h.snapshot() == [(0, 0), (1, 2), (2, 4)]

    @given(st.lists(st.sampled_from(["push", "pop"]), max_size=200),
           st.integers(min_value=4, max_value=16))
    @settings(max_examples=60)
    def test_property_matches_list_model(self, ops, size):
        """A HotRing with only owner ops behaves as a bounded LIFO list."""
        h = HotRing(size)
        model = []
        counter = 0
        for op in ops:
            if op == "push" and len(model) < size - 1:
                h.push(counter, counter)
                model.append((counter, counter))
                counter += 1
            elif op == "pop" and model:
                assert h.pop() == model.pop()
            assert len(h) == len(model)
            assert h.is_empty == (not model)
            assert h.snapshot() == model


class TestColdSeg:
    def test_push_pop(self):
        c = ColdSeg(4)
        c.push_batch(np.array([1, 2]), np.array([10, 20]))
        assert len(c) == 2
        verts, offs = c.pop_batch(2)
        assert list(verts) == [1, 2]  # oldest-first
        assert c.is_empty

    def test_steal_from_bottom(self):
        c = ColdSeg(8)
        c.push_batch(np.arange(5), np.arange(5) * 10)
        verts, _ = c.steal_from_bottom(2)
        assert list(verts) == [0, 1]
        assert len(c) == 3
        verts, _ = c.pop_batch(1)
        assert list(verts) == [4]  # top untouched

    def test_growth(self):
        c = ColdSeg(2)
        c.push_batch(np.arange(100), np.arange(100))
        assert len(c) == 100
        assert c.peak_occupancy == 100

    def test_compaction(self):
        c = ColdSeg(8)
        c.push_batch(np.arange(6), np.arange(6))
        c.steal_from_bottom(5)  # bottom = 5, dead prefix dominates
        c.push_batch(np.arange(10, 17), np.arange(7))
        assert c.compactions >= 1
        assert c.snapshot()[0][0] == 5  # surviving entry intact

    def test_pop_too_many(self):
        c = ColdSeg(4)
        with pytest.raises(SimulationError):
            c.pop_batch(1)

    def test_steal_too_many(self):
        c = ColdSeg(4)
        c.push_batch(np.array([1]), np.array([1]))
        with pytest.raises(SimulationError):
            c.steal_from_bottom(2)

    @given(st.lists(st.tuples(st.sampled_from(["push", "pop", "steal"]),
                              st.integers(1, 5)), max_size=100))
    @settings(max_examples=60)
    def test_property_matches_deque_model(self, ops):
        """ColdSeg behaves as a deque: push/pop at top, steal at bottom."""
        c = ColdSeg(4)
        model = []
        counter = 0
        for op, k in ops:
            if op == "push":
                vals = list(range(counter, counter + k))
                counter += k
                c.push_batch(np.array(vals), np.array(vals))
                model.extend(vals)
            elif op == "pop" and len(model) >= k:
                verts, _ = c.pop_batch(k)
                expect = model[-k:]
                del model[-k:]
                assert list(verts) == expect
            elif op == "steal" and len(model) >= k:
                verts, _ = c.steal_from_bottom(k)
                expect = model[:k]
                del model[:k]
                assert list(verts) == expect
            assert len(c) == len(model)
            assert [v for v, _ in c.snapshot()] == model


class TestWarpStack:
    def make(self, hot_size=8, flush=2, refill=2):
        return WarpStack(hot_size=hot_size, flush_batch=flush, refill_batch=refill)

    def test_flush_on_full(self):
        s = self.make()
        for i in range(7):
            s.hot.push(i, i)
        assert s.needs_flush()
        moved = s.flush()
        assert moved == 2
        assert [v for v, _ in s.cold.snapshot()] == [0, 1]  # oldest flushed
        assert len(s.hot) == 5

    def test_refill_restores_order(self):
        """Fig 2(e)+(f): flush then refill preserves stack semantics."""
        s = self.make()
        for i in range(7):
            s.hot.push(i, i)
        s.flush()
        # Drain hot, then refill from cold.
        while not s.hot.is_empty:
            s.hot.pop()
        assert s.can_refill()
        moved = s.refill()
        assert moved == 2
        # Refill takes the cold TOP (newest flushed = 1) to hot top.
        assert s.hot.pop() == (1, 1)
        assert s.hot.pop() == (0, 0)

    def test_paper_figure2e_flush_pointers(self):
        """Fig 2(e): hot_size=4, batch=2; tail 2 -> 0, top 2 -> 4."""
        s = WarpStack(hot_size=4, flush_batch=2, refill_batch=2)
        s.cold.push_batch(np.array([101, 102]), np.array([0, 0]))  # top = 2
        s.hot.head = 2
        s.hot.tail = 2
        s.hot.push(ord("a"), 1)
        s.hot.push(ord("b"), 2)
        s.hot.push(ord("c"), 3)  # head = 1, full (tail=2)
        assert s.needs_flush()
        s.flush()
        assert s.hot.tail == 0
        assert s.cold.top == 4

    def test_total_length(self):
        s = self.make()
        for i in range(7):
            s.hot.push(i, i)
        s.flush()
        assert len(s) == 7
        assert not s.is_empty

    def test_snapshot_combines(self):
        s = self.make()
        for i in range(7):
            s.hot.push(i, i)
        s.flush()
        assert [v for v, _ in s.snapshot()] == list(range(7))

    def test_refill_without_cold_raises(self):
        s = self.make()
        with pytest.raises(SimulationError):
            s.refill()

    def test_flush_empty_raises(self):
        s = self.make()
        with pytest.raises(SimulationError):
            s.flush()

    def test_batch_must_fit(self):
        with pytest.raises(SimulationError):
            WarpStack(hot_size=4, flush_batch=4, refill_batch=2)

    @given(st.lists(st.sampled_from(["push", "pop"]), min_size=1, max_size=300))
    @settings(max_examples=40)
    def test_property_flush_refill_transparent(self, ops):
        """With automatic flush/refill, the two-level stack is
        observationally a plain unbounded LIFO stack."""
        s = WarpStack(hot_size=8, flush_batch=3, refill_batch=3)
        model = []
        counter = 0
        for op in ops:
            if op == "push":
                if s.needs_flush():
                    s.flush()
                s.hot.push(counter, counter)
                model.append(counter)
                counter += 1
            else:
                if s.hot.is_empty and s.can_refill():
                    s.refill()
                if model:
                    v, _ = s.hot.pop()
                    assert v == model.pop()
            assert len(s) == len(model)


class TestOneLevelStack:
    def test_lifo(self):
        s = OneLevelStack()
        s.push(1, 10)
        s.push(2, 20)
        assert s.peek() == (2, 20)
        s.update_top_offset(25)
        assert s.pop() == (2, 25)
        assert s.pop() == (1, 10)
        assert s.is_empty

    def test_steal_interface(self):
        s = OneLevelStack()
        for i in range(5):
            s.push(i, i)
        verts, _ = s.take_from_tail(2)
        assert list(verts) == [0, 1]
        assert len(s) == 3

    def test_empty_errors(self):
        s = OneLevelStack()
        with pytest.raises(SimulationError):
            s.pop()
        with pytest.raises(SimulationError):
            s.peek()
        with pytest.raises(SimulationError):
            s.update_top_offset(0)
