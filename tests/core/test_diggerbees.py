"""Integration + property tests for the full DiggerBees algorithm."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DiggerBeesConfig, run_diggerbees
from repro.errors import SimulationError
from repro.graphs import generators as gen
from repro.graphs.csr import from_edges
from repro.sim.device import A100, H100
from repro.utils.rng import make_rng
from repro.validate import (
    dfs_property_violations,
    reachable_mask,
    serial_dfs,
    validate_traversal,
)

SMALL_CFG = DiggerBeesConfig(n_blocks=2, warps_per_block=2, hot_size=16,
                             hot_cutoff=4, cold_cutoff=4, flush_batch=4,
                             refill_batch=4, cold_reserve=16, seed=1)


class TestCorrectness:
    @pytest.mark.parametrize("graph_builder", [
        lambda: gen.path_graph(200),
        lambda: gen.cycle_graph(100),
        lambda: gen.star_graph(150),
        lambda: gen.binary_tree(7),
        lambda: gen.grid2d(12, 12),
        lambda: gen.complete_graph(24),
        lambda: gen.road_network(600, seed=2),
        lambda: gen.preferential_attachment(500, m=4, seed=2),
        lambda: gen.delaunay_mesh(300, seed=2),
    ])
    def test_valid_tree_on_family(self, graph_builder):
        g = graph_builder()
        res = run_diggerbees(g, 0, config=SMALL_CFG, check_invariants=True)
        report = validate_traversal(g, res.traversal)
        assert report.tree_valid and report.visited_correct

    def test_disconnected_covers_component_only(self, disconnected_graph):
        res = run_diggerbees(disconnected_graph, 0, config=SMALL_CFG)
        assert res.n_visited == 3
        assert not res.traversal.visited[3]

    def test_single_vertex(self):
        g = gen.path_graph(1)
        res = run_diggerbees(g, 0, config=SMALL_CFG)
        assert res.n_visited == 1
        assert res.traversal.edges_traversed == 0

    def test_every_root_gives_valid_tree(self):
        g = gen.road_network(300, seed=4)
        for root in (0, 37, 299):
            res = run_diggerbees(g, root, config=SMALL_CFG)
            validate_traversal(g, res.traversal)
            assert res.traversal.root == root

    def test_visited_equals_serial(self, small_road):
        par = run_diggerbees(small_road, 0, config=SMALL_CFG)
        ser = serial_dfs(small_road, 0)
        assert np.array_equal(par.traversal.visited, ser.visited)

    def test_edges_traversed_equals_serial(self, small_road):
        """Unordered parallel DFS is work-efficient: every arc of the
        reachable region is inspected exactly once."""
        par = run_diggerbees(small_road, 0, config=SMALL_CFG)
        ser = serial_dfs(small_road, 0)
        assert par.traversal.edges_traversed == ser.edges_traversed

    def test_invalid_root(self, tiny_path):
        from repro.errors import GraphFormatError

        with pytest.raises(GraphFormatError):
            run_diggerbees(tiny_path, 42, config=SMALL_CFG)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=15)
    def test_property_random_graphs_yield_valid_trees(self, seed):
        rng = make_rng(seed)
        n = int(rng.integers(2, 120))
        m = int(rng.integers(1, 4 * n))
        edges = rng.integers(0, n, size=(m, 2))
        both = np.vstack([edges, edges[:, ::-1]])
        g = from_edges(n, both, dedupe=True, drop_self_loops=True)
        root = int(rng.integers(0, n))
        res = run_diggerbees(g, root, config=SMALL_CFG, check_invariants=True)
        report = validate_traversal(g, res.traversal)
        assert report.tree_valid


class TestDeterminism:
    def test_same_seed_same_everything(self, small_road):
        a = run_diggerbees(small_road, 0, config=SMALL_CFG)
        b = run_diggerbees(small_road, 0, config=SMALL_CFG)
        assert a.cycles == b.cycles
        assert np.array_equal(a.traversal.parent, b.traversal.parent)
        assert a.counters.intra_steal_successes == b.counters.intra_steal_successes

    def test_different_seed_may_change_schedule(self, small_road):
        a = run_diggerbees(small_road, 0, config=SMALL_CFG)
        b = run_diggerbees(small_road, 0,
                           config=SMALL_CFG.with_overrides(seed=77))
        # Timing depends on victim sampling; trees may legitimately differ.
        assert a.n_visited == b.n_visited


class TestMechanisms:
    def test_stealing_engages_on_deep_graph(self):
        g = gen.road_network(2000, seed=3)
        cfg = DiggerBeesConfig.v4(H100, sim_scale=0.1, seed=3)
        res = run_diggerbees(g, 0, config=cfg)
        c = res.counters
        assert c.intra_steal_successes > 0
        assert c.inter_steal_successes > 0
        assert c.flushes > 0 and c.refill_entries >= 0

    def test_v1_never_flushes(self, small_road):
        cfg = DiggerBeesConfig.v1(H100, warps_per_block=4, seed=3)
        res = run_diggerbees(small_road, 0, config=cfg)
        assert res.counters.flushes == 0
        assert res.counters.inter_steal_attempts == 0

    def test_v2_single_block_no_inter(self, small_road):
        cfg = DiggerBeesConfig.v2(H100, warps_per_block=4, seed=3)
        res = run_diggerbees(small_road, 0, config=cfg)
        assert res.counters.inter_steal_attempts == 0

    def test_intra_disabled_still_correct(self, small_road):
        cfg = SMALL_CFG.with_overrides(enable_intra_steal=False,
                                       enable_inter_steal=False)
        res = run_diggerbees(small_road, 0, config=cfg, check_invariants=True)
        validate_traversal(small_road, res.traversal)

    def test_entry_conservation_via_counters(self, small_road):
        res = run_diggerbees(small_road, 0, config=SMALL_CFG)
        c = res.counters
        assert c.pushes == c.pops  # every entry pushed is eventually popped
        assert c.pushes == res.n_visited  # one entry per visited vertex

    def test_unordered_tree_may_violate_strict_dfs(self):
        """Parallel work stealing produces valid but generally
        non-strict DFS trees (paper Figure 1(c) semantics); the violation
        fraction is finite and usually nonzero on cyclic graphs."""
        g = gen.delaunay_mesh(800, seed=5)
        cfg = DiggerBeesConfig(n_blocks=4, warps_per_block=4, hot_size=16,
                               hot_cutoff=4, cold_cutoff=4, flush_batch=4,
                               refill_batch=4, cold_reserve=16, seed=5)
        res = run_diggerbees(g, 0, config=cfg)
        frac = dfs_property_violations(g, res.traversal)
        assert 0.0 <= frac < 1.0

    def test_tasks_accounted_per_block(self, small_road):
        res = run_diggerbees(small_road, 0, config=SMALL_CFG)
        total = sum(res.counters.tasks_per_block.values())
        assert total == res.n_visited


class TestResultObject:
    def test_mteps_positive(self, small_road):
        res = run_diggerbees(small_road, 0, config=SMALL_CFG)
        assert res.mteps > 0
        assert res.seconds == pytest.approx(res.cycles / H100.clock_hz)

    def test_summary_keys(self, small_road):
        s = run_diggerbees(small_road, 0, config=SMALL_CFG).summary()
        for key in ("mteps", "cycles", "visited", "intra_steals",
                    "inter_steals", "flushes"):
            assert key in s

    def test_device_selection(self, small_road):
        res = run_diggerbees(small_road, 0, config=SMALL_CFG, device=A100)
        assert res.device.name == "A100"

    def test_trace_collection(self, small_road):
        cfg = SMALL_CFG.with_overrides(trace=True)
        res = run_diggerbees(small_road, 0, config=cfg)
        assert res.trace is not None
        kinds = res.trace.kinds()
        assert kinds.get("visit", 0) > 0
        assert kinds.get("pop", 0) > 0

    def test_no_trace_by_default(self, small_road):
        res = run_diggerbees(small_road, 0, config=SMALL_CFG)
        assert res.trace is None
