"""Unit tests for the flush-policy ablation (tail vs head)."""

import numpy as np
import pytest

from repro.core import DiggerBeesConfig, run_diggerbees
from repro.core.twolevel_stack import WarpStack
from repro.errors import SimulationError
from repro.graphs import generators as gen
from repro.validate import validate_traversal


class TestHeadFlushMechanics:
    def make(self, policy):
        return WarpStack(hot_size=8, flush_batch=2, refill_batch=2,
                         flush_policy=policy)

    def test_tail_flushes_oldest(self):
        s = self.make("tail")
        for i in range(7):
            s.hot.push(i, i)
        s.flush()
        assert [v for v, _ in s.cold.snapshot()] == [0, 1]
        assert s.hot.peek() == (6, 6)      # newest still on top

    def test_head_flushes_newest(self):
        s = self.make("head")
        for i in range(7):
            s.hot.push(i, i)
        s.flush()
        # Newest two (5, 6) moved; ColdSeg stores them oldest-first.
        assert [v for v, _ in s.cold.snapshot()] == [5, 6]
        assert s.hot.peek() == (4, 4)

    def test_head_flush_refill_restores_order(self):
        """Flushing the head then refilling must return the same entries
        in LIFO order (the batch round-trips)."""
        s = self.make("head")
        for i in range(7):
            s.hot.push(i, i)
        s.flush()
        while not s.hot.is_empty:
            s.hot.pop()
        s.refill()
        assert s.hot.pop() == (6, 6)
        assert s.hot.pop() == (5, 5)

    def test_invalid_policy_rejected(self):
        with pytest.raises(SimulationError):
            WarpStack(hot_size=8, flush_batch=2, refill_batch=2,
                      flush_policy="middle")
        with pytest.raises(SimulationError):
            DiggerBeesConfig(flush_policy="middle")


class TestHeadFlushEndToEnd:
    def test_head_policy_still_correct(self):
        """The ablation changes performance, never correctness."""
        g = gen.road_network(900, seed=5)
        cfg = DiggerBeesConfig(n_blocks=2, warps_per_block=4, hot_size=16,
                               hot_cutoff=4, cold_cutoff=4, flush_batch=4,
                               refill_batch=4, cold_reserve=16, seed=5,
                               flush_policy="head")
        res = run_diggerbees(g, 0, config=cfg, check_invariants=True)
        validate_traversal(g, res.traversal)
        assert res.counters.flushes > 0

    def test_policies_visit_same_set(self):
        g = gen.delaunay_mesh(600, seed=5)
        results = {}
        for policy in ("tail", "head"):
            cfg = DiggerBeesConfig(n_blocks=2, warps_per_block=4,
                                   hot_size=16, hot_cutoff=4, cold_cutoff=4,
                                   flush_batch=4, refill_batch=4,
                                   cold_reserve=16, seed=5,
                                   flush_policy=policy)
            results[policy] = run_diggerbees(g, 0, config=cfg)
        assert np.array_equal(results["tail"].traversal.visited,
                              results["head"].traversal.visited)
