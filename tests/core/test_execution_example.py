"""Reproduction of the paper's §3.6 execution example (Figure 4).

The paper walks a two-block, three-warps-per-block configuration through
a full traversal: the root seeds Warp0, intra-block stealing spreads the
work inside Block0, a flush populates a ColdSeg, inter-block stealing
activates Block1's leader warp (Warp3), and intra-block stealing inside
Block1 activates the rest.  We replay that scenario on a graph large
enough to trigger every phase and assert the full causal chain from the
trace.
"""

import numpy as np
import pytest

from repro.core import DiggerBeesConfig, run_diggerbees
from repro.graphs import generators as gen
from repro.validate import validate_traversal


@pytest.fixture(scope="module")
def example_run():
    g = gen.road_network(3000, seed=9)
    cfg = DiggerBeesConfig(
        n_blocks=2, warps_per_block=3,
        hot_size=32, hot_cutoff=4, cold_cutoff=16,
        flush_batch=8, refill_batch=8, cold_reserve=64,
        seed=9, trace=True,
    )
    return g, run_diggerbees(g, 0, config=cfg, check_invariants=True)


class TestExecutionExample:
    def test_output_valid(self, example_run):
        g, res = example_run
        validate_traversal(g, res.traversal)

    def test_root_seeded_in_block0_warp0(self, example_run):
        _, res = example_run
        first_visit = res.trace.filter(kind="visit")[0]
        assert first_visit.block == 0 and first_visit.warp == 0

    def test_intra_block_stealing_spreads_block0(self, example_run):
        """Warp1/Warp2 acquire work from within Block0 before anything
        reaches Block1 (the paper's Step1-6)."""
        _, res = example_run
        intra0 = res.trace.filter(kind="steal_intra", block=0)
        assert intra0, "no intra-block steals inside block 0"
        inter = res.trace.filter(kind="steal_inter")
        assert inter, "inter-block stealing never triggered"
        assert intra0[0].time < inter[0].time

    def test_flush_precedes_inter_steal(self, example_run):
        """Inter-block stealing consumes ColdSeg entries, so a flush in
        Block0 must precede the first successful inter-block steal."""
        _, res = example_run
        flushes0 = res.trace.filter(kind="flush", block=0)
        inter = res.trace.filter(kind="steal_inter")
        assert flushes0 and inter
        assert flushes0[0].time < inter[0].time

    def test_leader_warp_performs_inter_steal(self, example_run):
        """Only warp 0 of a block (the leader) executes inter-block steals."""
        _, res = example_run
        for ev in res.trace.filter(kind="steal_inter"):
            assert ev.warp == 0

    def test_block1_activates_then_spreads(self, example_run):
        """After Block1's leader steals, its peers steal intra-block
        (the paper's Step7-8: Warp4/Warp5 steal from Warp3)."""
        _, res = example_run
        inter_to_1 = [e for e in res.trace.filter(kind="steal_inter")
                      if e.block == 1]
        assert inter_to_1, "block 1 never inter-stole"
        intra1 = res.trace.filter(kind="steal_intra", block=1)
        assert intra1, "block 1 peers never spread work"
        assert inter_to_1[0].time < intra1[0].time

    def test_all_warps_participate(self, example_run):
        """Figure 4's final state: every warp processed vertices."""
        _, res = example_run
        workers = set(res.counters.tasks_per_warp)
        assert workers == {(b, w) for b in range(2) for w in range(3)}

    def test_workload_reasonably_balanced(self, example_run):
        """The paper highlights the balanced final distribution (5/5/3 vs
        3/3/3 vertices in its toy example).  At our scale, no warp should
        dominate: max/mean bounded."""
        _, res = example_run
        counts = np.array(list(res.counters.tasks_per_warp.values()))
        assert counts.max() < 6 * counts.mean()

    def test_termination_with_empty_stacks(self, example_run):
        """Global termination: every entry pushed was popped."""
        _, res = example_run
        assert res.counters.pushes == res.counters.pops
