"""Tests for the discovery-order extension (record_order=True)."""

import numpy as np
import pytest

from repro.core import DiggerBeesConfig, run_diggerbees
from repro.graphs import generators as gen

CFG = DiggerBeesConfig(n_blocks=2, warps_per_block=2, hot_size=16,
                       hot_cutoff=4, cold_cutoff=4, flush_batch=4,
                       refill_batch=4, cold_reserve=16, seed=2)


class TestRecordOrder:
    def test_order_covers_visited_exactly_once(self, small_road):
        res = run_diggerbees(small_road, 0, config=CFG, record_order=True)
        order = res.traversal.order
        assert order.size == res.n_visited
        assert len(set(order.tolist())) == order.size
        assert np.all(res.traversal.visited[order])

    def test_root_first(self, small_road):
        res = run_diggerbees(small_road, 7, config=CFG, record_order=True)
        assert res.traversal.order[0] == 7

    def test_parents_precede_children(self, small_road):
        """A discovery order is valid iff every vertex appears after its
        tree parent."""
        res = run_diggerbees(small_road, 0, config=CFG, record_order=True)
        order = res.traversal.order
        rank = np.full(small_road.n_vertices, -1, dtype=np.int64)
        rank[order] = np.arange(order.size)
        parent = res.traversal.parent
        for v in order:
            p = parent[v]
            if p >= 0:
                assert rank[p] < rank[v]

    def test_off_by_default(self, small_road):
        res = run_diggerbees(small_road, 0, config=CFG)
        assert res.traversal.order.size == 0

    def test_enables_trace_implicitly(self, small_road):
        res = run_diggerbees(small_road, 0, config=CFG, record_order=True)
        assert res.trace is not None

    def test_deterministic(self, small_road):
        a = run_diggerbees(small_road, 0, config=CFG, record_order=True)
        b = run_diggerbees(small_road, 0, config=CFG, record_order=True)
        assert np.array_equal(a.traversal.order, b.traversal.order)
