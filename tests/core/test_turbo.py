"""Bit-identity and eligibility coverage for the fused turbo loop.

The turbo contract (``repro.core.turbo``) is *schedule identity*, not
mere correctness: for every eligible configuration the fused
scheduler-agent loop must reproduce the generic engine's cycles, steps,
traversal output and counters bit-for-bit.  These tests sweep that
contract across every fuzz graph family and pin down exactly when the
fused loop may engage.
"""

import numpy as np
import pytest

from repro.check.cases import FAMILIES, FuzzCase
from repro.core.config import DiggerBeesConfig
from repro.core.diggerbees import run_diggerbees
from repro.core.turbo import turbo_eligible


def _family_case(family: str) -> FuzzCase:
    """A small high-contention case (tiny rings, adversarial victims)."""
    return FuzzCase(
        seed=0, family=family, n_vertices=96, graph_seed=7,
        n_blocks=2, warps_per_block=2, hot_size=8, hot_cutoff=2,
        cold_cutoff=2, flush_batch=2, refill_batch=2,
        adversarial_victims=True,
    )


@pytest.mark.parametrize("family", FAMILIES)
def test_turbo_bit_identical_across_families(family):
    """turbo == fastpath == reference on cycles/steps/output/counters."""
    case = _family_case(family)
    graph = case.build_graph()
    cfg_turbo = case.build_config(turbo=True)
    assert turbo_eligible(cfg_turbo)  # the fused loop actually engages
    turbo = run_diggerbees(graph, case.root, config=cfg_turbo)
    fast = run_diggerbees(graph, case.root, config=case.build_config())
    ref = run_diggerbees(graph, case.root,
                         config=case.build_config(fastpath=False))
    for label, other in (("fastpath", fast), ("reference", ref)):
        assert turbo.cycles == other.cycles, label
        assert turbo.engine.steps == other.engine.steps, label
        assert np.array_equal(turbo.traversal.parent,
                              other.traversal.parent), label
        assert np.array_equal(turbo.traversal.visited,
                              other.traversal.visited), label
        assert turbo.counters == other.counters, label
    assert turbo.engine.exact_cycles


class TestEligibility:
    def test_default_config_is_not_turbo(self):
        assert not turbo_eligible(DiggerBeesConfig())

    def test_turbo_flag_enables_fusion(self):
        assert turbo_eligible(DiggerBeesConfig(turbo=True))

    @pytest.mark.parametrize("overrides", [
        {"fastpath": False},
        {"two_level": False},
        {"perturb_seed": 3},
        {"scheduler": "heap"},
    ])
    def test_fallback_conditions(self, overrides):
        cfg = DiggerBeesConfig(turbo=True, **overrides)
        assert not turbo_eligible(cfg)

    @pytest.mark.parametrize("overrides", [
        {"two_level": False},
        {"perturb_seed": 5, "jitter": 2},
        {"scheduler": "heap"},
    ])
    def test_turbo_true_is_always_safe(self, overrides):
        """turbo=True on an ineligible config silently falls back to the
        generic engine and still produces the identical result."""
        case = _family_case("road_network")
        graph = case.build_graph()
        with_turbo = run_diggerbees(
            graph, case.root, config=case.build_config(turbo=True,
                                                       **overrides))
        without = run_diggerbees(
            graph, case.root, config=case.build_config(**overrides))
        assert with_turbo.cycles == without.cycles
        assert with_turbo.engine.steps == without.engine.steps
        assert np.array_equal(with_turbo.traversal.parent,
                              without.traversal.parent)


def test_exact_cycles_reported():
    """Turbo polls termination before every event, so its cycle counts
    are always exact; the generic loop reports exactness from its poll
    interval."""
    case = _family_case("grid2d")
    graph = case.build_graph()
    turbo = run_diggerbees(graph, case.root,
                           config=case.build_config(turbo=True))
    assert turbo.engine.exact_cycles is True
    plain = run_diggerbees(graph, case.root, config=case.build_config())
    assert plain.engine.exact_cycles is True
