"""The sharded execution tier: partition invariance and the merge contract.

The load-bearing promise: :func:`run_sharded` is a pure function of the
graph and root — bit-identical across every district count ``k`` and
every ``jobs`` value, with ``visited``/``edges_traversed`` equal to the
unsharded hive engine and ``parent``/``levels`` equal to the canonical
oracles (min-parent tree over BFS hop distances).  That is what lets the
tier slot into the differential ladder (rung 5f) and the serve daemon's
result cache.
"""

import numpy as np
import pytest

from repro.core import DiggerBeesConfig, run_diggerbees, run_sharded
from repro.core.frontier import min_parent_tree
from repro.errors import SimulationError
from repro.graphs import generators as gen
from repro.graphs.partition import partition_graph
from repro.graphs.properties import bfs_levels
from repro.validate import validate_traversal

CONFIG = DiggerBeesConfig(n_blocks=4, warps_per_block=4, seed=11,
                          turbo=True)

FAMILIES = [
    ("grid", lambda: gen.grid2d(28, 28)),
    ("mesh", lambda: gen.delaunay_mesh(700, seed=5)),
    ("road", lambda: gen.road_network(800, seed=5)),
    ("pa", lambda: gen.preferential_attachment(700, seed=5)),
    ("smallworld", lambda: gen.small_world(700, seed=5)),
    ("skew", lambda: gen.skewed_tree(700, seed=5)),
    ("starmesh", lambda: gen.star_mesh(10, leaves_per_hub=40, seed=5)),
]


@pytest.mark.parametrize("name,build", FAMILIES,
                         ids=[n for n, _ in FAMILIES])
@pytest.mark.parametrize("k", [1, 2, 4, 8])
def test_partition_invariance(name, build, k):
    """Sharded == unsharded for k in {1,2,4,8} on every family."""
    g = build()
    base = run_diggerbees(g, 0, config=CONFIG)
    res = run_sharded(g, 0, config=CONFIG, k=k, partition_seed=3)
    validate_traversal(g, res.traversal)
    assert np.array_equal(res.traversal.visited, base.traversal.visited)
    assert res.traversal.edges_traversed == base.traversal.edges_traversed
    lv = bfs_levels(g, 0)
    assert np.array_equal(res.levels, lv)
    assert np.array_equal(res.traversal.parent, min_parent_tree(g, lv, 0))


@pytest.mark.parametrize("k", [2, 4])
def test_k_and_jobs_invariance(k):
    """The merged result is bit-identical across k and jobs."""
    g = gen.delaunay_mesh(900, seed=2)
    ref = run_sharded(g, 0, config=CONFIG, k=2, partition_seed=3, jobs=1)
    res = run_sharded(g, 0, config=CONFIG, k=k, partition_seed=3, jobs=2)
    assert np.array_equal(res.traversal.visited, ref.traversal.visited)
    assert np.array_equal(res.traversal.parent, ref.traversal.parent)
    assert np.array_equal(res.levels, ref.levels)
    assert res.traversal.edges_traversed == ref.traversal.edges_traversed
    assert res.jobs == 2


def test_round_log_accounts_for_remote_steals():
    g = gen.grid2d(30, 30)
    res = run_sharded(g, 0, config=CONFIG, k=4, partition_seed=3)
    c = res.counters
    assert res.n_rounds >= 2
    assert c.remote_steal_successes == sum(
        r["district_pairs"] for r in res.rounds)
    assert c.remote_steal_entries == sum(
        r["delivered_activations"] for r in res.rounds)
    assert c.remote_steal_successes > 0
    # The modeled makespan is the per-round ledger, nothing else.
    assert res.cycles == sum(r["engine_cycles"] + r["comm_cycles"]
                             for r in res.rounds)
    assert sum(r["newly_visited"] for r in res.rounds) == res.n_visited


def test_k1_has_no_remote_traffic():
    g = gen.road_network(600, seed=4)
    res = run_sharded(g, 0, config=CONFIG, k=1)
    assert res.k == 1 and res.n_rounds == 1
    assert res.counters.remote_steal_successes == 0
    assert res.counters.remote_steal_entries == 0


def test_explicit_partition_short_circuits_the_partitioner():
    g = gen.grid2d(24, 24)
    part = partition_graph(g, 4, seed=9)
    res = run_sharded(g, 0, config=CONFIG, partition=part)
    assert res.partition is part
    base = run_diggerbees(g, 0, config=CONFIG)
    assert np.array_equal(res.traversal.visited, base.traversal.visited)


def test_partition_over_wrong_graph_rejected():
    part = partition_graph(gen.path_graph(32), 2, seed=0)
    with pytest.raises(SimulationError):
        run_sharded(gen.path_graph(48), 0, partition=part)


def test_partial_reachability_merges_exactly():
    # Directed chain into a separate component: the sharded tier must
    # visit exactly the reachable set, not everything in a district.
    edges = [(i, i + 1) for i in range(40)]
    edges += [(50 + i, 50 + (i + 1) % 10) for i in range(10)]
    from repro.graphs.csr import from_edges

    g = from_edges(64, edges, directed=True, name="partial")
    base = run_diggerbees(g, 0, config=CONFIG)
    for k in (2, 4):
        res = run_sharded(g, 0, config=CONFIG, k=k, partition_seed=1)
        assert np.array_equal(res.traversal.visited,
                              base.traversal.visited)
        assert res.traversal.edges_traversed == \
            base.traversal.edges_traversed


def test_summary_carries_shard_extras():
    g = gen.grid2d(20, 20)
    res = run_sharded(g, 0, config=CONFIG, k=4, partition_seed=3)
    s = res.summary()
    assert s["k"] == res.partition.k
    assert s["rounds"] == res.n_rounds
    assert s["partition_edge_cut_fraction"] == \
        res.partition.edge_cut_fraction
    assert s["partition_balance_factor"] == res.partition.balance_factor
    assert s["visited"] == res.n_visited
    assert res.mteps > 0
