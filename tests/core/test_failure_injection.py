"""Failure injection: classic work-stealing bugs must be *caught*.

Each test monkeypatches one canonical concurrency bug into the stealing
or claiming machinery and asserts that the safety net — run-state
invariants, the engine's deadlock guard, or the output validators —
detects it.  This is what makes the green test suite meaningful: the
checks are demonstrably capable of failing.
"""

import numpy as np
import pytest

from repro.core import DiggerBeesConfig, run_diggerbees
from repro.core import intra_steal
from repro.core.state import RunState
from repro.core.twolevel_stack import WarpStack
from repro.core.warp_dfs import WarpAgent
from repro.errors import DeadlockError, SimulationError, ValidationError
from repro.graphs import generators as gen
from repro.sim.device import H100
from repro.sim.engine import EventLoop
from repro.validate import validate_traversal

CFG = DiggerBeesConfig(n_blocks=2, warps_per_block=4, hot_size=16,
                       hot_cutoff=4, cold_cutoff=4, flush_batch=4,
                       refill_batch=4, cold_reserve=16, seed=3)


def run_with_invariants(graph, config=CFG):
    return run_diggerbees(graph, 0, config=config, check_invariants=True)


class TestDuplicatingSteal:
    def test_copy_without_remove_is_caught(self, monkeypatch):
        """Bug: the thief copies the victim's entries but the victim's
        tail is never advanced (forgotten CAS write-back).  Entries are
        duplicated; the pending counter and the per-stack contents
        disagree, and vertices appear in two stacks."""
        original = intra_steal.execute_steal

        def buggy(state, block, thief_warp, plan):
            victim = block.stacks[plan.victim_warp]
            if not isinstance(victim, WarpStack) or len(victim.hot) < plan.amount:
                return original(state, block, thief_warp, plan)
            # Read entries WITHOUT removing them (lost CAS write-back).
            idx = [(victim.hot.tail + j) % victim.hot.size
                   for j in range(plan.amount)]
            verts = [victim.hot.vertex[i] for i in idx]
            offs = [victim.hot.offset[i] for i in idx]
            block.stacks[thief_warp].hot.put_batch(verts, offs)
            block.set_active(thief_warp, True)
            state.counters.intra_steal_successes += 1
            return True

        monkeypatch.setattr(intra_steal, "execute_steal", buggy)
        g = gen.road_network(800, seed=3)
        with pytest.raises((SimulationError, DeadlockError)):
            run_with_invariants(g)


class TestMissingVisitedCas:
    def test_lost_visited_write_is_caught(self):
        """Bug: the claim's visited write never lands (dropped store).
        Every later scan still sees the vertex as unvisited, so it gets
        claimed and pushed again while its first entry is still stacked —
        the invariant checker must flag the duplicate."""
        g = gen.delaunay_mesh(400, seed=3)
        state = RunState(g, 0, CFG, H100)
        original_claim = RunState.try_claim_vertex

        def claim_without_store(v, parent):
            ok = original_claim(state, v, parent)
            if ok:
                state.visited[v] = 0       # the store is lost
            return ok

        state.try_claim_vertex = claim_without_store
        agents = [WarpAgent(state, b, w) for b in range(CFG.n_blocks)
                  for w in range(CFG.warps_per_block)]

        def stacked_vertices():
            return [v for blk in state.blocks for s in blk.stacks
                    for v, _ in s.snapshot()]

        caught = False
        for _ in range(3000):
            if state.is_terminated():
                break
            for a in agents:
                a.step(0)
            counts = stacked_vertices()
            if len(counts) != len(set(counts)):
                # Re-mark so the checker reaches the duplicate check
                # rather than tripping on the (also-corrupt) flags.
                for v in counts:
                    state.visited[v] = 1
                with pytest.raises(SimulationError, match="more than one"):
                    state.check_invariants()
                caught = True
                break
        assert caught, "corruption never produced a duplicate to catch"

    def test_phantom_parent_is_caught_by_validator(self):
        """Bug: a claim records the wrong parent (e.g. stale register).
        Tree validation must reject the output."""
        g = gen.road_network(500, seed=3)
        res = run_diggerbees(g, 0, config=CFG)
        parent = res.traversal.parent.copy()
        victim = int(np.flatnonzero(parent >= 0)[5])
        # Point the vertex at a non-adjacent vertex.
        nbrs = set(g.neighbors(victim).tolist())
        stranger = next(v for v in range(g.n_vertices)
                        if v not in nbrs and v != victim)
        parent[victim] = stranger
        broken = res.traversal.__class__(
            root=res.traversal.root, visited=res.traversal.visited,
            parent=parent, order=res.traversal.order)
        with pytest.raises(ValidationError) as exc:
            validate_traversal(g, broken)
        # Structured details must name the corrupted edge exactly.
        assert exc.value.check == "tree_edge_missing"
        assert exc.value.details["vertex"] == victim
        assert exc.value.details["parent"] == stranger


class TestLostWork:
    def test_dropped_entries_deadlock_detected(self, monkeypatch):
        """Bug: the thief's CAS succeeds but the copy is lost (e.g. the
        fence was forgotten and the buffer reused).  Entries vanish while
        ``pending`` still counts them: the traversal can never terminate
        and the engine's deadlock guard must fire."""
        original = intra_steal.execute_steal

        def lossy(state, block, thief_warp, plan):
            victim = block.stacks[plan.victim_warp]
            if not isinstance(victim, WarpStack) or len(victim.hot) < plan.amount:
                return False
            victim.hot.take_from_tail(plan.amount)  # removed ...
            # ... but never delivered to the thief.
            state.counters.intra_steal_successes += 1
            return True

        monkeypatch.setattr(intra_steal, "execute_steal", lossy)
        g = gen.road_network(800, seed=3)
        with pytest.raises((DeadlockError, SimulationError)):
            run_diggerbees(g, 0, config=CFG)


class TestCorruptedCounters:
    def test_pending_mismatch_detected(self):
        """The invariant checker must notice a drifted pending counter."""
        g = gen.path_graph(50)
        state = RunState(g, 0, CFG, H100)
        state.pending += 1  # phantom entry
        with pytest.raises(SimulationError, match="pending"):
            state.check_invariants()

    def test_unvisited_stacked_vertex_detected(self):
        g = gen.path_graph(50)
        state = RunState(g, 0, CFG, H100)
        stack = state.blocks[0].stacks[1]
        stack.hot.push(7, 0)     # vertex 7 pushed without being claimed
        state.pending += 1
        with pytest.raises(SimulationError, match="not marked visited"):
            state.check_invariants()

    def test_duplicate_stack_entry_detected(self):
        g = gen.path_graph(50)
        state = RunState(g, 0, CFG, H100)
        # Vertex 0 (the root, already stacked in warp 0) appears again.
        state.blocks[1].stacks[0].hot.push(0, 0)
        state.pending += 1
        with pytest.raises(SimulationError, match="more than one stack"):
            state.check_invariants()
