"""Exact replication of the paper's Figure 3 worked examples.

Figure 3(a): intra-block stealing with hot_cutoff = 2.  Warp0 holds two
entries <b|0> (older) and <a|1> (newer); Warp1 and Warp2 are idle.  Both
select Warp0 (hot_rest = 2 >= cutoff); Warp1's CAS wins, moving tail
0 -> 1 and transferring <b|0>... the figure labels entries <offset|vertex>;
here we keep our <vertex|offset> order.  Warp2 then observes hot_rest =
1 < 2 and fails.

Figure 3(b): inter-block stealing with cold_cutoff = 4.  In Block0,
Warp1's ColdSeg holds 4 entries, Warp2's holds 2.  Idle Block1's leader
warp selects Block0, picks Warp1 (max cold_rest, meets the cutoff),
CASes bottom 0 -> 2, and copies the two oldest entries into its HotRing.
"""

import numpy as np
import pytest

from repro.core import inter_steal, intra_steal
from repro.core.config import DiggerBeesConfig
from repro.core.state import RunState
from repro.graphs import generators as gen
from repro.sim.device import H100
from repro.utils.rng import make_rng


@pytest.fixture
def fig3a_state():
    """Block0 with three warps; Warp0 active with 2 entries."""
    g = gen.path_graph(32)
    cfg = DiggerBeesConfig(n_blocks=1, warps_per_block=3, hot_size=8,
                           hot_cutoff=2, cold_cutoff=4, flush_batch=2,
                           refill_batch=2, cold_reserve=8, seed=0)
    state = RunState(g, 0, cfg, H100)
    warp0 = state.blocks[0].stacks[0]
    # Replace the root seeding with the figure's stack: <b|0> then <a|1>.
    warp0.hot.pop()
    b, a = 11, 10
    warp0.hot.push(b, 0)
    warp0.hot.push(a, 1)
    return state


class TestFigure3a:
    def test_step1_both_thieves_select_warp0(self, fig3a_state):
        block = fig3a_state.blocks[0]
        plan1 = intra_steal.select_victim(fig3a_state, block, 1)
        plan2 = intra_steal.select_victim(fig3a_state, block, 2)
        assert plan1.victim_warp == 0 and plan2.victim_warp == 0
        assert plan1.observed_rest == 2
        assert plan1.amount == 1          # hot_cutoff / 2

    def test_step2_warp1_wins_cas(self, fig3a_state):
        block = fig3a_state.blocks[0]
        plan1 = intra_steal.select_victim(fig3a_state, block, 1)
        assert block.stacks[0].hot.tail == 0
        assert intra_steal.execute_steal(fig3a_state, block, 1, plan1)
        # tail 0 -> 1 (the figure's "atomicCAS R0(t=0->1)").
        assert block.stacks[0].hot.tail == 1
        # Warp1 received the oldest entry <b|0> and became active.
        assert block.stacks[1].hot.snapshot() == [(11, 0)]
        assert block.is_active(1)
        assert block.active_mask == 0b011  # mask '100' -> '110' (bit order)

    def test_step3_warp2_fails_and_must_retry(self, fig3a_state):
        """hot_rest(R0) = 2-1 = 1 < 2 -> fail! (the figure's Warp2)."""
        block = fig3a_state.blocks[0]
        plan1 = intra_steal.select_victim(fig3a_state, block, 1)
        plan2 = intra_steal.select_victim(fig3a_state, block, 2)
        intra_steal.execute_steal(fig3a_state, block, 1, plan1)
        assert not intra_steal.execute_steal(fig3a_state, block, 2, plan2)
        # On re-selection Warp0 no longer qualifies.
        assert intra_steal.select_victim(fig3a_state, block, 2) is None


@pytest.fixture
def fig3b_state():
    """Two blocks; Block0's Warp1/Warp2 hold ColdSeg entries (4 and 2)."""
    g = gen.path_graph(64)
    cfg = DiggerBeesConfig(n_blocks=2, warps_per_block=4, hot_size=8,
                           hot_cutoff=2, cold_cutoff=4, flush_batch=2,
                           refill_batch=2, cold_reserve=8, seed=0)
    state = RunState(g, 0, cfg, H100)
    block0 = state.blocks[0]
    # Figure: C1 holds <a|2>,<c|1>,<t|..>,<y|..> (oldest first); C2 holds 2.
    block0.stacks[1].cold.push_batch(np.array([20, 22, 24, 26]),
                                     np.array([2, 1, 0, 0]))
    block0.set_active(1, True)
    block0.stacks[2].cold.push_batch(np.array([30, 32]), np.array([0, 0]))
    block0.set_active(2, True)
    # Block1 fully idle.
    return state


class TestFigure3b:
    def test_steps1_2_victim_selection(self, fig3b_state):
        plan = inter_steal.select_victim(fig3b_state, 1, make_rng(3))
        assert plan is not None
        assert plan.victim_block == 0
        assert plan.victim_warp == 1          # cold_rest 4 >= cutoff beats 2
        assert plan.observed_rest == 4
        assert plan.amount == 2               # cold_cutoff / 2

    def test_steps3_4_reservation_and_transfer(self, fig3b_state):
        plan = inter_steal.select_victim(fig3b_state, 1, make_rng(3))
        victim_cold = fig3b_state.blocks[0].stacks[1].cold
        assert victim_cold.bottom == 0
        assert inter_steal.execute_steal(fig3b_state, 1, 0, plan)
        # bottom 0 -> 2 ("atomicCAS C1(b=0->2)"), cold_rest 4-2 = 2.
        assert victim_cold.bottom == 2
        assert len(victim_cold) == 2
        # Leader warp's HotRing received <a|2>,<c|1> and head moved to 2.
        leader = fig3b_state.blocks[1].stacks[0]
        assert leader.hot.snapshot() == [(20, 2), (22, 1)]
        assert leader.hot.head == 2
        assert fig3b_state.blocks[1].is_active(0)

    def test_warp2_below_cutoff_never_selected(self, fig3b_state):
        """C2's cold_rest = 2 < 4: even after C1 is drained below the
        cutoff, Warp2 does not qualify."""
        plan = inter_steal.select_victim(fig3b_state, 1, make_rng(3))
        inter_steal.execute_steal(fig3b_state, 1, 0, plan)
        # C1 now at 2 (< cutoff) and C2 at 2 (< cutoff): no victim.
        assert inter_steal.select_victim(fig3b_state, 1, make_rng(4)) is None
