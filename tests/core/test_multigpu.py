"""Tests for the multi-GPU extension (hierarchical remote stealing)."""

import pytest

from repro.core import DiggerBeesConfig, run_diggerbees
from repro.core.state import RunState
from repro.errors import SimulationError
from repro.graphs import generators as gen
from repro.sim.device import H100
from repro.validate import validate_traversal


def cfg_for(gpus, blocks, **kw):
    base = dict(n_blocks=blocks, warps_per_block=4, n_gpus=gpus,
                hot_size=32, hot_cutoff=8, cold_cutoff=8, flush_batch=8,
                refill_batch=8, cold_reserve=32, seed=5)
    base.update(kw)
    return DiggerBeesConfig(**base)


class TestConfig:
    def test_partition_must_divide(self):
        with pytest.raises(SimulationError):
            DiggerBeesConfig(n_blocks=5, n_gpus=2, cold_reserve=256)

    def test_gpu_of_block(self):
        cfg = cfg_for(2, 8)
        assert [cfg.gpu_of_block(b) for b in range(8)] == [0] * 4 + [1] * 4
        assert cfg.blocks_per_gpu == 4

    def test_single_gpu_default(self):
        assert DiggerBeesConfig().n_gpus == 1


class TestStateHelpers:
    def test_gpu_idle_and_leader(self):
        g = gen.path_graph(50)
        state = RunState(g, 0, cfg_for(2, 4), H100)
        # Root activates block 0 => GPU 0 busy, GPU 1 idle.
        assert not state.gpu_idle(0)
        assert state.gpu_idle(1)
        assert state.gpu_leader_block(0) == 0
        assert state.gpu_leader_block(1) == 2

    def test_blocks_tagged_with_gpu(self):
        g = gen.path_graph(50)
        state = RunState(g, 0, cfg_for(2, 4), H100)
        assert [b.gpu_id for b in state.blocks] == [0, 0, 1, 1]


class TestExecution:
    def test_correct_tree_across_gpus(self):
        g = gen.road_network(3000, seed=5)
        res = run_diggerbees(g, 0, config=cfg_for(2, 8),
                             check_invariants=True)
        validate_traversal(g, res.traversal)
        assert res.n_visited == g.n_vertices

    def test_remote_steals_activate_second_gpu(self):
        g = gen.road_network(6000, seed=5)
        res = run_diggerbees(g, 0, config=cfg_for(2, 8, trace=True))
        c = res.counters
        assert c.remote_steal_successes > 0
        # Some block of GPU 1 (blocks 4-7) processed vertices.
        gpu1_tasks = sum(v for b, v in c.tasks_per_block.items() if b >= 4)
        assert gpu1_tasks > 0

    def test_remote_steals_only_by_gpu_leader(self):
        g = gen.road_network(6000, seed=5)
        res = run_diggerbees(g, 0, config=cfg_for(2, 8, trace=True))
        remotes = res.trace.filter(kind="steal_remote")
        assert remotes
        for ev in remotes:
            assert ev.block in (0, 4)   # GPU leader blocks only
            assert ev.warp == 0         # leader warps only

    def test_remote_costlier_than_local_inter(self):
        assert H100.costs.steal_remote_base > 3 * H100.costs.steal_inter_base

    def test_single_gpu_never_remote(self):
        g = gen.road_network(3000, seed=5)
        res = run_diggerbees(g, 0, config=cfg_for(1, 8))
        assert res.counters.remote_steal_successes == 0

    def test_deterministic(self):
        g = gen.road_network(2000, seed=5)
        a = run_diggerbees(g, 0, config=cfg_for(2, 8))
        b = run_diggerbees(g, 0, config=cfg_for(2, 8))
        assert a.cycles == b.cycles
        assert (a.counters.remote_steal_successes
                == b.counters.remote_steal_successes)

    def test_two_gpus_not_slower_on_big_graph(self):
        g = gen.road_network(9000, seed=5)
        one = run_diggerbees(g, 0, config=cfg_for(1, 12, warps_per_block=8))
        two = run_diggerbees(g, 0, config=cfg_for(2, 24, warps_per_block=8))
        # Weak-scaling sanity: doubling the machine never badly regresses.
        assert two.cycles < one.cycles * 1.15
