"""Exact replication of the paper's Figure 2 worked examples.

Figure 2 walks the two-level stack through its four core operations on a
size-4 HotRing and a size-6 ColdSeg with concrete pointer values; these
tests pin our implementation to those exact transitions.
"""

import numpy as np
import pytest

from repro.core.twolevel_stack import ColdSeg, HotRing, WarpStack


class TestFigure2c_FastPush:
    def test_push_at_head0(self):
        """<a|i> pushed at head = 0; head -> 0 + 1 = 1 (tail 2 as drawn)."""
        h = HotRing(4)
        h.head = 0
        h.tail = 2
        # The ring holds positions 2,3 (two entries) in the figure; we
        # only assert the pointer arithmetic of the push itself.
        h.vertex[2:4] = [1, 1]
        h.push(ord("a"), 105)  # <a|i>
        assert h.head == 1
        assert h.tail == 2
        assert h.vertex[0] == ord("a") and h.offset[0] == 105


class TestFigure2d_FastPop:
    def test_pop_wraps_head(self):
        """Pop at head = 0: head -> (0 + 4 - 1) % 4 = 3; entry <a|-1>."""
        h = HotRing(4)
        h.head = 3
        h.tail = 1
        h.vertex[3] = ord("a")
        h.offset[3] = -1
        h.head = 0  # the figure's pre-state: head just past position 3
        v, off = h.pop()
        assert (v, off) == (ord("a"), -1)
        assert h.head == 3


class TestFigure2e_Flush:
    def test_exact_pointer_transitions(self):
        """hot_size=4, batch=2: tail 2 -> (2+2)%4 = 0, top 2 -> 2+2 = 4,
        entries <a|i>, <b|j> land at ColdSeg positions [2, 3]."""
        s = WarpStack(hot_size=4, flush_batch=2, refill_batch=2,
                      cold_reserve=6)
        # ColdSeg pre-state: two entries, top = 2.
        s.cold.push_batch(np.array([201, 202]), np.array([0, 0]))
        assert s.cold.top == 2
        # HotRing pre-state: full with tail = 2 -> entries at 2,3,0.
        s.hot.head = 2
        s.hot.tail = 2
        s.hot.push(ord("a"), 105)   # position 2  (oldest)
        s.hot.push(ord("b"), 106)   # position 3
        s.hot.push(ord("x"), 0)     # position 0  (newest); ring now full
        assert s.needs_flush()
        s.flush()
        assert s.hot.tail == 0
        assert s.cold.top == 4
        assert s.cold.vertex[2] == ord("a") and s.cold.offset[2] == 105
        assert s.cold.vertex[3] == ord("b") and s.cold.offset[3] == 106

    def test_flush_preserves_remaining_entries(self):
        s = WarpStack(hot_size=4, flush_batch=2, refill_batch=2,
                      cold_reserve=6)
        s.hot.head = 2
        s.hot.tail = 2
        for v in (1, 2, 3):
            s.hot.push(v, v)
        s.flush()
        assert s.hot.snapshot() == [(3, 3)]


class TestFigure2f_Refill:
    def test_exact_pointer_transitions(self):
        """hot empty (head = tail = 1); ColdSeg top = 5 with <a|i>, <b|j>
        at positions [3, 4]; refill batch 2: head 1 -> (1+2)%4 = 3, top
        5 -> 5 - 2 = 3."""
        s = WarpStack(hot_size=4, flush_batch=2, refill_batch=2,
                      cold_reserve=6)
        s.cold.push_batch(
            np.array([210, 211, 212, ord("a"), ord("b")]),
            np.array([0, 0, 0, 105, 106]))
        assert s.cold.top == 5
        s.hot.head = 1
        s.hot.tail = 1
        assert s.can_refill()
        s.refill()
        assert s.hot.head == 3
        assert s.hot.tail == 1
        assert s.cold.top == 3
        # Stack order preserved: <b|j> on top (newest), <a|i> below.
        assert s.hot.pop() == (ord("b"), 106)
        assert s.hot.pop() == (ord("a"), 105)
