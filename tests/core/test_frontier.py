"""Frontier engine contract: reachability, levels, min-parent tree,
and bit-identity across push/pull/auto."""

import numpy as np
import pytest

from repro.core.frontier import (
    FrontierConfig,
    min_parent_tree,
    run_frontier,
)
from repro.errors import SimulationError
from repro.graphs import generators as gen
from repro.graphs.properties import bfs_levels
from repro.validate.reference import ROOT_PARENT, UNVISITED_PARENT, serial_dfs
from repro.validate.tree import validate_traversal

GRAPHS = {
    "path": lambda: gen.path_graph(300),
    "star": lambda: gen.star_graph(200),
    "btree": lambda: gen.binary_tree(8),
    "road": lambda: gen.road_network(n_vertices=400, seed=5),
    "pa": lambda: gen.preferential_attachment(n_vertices=400, m=4, seed=6),
    "ws": lambda: gen.small_world(400, k=6, rewire_p=0.1, seed=7),
    "grid": lambda: gen.grid2d(18, 18),
    "starmesh": lambda: gen.star_mesh(12, leaves_per_hub=9, seed=8),
    "layers": lambda: gen.wide_layers(60, 5, seed=9),
    "skew": lambda: gen.skewed_tree(400, seed=10),
}


@pytest.fixture(params=sorted(GRAPHS), scope="module")
def graph(request):
    return GRAPHS[request.param]()


def test_visited_matches_serial_dfs(graph):
    res = run_frontier(graph, 0)
    ref = serial_dfs(graph, 0)
    assert np.array_equal(res.traversal.visited, ref.visited)
    assert res.traversal.n_visited == int(ref.visited.sum())
    validate_traversal(graph, res.traversal)


def test_levels_match_bfs_levels(graph):
    res = run_frontier(graph, 0)
    assert np.array_equal(res.level, bfs_levels(graph, 0))
    reached = res.level[res.level >= 0]
    assert res.n_levels == int(reached.max()) + 1


def test_parent_is_min_parent_tree(graph):
    res = run_frontier(graph, 0)
    oracle = min_parent_tree(graph, bfs_levels(graph, 0), 0)
    assert np.array_equal(res.traversal.parent, oracle)
    assert res.traversal.parent[0] == ROOT_PARENT


def test_modes_are_bit_identical(graph):
    auto = run_frontier(graph, 0)
    for mode in ("push", "pull"):
        alt = run_frontier(graph, 0, config=FrontierConfig(mode=mode))
        assert np.array_equal(alt.traversal.parent, auto.traversal.parent), \
            mode
        assert np.array_equal(alt.level, auto.level), mode
        assert np.array_equal(alt.traversal.visited,
                              auto.traversal.visited), mode


def test_directed_runs_push_only():
    g = gen.citation_graph(120, seed=3, symmetrize=False)
    # Forcing pull on a directed graph must not change the answer: the
    # engine overrides to push (pull reads rows as in-edges, which is
    # only valid on symmetric CSR).
    res = run_frontier(g, 0, config=FrontierConfig(mode="pull"))
    assert res.pulls == 0
    ref = serial_dfs(g, 0)
    assert np.array_equal(res.traversal.visited, ref.visited)
    assert np.array_equal(res.level, bfs_levels(g, 0))


def test_unreachable_vertices_stay_unvisited():
    # Two components: the far one must stay level -1 / UNVISITED_PARENT.
    from repro.graphs.csr import from_edges

    edges = [(i, i + 1) for i in range(9)] + \
            [(i, i + 1) for i in range(10, 15)]
    both = edges + [(v, u) for u, v in edges]
    g = from_edges(16, np.array(both, dtype=np.int64))
    res = run_frontier(g, 0)
    assert res.level[10:].max() == -1
    assert (res.traversal.parent[10:] == UNVISITED_PARENT).all()
    assert not res.traversal.visited[10:].any()


def test_single_vertex_and_root_checks():
    g = gen.path_graph(1)
    res = run_frontier(g, 0)
    assert res.n_levels == 1
    assert res.traversal.parent[0] == ROOT_PARENT
    with pytest.raises(Exception):
        run_frontier(gen.path_graph(4), 9)


def test_config_validation():
    with pytest.raises(SimulationError):
        FrontierConfig(mode="sideways")
    with pytest.raises(SimulationError):
        FrontierConfig(alpha=0)
    with pytest.raises(SimulationError):
        FrontierConfig(beta=-1)


def test_mteps_and_profile_counters():
    g = gen.star_mesh(12, leaves_per_hub=9, seed=8)
    res = run_frontier(g, 0)
    assert res.pushes + res.pulls == res.n_levels - 1 or \
        res.pushes + res.pulls >= res.n_levels - 1
    assert res.edges_scanned > 0
    assert res.mteps >= 0.0
