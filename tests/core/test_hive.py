"""Bit-identity and eligibility coverage for the hive batch engine.

The hive contract (``repro.core.hive``) extends turbo's schedule
identity across a batch axis: for every eligible configuration and
*every batch composition*, each run of a lockstep batch must reproduce
the scalar engines' cycles, steps, traversal output and counters
bit-for-bit.  These tests sweep that contract across every fuzz graph
family, several batch widths (so runs finish at different ticks and
compaction engages), heterogeneous batches, and the error paths.
"""

import numpy as np
import pytest

from repro.check.cases import FAMILIES, FuzzCase
from repro.core.config import DiggerBeesConfig
from repro.core.diggerbees import run_diggerbees
from repro.core.hive import hive_compatible, hive_eligible, run_hive
from repro.errors import SimulationError


def _family_case(family: str) -> FuzzCase:
    """A small high-contention case (tiny rings, adversarial victims)."""
    return FuzzCase(
        seed=0, family=family, n_vertices=96, graph_seed=7,
        n_blocks=2, warps_per_block=2, hot_size=8, hot_cutoff=2,
        cold_cutoff=2, flush_batch=2, refill_batch=2,
        adversarial_victims=True,
    )


def _assert_same(ref, res, label):
    assert res.cycles == ref.cycles, label
    assert res.engine.steps == ref.engine.steps, label
    assert np.array_equal(res.traversal.parent, ref.traversal.parent), label
    assert np.array_equal(res.traversal.visited, ref.traversal.visited), label
    assert res.counters == ref.counters, label
    assert res.engine.exact_cycles, label


@pytest.mark.parametrize("family", FAMILIES)
def test_hive_bit_identical_across_families(family):
    """Every run of a full-width batch == turbo == the generic engine."""
    case = _family_case(family)
    graph = case.build_graph()
    cfg = case.build_config()
    assert hive_eligible(cfg)
    turbo = run_diggerbees(graph, case.root, config=case.build_config(
        turbo=True))
    results = run_hive(graph, [(case.root, cfg)] * 4)
    for i, res in enumerate(results):
        _assert_same(turbo, res, f"{family} run {i}")


@pytest.mark.parametrize("batch", [1, 4, 16])
def test_hive_batch_width_invariance(batch):
    """The same 16 tasks split into any batch width give identical runs."""
    case = _family_case("road_network")
    graph = case.build_graph()
    cfg = case.build_config()
    turbo = run_diggerbees(graph, case.root, config=case.build_config(
        turbo=True))
    results = run_hive(graph, [(case.root, cfg)] * 16, batch=batch)
    assert len(results) == 16
    for i, res in enumerate(results):
        _assert_same(turbo, res, f"batch={batch} run {i}")


@pytest.mark.parametrize("batch", [16, 5])
def test_hive_heterogeneous_batch_compaction(batch):
    """Different roots and seeds per run: runs finish at different ticks,
    so slots compact mid-drain; each run must still match its own scalar
    reference exactly."""
    case = _family_case("road_network").with_(n_vertices=300, graph_seed=11)
    graph = case.build_graph()
    cfg = case.build_config()
    roots = [0, 17, 50, 123, 250, 299, 5, 80, 160, 40, 220, 90, 10]
    tasks = [(r, cfg.with_overrides(seed=r)) for r in roots]
    refs = [run_diggerbees(graph, r, config=c.with_overrides(turbo=True))
            for r, c in tasks]
    results = run_hive(graph, tasks, batch=batch)
    for i, (ref, res) in enumerate(zip(refs, results)):
        _assert_same(ref, res, f"hetero run {i} (root {roots[i]})")


def test_hive_over_budget_error_identical():
    """A run blowing its cycle budget aborts the batch with the exact
    message the scalar engine raises for that run."""
    case = _family_case("road_network")
    graph = case.build_graph()
    cfg = case.build_config(max_cycles=500)
    with pytest.raises(SimulationError) as scalar:
        run_diggerbees(graph, case.root, config=cfg)
    with pytest.raises(SimulationError) as hive:
        run_hive(graph, [(case.root, cfg)] * 3)
    assert str(hive.value) == str(scalar.value)


def test_hive_empty_task_list():
    case = _family_case("path")
    assert run_hive(case.build_graph(), []) == []


class TestEligibility:
    def test_default_config_is_eligible(self):
        assert hive_eligible(DiggerBeesConfig())

    @pytest.mark.parametrize("overrides", [
        {"fastpath": False},
        {"two_level": False},
        {"perturb_seed": 3},
        {"scheduler": "heap"},
        {"trace": True},
    ])
    def test_ineligible_conditions(self, overrides):
        assert not hive_eligible(DiggerBeesConfig(**overrides))

    def test_run_hive_rejects_ineligible_config(self):
        case = _family_case("path")
        cfg = case.build_config(fastpath=False)
        with pytest.raises(SimulationError, match="not hive-eligible"):
            run_hive(case.build_graph(), [(0, cfg)])

    def test_compatible_modulo_seed_only(self):
        a = DiggerBeesConfig(seed=1)
        assert hive_compatible(a, a)
        assert hive_compatible(a, a.with_overrides(seed=99))
        assert not hive_compatible(a, a.with_overrides(n_blocks=8))

    def test_run_hive_rejects_mixed_geometry(self):
        case = _family_case("path")
        cfg = case.build_config()
        other = cfg.with_overrides(warps_per_block=4)
        with pytest.raises(SimulationError, match="differs from the batch"):
            run_hive(case.build_graph(), [(0, cfg), (0, other)])
