"""Routing rules of repro.core.dispatch.choose_backend, pinned.

Regime-proxy tests pass ``calibration={}`` (an empty table) so they
stay deterministic even when a recorded calibration artifact is
checked in under ``benchmarks/``; the calibrated path gets its own
explicit tables below.
"""

import json

import pytest

from repro.core.dispatch import (
    BACKEND_CHOICES,
    BACKENDS,
    SWARM_MIN_BATCH,
    BackendDecision,
    choose_backend,
    graph_regime,
    load_calibration,
)
from repro.errors import SimulationError
from repro.graphs import generators as gen
from repro.graphs.csr import from_edges

import numpy as np


def test_choice_constants():
    assert BACKENDS == ("dfs", "frontier", "swarm")
    assert BACKEND_CHOICES == ("auto", "dfs", "frontier", "swarm")
    assert SWARM_MIN_BATCH >= 2


@pytest.mark.parametrize("backend", BACKENDS)
def test_forced_backend_wins_regardless_of_regime(backend):
    # A forced backend ignores the regime, overrides, and calibration.
    for regime in ("deep", "shallow", "mid", None):
        d = choose_backend(requested=backend, regime=regime,
                           overrides={"n_blocks": 2},
                           calibration={"regimes": {"shallow":
                                                    {"dfs": 1e-9}}})
        assert d == BackendDecision(backend=backend,
                                    regime=regime or "unknown",
                                    reason="forced")


def test_forced_backend_needs_no_graph():
    # The serve layer's forced knobs must never pay the regime BFS.
    assert choose_backend(requested="dfs").backend == "dfs"
    assert choose_backend(requested="frontier").backend == "frontier"
    assert choose_backend(requested="swarm").backend == "swarm"


def test_auto_with_overrides_is_config_pinned():
    # Engine-config overrides ask for a specific DFS simulation;
    # the frontier engines cannot answer those queries.
    d = choose_backend(requested="auto", regime="shallow",
                       overrides={"steal_policy": "random"})
    assert d.backend == "dfs"
    assert d.reason == "config-pinned"
    # ... but an *empty* overrides mapping routes by regime.
    d = choose_backend(requested="auto", regime="shallow", overrides={},
                       calibration={})
    assert d.backend == "frontier"
    assert d.reason == "regime"


@pytest.mark.parametrize("regime,backend", [
    ("shallow", "frontier"),
    ("deep", "dfs"),
    ("mid", "dfs"),
])
def test_auto_routes_by_regime(regime, backend):
    d = choose_backend(requested="auto", regime=regime, calibration={})
    assert d.backend == backend
    assert d.regime == regime
    assert d.reason == "regime"


def test_auto_prefers_swarm_when_batchable_and_shallow():
    d = choose_backend(requested="auto", regime="shallow",
                       batch_hint=SWARM_MIN_BATCH, calibration={})
    assert d.backend == "swarm"
    assert d.reason == "regime"
    # Deep/mid stay on DFS no matter how wide the batch is.
    for regime in ("deep", "mid"):
        d = choose_backend(requested="auto", regime=regime,
                           batch_hint=256, calibration={})
        assert d.backend == "dfs"
    # A single root cannot amortize the lane machinery.
    d = choose_backend(requested="auto", regime="shallow", batch_hint=1,
                       calibration={})
    assert d.backend == "frontier"


def test_auto_profiles_the_graph_when_no_regime_given():
    shallow = choose_backend(gen.star_graph(400), requested="auto",
                             calibration={})
    assert shallow.backend == "frontier"
    assert shallow.regime == "shallow"
    deep = choose_backend(gen.path_graph(400), requested="auto",
                          calibration={})
    assert deep.backend == "dfs"
    assert deep.regime == "deep"


def test_precomputed_regime_short_circuits_the_probe():
    # A supplied regime must win over what the graph would profile as.
    d = choose_backend(gen.path_graph(400), requested="auto",
                       regime="shallow", calibration={})
    assert d.backend == "frontier"


# ---------------------------------------------------------------------------
# Degenerate graphs: routed explicitly, never through the classifier.
# ---------------------------------------------------------------------------

def _isolated_graph(n):
    return from_edges(n, np.empty((0, 2), dtype=np.int64))


@pytest.mark.parametrize("build", [
    lambda: gen.path_graph(1),                      # single vertex
    lambda: _isolated_graph(1),                     # single, zero-edge
    lambda: _isolated_graph(64),                    # all-isolated
    lambda: _isolated_graph(0),                     # empty graph
], ids=["single-vertex", "single-isolated", "all-isolated", "empty"])
def test_degenerate_graphs_route_explicitly(build):
    g = build()
    d = choose_backend(g, requested="auto", calibration={})
    assert d == BackendDecision(backend="frontier", regime="degenerate",
                                reason="degenerate")
    # ... even when the caller supplies a (stale) regime, and even when
    # a calibration table would have preferred another backend.
    d = choose_backend(g, requested="auto", regime="deep",
                       calibration={"regimes": {"deep": {"dfs": 1e-9}}})
    assert d.reason == "degenerate"
    assert d.backend == "frontier"


def test_degenerate_never_probes_the_regime(monkeypatch):
    import repro.core.dispatch as dispatch

    def boom(*a, **k):  # pragma: no cover - failure path
        raise AssertionError("regime probe ran on a degenerate graph")

    monkeypatch.setattr(dispatch, "graph_regime", boom)
    d = choose_backend(_isolated_graph(32), requested="auto",
                       calibration={})
    assert d.reason == "degenerate"


def test_forced_and_pinned_still_beat_degenerate():
    g = _isolated_graph(8)
    assert choose_backend(g, requested="dfs").reason == "forced"
    d = choose_backend(g, requested="auto", overrides={"n_blocks": 2})
    assert d.reason == "config-pinned"


# ---------------------------------------------------------------------------
# Calibrated routing: measured cost table beats the regime proxy.
# ---------------------------------------------------------------------------

CAL = {
    "version": 1,
    "regimes": {
        "shallow": {"dfs": 5e-3, "frontier": 4e-4, "swarm": 5e-5},
        "deep": {"dfs": 2e-4, "frontier": 9e-3, "swarm": 3e-3},
        "mid": {"dfs": 1e-3, "frontier": 8e-4, "swarm": 2e-4},
    },
}


def test_calibrated_routing_picks_cheapest_backend():
    d = choose_backend(requested="auto", regime="shallow", batch_hint=256,
                       calibration=CAL)
    assert d == BackendDecision("swarm", "shallow", "calibrated")
    d = choose_backend(requested="auto", regime="deep", batch_hint=256,
                       calibration=CAL)
    assert d == BackendDecision("dfs", "deep", "calibrated")
    # Measured table can overturn the proxy: mid routes to swarm here,
    # where the proxy would have said dfs.
    d = choose_backend(requested="auto", regime="mid", batch_hint=256,
                       calibration=CAL)
    assert d == BackendDecision("swarm", "mid", "calibrated")


def test_calibrated_swarm_needs_a_batch():
    # Without a batch, swarm is ineligible; the next-cheapest wins.
    d = choose_backend(requested="auto", regime="shallow", batch_hint=1,
                       calibration=CAL)
    assert d == BackendDecision("frontier", "shallow", "calibrated")


def test_calibration_falls_back_to_proxy_when_regime_missing():
    table = {"regimes": {"deep": {"dfs": 1e-4}}}
    d = choose_backend(requested="auto", regime="shallow",
                       calibration=table)
    assert d.reason == "regime"
    assert d.backend == "frontier"
    # Unknown backends and non-positive costs are ignored.
    junk = {"regimes": {"shallow": {"gpu": 1e-9, "frontier": 0.0}}}
    d = choose_backend(requested="auto", regime="shallow",
                       calibration=junk)
    assert d.reason == "regime"


def test_load_calibration_missing_and_corrupt(tmp_path):
    assert load_calibration(tmp_path / "nope.json") is None
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    assert load_calibration(bad) is None
    not_table = tmp_path / "scalar.json"
    not_table.write_text("42")
    assert load_calibration(not_table) is None


def test_load_calibration_reads_and_routes(tmp_path):
    art = tmp_path / "calibration_routing.json"
    art.write_text(json.dumps(CAL))
    table = load_calibration(art)
    assert table["regimes"]["shallow"]["swarm"] == 5e-5
    d = choose_backend(requested="auto", regime="shallow", batch_hint=64,
                       calibration=table)
    assert d.backend == "swarm"


def test_load_calibration_hot_reloads_on_rewrite(tmp_path):
    art = tmp_path / "calibration_routing.json"
    art.write_text(json.dumps(CAL))
    assert load_calibration(art)["regimes"]["deep"]["dfs"] == 2e-4
    import os
    updated = {"regimes": {"deep": {"dfs": 7e-7}}}
    art.write_text(json.dumps(updated))
    # Force a distinct mtime even on coarse filesystem clocks.
    os.utime(art, ns=(1, 10**18))
    assert load_calibration(art)["regimes"]["deep"]["dfs"] == 7e-7


def test_invalid_requested_backend_raises():
    with pytest.raises(SimulationError):
        choose_backend(requested="gpu")
    with pytest.raises(SimulationError):
        choose_backend(requested="")


def test_auto_without_graph_or_regime_raises():
    with pytest.raises(SimulationError):
        choose_backend(requested="auto")


def test_graph_regime_matches_properties_regime():
    from repro.graphs.properties import regime

    g = gen.star_mesh(12, leaves_per_hub=9, seed=8)
    assert graph_regime(g) == regime(g, 0)
