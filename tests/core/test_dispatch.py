"""Routing rules of repro.core.dispatch.choose_backend, pinned."""

import pytest

from repro.core.dispatch import (
    BACKEND_CHOICES,
    BACKENDS,
    BackendDecision,
    choose_backend,
    graph_regime,
)
from repro.errors import SimulationError
from repro.graphs import generators as gen


def test_choice_constants():
    assert BACKENDS == ("dfs", "frontier")
    assert BACKEND_CHOICES == ("auto", "dfs", "frontier")


@pytest.mark.parametrize("backend", BACKENDS)
def test_forced_backend_wins_regardless_of_regime(backend):
    # A forced backend ignores both the regime and any overrides.
    for regime in ("deep", "shallow", "mid", None):
        d = choose_backend(requested=backend, regime=regime,
                           overrides={"n_blocks": 2})
        assert d == BackendDecision(backend=backend,
                                    regime=regime or "unknown",
                                    reason="forced")


def test_forced_backend_needs_no_graph():
    # The serve layer's forced knobs must never pay the regime BFS.
    assert choose_backend(requested="dfs").backend == "dfs"
    assert choose_backend(requested="frontier").backend == "frontier"


def test_auto_with_overrides_is_config_pinned():
    # Engine-config overrides ask for a specific DFS simulation;
    # the frontier engine cannot answer those queries.
    d = choose_backend(requested="auto", regime="shallow",
                       overrides={"steal_policy": "random"})
    assert d.backend == "dfs"
    assert d.reason == "config-pinned"
    # ... but an *empty* overrides mapping routes by regime.
    d = choose_backend(requested="auto", regime="shallow", overrides={})
    assert d.backend == "frontier"
    assert d.reason == "regime"


@pytest.mark.parametrize("regime,backend", [
    ("shallow", "frontier"),
    ("deep", "dfs"),
    ("mid", "dfs"),
])
def test_auto_routes_by_regime(regime, backend):
    d = choose_backend(requested="auto", regime=regime)
    assert d.backend == backend
    assert d.regime == regime
    assert d.reason == "regime"


def test_auto_profiles_the_graph_when_no_regime_given():
    shallow = choose_backend(gen.star_graph(400), requested="auto")
    assert shallow.backend == "frontier"
    assert shallow.regime == "shallow"
    deep = choose_backend(gen.path_graph(400), requested="auto")
    assert deep.backend == "dfs"
    assert deep.regime == "deep"


def test_precomputed_regime_short_circuits_the_probe():
    # A supplied regime must win over what the graph would profile as.
    d = choose_backend(gen.path_graph(400), requested="auto",
                       regime="shallow")
    assert d.backend == "frontier"


def test_invalid_requested_backend_raises():
    with pytest.raises(SimulationError):
        choose_backend(requested="gpu")
    with pytest.raises(SimulationError):
        choose_backend(requested="")


def test_auto_without_graph_or_regime_raises():
    with pytest.raises(SimulationError):
        choose_backend(requested="auto")


def test_graph_regime_matches_properties_regime():
    from repro.graphs.properties import regime

    g = gen.star_mesh(12, leaves_per_hub=9, seed=8)
    assert graph_regime(g) == regime(g, 0)
