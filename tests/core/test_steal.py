"""Unit tests for intra- and inter-block stealing (paper §3.4/§3.5)."""

import numpy as np
import pytest

from repro.core import inter_steal, intra_steal
from repro.core.config import DiggerBeesConfig
from repro.core.state import RunState
from repro.graphs import generators as gen
from repro.sim.device import H100
from repro.utils.rng import make_rng


def make_state(n_blocks=2, warps_per_block=3, hot_cutoff=4, cold_cutoff=4,
               **kwargs):
    g = gen.path_graph(64)
    cfg = DiggerBeesConfig(n_blocks=n_blocks, warps_per_block=warps_per_block,
                           hot_size=16, hot_cutoff=hot_cutoff,
                           cold_cutoff=cold_cutoff, flush_batch=4,
                           refill_batch=4, **kwargs)
    return RunState(g, 0, cfg, H100)


def fill_hot(state, block, warp, count, start=1):
    """Push `count` synthetic entries into a warp's HotRing."""
    stack = state.blocks[block].stacks[warp]
    for i in range(count):
        stack.hot.push(start + i, 0)
    state.blocks[block].set_active(warp, True)


def fill_cold(state, block, warp, count, start=1):
    stack = state.blocks[block].stacks[warp]
    vals = np.arange(start, start + count)
    stack.cold.push_batch(vals, np.zeros(count, dtype=np.int64))
    state.blocks[block].set_active(warp, True)


class TestIntraSelection:
    def test_picks_max_rest(self):
        state = make_state()
        fill_hot(state, 0, 1, 5)
        fill_hot(state, 0, 2, 9)
        plan = intra_steal.select_victim(state, state.blocks[0], thief_warp=0)
        assert plan.victim_warp == 2
        assert plan.observed_rest == 9

    def test_respects_cutoff(self):
        state = make_state(hot_cutoff=8)
        fill_hot(state, 0, 1, 5)  # below cutoff
        assert intra_steal.select_victim(state, state.blocks[0], 0) is None

    def test_skips_self(self):
        state = make_state()
        fill_hot(state, 0, 0, 9)
        # Warp 0 scanning must not select itself even if it is the max.
        assert intra_steal.select_victim(state, state.blocks[0], 0) is None

    def test_records_observed_tail(self):
        state = make_state()
        fill_hot(state, 0, 1, 6)
        plan = intra_steal.select_victim(state, state.blocks[0], 0)
        assert plan.observed_tail == state.blocks[0].stacks[1].hot.tail


class TestIntraExecution:
    def test_successful_steal_moves_oldest(self):
        state = make_state(hot_cutoff=4)
        fill_hot(state, 0, 1, 6, start=100)
        # Warp 2 is the thief (warp 0 holds the root entry).
        plan = intra_steal.select_victim(state, state.blocks[0], 2)
        assert intra_steal.execute_steal(state, state.blocks[0], 2, plan)
        thief = state.blocks[0].stacks[2]
        assert [v for v, _ in thief.hot.snapshot()] == [100, 101]  # amount = 2
        assert len(state.blocks[0].stacks[1].hot) == 4
        assert state.blocks[0].is_active(2)
        assert state.counters.intra_steal_successes == 1

    def test_cas_failure_when_tail_moved(self):
        """Figure 3(a): Warp2's reservation fails after Warp1 moved the tail."""
        state = make_state(hot_cutoff=4)
        fill_hot(state, 0, 2, 8)
        block = state.blocks[0]
        plan_w0 = intra_steal.select_victim(state, block, 0)
        plan_w1 = intra_steal.select_victim(state, block, 1)
        assert intra_steal.execute_steal(state, block, 0, plan_w0)
        # Warp1's observation is stale; its CAS must fail.
        assert not intra_steal.execute_steal(state, block, 1, plan_w1)
        assert state.counters.cas_failures >= 1

    def test_fails_when_victim_dropped_below_cutoff(self):
        state = make_state(hot_cutoff=4)
        fill_hot(state, 0, 1, 4)
        block = state.blocks[0]
        plan = intra_steal.select_victim(state, block, 0)
        # Victim pops entries (tail unchanged -> CAS would pass, rest check fails).
        block.stacks[1].hot.pop()
        block.stacks[1].hot.pop()
        assert not intra_steal.execute_steal(state, block, 0, plan)

    def test_entry_conservation(self):
        state = make_state(hot_cutoff=4)
        fill_hot(state, 0, 1, 7)
        before = sum(len(s) for s in state.blocks[0].stacks)
        plan = intra_steal.select_victim(state, state.blocks[0], 0)
        intra_steal.execute_steal(state, state.blocks[0], 0, plan)
        after = sum(len(s) for s in state.blocks[0].stacks)
        assert before == after


class TestInterSelection:
    def test_requires_active_block(self):
        state = make_state(n_blocks=3)
        # No block active (beyond root setup in block 0) -> clear it.
        state.blocks[0].set_active(0, False)
        plan = inter_steal.select_victim(state, 1, make_rng(1))
        assert plan is None

    def test_picks_fullest_cold_warp(self):
        state = make_state(n_blocks=2, cold_cutoff=4)
        fill_cold(state, 0, 1, 5)
        fill_cold(state, 0, 2, 9)
        plan = inter_steal.select_victim(state, 1, make_rng(1))
        assert plan is not None
        assert plan.victim_block == 0
        assert plan.victim_warp == 2

    def test_respects_cold_cutoff(self):
        state = make_state(n_blocks=2, cold_cutoff=8)
        fill_cold(state, 0, 1, 5)
        assert inter_steal.select_victim(state, 1, make_rng(1)) is None

    def test_never_selects_own_block(self):
        state = make_state(n_blocks=2, cold_cutoff=4)
        fill_cold(state, 1, 0, 9)
        # Block 1 asking: only block 0 qualifies as other, but it's idle-ish.
        state.blocks[0].set_active(0, False)
        plan = inter_steal.select_victim(state, 1, make_rng(1))
        assert plan is None

    def test_two_choice_prefers_heavier(self):
        state = make_state(n_blocks=4, cold_cutoff=4)
        fill_cold(state, 0, 0, 5)
        fill_cold(state, 2, 0, 50)
        rng = make_rng(7)
        picks = [inter_steal.select_victim(state, 3, rng).victim_block
                 for _ in range(20)]
        # Load-aware two-choice must prefer the heavy block when both sampled.
        assert picks.count(2) > picks.count(0)


class TestInterExecution:
    def test_successful_steal(self):
        state = make_state(n_blocks=2, cold_cutoff=4)
        fill_cold(state, 0, 1, 8, start=200)
        plan = inter_steal.select_victim(state, 1, make_rng(1))
        assert inter_steal.execute_steal(state, 1, 0, plan)
        thief = state.blocks[1].stacks[0]
        assert [v for v, _ in thief.hot.snapshot()] == [200, 201]  # amount 2
        assert len(state.blocks[0].stacks[1].cold) == 6
        assert state.blocks[1].is_active(0)

    def test_cas_failure_on_moved_bottom(self):
        state = make_state(n_blocks=3, cold_cutoff=4)
        fill_cold(state, 0, 1, 8)
        plan_a = inter_steal.select_victim(state, 1, make_rng(1))
        plan_b = inter_steal.select_victim(state, 2, make_rng(2))
        assert plan_a.victim_block == plan_b.victim_block == 0
        assert inter_steal.execute_steal(state, 1, 0, plan_a)
        assert not inter_steal.execute_steal(state, 2, 0, plan_b)
        assert state.counters.inter_steal_successes == 1

    def test_entry_conservation(self):
        state = make_state(n_blocks=2, cold_cutoff=4)
        fill_cold(state, 0, 1, 8)
        before = state.total_entries()
        plan = inter_steal.select_victim(state, 1, make_rng(1))
        inter_steal.execute_steal(state, 1, 0, plan)
        assert state.total_entries() == before
