"""Shared fixtures and Hypothesis settings profiles for the test suite.

Two profiles (select with ``HYPOTHESIS_PROFILE=dev|ci``; CI machines —
anything with ``CI`` set — default to ``ci``, everything else to ``dev``):

* ``dev`` — randomized exploration with a generous deadline; each
  failure prints its reproduction blob (``@reproduce_failure``).
* ``ci`` — derandomized (the seed is fixed, so CI never flakes on a
  fresh example) and deadline-free (shared runners have noisy clocks).

Individual tests still set ``max_examples`` locally — example *count* is
a per-property cost decision; determinism and deadlines are fleet-wide
policy and live here.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings

from repro.graphs import generators as gen
from repro.graphs.csr import CSRGraph, from_adjacency, from_edges

settings.register_profile("dev", deadline=1000, print_blob=True)
settings.register_profile("ci", derandomize=True, deadline=None,
                          print_blob=True)
settings.load_profile(os.environ.get(
    "HYPOTHESIS_PROFILE", "ci" if os.environ.get("CI") else "dev"))


@pytest.fixture
def paper_example_graph() -> CSRGraph:
    """The 6-vertex graph of the paper's Figure 1.

    Vertices a-f = 0-5; serial DFS from a visits a,b,d,e,c,f and the
    lexicographic tree is a->b->d->e, with c and f hanging as in Fig 1(b).
    Adjacency (undirected): a-b, a-c, b-d, b-e, c-e, c-f, d-e.
    """
    edges = [(0, 1), (0, 2), (1, 3), (1, 4), (2, 4), (2, 5), (3, 4)]
    both = edges + [(v, u) for (u, v) in edges]
    return from_edges(6, both, name="fig1")


@pytest.fixture
def tiny_path() -> CSRGraph:
    return gen.path_graph(10)


@pytest.fixture
def tiny_tree() -> CSRGraph:
    return gen.binary_tree(5)


@pytest.fixture
def small_road() -> CSRGraph:
    return gen.road_network(800, seed=42)


@pytest.fixture
def small_social() -> CSRGraph:
    return gen.preferential_attachment(600, m=4, seed=42)


@pytest.fixture
def disconnected_graph() -> CSRGraph:
    """Two components: a triangle {0,1,2} and an edge {3,4}; 5 isolated."""
    edges = [(0, 1), (1, 2), (2, 0), (3, 4)]
    both = edges + [(v, u) for (u, v) in edges]
    return from_edges(6, both, name="disconnected")


@pytest.fixture
def dag_graph() -> CSRGraph:
    """A small DAG (diamond + tail) for NVG-DFS DAG-mode tests."""
    edges = [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (1, 4)]
    return from_edges(5, edges, directed=True, name="dag")


def assert_same_visited(a: np.ndarray, b: np.ndarray) -> None:
    assert np.array_equal(np.asarray(a, bool), np.asarray(b, bool))
