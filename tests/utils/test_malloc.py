"""Allocator-tuning helper: safe, idempotent, and numpy-compatible."""

import numpy as np

from repro.utils import malloc


def test_retain_large_blocks_is_idempotent_and_safe():
    first = malloc.retain_large_blocks()
    assert isinstance(first, bool)
    # Second call must short-circuit to the same answer (or True if the
    # first call applied the tunables).
    second = malloc.retain_large_blocks()
    assert second == (first or second)
    # Large allocations still behave after the policy change.
    block = np.full(4 * 1024 * 1024 // 8, 7, dtype=np.int64)
    assert int(block[0]) == 7 and int(block[-1]) == 7


def test_retain_large_blocks_survives_missing_mallopt(monkeypatch):
    """Non-glibc platforms must degrade to a clean False, not raise."""
    import ctypes

    monkeypatch.setattr(malloc, "_applied", False)

    class NoMallopt:
        def __getattr__(self, name):
            raise AttributeError(name)

    monkeypatch.setattr(ctypes, "CDLL",
                        lambda *a, **k: NoMallopt())
    assert malloc.retain_large_blocks() is False
