"""Regression coverage for the fastrand self-check cache.

``wrap_generator`` validates the Lemire replica against a real NumPy
``Generator`` before first use.  The probe costs ~1000 bounded draws, so
its verdict must be computed once per interpreter and cached — every
``RunState`` wraps a generator, and a per-wrap probe would tax each of
the thousands of runs a sweep or hive batch creates.
"""

import os
import pathlib
import subprocess
import sys

from repro.utils import fastrand
from repro.utils.fastrand import BoundedDraws, wrap_generator

import numpy as np


def test_self_check_runs_at_most_once_per_process():
    """Repeated wraps never re-probe: the cached verdict is reused."""
    for _ in range(5):
        wrap_generator(np.random.default_rng(123))
    assert fastrand.SELF_CHECK_RUNS == 1
    # The verdict is pinned; later wraps are pure constructions.
    wrap_generator(np.random.default_rng(456))
    assert fastrand.SELF_CHECK_RUNS == 1


def test_self_check_reruns_only_when_cache_cleared(monkeypatch):
    wrap_generator(np.random.default_rng(1))  # ensure the cache is warm
    runs = fastrand.SELF_CHECK_RUNS
    monkeypatch.setattr(fastrand, "_REPLICA_OK", None)
    wrapped = wrap_generator(np.random.default_rng(2))
    assert fastrand.SELF_CHECK_RUNS == runs + 1
    assert isinstance(wrapped, BoundedDraws)
    monkeypatch.setattr(fastrand, "SELF_CHECK_RUNS", runs)


def test_self_check_once_in_fresh_interpreter():
    """End-to-end: a fresh process that builds many generators (several
    simulated runs included) executes the probe exactly once."""
    code = (
        "import numpy as np\n"
        "from repro.utils import fastrand\n"
        "from repro.check.cases import FuzzCase\n"
        "from repro.core.diggerbees import run_diggerbees\n"
        "case = FuzzCase(seed=0, family='road_network', n_vertices=64,\n"
        "                graph_seed=3)\n"
        "g = case.build_graph()\n"
        "for s in range(3):\n"
        "    run_diggerbees(g, 0, config=case.build_config(seed=s))\n"
        "for s in range(10):\n"
        "    fastrand.wrap_generator(np.random.default_rng(s))\n"
        "print(fastrand.SELF_CHECK_RUNS)\n"
    )
    env = dict(os.environ)
    src = str(pathlib.Path(fastrand.__file__).resolve().parents[2])
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.run(
        [sys.executable, "-c", code], capture_output=True, text=True,
        check=True, env=env,
    )
    assert out.stdout.strip() == "1"
