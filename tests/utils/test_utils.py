"""Unit tests for shared utilities (rng, stats, tables)."""

import numpy as np
import pytest

from repro.utils.rng import derive_seed, make_rng, sample_distinct, spawn
from repro.utils.stats import (
    coefficient_of_variation,
    geometric_mean,
    harmonic_mean,
    speedup_series,
    summarize,
)
from repro.utils.tables import format_kv, format_table


class TestRng:
    def test_make_rng_deterministic_default(self):
        assert make_rng().integers(1000) == make_rng().integers(1000)

    def test_make_rng_passthrough(self):
        rng = np.random.default_rng(5)
        assert make_rng(rng) is rng

    def test_spawn_independent(self):
        children = spawn(make_rng(1), 3)
        vals = [c.integers(10**9) for c in children]
        assert len(set(vals)) == 3

    def test_spawn_negative(self):
        with pytest.raises(ValueError):
            spawn(make_rng(1), -1)

    def test_derive_seed_stable(self):
        assert derive_seed(7, "fig5", "euro") == derive_seed(7, "fig5", "euro")
        assert derive_seed(7, "fig5", "euro") != derive_seed(7, "fig5", "rgg")
        assert derive_seed(7, 1) != derive_seed(7, 2)

    def test_sample_distinct(self):
        vals = sample_distinct(make_rng(1), 100, 10)
        assert len(set(vals.tolist())) == 10

    def test_sample_distinct_exclude(self):
        vals = sample_distinct(make_rng(1), 5, 3, exclude={0, 1})
        assert set(vals.tolist()) <= {2, 3, 4}

    def test_sample_distinct_too_many(self):
        with pytest.raises(ValueError):
            sample_distinct(make_rng(1), 3, 5)


class TestStats:
    def test_geometric_mean(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)
        assert geometric_mean([2, 2, 2]) == pytest.approx(2.0)

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_harmonic_mean(self):
        assert harmonic_mean([1, 1]) == pytest.approx(1.0)
        assert harmonic_mean([2, 6]) == pytest.approx(3.0)

    def test_cov(self):
        assert coefficient_of_variation([5, 5, 5]) == 0.0
        assert coefficient_of_variation([0, 10]) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            coefficient_of_variation([])
        with pytest.raises(ValueError):
            coefficient_of_variation([0, 0])

    def test_summarize(self):
        s = summarize([1, 2, 3, 4])
        assert s["min"] == 1 and s["max"] == 4
        assert s["median"] == 2.5 and s["count"] == 4

    def test_speedup_series(self):
        sp = speedup_series([1.0, 2.0], [2.0, 2.0])
        assert list(sp) == [2.0, 1.0]
        with pytest.raises(ValueError):
            speedup_series([1.0], [1.0, 2.0])


class TestTables:
    def test_basic_alignment(self):
        out = format_table(["name", "val"], [["a", 1.5], ["bb", 20.25]])
        lines = out.splitlines()
        assert "1.50" in out and "20.25" in out
        assert len({len(l) for l in lines if "|" in l}) == 1  # aligned

    def test_markdown_mode(self):
        out = format_table(["x", "y"], [["a", 1]], markdown=True)
        assert out.startswith("| x")
        assert "---" in out.splitlines()[1]

    def test_none_rendered_as_dash(self):
        out = format_table(["x"], [[None]])
        assert "-" in out

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_title(self):
        out = format_table(["x"], [["v"]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_format_kv(self):
        out = format_kv([("alpha", 1), ("b", 2)])
        assert "alpha : 1" in out
        assert format_kv([]) == ""
