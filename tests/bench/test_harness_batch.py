"""Batch-tier coverage for the harness fan-out (processes x batches).

The contract: ``batch`` is purely an execution knob.  For any
``(jobs, batch)`` combination the sweep returns positionally identical
samples, because the hive engine is bit-exact per run and the batched
fan-out reassembles samples at their original task indices.
"""

import pytest

from repro.bench.harness import BenchConfig, run_graph, run_sweep
from repro.graphs import generators as gen


@pytest.fixture(scope="module")
def graphs():
    return [gen.road_network(300, seed=3), gen.delaunay_mesh(200, seed=4)]


@pytest.fixture(scope="module")
def scalar_sweep(graphs):
    cfg = BenchConfig(n_roots=4)
    return run_sweep(["DiggerBees", "Serial-DFS"], graphs, cfg)


@pytest.mark.parametrize("batch", [2, 3, 16])
def test_sweep_batch_invariant_serial(graphs, scalar_sweep, batch):
    cfg = BenchConfig(n_roots=4)
    out = run_sweep(["DiggerBees", "Serial-DFS"], graphs, cfg, batch=batch)
    assert out == scalar_sweep


def test_sweep_batch_composes_with_jobs(graphs, scalar_sweep):
    cfg = BenchConfig(n_roots=4, jobs=2, batch=2)
    out = run_sweep(["DiggerBees", "Serial-DFS"], graphs, cfg)
    assert out == scalar_sweep


def test_run_graph_batch_config_default(graphs):
    """``cfg.batch`` is the default; the explicit argument overrides."""
    cfg = BenchConfig(n_roots=3)
    ref = run_graph(["DiggerBees"], graphs[0], cfg)
    via_cfg = run_graph(["DiggerBees"], graphs[0], cfg.with_(batch=4))
    via_arg = run_graph(["DiggerBees"], graphs[0], cfg, batch=4)
    assert via_cfg == ref
    assert via_arg == ref


def test_batch_one_root_degenerates_to_scalar(graphs):
    """A single root cannot form a shard; the scalar path runs."""
    cfg = BenchConfig(n_roots=1)
    ref = run_graph(["DiggerBees"], graphs[0], cfg)
    out = run_graph(["DiggerBees"], graphs[0], cfg, batch=8)
    assert out == ref


def test_batch_mixed_methods_only_shards_diggerbees(graphs, scalar_sweep):
    """Non-DiggerBees methods ride along as scalar units, untouched."""
    cfg = BenchConfig(n_roots=4)
    out = run_sweep(["Serial-DFS", "DiggerBees"], graphs, cfg, batch=4)
    for gname, per_method in out.items():
        for method, samples in per_method.items():
            assert samples == scalar_sweep[gname][method], (gname, method)
