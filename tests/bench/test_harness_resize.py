"""Pool lease/retire semantics: resize races never drop futures.

The historical bug: the persistent pool was a bare module-global
``ProcessPoolExecutor`` that a resize shut down eagerly, so a thread
resizing the pool while another thread's fan-out was mid-submit raised
"cannot schedule new futures after shutdown" and lost that fan-out.
The fix is generational leasing — ``lease_pool``/``release_pool`` — and
these are its regression tests.
"""

import threading

import pytest

from repro.bench import harness


@pytest.fixture(autouse=True)
def _clean_pool():
    harness._shutdown_pool()
    yield
    harness._shutdown_pool()


def test_lease_release_reuses_one_generation():
    h1 = harness.lease_pool(2)
    h2 = harness.lease_pool(2)
    assert h1 is h2 and h1.users == 2
    harness.release_pool(h1)
    harness.release_pool(h2)
    assert h1.users == 0 and not h1.retired
    # Same size again: the generation survives across lease gaps.
    assert harness.lease_pool(2) is h1
    harness.release_pool(h1)


def test_resize_retires_but_old_handle_stays_submittable():
    old = harness.lease_pool(1)
    fut_before = old.executor.submit(abs, -3)
    new = harness.lease_pool(2)              # resize while old is leased
    assert new is not old and old.retired
    # The regression: this submit used to raise RuntimeError("cannot
    # schedule new futures after shutdown").
    fut_after = old.executor.submit(abs, -7)
    assert fut_before.result(timeout=30) == 3
    assert fut_after.result(timeout=30) == 7
    harness.release_pool(new)
    harness.release_pool(old)               # last release reclaims it
    with pytest.raises(RuntimeError):
        old.executor.submit(abs, -1)


def test_broken_release_clears_global_for_next_lease():
    h = harness.lease_pool(1)
    harness.release_pool(h, broken=True)
    assert h.retired and harness._HANDLE is None
    fresh = harness.lease_pool(1)
    assert fresh is not h
    assert fresh.executor.submit(abs, -5).result(timeout=30) == 5
    harness.release_pool(fresh)


def test_broken_release_with_other_holders_drains_gracefully():
    h1 = harness.lease_pool(1)
    h2 = harness.lease_pool(1)
    assert h1 is h2
    harness.release_pool(h1, broken=True)
    # The surviving holder's generation is retired but not shut down
    # until that last lease comes back.
    assert h2.retired and h2.users == 1
    fresh = harness.lease_pool(1)
    assert fresh is not h2
    harness.release_pool(h2)
    harness.release_pool(fresh)


def test_concurrent_resizes_and_fan_outs_lose_nothing():
    """Hammer lease/submit/release from many threads while the pool size
    flips: every submitted future must complete (the old race dropped
    them with 'cannot schedule new futures after shutdown')."""
    errors = []
    results = []
    lock = threading.Lock()

    def worker(jobs, n):
        try:
            for i in range(n):
                h = harness.lease_pool(jobs)
                try:
                    fut = h.executor.submit(abs, -(i + 1))
                    value = fut.result(timeout=60)
                finally:
                    harness.release_pool(h)
                with lock:
                    results.append(value)
        except Exception as exc:            # pragma: no cover - failure
            with lock:
                errors.append(exc)

    threads = [threading.Thread(target=worker, args=(1 + (k % 2), 6))
               for k in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    assert not errors, errors
    assert len(results) == 4 * 6
    assert all(v >= 1 for v in results)


def test_fan_out_still_correct_across_interleaved_resizes():
    """End-to-end: run_sweep-level fan-outs racing a resizing thread
    produce exactly the samples a serial run produces."""
    from repro.bench.harness import BenchConfig
    from repro.graphs import generators as gen

    graph = gen.binary_tree(4)
    cfg = BenchConfig(sim_scale=0.05, warps_per_block=2, n_roots=2, seed=3)
    tasks = [("DiggerBees", graph, r, cfg) for r in range(4)]
    expected = [harness._execute_task(t) for t in tasks]

    stop = threading.Event()

    def resizer():
        flip = 2
        while not stop.is_set():
            h = harness.lease_pool(flip)
            harness.release_pool(h)
            flip = 3 if flip == 2 else 2

    t = threading.Thread(target=resizer)
    t.start()
    try:
        for _ in range(3):
            got = harness._fan_out(tasks, jobs=2)
            assert got == expected
    finally:
        stop.set()
        t.join(timeout=30)
