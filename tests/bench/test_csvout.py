"""Unit tests for the artifact-compatible CSV outputs."""

import csv

import pytest

from repro.analysis.loadbalance import LoadBalanceReport
from repro.bench.csvout import (
    write_balance_csvs,
    write_bfs_perf_csv,
    write_dfs_perf_csv,
    write_rep_perf_csv,
)
from repro.bench.experiments import Fig5Result, Fig6Result, Fig9Result


@pytest.fixture
def fig5_result():
    rows = [
        {"graph": "g1", "edges": 100, "device": "H100",
         "CKL-PDFS": 10.0, "ACR-PDFS": 9.5, "NVG-DFS": 1.0,
         "DiggerBees": 20.0},
        {"graph": "g2", "edges": 500, "device": "H100",
         "CKL-PDFS": 12.0, "ACR-PDFS": 11.0, "NVG-DFS": 0.0,
         "DiggerBees": 30.0},
    ]
    return Fig5Result(rows=rows, geomean_vs={}, max_vs={},
                      nvg_failures=1, n_graphs=2)


@pytest.fixture
def fig6_result():
    rows = [
        {"graph": "deepg", "regime": "deep", "CKL-PDFS": 1.0,
         "ACR-PDFS": 1.0, "NVG-DFS": 0.5, "DiggerBees": 5.0,
         "BestBFS": 2.0},
    ]
    return Fig6Result(rows=rows, db_wins_deep=["deepg"], bfs_wins_shallow=[])


@pytest.fixture
def fig9_result():
    rep = LoadBalanceReport(tasks=(3, 0, 7), min=0, median=3, max=7,
                            variation=0.8, active_blocks=2)
    rows = [{"graph": "deepg", "baseline": rep, "diggerbees": rep,
             "improvement": 1.0}]
    return Fig9Result(rows=rows)


def read_csv(path):
    with open(path) as fh:
        return list(csv.reader(fh))


class TestDfsCsv:
    def test_layout(self, tmp_path, fig5_result):
        path = write_dfs_perf_csv(fig5_result, tmp_path / "merged_dfs_perf.csv")
        rows = read_csv(path)
        assert rows[0] == ["graph", "edges", "ckl_pdfs", "acr_pdfs",
                           "nvg_dfs", "diggerbees"]
        assert rows[1][0] == "g1"
        assert float(rows[1][5]) == 20.0

    def test_failures_as_zero(self, tmp_path, fig5_result):
        path = write_dfs_perf_csv(fig5_result, tmp_path / "d.csv")
        rows = read_csv(path)
        assert float(rows[2][4]) == 0.0  # g2's NVG failure

    def test_creates_parent_dirs(self, tmp_path, fig5_result):
        path = write_dfs_perf_csv(fig5_result, tmp_path / "a" / "b" / "d.csv")
        assert path.exists()


class TestBfsAndRepCsv:
    def test_bfs_csv(self, tmp_path, fig6_result):
        path = write_bfs_perf_csv(fig6_result, tmp_path / "merged_bfs_perf.csv")
        rows = read_csv(path)
        assert rows[0] == ["graph", "regime", "best_bfs_mteps"]
        assert rows[1] == ["deepg", "deep", "2.000"]

    def test_rep_csv(self, tmp_path, fig6_result):
        path = write_rep_perf_csv(fig6_result, tmp_path / "merged_perf_rep.csv")
        rows = read_csv(path)
        assert "diggerbees" in rows[0]
        assert rows[1][-1] == "2.000"


class TestBalanceCsvs:
    def test_both_policies_written(self, tmp_path, fig9_result):
        written = write_balance_csvs(fig9_result, tmp_path)
        assert len(written) == 2
        names = {p.parent.name for p in written}
        assert names == {"balance_baseline", "balance_diggerbees"}

    def test_one_count_per_line(self, tmp_path, fig9_result):
        written = write_balance_csvs(fig9_result, tmp_path)
        rows = read_csv(written[0])
        assert rows[0] == ["tasks_per_block"]
        assert [r[0] for r in rows[1:]] == ["3", "0", "7"]
