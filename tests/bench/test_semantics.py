"""Unit tests for the measured Table 2 semantics classifier."""

import pytest

from repro.bench.semantics import observed_semantics
from repro.graphs import generators as gen


@pytest.fixture(scope="module")
def rows():
    return {r[0]: r for r in observed_semantics()}


class TestObservedSemantics:
    def test_all_methods_present(self, rows):
        assert set(rows) == {
            "CKL-PDFS", "ACR-PDFS", "NVG-DFS", "Gunrock/BerryBees",
            "DiggerBees (this work)",
        }

    def test_everyone_reports_visited(self, rows):
        for name, row in rows.items():
            assert row[1] == "yes", f"{name} visited wrong"

    def test_cpu_baselines_no_tree(self, rows):
        assert rows["CKL-PDFS"][2] == "N/A"
        assert rows["ACR-PDFS"][2] == "N/A"

    def test_nvg_ordered_tree(self, rows):
        assert rows["NVG-DFS"][2] == "yes"
        assert rows["NVG-DFS"][3] == "ordered"

    def test_bfs_levels_only(self, rows):
        row = rows["Gunrock/BerryBees"]
        assert row[2] == "N/A" and row[4] == "yes"

    def test_diggerbees_unordered_tree(self, rows):
        row = rows["DiggerBees (this work)"]
        assert row[2] == "yes"
        assert row[3] == "unordered"

    def test_custom_graph(self):
        g = gen.delaunay_mesh(200, seed=1)
        out = {r[0]: r for r in observed_semantics(g)}
        assert out["DiggerBees (this work)"][2] == "yes"
