"""Unit tests for the CLI (`python -m repro.bench`)."""

import pathlib

import pytest

from repro.bench.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.experiments == ["table1"]
        assert args.sim_scale == 0.125
        assert not args.quick

    def test_options(self):
        args = build_parser().parse_args(
            ["fig6", "fig8", "--quick", "--seed", "3", "--roots", "1"])
        assert args.experiments == ["fig6", "fig8"]
        assert args.quick and args.seed == 3 and args.roots == 1


class TestMain:
    def test_unknown_experiment(self, capsys):
        assert main(["figure99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_table_runs_and_prints(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "H100" in out
        assert "[table1 regenerated" in out

    def test_archive_to_dir(self, tmp_path, capsys):
        assert main(["table3", "--out", str(tmp_path)]) == 0
        archived = tmp_path / "table3.txt"
        assert archived.exists()
        assert "dimacs10" in archived.read_text()

    def test_all_is_registered(self):
        assert set(EXPERIMENTS) == {
            "table1", "table2", "table3", "table4",
            "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
        }

    def test_quick_fig10_runs(self, capsys, tmp_path):
        # The fastest real figure in quick mode keeps this test cheap.
        assert main(["fig10", "--quick", "--roots", "1",
                     "--out", str(tmp_path)]) == 0
        assert (tmp_path / "fig10.txt").exists()
