"""Micro-sweep coverage: hive ``--batch`` mode, phase accounting, and
the ``--compare`` trajectory diff."""

import json

import pytest

from repro.bench import micro
from repro.bench.micro import compare_trajectory, render, run_micro
from repro.errors import BenchmarkError


@pytest.fixture(scope="module")
def scalar_payload():
    return run_micro(repeats=1)


@pytest.fixture(scope="module")
def batch_payload():
    return run_micro(repeats=1, batch=2)


def test_batch_payload_matches_scalar_schedule(scalar_payload, batch_payload):
    """Hive replicas must reproduce the scalar engine's exact schedule —
    the same committed baseline gates every execution mode."""
    assert batch_payload["batch"] == 2
    assert scalar_payload["batch"] == 0
    for ca, cb in zip(scalar_payload["cases"], batch_payload["cases"]):
        assert ca["name"] == cb["name"]
        assert ca["cycles"] == cb["cycles"], ca["name"]
        assert ca["steps"] == cb["steps"], ca["name"]
        assert cb["exact_cycles"], ca["name"]


@pytest.mark.parametrize("payload_fixture",
                         ["scalar_payload", "batch_payload"])
def test_phases_simulate_matches_total_wall(payload_fixture, request):
    """phases.simulate accumulates the per-case *median*, so it must
    agree with total_wall_seconds (the pre-fix code summed every repeat,
    overstating simulate by ~repeats x)."""
    payload = request.getfixturevalue(payload_fixture)
    simulate = payload["phases"]["simulate"]
    total = payload["total_wall_seconds"]
    assert abs(simulate - total) <= max(1e-6, 0.01 * total)


def test_turbo_and_batch_conflict():
    with pytest.raises(BenchmarkError, match="cannot be combined"):
        run_micro(repeats=1, turbo=True, batch=4)


def test_render_tags_hive_mode(batch_payload):
    assert "[hive batch=2]" in render(batch_payload)


# ---------------------------------------------------------------------------
# --compare trajectory diff
# ---------------------------------------------------------------------------

def _entry(mode, cases, ts):
    entry = {"bench": "engine_micro", "repeats": 3, "timestamp": ts,
             "turbo": mode == "turbo",
             "batch": 16 if mode == "hive" else 0,
             "cases": cases}
    return entry


def _case(name, wall, steps, cycles):
    return {"name": name, "wall_seconds": wall, "steps": steps,
            "cycles": cycles, "steps_per_second": steps / wall,
            "exact_cycles": True}


@pytest.fixture
def trajectory(tmp_path):
    a = _entry("scalar", [
        _case("road1000", 0.020, 2576, 130728),
        _case("pa2000", 0.030, 5209, 124828),
        _case("mesh1500", 0.020, 3989, 111898),
        _case("retired", 0.010, 1000, 5000),
    ], "2026-08-01T00:00:00+00:00")
    b = _entry("hive", [
        _case("road1000", 0.008, 2576, 130728),   # >5% faster
        _case("pa2000", 0.040, 5209, 124828),     # >5% slower
        _case("mesh1500", 0.020, 4001, 111898),   # schedule drift
        _case("brandnew", 0.010, 1000, 5000),
    ], "2026-08-02T00:00:00+00:00")
    path = tmp_path / "trajectory.jsonl"
    with path.open("w", encoding="utf-8") as f:
        for entry in (a, b):
            f.write(json.dumps(entry) + "\n")
    return path


def test_compare_flags_and_modes(trajectory):
    out = compare_trajectory(0, 1, path=trajectory)
    assert "A: entry 0 [scalar]" in out
    assert "B: entry 1 [hive:16]" in out
    road = next(line for line in out.splitlines()
                if line.startswith("road1000"))
    assert "improvement" in road
    pa = next(line for line in out.splitlines() if line.startswith("pa2000"))
    assert "regression" in pa
    mesh = next(line for line in out.splitlines()
                if line.startswith("mesh1500"))
    assert "SCHEDULE DRIFT" in mesh
    assert "(new case)" in out
    assert "cases only in A: retired" in out
    assert "flagged: 2" in out


def test_compare_negative_indices(trajectory):
    assert compare_trajectory(-2, -1, path=trajectory) == \
        compare_trajectory(0, 1, path=trajectory)


def test_compare_missing_file(tmp_path):
    with pytest.raises(BenchmarkError, match="no trajectory"):
        compare_trajectory(0, 1, path=tmp_path / "absent.jsonl")


def test_compare_out_of_range(trajectory):
    with pytest.raises(BenchmarkError, match="out\nof range|out of range"):
        compare_trajectory(0, 7, path=trajectory)


def test_cli_batch_turbo_conflict(capsys):
    with pytest.raises(SystemExit):
        micro.main(["--turbo", "--batch", "4"])
    err = capsys.readouterr().err
    assert "drop --turbo" in err
