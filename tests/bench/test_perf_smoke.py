"""Perf-smoke gate over the fixed engine micro-sweep.

Two layers of protection:

* ``test_schedule_matches_baseline`` runs in the ordinary test suite —
  it compares the (deterministic) simulated cycles/steps of each micro
  case against ``benchmarks/baseline_micro.json``, catching accidental
  schedule drift regardless of machine load.
* ``test_wall_time_gate`` carries the ``perf_smoke`` marker and is
  deselected by default (see ``addopts`` in ``pyproject.toml``) because
  wall-clock assertions are load-sensitive; CI runs it explicitly with
  ``pytest -m perf_smoke`` (equivalent to
  ``python -m repro.bench micro --quick``).
"""

import copy
import json

import pytest

from repro.bench import micro
from repro.core.diggerbees import run_diggerbees
from repro.errors import BenchmarkError


def _load_baseline():
    path = micro.default_baseline_path()
    if not path.exists():
        pytest.skip(f"no recorded baseline at {path}; run "
                    f"`python -m repro.bench micro --update-baseline`")
    return json.loads(path.read_text())


def test_schedule_matches_baseline():
    baseline = {c["name"]: c for c in _load_baseline()["cases"]}
    for name, build, cfg in micro.MICRO_CASES:
        assert name in baseline, f"case {name} missing from baseline"
        res = run_diggerbees(build(), 0, config=cfg)
        assert res.cycles == baseline[name]["cycles"], (
            f"{name}: schedule drift (cycles {res.cycles} vs baseline "
            f"{baseline[name]['cycles']}) — determinism contract broken")
        assert res.engine.steps == baseline[name]["steps"]


@pytest.mark.perf_smoke
def test_wall_time_gate():
    baseline = _load_baseline()
    result = micro.run_micro(repeats=3)
    problems = micro.check_against_baseline(result, baseline)
    assert not problems, "; ".join(problems)


@pytest.mark.perf_smoke
def test_wall_time_gate_turbo():
    """The fused turbo loop gates against the same baseline — its
    cycles/steps are bit-identical by contract, and its wall time must
    clear the same regression bar."""
    baseline = _load_baseline()
    result = micro.run_micro(repeats=3, turbo=True)
    problems = micro.check_against_baseline(result, baseline)
    assert not problems, "; ".join(problems)


def test_gate_refuses_inexact_cycles():
    """A run whose cycle counts are inexact (poll_interval > 1 overshoot)
    must not be compared against the exact baseline."""
    baseline = _load_baseline()
    result = {
        "cases": [dict(copy.deepcopy(c), exact_cycles=False)
                  for c in baseline["cases"]],
    }
    with pytest.raises(BenchmarkError, match="refusing to gate"):
        micro.check_against_baseline(result, baseline)
