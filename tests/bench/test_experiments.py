"""Smoke + shape tests for the experiment definitions (tiny corpora).

The full-shape assertions live in ``benchmarks/``; these tests exercise
the experiment plumbing (aggregation, rendering, failure handling) with
corpora small enough for the unit-test suite.
"""

import pytest

from repro.bench import experiments as E
from repro.bench.harness import BenchConfig
from repro.graphs import collections as col
from repro.graphs import generators as gen

FAST = BenchConfig(sim_scale=0.05, warps_per_block=4, n_roots=1, seed=3)


@pytest.fixture(scope="module")
def tiny_corpus():
    return [
        gen.road_network(800, seed=1, name="mini_road").with_name(
            "mini_road", group="dimacs10"),
        gen.preferential_attachment(800, m=5, seed=1).with_name(
            "mini_social", group="snap"),
        gen.path_graph(2500).with_name("mini_path", group="dimacs10"),
    ]


class TestFig5:
    def test_structure_and_render(self, tiny_corpus):
        res = E.fig5(FAST, corpus=tiny_corpus)
        assert res.n_graphs == 3
        assert {r["graph"] for r in res.rows} == {
            "mini_road", "mini_social", "mini_path"}
        assert res.geomean_vs["NVG-DFS"] > 1.0
        out = res.render()
        assert "Figure 5" in out and "geomean" in out

    def test_nvg_failure_counted(self, tiny_corpus):
        res = E.fig5(FAST, corpus=tiny_corpus)
        # mini_path (depth 2500) must kill NVG's path tracking.
        assert res.nvg_failures >= 1
        row = next(r for r in res.rows if r["graph"] == "mini_path")
        assert row["NVG-DFS"] == 0.0


class TestFig7:
    def test_ratios_positive(self, tiny_corpus):
        res = E.fig7(FAST, corpus=tiny_corpus[:2])
        assert set(res.geomean_scalability) == {"DiggerBees", "NVG-DFS"}
        for r in res.rows:
            assert r["db_ratio"] > 0
        assert "H100" in res.render()


class TestFig8:
    def test_versions_monotone_data(self):
        res = E.fig8(FAST, graphs=["euro_osm"])
        row = res.rows[0]
        assert row["v2"] > row["v1"]        # two-level stack helps
        assert row["v4"] >= row["v3"] * 0.8
        assert "v3/v2" in res.render()

    def test_step_geomeans(self):
        res = E.fig8(FAST, graphs=["amazon"])
        geo = res.step_geomeans()
        assert set(geo) == {"v2/v1", "v3/v2", "v4/v3"}


class TestFig9:
    def test_reports_and_render(self):
        res = E.fig9(FAST, graphs=["euro_osm"], repeats=2)
        row = res.rows[0]
        assert row["baseline"].max >= row["baseline"].min
        assert row["improvement"] > 0
        assert "Var." in res.render()


class TestFig10:
    def test_grid_normalized_at_default(self):
        res = E.fig10(FAST, graphs=["amazon"],
                      hot_values=(16, 32), cold_values=(32, 64))
        grid = res.grids["amazon"]
        i, j = res.default_cell
        assert grid[i, j] == pytest.approx(1.0)
        assert "Figure 10" in res.render()

    def test_custom_grid_without_default(self):
        res = E.fig10(FAST, graphs=["amazon"],
                      hot_values=(8, 16), cold_values=(16, 32))
        # Falls back to cell (0, 0) for normalization.
        assert res.default_cell == (0, 0)


class TestTables:
    def test_table1(self):
        assert "DiggerBees (this work)" in E.table1()

    def test_table2_custom_graph(self):
        g = gen.road_network(300, seed=5)
        out = E.table2(g)
        assert "unordered" in out

    def test_table3_counts(self):
        out = E.table3()
        assert "151/68/15" in out

    def test_table4_all_rows(self):
        out = E.table4(seed=7)
        for name in col.REPRESENTATIVE_NAMES:
            assert name in out
