"""Unit tests for the benchmark harness."""

import pytest

from repro.bench.harness import (
    ALL_METHODS,
    BenchConfig,
    MethodSummary,
    geomean_speedup,
    pick_roots,
    run_graph,
    run_method,
    summarize_method,
)
from repro.errors import BenchmarkError
from repro.graphs import generators as gen
from repro.sim.device import A100
from repro.sim.metrics import PerfSample

FAST = BenchConfig(sim_scale=0.05, warps_per_block=2, n_roots=2, seed=3)


@pytest.fixture(scope="module")
def road():
    return gen.road_network(600, seed=11)


class TestRoots:
    def test_deterministic(self, road):
        assert pick_roots(road, FAST) == pick_roots(road, FAST)

    def test_count(self, road):
        assert len(pick_roots(road, FAST)) == 2
        assert len(pick_roots(road, FAST.with_(n_roots=5))) == 5

    def test_roots_have_edges(self, road):
        for r in pick_roots(road, FAST.with_(n_roots=8)):
            assert road.degree(r) > 0

    def test_different_graphs_different_roots(self, road):
        other = gen.road_network(600, seed=12).with_name("other")
        assert pick_roots(road, FAST) != pick_roots(other, FAST)


class TestRunMethod:
    @pytest.mark.parametrize("method", sorted(ALL_METHODS))
    def test_every_method_produces_sample(self, method, road):
        s = run_method(method, road, 0, FAST)
        assert s.method == method
        assert s.failed or s.mteps > 0

    def test_unknown_method(self, road):
        with pytest.raises(BenchmarkError):
            run_method("QuantumDFS", road, 0, FAST)

    def test_nvg_failure_becomes_sample(self):
        deep = gen.path_graph(3000)
        s = run_method("NVG-DFS", deep, 0, FAST)
        assert s.failed
        assert s.mteps == 0.0

    def test_device_override(self, road):
        s = run_method("DiggerBees", road, 0, FAST.with_(device=A100))
        assert s.device == "A100"


class TestRunGraphAndSummaries:
    def test_run_graph_shape(self, road):
        out = run_graph(["DiggerBees", "Gunrock"], road, FAST)
        assert set(out) == {"DiggerBees", "Gunrock"}
        assert all(len(v) == 2 for v in out.values())

    def test_summarize(self, road):
        out = run_graph(["Gunrock"], road, FAST)
        s = summarize_method(out["Gunrock"])
        assert s.n_roots == 2 and s.n_failed == 0
        assert s.mteps > 0

    def test_summarize_empty_rejected(self):
        with pytest.raises(BenchmarkError):
            summarize_method([])

    def test_summary_with_failures(self):
        samples = [
            PerfSample("NVG-DFS", "g", "H100", 0, 100, 10, 1e-3),
            PerfSample.failure("NVG-DFS", "g", "H100", 1, "OOM"),
        ]
        s = summarize_method(samples)
        assert s.n_failed == 1 and not s.failed
        assert s.mteps > 0

    def test_all_failed_summary(self):
        samples = [PerfSample.failure("NVG-DFS", "g", "H100", 0, "OOM")]
        s = summarize_method(samples)
        assert s.failed and s.mteps == 0.0


class TestGeomeanSpeedup:
    def make(self, method, graph, mteps, failed=False):
        return MethodSummary(method=method, graph=graph, mteps=mteps,
                             n_roots=1, n_failed=1 if failed else 0)

    def test_basic(self):
        base = [self.make("B", "g1", 10), self.make("B", "g2", 10)]
        cand = [self.make("C", "g1", 20), self.make("C", "g2", 40)]
        assert geomean_speedup(base, cand) == pytest.approx((2 * 4) ** 0.5)

    def test_failed_pairs_excluded(self):
        base = [self.make("B", "g1", 10), self.make("B", "g2", 0, failed=True)]
        cand = [self.make("C", "g1", 30), self.make("C", "g2", 99)]
        assert geomean_speedup(base, cand) == pytest.approx(3.0)

    def test_no_pairs_raises(self):
        base = [self.make("B", "g1", 0, failed=True)]
        cand = [self.make("C", "g1", 10)]
        with pytest.raises(BenchmarkError):
            geomean_speedup(base, cand)


class TestBenchConfig:
    def test_diggerbees_config_versions(self):
        cfg = BenchConfig(sim_scale=0.25)
        assert cfg.diggerbees_config(1).n_blocks == 1
        assert cfg.diggerbees_config(4).n_blocks == 33

    def test_overrides_win(self):
        cfg = BenchConfig()
        dbc = cfg.diggerbees_config(victim_policy="random", seed=99)
        assert dbc.victim_policy == "random"
        assert dbc.seed == 99
