"""The process-pool sweep fan-out must be jobs-invariant.

Every (method, graph, root) sample is an independent deterministic
simulation, so ``run_graph`` / ``run_sweep`` with ``jobs=4`` must return
byte-identical ``PerfSample`` aggregates to the serial ``jobs=1`` path.
These tests run on a tiny corpus so the pool overhead stays small even
on a single-CPU machine.
"""

import pytest

from repro.bench.harness import (
    BenchConfig,
    run_graph,
    run_sweep,
    summarize_method,
)
from repro.graphs import generators as gen

FAST = BenchConfig(sim_scale=0.05, warps_per_block=2, n_roots=2, seed=3)
METHODS = ["DiggerBees", "Serial-DFS"]


@pytest.fixture(scope="module")
def road():
    return gen.road_network(400, seed=21)


@pytest.fixture(scope="module")
def corpus():
    return [
        gen.road_network(300, seed=22).with_name("road_tiny"),
        gen.preferential_attachment(300, m=4, seed=23).with_name("pa_tiny"),
    ]


class TestRunGraphParallel:
    def test_jobs_invariant_samples(self, road):
        serial = run_graph(METHODS, road, FAST, jobs=1)
        parallel = run_graph(METHODS, road, FAST, jobs=4)
        assert serial == parallel  # PerfSample dataclasses compare by value

    def test_jobs_invariant_summaries(self, road):
        serial = run_graph(METHODS, road, FAST, jobs=1)
        parallel = run_graph(METHODS, road, FAST, jobs=4)
        for m in METHODS:
            assert summarize_method(serial[m]) == summarize_method(parallel[m])

    def test_cfg_jobs_field_is_default(self, road):
        # jobs=None picks up cfg.jobs; an explicit override wins.
        cfg4 = BenchConfig(sim_scale=0.05, warps_per_block=2, n_roots=2,
                           seed=3, jobs=4)
        assert run_graph(METHODS, road, cfg4) == run_graph(METHODS, road, FAST)


class TestRunSweepParallel:
    def test_jobs_invariant(self, corpus):
        serial = run_sweep(METHODS, corpus, FAST, jobs=1)
        parallel = run_sweep(METHODS, corpus, FAST, jobs=4)
        assert serial == parallel

    def test_shape(self, corpus):
        out = run_sweep(METHODS, corpus, FAST, jobs=4)
        assert set(out) == {"road_tiny", "pa_tiny"}
        for per_method in out.values():
            assert set(per_method) == set(METHODS)
            assert all(len(v) == FAST.n_roots for v in per_method.values())

    def test_matches_per_graph_run_graph(self, corpus):
        sweep = run_sweep(METHODS, corpus, FAST, jobs=4)
        for g in corpus:
            assert sweep[g.name] == run_graph(METHODS, g, FAST, jobs=1)
