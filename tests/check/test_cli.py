"""Tests for the ``python -m repro.check`` command-line driver."""

import pytest

from repro.check import cli
from repro.check.cases import case_from_seed
from repro.check.differential import CheckFailure, case_to_json


def test_fuzz_small_run_passes(capsys):
    rc = cli.main(["fuzz", "--cases", "5"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "5 cases passed" in out


def test_fuzz_failure_prints_repro_and_exits_nonzero(capsys, monkeypatch):
    failure = CheckFailure(case=case_from_seed(3), stage="serial-diff",
                           message="synthetic divergence")
    monkeypatch.setattr(cli, "check_case",
                        lambda case, **kw: failure if case.seed == 3 else None)
    rc = cli.main(["fuzz", "--cases", "10", "--no-shrink"])
    out = capsys.readouterr().out
    assert rc == 1
    assert "FAIL [serial-diff]" in out
    assert "repro: python -m repro.check repro 3" in out


def test_repro_clean_seed(capsys):
    rc = cli.main(["repro", "2"])
    assert rc == 0
    assert "PASS" in capsys.readouterr().out


def test_repro_with_mutation_fails(capsys):
    rc = cli.main(["repro", "0", "--stress",
                   "--mutation", "flush_publish_drop"])
    out = capsys.readouterr().out
    assert rc == 1
    assert "FAIL [invariants]" in out


def test_repro_case_spec(capsys):
    spec = case_to_json(case_from_seed(1))
    rc = cli.main(["repro", "--case", spec])
    assert rc == 0
    assert "PASS" in capsys.readouterr().out


def test_repro_without_input_is_usage_error(capsys):
    assert cli.main(["repro"]) == 2


def test_mutants_subset(capsys):
    rc = cli.main(["mutants",
                   "--names", "intra_lost_cas_writeback,refill_double_pop"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "2/2 injected bugs detected" in out


def test_mutants_unknown_name(capsys):
    assert cli.main(["mutants", "--names", "nope"]) == 2


def test_mutants_reports_misses(capsys, monkeypatch):
    monkeypatch.setattr(cli, "run_mutant", lambda name, **kw: None)
    rc = cli.main(["mutants", "--names", "flush_publish_drop"])
    out = capsys.readouterr().out
    assert rc == 1
    assert "MISSED flush_publish_drop" in out
