"""Tests for the greedy failure shrinker."""

from repro.check.cases import case_from_seed
from repro.check.differential import check_case
from repro.check.shrink import shrink_case


def test_shrinks_a_mutant_failure_to_a_smaller_failing_case():
    case = case_from_seed(0, stress=True)
    failure = check_case(case, mutation="intra_lost_cas_writeback",
                         stress=True)
    assert failure is not None
    shrunk = shrink_case(failure, max_evals=20)
    # The shrinker must keep a *failing* case and never grow the input.
    assert shrunk.case.n_vertices <= case.n_vertices
    assert shrunk.mutation == "intra_lost_cas_writeback"
    if shrunk.case != case:  # something was simplified
        assert shrunk.case.shrunk_from == case.seed
        assert "--case '" in shrunk.repro_command
    # The reported shrunk case must still reproduce a failure.
    assert check_case(shrunk.case, mutation=shrunk.mutation,
                      stress=shrunk.stress) is not None


def test_shrinker_budget_is_respected():
    case = case_from_seed(0, stress=True)
    failure = check_case(case, mutation="flush_publish_drop", stress=True)
    assert failure is not None
    evals = []

    def counting_log(msg):
        evals.append(msg)

    shrunk = shrink_case(failure, max_evals=3, log=counting_log)
    assert len(evals) <= 3
    assert shrunk is not None
