"""Checker coverage for turbo mode.

Two obligations: (1) the oracle ladder's turbo-differential rung passes
on clean cases whichever side of the comparison runs fused, and (2) the
mutation sanity suite retains full detection power when the primary pass
executes under the fused loop — i.e. turbo mode has no blind spot that
lets an injected steal-protocol bug through.
"""

import pytest

from repro.check.cases import case_from_seed
from repro.check.cli import MUTANT_CASE_BUDGET, run_mutant
from repro.check.differential import check_case
from repro.check.mutations import MUTATIONS


def test_clean_cases_pass_with_turbo_primary():
    """The full ladder (turbo primary vs generic differential) agrees on
    clean seed-derived cases."""
    for seed in range(4):
        case = case_from_seed(seed).with_(perturb_seed=None, jitter=0)
        failure = check_case(case, turbo=True)
        assert failure is None, failure.report()


def test_turbo_failures_carry_turbo_repro_flag():
    case = case_from_seed(0, stress=True).with_(perturb_seed=None, jitter=0)
    failure = check_case(case, mutation="flush_publish_drop", stress=True,
                         turbo=True)
    assert failure is not None
    assert "--turbo" in failure.repro_command
    assert "--mutation flush_publish_drop" in failure.repro_command


@pytest.mark.parametrize("name", sorted(MUTATIONS))
def test_mutation_is_caught_under_turbo(name):
    """Every injected protocol bug must be detected with the fused loop
    executing the primary pass (perturbation stripped so turbo engages,
    see run_mutant)."""
    failure = run_mutant(name, budget=MUTANT_CASE_BUDGET, turbo=True)
    assert failure is not None, (
        f"injected bug {name!r} ({MUTATIONS[name].description}) survived "
        f"{MUTANT_CASE_BUDGET} turbo stress cases — the fused loop has a "
        f"blind spot; expected detector: "
        f"{MUTATIONS[name].expected_detector}"
    )
