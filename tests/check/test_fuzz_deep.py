"""Deep differential fuzz sweep (deselected by default; run with
``pytest -m fuzz``).  The smoke-budget equivalents of these runs live in
CI via ``python -m repro.check fuzz --smoke``."""

import pytest

from repro.check.cases import case_from_seed
from repro.check.cli import run_mutant
from repro.check.differential import check_case
from repro.check.mutations import MUTATIONS

pytestmark = pytest.mark.fuzz


@pytest.mark.parametrize("stress", [False, True])
def test_deep_fuzz_sweep(stress):
    for seed in range(300):
        failure = check_case(case_from_seed(seed, stress=stress),
                             stress=stress)
        assert failure is None, failure.report()


@pytest.mark.parametrize("name", sorted(MUTATIONS))
def test_mutations_caught_with_generous_budget(name):
    assert run_mutant(name, budget=40) is not None
