"""Coverage for the hive rung of the differential oracle ladder."""

import pytest

from repro.check.cases import FuzzCase, case_from_seed
from repro.check.cli import build_parser, run_mutant
from repro.check.differential import CheckFailure, check_case


def _eligible_case() -> FuzzCase:
    """A small unperturbed two-level case — the hive rung executes."""
    return FuzzCase(
        seed=0, family="road_network", n_vertices=96, graph_seed=7,
        n_blocks=2, warps_per_block=2, hot_size=8, hot_cutoff=2,
        cold_cutoff=2, flush_batch=2, refill_batch=2,
        adversarial_victims=True,
    )


def test_clean_case_passes_hive_ladder():
    assert check_case(_eligible_case(), hive=True) is None


def test_seeded_cases_pass_hive_ladder():
    for seed in range(3):
        case = case_from_seed(seed)
        assert check_case(case, hive=True) is None, seed


def test_repro_command_carries_hive_flag():
    failure = CheckFailure(case=_eligible_case(), stage="hive-diff",
                           message="boom", hive=True)
    assert " --hive" in failure.repro_command
    plain = CheckFailure(case=_eligible_case(), stage="turbo-diff",
                         message="boom")
    assert "--hive" not in plain.repro_command


@pytest.mark.parametrize("mutation", [
    "claim_lost_store",
    "inter_skip_cas_validation",
])
def test_mutations_caught_under_hive(mutation):
    """The hive rung must not mask injected protocol bugs: the ladder
    still reports each mutation within a small fuzz budget."""
    failure = run_mutant(mutation, budget=12, hive=True)
    assert failure is not None
    assert failure.mutation == mutation
    # The replayed failure is hive-mode, so the repro command round-trips.
    assert failure.hive and " --hive" in failure.repro_command


def test_cli_accepts_hive_flag():
    parser = build_parser()
    for argv in (["fuzz", "--hive"], ["repro", "3", "--hive"],
                 ["mutants", "--hive"]):
        args = parser.parse_args(argv)
        assert args.hive is True
