"""Coverage for the hive rung of the differential oracle ladder."""

import pytest

from repro.check.cases import FuzzCase, case_from_seed
from repro.check.cli import build_parser, run_mutant
from repro.check.differential import CheckFailure, check_case
from repro.core import intra_steal


def _eligible_case() -> FuzzCase:
    """A small unperturbed two-level case — the hive rung executes."""
    return FuzzCase(
        seed=0, family="road_network", n_vertices=96, graph_seed=7,
        n_blocks=2, warps_per_block=2, hot_size=8, hot_cutoff=2,
        cold_cutoff=2, flush_batch=2, refill_batch=2,
        adversarial_victims=True,
    )


def _vector_case() -> FuzzCase:
    """Same geometry but honest victim choice, so the hive primary runs
    the vectorized steal protocol and stage 5c compares it against the
    ``hive_steal="scalar"`` oracle."""
    return FuzzCase(
        seed=0, family="preferential_attachment", n_vertices=200,
        graph_seed=6, n_blocks=2, warps_per_block=2, hot_size=8,
        hot_cutoff=2, cold_cutoff=2, flush_batch=2, refill_batch=2,
    )


def test_clean_case_passes_hive_ladder():
    assert check_case(_eligible_case(), hive=True) is None


def test_seeded_cases_pass_hive_ladder():
    for seed in range(3):
        case = case_from_seed(seed)
        assert check_case(case, hive=True) is None, seed


def test_vector_steal_case_passes_hive_ladder():
    """A case with real vector-protocol traffic clears both the hive
    rung (5b, vector vs scalar engines) and the steal-mode rung (5c,
    vector vs hive_steal="scalar")."""
    assert check_case(_vector_case(), hive=True) is None


def test_vector_steal_bug_caught_by_hive_ladder(monkeypatch):
    """A bug injected into the *batched* victim selection — thieves
    accept victims one entry below the cutoff — must surface through
    the ladder's hive rungs, not be masked by the scalar oracles."""
    orig = intra_steal.select_victims_batch

    def too_eager(heads, tails, hot_size, thief_warps, cutoff):
        return orig(heads, tails, hot_size, thief_warps, max(1, cutoff - 1))

    monkeypatch.setattr(intra_steal, "select_victims_batch", too_eager)
    failure = check_case(_vector_case(), hive=True)
    assert failure is not None
    assert failure.stage in ("hive-diff", "hive-steal-diff")


def test_repro_command_carries_hive_flag():
    failure = CheckFailure(case=_eligible_case(), stage="hive-diff",
                           message="boom", hive=True)
    assert " --hive" in failure.repro_command
    plain = CheckFailure(case=_eligible_case(), stage="turbo-diff",
                         message="boom")
    assert "--hive" not in plain.repro_command


@pytest.mark.parametrize("mutation", [
    "claim_lost_store",
    "inter_skip_cas_validation",
])
def test_mutations_caught_under_hive(mutation):
    """The hive rung must not mask injected protocol bugs: the ladder
    still reports each mutation within a small fuzz budget."""
    failure = run_mutant(mutation, budget=12, hive=True)
    assert failure is not None
    assert failure.mutation == mutation
    # The replayed failure is hive-mode, so the repro command round-trips.
    assert failure.hive and " --hive" in failure.repro_command


def test_cli_accepts_hive_flag():
    parser = build_parser()
    for argv in (["fuzz", "--hive"], ["repro", "3", "--hive"],
                 ["mutants", "--hive"]):
        args = parser.parse_args(argv)
        assert args.hive is True
