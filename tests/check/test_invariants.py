"""Unit tests for the steal-protocol invariant monitor."""

import numpy as np
import pytest

from repro.check import InvariantMonitor
from repro.check.cases import case_from_seed
from repro.core import DiggerBeesConfig, run_diggerbees
from repro.core.state import RunState
from repro.core.twolevel_stack import WarpStack
from repro.errors import InvariantViolation, SimulationError
from repro.graphs import generators as gen
from repro.sim.device import H100

CFG = DiggerBeesConfig(n_blocks=2, warps_per_block=4, hot_size=8,
                       hot_cutoff=2, cold_cutoff=2, flush_batch=2,
                       refill_batch=2, cold_reserve=16, seed=7)


class TestAttach:
    def test_attach_wires_state_and_stacks(self):
        g = gen.path_graph(20)
        state = RunState(g, 0, CFG, H100)
        monitor = InvariantMonitor()
        observer = monitor.attach(state)
        assert callable(observer)
        assert state.monitor is monitor
        for block in state.blocks:
            for warp, stack in enumerate(block.stacks):
                if isinstance(stack, WarpStack):
                    assert stack.monitor is monitor
                    assert stack.owner == (block.block_id, warp)

    def test_check_every_validated(self):
        with pytest.raises(ValueError, match="check_every"):
            InvariantMonitor(check_every=0)


class TestCleanRunCoverage:
    def test_monitored_run_passes_and_covers_protocol(self):
        """A correct run must pass under full monitoring, and the
        monitor must actually have seen steal/flush/refill traffic —
        silence from an unexercised checker proves nothing."""
        g = gen.delaunay_mesh(240, seed=7)
        monitor = InvariantMonitor(check_every=8)
        result = run_diggerbees(g, 0, config=CFG, check_invariants=True,
                                instrument=monitor.attach)
        monitor.final_check()
        assert result.traversal.n_visited == g.n_vertices
        assert monitor.steal_events > 0
        assert monitor.flush_events > 0
        assert monitor.refill_events > 0
        assert monitor.sweeps > 0

    def test_monitoring_does_not_change_schedule(self):
        """The observer is read-only: cycles/steps/tree must be
        bit-identical with and without it."""
        g = gen.road_network(300, seed=7)
        plain = run_diggerbees(g, 0, config=CFG)
        monitor = InvariantMonitor(check_every=16)
        watched = run_diggerbees(g, 0, config=CFG, instrument=monitor.attach)
        assert watched.cycles == plain.cycles
        assert watched.engine.steps == plain.engine.steps
        assert np.array_equal(watched.traversal.parent, plain.traversal.parent)


class TestSweepDetections:
    def _fresh(self, n=40):
        g = gen.path_graph(n)
        state = RunState(g, 0, CFG, H100)
        monitor = InvariantMonitor()
        monitor.attach(state)
        return state, monitor

    def test_unclaimed_stacked_vertex(self):
        state, monitor = self._fresh()
        state.blocks[0].stacks[1].hot.push(7, 0)  # never claimed
        state.pending += 1
        with pytest.raises(InvariantViolation, match="not marked visited"):
            monitor.sweep()

    def test_duplicate_ownership(self):
        state, monitor = self._fresh()
        state.blocks[1].stacks[0].hot.push(0, 0)  # root is already stacked
        state.pending += 1
        with pytest.raises(InvariantViolation, match="owned by two stacks"):
            monitor.sweep()

    def test_pending_drift_lost(self):
        state, monitor = self._fresh()
        state.pending += 2
        with pytest.raises(InvariantViolation, match="lost"):
            monitor.sweep()

    def test_final_check_requires_drained_run(self):
        state, monitor = self._fresh()
        # Remove the root entry physically but leave pending at 1.
        state.blocks[0].stacks[0].hot.take_from_tail(1)
        with pytest.raises(InvariantViolation):
            monitor.final_check()


class TestEventHooks:
    def _monitor(self):
        g = gen.path_graph(10)
        state = RunState(g, 0, CFG, H100)
        monitor = InvariantMonitor()
        monitor.attach(state)
        state.visited[:] = 1  # make the claimed-before-stacked check moot
        return monitor

    def test_token_mismatch_is_linearizability_breach(self):
        monitor = self._monitor()
        with pytest.raises(InvariantViolation, match="linearizability"):
            monitor.on_steal(kind="intra", victim=(0, 0), thief=(0, 1),
                             verts=np.array([1, 2]), token_at_commit=5,
                             observed_token=3, amount=2, observed_rest=4)

    def test_over_reservation_rejected(self):
        monitor = self._monitor()
        with pytest.raises(InvariantViolation, match="over-reservation"):
            monitor.on_steal(kind="inter", victim=(0, 0), thief=(1, 0),
                             verts=np.array([1, 2, 3]), token_at_commit=0,
                             observed_token=0, amount=3, observed_rest=2)

    def test_unclaimed_stolen_vertex_rejected(self):
        monitor = self._monitor()
        monitor.state.visited[2] = 0
        with pytest.raises(InvariantViolation, match="unclaimed"):
            monitor.on_steal(kind="intra", victim=(0, 0), thief=(0, 1),
                             verts=np.array([2]), token_at_commit=0,
                             observed_token=0, amount=1, observed_rest=2)

    def test_clean_steal_accepted_and_counted(self):
        monitor = self._monitor()
        monitor.on_steal(kind="intra", victim=(0, 0), thief=(0, 1),
                         verts=np.array([1, 2]), token_at_commit=3,
                         observed_token=3, amount=2, observed_rest=4)
        assert monitor.steal_events == 1


class TestInvariantViolationType:
    def test_is_simulation_error(self):
        # Callers catching SimulationError (the engine's own failure
        # type) must also see monitor violations.
        assert issubclass(InvariantViolation, SimulationError)


class TestCaseIntegration:
    @pytest.mark.parametrize("seed", [0, 3, 4])
    def test_stress_cases_pass_with_per_step_sweep(self, seed):
        case = case_from_seed(seed, stress=True)
        monitor = InvariantMonitor(check_every=1)
        run_diggerbees(case.build_graph(), case.root,
                       config=case.build_config(), check_invariants=True,
                       instrument=monitor.attach)
        monitor.final_check()
        assert monitor.sweeps > 0
