"""The frontier-diff oracle rung: clean passes, corrupted engines caught."""

import numpy as np
import pytest

from repro.check.cases import case_from_seed
from repro.check.differential import check_case
from repro.errors import SimulationError


def _case_with_depth():
    """First fuzz seed whose graph has >= 2 BFS levels from the root,
    so a level corruption is actually observable."""
    from repro.graphs.properties import num_bfs_levels

    for seed in range(20):
        case = case_from_seed(seed)
        if num_bfs_levels(case.build_graph(), case.root) >= 2:
            return case
    raise AssertionError("no fuzz seed with a multi-level graph")


@pytest.mark.parametrize("seed", range(4))
def test_clean_cases_pass_with_frontier_rung(seed):
    assert check_case(case_from_seed(seed), frontier=True) is None


def test_level_corruption_is_caught(monkeypatch):
    import repro.core.frontier as frontier_mod

    case = _case_with_depth()
    real = frontier_mod.run_frontier

    def corrupted(graph, root, config=None):
        res = real(graph, root, config=config)
        deep = np.flatnonzero(res.level >= 1)
        res.level[deep[0]] += 1  # off-by-one on one reached vertex
        return res

    monkeypatch.setattr(frontier_mod, "run_frontier", corrupted)
    failure = check_case(case, frontier=True)
    assert failure is not None
    assert failure.stage == "frontier-diff"
    assert "bfs_levels" in failure.message
    assert failure.frontier
    assert "--frontier" in failure.repro_command
    assert f"repro {case.seed}" in failure.repro_command


def test_engine_error_is_caught(monkeypatch):
    import repro.core.frontier as frontier_mod

    def broken(graph, root, config=None):
        raise SimulationError("frontier engine exploded")

    monkeypatch.setattr(frontier_mod, "run_frontier", broken)
    failure = check_case(case_from_seed(0), frontier=True)
    assert failure is not None
    assert failure.stage == "frontier-diff"
    assert "SimulationError" in failure.message


def test_rung_is_opt_in(monkeypatch):
    # Without frontier=True the rung must not run at all — a broken
    # frontier engine cannot fail the default ladder.
    import repro.core.frontier as frontier_mod

    def broken(graph, root, config=None):
        raise SimulationError("must never be called")

    monkeypatch.setattr(frontier_mod, "run_frontier", broken)
    assert check_case(case_from_seed(0)) is None
