"""Mutation sanity suite: every injected protocol bug must be caught.

This is the test that tests the checker.  Each registered mutation is a
hand-written, realistic steal-protocol bug (lost CAS write-back, skipped
reservation validation, dropped fence, double-pop, ...); the stress
fuzzer must detect every one within a small case budget.  A mutation the
suite cannot catch is a blind spot in the oracle ladder — the test
fails, pointing at exactly which invariant is missing.
"""

import pytest

from repro.check.cli import MUTANT_CASE_BUDGET, run_mutant
from repro.check.differential import check_case
from repro.check.cases import case_from_seed
from repro.check.mutations import MUTATIONS, apply_mutation
from repro.core import inter_steal, intra_steal


def test_at_least_six_protocol_bugs_registered():
    assert len(MUTATIONS) >= 6


@pytest.mark.parametrize("name", sorted(MUTATIONS))
def test_mutation_is_caught(name):
    failure = run_mutant(name, budget=MUTANT_CASE_BUDGET)
    assert failure is not None, (
        f"injected bug {name!r} ({MUTATIONS[name].description}) survived "
        f"{MUTANT_CASE_BUDGET} stress cases — the checker has a blind spot; "
        f"expected detector: {MUTATIONS[name].expected_detector}"
    )
    # Acceptance criterion: every failure prints a one-line repro command.
    cmd = failure.repro_command
    assert cmd.startswith("python -m repro.check repro ")
    assert f"--mutation {name}" in cmd


@pytest.mark.parametrize("name", ["intra_skip_cas_validation",
                                  "inter_skip_cas_validation"])
def test_skip_cas_bugs_fail_at_the_monitor_stage(name):
    """The skipped-reservation bugs move well-formed entries, so only
    the monitor's CAS-linearizability hook can see them; they must be
    reported by the invariants stage with a linearizability message."""
    failure = run_mutant(name)
    assert failure is not None
    assert failure.stage == "invariants"
    assert "linearizability" in failure.message


def test_mutation_context_restores_protocol():
    intra_orig = intra_steal.execute_steal
    inter_orig = inter_steal.execute_steal
    with apply_mutation("intra_lost_cas_writeback"):
        assert intra_steal.execute_steal is not intra_orig
    assert intra_steal.execute_steal is intra_orig
    with apply_mutation("inter_skip_cas_validation"):
        assert inter_steal.execute_steal is not inter_orig
    assert inter_steal.execute_steal is inter_orig
    # And a clean case still passes after all that patching.
    assert check_case(case_from_seed(0, stress=True), stress=True) is None


def test_apply_unknown_mutation_raises():
    with pytest.raises(KeyError, match="unknown mutation"):
        with apply_mutation("not_a_bug"):
            pass


def test_apply_none_is_noop():
    with apply_mutation(None):
        pass
