"""The --serve oracle rung wired through the check CLI and ladder."""

import pytest

from repro.check.cases import case_from_seed
from repro.check.cli import build_parser, run_mutant
from repro.check.differential import check_case


def test_check_case_serve_passes_on_healthy_engine():
    assert check_case(case_from_seed(0), serve=True) is None


def test_serve_failure_carries_flag_into_repro_command(monkeypatch):
    from repro.check import serve_oracle as oracle_mod

    real = oracle_mod.ServeOracle.query_dfs

    def corrupting(self, graph, root, overrides=None, **kwargs):
        result, cached = real(self, graph, root, overrides, **kwargs)
        bad = dict(result)
        bad["steps"] = bad.get("steps", 0) + 1
        return bad, cached

    monkeypatch.setattr(oracle_mod.ServeOracle, "query_dfs", corrupting)
    failure = check_case(case_from_seed(4), serve=True)
    assert failure is not None
    assert failure.stage == "serve-diff" and failure.serve
    assert "--serve" in failure.repro_command
    assert "steps" in failure.message


@pytest.mark.parametrize("sub", ["fuzz", "repro", "mutants"])
def test_cli_parses_serve_flag(sub):
    parser = build_parser()
    extra = ["3"] if sub == "repro" else []
    args = parser.parse_args([sub, *extra, "--serve"])
    assert args.serve is True
    args = parser.parse_args([sub, *extra])
    assert args.serve is False


def test_cmd_repro_serve_exit_codes(capsys):
    from repro.check.cli import main

    assert main(["repro", "3", "--serve"]) == 0
    out = capsys.readouterr().out
    assert "PASS" in out


def test_run_mutant_detected_through_serve_path():
    failure = run_mutant("claim_lost_store", budget=4, serve=True)
    assert failure is not None
    # The bug is caught by whichever rung fires first; the serve rung's
    # job here is transport fidelity, and the flag must survive into the
    # reproduction command either way.
    assert "--serve" in failure.repro_command
    assert "--mutation claim_lost_store" in failure.repro_command
