"""The shard-diff oracle rung (5f): clean passes, corrupted merges caught."""

import numpy as np
import pytest

from repro.check.cases import case_from_seed
from repro.check.differential import check_case
from repro.errors import SimulationError


@pytest.mark.parametrize("seed", range(4))
def test_clean_cases_pass_with_shard_rung(seed):
    assert check_case(case_from_seed(seed), shard=True) is None


def test_visited_corruption_is_caught(monkeypatch):
    import repro.core.shard as shard_mod

    case = case_from_seed(0)
    real = shard_mod.run_sharded

    def corrupted(graph, root, **kwargs):
        from repro.validate.reference import UNVISITED_PARENT

        res = real(graph, root, **kwargs)
        visited = res.traversal.visited.copy()
        parent = res.traversal.parent.copy()
        drop = int(np.flatnonzero(visited)[-1])  # drop one vertex
        visited[drop] = False
        parent[drop] = UNVISITED_PARENT  # keep the traversal well-formed
        object.__setattr__(res.traversal, "visited", visited)
        object.__setattr__(res.traversal, "parent", parent)
        return res

    monkeypatch.setattr(shard_mod, "run_sharded", corrupted)
    failure = check_case(case, shard=True)
    assert failure is not None
    assert failure.stage == "shard-diff"
    assert "visited set" in failure.message  # caught by the rung's
    # validate_traversal (reachability) before the visited-diff compare
    assert failure.shard
    assert "--shard" in failure.repro_command
    assert f"repro {case.seed}" in failure.repro_command


def test_level_corruption_is_caught(monkeypatch):
    import repro.core.shard as shard_mod

    case = case_from_seed(0)
    real = shard_mod.run_sharded

    def corrupted(graph, root, **kwargs):
        res = real(graph, root, **kwargs)
        levels = res.levels.copy()
        deep = np.flatnonzero(levels >= 1)
        if deep.size:
            levels[deep[-1]] += 1
            object.__setattr__(res, "levels", levels)
        return res

    monkeypatch.setattr(shard_mod, "run_sharded", corrupted)
    failure = check_case(case, shard=True)
    assert failure is not None
    assert failure.stage == "shard-diff"
    assert "bfs_levels" in failure.message


def test_engine_error_is_caught(monkeypatch):
    import repro.core.shard as shard_mod

    def broken(graph, root, **kwargs):
        raise SimulationError("shard tier exploded")

    monkeypatch.setattr(shard_mod, "run_sharded", broken)
    failure = check_case(case_from_seed(0), shard=True)
    assert failure is not None
    assert failure.stage == "shard-diff"
    assert "SimulationError" in failure.message


def test_rung_is_opt_in(monkeypatch):
    # Without shard=True the rung must not run at all — a broken shard
    # tier cannot fail the default ladder.
    import repro.core.shard as shard_mod

    def broken(graph, root, **kwargs):
        raise SimulationError("must never be called")

    monkeypatch.setattr(shard_mod, "run_sharded", broken)
    assert check_case(case_from_seed(0)) is None
