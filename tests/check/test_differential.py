"""Tests for the differential oracle ladder and fuzz-case generation."""

import pytest

from repro.check.cases import FAMILIES, FuzzCase, case_from_seed
from repro.check.differential import (
    case_from_json,
    case_to_json,
    check_case,
)


class TestCaseGeneration:
    def test_seed_determinism(self):
        for seed in range(30):
            assert case_from_seed(seed) == case_from_seed(seed)
            assert (case_from_seed(seed, stress=True)
                    == case_from_seed(seed, stress=True))

    @pytest.mark.parametrize("stress", [False, True])
    def test_every_seed_yields_a_buildable_case(self, stress):
        """Config validation and graph construction must never reject a
        generated case — an invalid case would crash the fuzz loop
        instead of testing the protocol."""
        for seed in range(60):
            case = case_from_seed(seed, stress=stress)
            case.build_config()  # raises SimulationError if inconsistent
            if seed < 20:
                g = case.build_graph()
                assert g.n_vertices >= 4

    def test_seed_space_covers_families_and_modes(self):
        cases = [case_from_seed(s) for s in range(120)]
        assert {c.family for c in cases} == set(FAMILIES)
        assert any(c.perturb_seed is not None for c in cases)
        assert any(c.perturb_seed is None for c in cases)
        assert any(c.adversarial_victims for c in cases)
        assert any(not c.two_level for c in cases)
        assert any(c.n_gpus > 1 for c in cases)

    def test_json_roundtrip(self):
        case = case_from_seed(17, stress=True).with_(shrunk_from=17)
        assert case_from_json(case_to_json(case)) == case

    def test_describe_mentions_key_parameters(self):
        case = case_from_seed(4, stress=True)
        desc = case.describe()
        assert f"seed={case.seed}" in desc
        assert case.family in desc


class TestOracleLadder:
    @pytest.mark.parametrize("seed", range(6))
    def test_clean_seeds_pass(self, seed):
        assert check_case(case_from_seed(seed)) is None

    @pytest.mark.parametrize("seed", range(4))
    def test_clean_stress_seeds_pass(self, seed):
        assert check_case(case_from_seed(seed, stress=True),
                          stress=True) is None

    def test_failure_report_and_repro_command(self):
        case = case_from_seed(0, stress=True)
        failure = check_case(case, mutation="flush_publish_drop",
                             stress=True)
        assert failure is not None
        assert failure.stage == "invariants"
        cmd = failure.repro_command
        assert cmd == ("python -m repro.check repro 0 "
                       "--stress --mutation flush_publish_drop")
        report = failure.report()
        assert "FAIL [invariants]" in report
        assert cmd in report

    def test_repro_command_replays_identically(self):
        """The command the fuzzer prints must rebuild the exact case and
        hit the same failure stage."""
        original = check_case(case_from_seed(0, stress=True),
                              mutation="refill_double_pop", stress=True)
        replay = check_case(case_from_seed(0, stress=True),
                            mutation="refill_double_pop", stress=True)
        assert original is not None and replay is not None
        assert replay.stage == original.stage
        assert replay.message == original.message

    def test_shrunk_case_repro_uses_json_spec(self):
        case = case_from_seed(0, stress=True).with_(shrunk_from=0)
        failure = check_case(case, mutation="flush_publish_drop",
                             stress=True)
        assert failure is not None
        assert "--case '" in failure.repro_command
        # The embedded spec must round-trip to the same case.
        spec = failure.repro_command.split("--case '")[1].split("'")[0]
        assert case_from_json(spec) == case
