"""The swarm-diff oracle rung: clean passes, corrupted engines caught."""

import numpy as np
import pytest

from repro.check.cases import case_from_seed
from repro.check.differential import check_case
from repro.errors import SimulationError


def _case_with_depth():
    """First fuzz seed whose graph has >= 2 BFS levels from the root,
    so a level corruption is actually observable."""
    from repro.graphs.properties import num_bfs_levels

    for seed in range(20):
        case = case_from_seed(seed)
        if num_bfs_levels(case.build_graph(), case.root) >= 2:
            return case
    raise AssertionError("no fuzz seed with a multi-level graph")


@pytest.mark.parametrize("seed", range(4))
def test_clean_cases_pass_with_swarm_rung(seed):
    assert check_case(case_from_seed(seed), swarm=True) is None


def test_lane_parent_corruption_is_caught(monkeypatch):
    import repro.core.swarm as swarm_mod

    case = _case_with_depth()
    real = swarm_mod.run_swarm

    def corrupted(graph, roots, config=None):
        results = real(graph, roots, config=config)
        res = results[0]
        deep = np.flatnonzero(res.level >= 1)
        res.traversal.parent[deep[0]] = deep[0]  # bogus self-parent
        return results

    monkeypatch.setattr(swarm_mod, "run_swarm", corrupted)
    failure = check_case(case, swarm=True)
    assert failure is not None
    assert failure.stage == "swarm-diff"
    assert failure.swarm
    assert "--swarm" in failure.repro_command
    assert f"repro {case.seed}" in failure.repro_command


def test_duplicate_lane_divergence_is_caught(monkeypatch):
    # The rung pins *every* case-root lane, so corruption that only
    # touches the trailing duplicate lane (the cross-lane leakage
    # signature) must be caught too.
    import repro.core.swarm as swarm_mod

    case = _case_with_depth()
    real = swarm_mod.run_swarm

    def corrupted(graph, roots, config=None):
        results = real(graph, roots, config=config)
        res = results[-1]
        deep = np.flatnonzero(res.level >= 1)
        res.level[deep[0]] += 1  # off-by-one on one reached vertex
        return results

    monkeypatch.setattr(swarm_mod, "run_swarm", corrupted)
    failure = check_case(case, swarm=True)
    assert failure is not None
    assert failure.stage == "swarm-diff"
    assert "lane 2" in failure.message


def test_profile_divergence_is_caught(monkeypatch):
    import repro.core.swarm as swarm_mod

    case = _case_with_depth()
    real = swarm_mod.run_swarm

    def corrupted(graph, roots, config=None):
        import dataclasses

        results = real(graph, roots, config=config)
        # Analytics drift with all arrays intact.
        results[0] = dataclasses.replace(
            results[0], edges_scanned=results[0].edges_scanned + 1)
        return results

    monkeypatch.setattr(swarm_mod, "run_swarm", corrupted)
    failure = check_case(case, swarm=True)
    assert failure is not None
    assert failure.stage == "swarm-diff"
    assert "profile" in failure.message


def test_engine_error_is_caught(monkeypatch):
    import repro.core.swarm as swarm_mod

    def broken(graph, roots, config=None):
        raise SimulationError("swarm engine exploded")

    monkeypatch.setattr(swarm_mod, "run_swarm", broken)
    failure = check_case(case_from_seed(0), swarm=True)
    assert failure is not None
    assert failure.stage == "swarm-diff"
    assert "SimulationError" in failure.message


def test_rung_is_opt_in(monkeypatch):
    # Without swarm=True the rung must not run at all — a broken swarm
    # engine cannot fail the default ladder.
    import repro.core.swarm as swarm_mod

    def broken(graph, roots, config=None):
        raise SimulationError("must never be called")

    monkeypatch.setattr(swarm_mod, "run_swarm", broken)
    assert check_case(case_from_seed(0)) is None
