"""Failure-path coverage for the shared-memory graph hand-off.

``repro.graphs.shm`` is best-effort by design: where POSIX shared
memory is unavailable (permissions, exotic platforms, sandboxes) the
harness falls back to pickling graphs into worker tasks.  These tests
pin down the three failure contracts: a partial export leaks nothing, a
dangling spec fails loudly on attach, and the harness fan-out survives
an export failure with byte-identical results.
"""

from multiprocessing import shared_memory

import pytest

from repro.bench.harness import BenchConfig, run_graph
from repro.graphs import generators as gen
from repro.graphs import shm as shm_mod
from repro.graphs.shm import attach_csr, export_csr


@pytest.fixture
def graph():
    return gen.road_network(120, seed=5)


def test_export_attach_roundtrip(graph):
    handle = export_csr(graph)
    try:
        attached, handles = attach_csr(handle.spec)
        same_rp = (attached.row_ptr == graph.row_ptr).all()
        same_ci = (attached.column_idx == graph.column_idx).all()
        same_name = attached.name == graph.name
        # The attached arrays alias the mapped buffers: drop them before
        # closing the handles, or the mmap close raises BufferError.
        del attached
        for h in handles:
            h.close()
        assert same_rp and same_ci and same_name
    finally:
        handle.close()


def test_partial_export_failure_unlinks_created_segments(
        graph, monkeypatch):
    """If the second segment allocation fails, the first is unlinked —
    a failed export must not leak named segments."""
    created = []
    real = shared_memory.SharedMemory

    def flaky(*args, **kwargs):
        if kwargs.get("create") and created:
            raise OSError("shared memory exhausted (injected)")
        seg = real(*args, **kwargs)
        if kwargs.get("create"):
            created.append(seg.name)
        return seg

    monkeypatch.setattr("multiprocessing.shared_memory.SharedMemory", flaky)
    with pytest.raises(OSError, match="injected"):
        export_csr(graph)
    assert len(created) == 1
    monkeypatch.undo()
    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=created[0])


def test_attach_missing_segment_raises(graph):
    handle = export_csr(graph)
    spec = handle.spec
    handle.close()  # unlinks the names; the spec now dangles
    with pytest.raises(FileNotFoundError):
        attach_csr(spec)


def test_close_is_idempotent(graph):
    handle = export_csr(graph)
    handle.close()
    handle.close()  # second close is a no-op, not an error


def test_harness_pickle_fallback_matches_shm_results(graph, monkeypatch):
    """With export_csr broken, the parallel fan-out pickles graphs into
    the tasks and still produces the serial path's exact samples."""
    cfg = BenchConfig(n_roots=3)
    serial = run_graph(["DiggerBees"], graph, cfg, jobs=1)

    def broken(_graph):
        raise OSError("no shared memory here (injected)")

    monkeypatch.setattr(shm_mod, "export_csr", broken)
    fallback = run_graph(["DiggerBees"], graph, cfg, jobs=2)
    assert fallback == serial
    # The batched tier has its own wire-up path; it must fall back too.
    batched = run_graph(["DiggerBees"], graph, cfg, jobs=2, batch=2)
    assert batched == serial
