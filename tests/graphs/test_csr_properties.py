"""Hypothesis property tests for the CSR substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.csr import from_edges
from repro.utils.rng import make_rng


def random_graph(seed, n_max=80, directed=True):
    rng = make_rng(seed)
    n = int(rng.integers(1, n_max))
    m = int(rng.integers(0, 3 * n))
    edges = rng.integers(0, n, size=(m, 2))
    return n, edges


@given(seed=st.integers(0, 10**6))
@settings(max_examples=60)
def test_degree_sum_equals_edges(seed):
    n, edges = random_graph(seed)
    g = from_edges(n, edges, directed=True)
    assert int(g.degree().sum()) == g.n_edges


@given(seed=st.integers(0, 10**6))
@settings(max_examples=60)
def test_edge_array_roundtrip(seed):
    """from_edges(edge_array()) reproduces the graph exactly."""
    n, edges = random_graph(seed)
    g = from_edges(n, edges, directed=True, dedupe=True)
    g2 = from_edges(n, g.edge_array(), directed=True)
    assert np.array_equal(g.row_ptr, g2.row_ptr)
    assert np.array_equal(g.column_idx, g2.column_idx)


@given(seed=st.integers(0, 10**6))
@settings(max_examples=40)
def test_symmetrize_is_idempotent_and_symmetric(seed):
    n, edges = random_graph(seed)
    g = from_edges(n, edges, directed=True)
    s1 = g.symmetrize()
    s2 = s1.symmetrize()
    assert s1.is_symmetric()
    assert np.array_equal(s1.row_ptr, s2.row_ptr)
    assert np.array_equal(s1.column_idx, s2.column_idx)


@given(seed=st.integers(0, 10**6))
@settings(max_examples=40)
def test_permute_preserves_structure(seed):
    n, edges = random_graph(seed)
    g = from_edges(n, edges, directed=True, dedupe=True)
    rng = make_rng(seed + 1)
    perm = rng.permutation(n).astype(np.int64)
    p = g.permute(perm)
    assert p.n_edges == g.n_edges
    # Degree multiset preserved.
    assert sorted(g.degree().tolist()) == sorted(p.degree().tolist())
    # Each original edge exists remapped.
    for u, v in list(g.iter_edges())[:25]:
        assert p.has_edge(int(perm[u]), int(perm[v]))


@given(seed=st.integers(0, 10**6))
@settings(max_examples=40)
def test_reverse_preserves_degree_totals(seed):
    n, edges = random_graph(seed)
    g = from_edges(n, edges, directed=True, dedupe=True)
    r = g.reverse()
    assert r.n_edges == g.n_edges
    # In-degree of g == out-degree of r.
    indeg = np.bincount(g.column_idx, minlength=n)
    assert np.array_equal(indeg, r.degree())


@given(seed=st.integers(0, 10**6))
@settings(max_examples=40)
def test_mtx_roundtrip_random_graphs(seed):
    import io

    from repro.graphs.io import read_matrix_market, write_matrix_market

    n, edges = random_graph(seed)
    g = from_edges(n, edges, directed=True, dedupe=True,
                   drop_self_loops=True)
    buf = io.StringIO()
    write_matrix_market(g, buf)
    buf.seek(0)
    back = read_matrix_market(buf)
    assert np.array_equal(back.row_ptr, g.row_ptr)
    assert np.array_equal(back.column_idx, g.column_idx)
