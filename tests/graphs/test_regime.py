"""Regime classification boundaries and the crossover-sweep generators."""

import math

import numpy as np
import pytest

from repro.graphs import generators as gen
from repro.graphs.properties import (
    bfs_levels,
    classify_regime,
    num_bfs_levels,
    regime,
)


class TestClassifyRegime:
    def test_boundaries(self):
        n = 10_000
        deep_floor = math.ceil(1.2 * math.sqrt(n))
        shallow_ceil = math.floor(2.5 * math.log2(n))
        assert classify_regime(n, deep_floor) == "deep"
        assert classify_regime(n, deep_floor - 1) == "mid"
        assert classify_regime(n, shallow_ceil) == "shallow"
        assert classify_regime(n, shallow_ceil + 1) == "mid"

    def test_known_shapes(self):
        # A path needs ~n levels, a star needs 2.
        assert classify_regime(4096, 4096) == "deep"
        assert classify_regime(4096, 2) == "shallow"

    def test_tiny_n_clamped(self):
        # n is clamped to >= 2 so log2 stays defined.
        assert classify_regime(0, 1) in ("deep", "shallow", "mid")
        assert classify_regime(1, 0) == "shallow"


class TestRegimeOnGenerators:
    @pytest.mark.parametrize("build,expected", [
        (lambda: gen.path_graph(2000), "deep"),
        (lambda: gen.star_graph(2000), "shallow"),
        (lambda: gen.star_mesh(40, leaves_per_hub=19, seed=1), "shallow"),
        (lambda: gen.wide_layers(500, 4, seed=2), "shallow"),
        (lambda: gen.grid2d(45, 45), "deep"),
    ])
    def test_flagship_regimes(self, build, expected):
        assert regime(build(), 0) == expected

    def test_regime_agrees_with_level_count(self):
        g = gen.road_network(n_vertices=900, seed=4)
        assert regime(g, 0) == classify_regime(g.n_vertices,
                                               num_bfs_levels(g, 0))


class TestStarMesh:
    def test_shape_and_connectivity(self):
        g = gen.star_mesh(12, leaves_per_hub=9, seed=8)
        assert g.n_vertices == 12 * (1 + 9)
        lv = bfs_levels(g, 0)
        assert (lv >= 0).all()
        assert g.meta["family"] == "star_mesh"
        # Leaves are pendant: degree exactly 1.
        deg = g.degree()
        assert (deg[12:] == 1).all()

    def test_shallow_by_construction(self):
        g = gen.star_mesh(50, leaves_per_hub=19, seed=3)
        # Hub core is small-diameter; leaves add one hop.
        assert num_bfs_levels(g, 0) <= 2 + math.ceil(math.log2(50)) + 1

    def test_validation(self):
        with pytest.raises(Exception):
            gen.star_mesh(1)
        with pytest.raises(Exception):
            gen.star_mesh(4, leaves_per_hub=-1)

    def test_deterministic_per_seed(self):
        a = gen.star_mesh(10, leaves_per_hub=5, seed=7)
        b = gen.star_mesh(10, leaves_per_hub=5, seed=7)
        assert np.array_equal(a.row_ptr, b.row_ptr)
        assert np.array_equal(a.column_idx, b.column_idx)


class TestWideLayers:
    def test_shape_and_exact_levels(self):
        width, depth = 60, 5
        g = gen.wide_layers(width, depth, seed=9)
        assert g.n_vertices == 1 + width * depth
        lv = bfs_levels(g, 0)
        assert (lv >= 0).all()
        # BFS from the root sees exactly `depth` full-width frontiers.
        assert num_bfs_levels(g, 0) == depth + 1
        for layer in range(depth):
            sl = lv[1 + layer * width: 1 + (layer + 1) * width]
            assert (sl == layer + 1).all()

    def test_depth_moves_the_regime(self):
        assert regime(gen.wide_layers(500, 4, seed=2), 0) == "shallow"
        assert regime(gen.wide_layers(8, 250, seed=2), 0) == "deep"

    def test_validation(self):
        with pytest.raises(Exception):
            gen.wide_layers(0, 4)
        with pytest.raises(Exception):
            gen.wide_layers(4, 0)
        with pytest.raises(Exception):
            gen.wide_layers(4, 4, fanout=0)

    def test_deterministic_per_seed(self):
        a = gen.wide_layers(20, 3, seed=11)
        b = gen.wide_layers(20, 3, seed=11)
        assert np.array_equal(a.column_idx, b.column_idx)
        assert a.meta["family"] == "wide_layers"
