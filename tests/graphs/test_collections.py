"""Unit tests for the named corpus (Table 3/4 stand-ins)."""

import numpy as np
import pytest

from repro.errors import GraphConstructionError
from repro.graphs import collections as col
from repro.graphs.properties import connected_components, profile_graph


class TestRepresentative:
    def test_twelve_graphs(self):
        assert len(col.REPRESENTATIVE_NAMES) == 12

    def test_breakdown_subset(self):
        assert set(col.BREAKDOWN_NAMES) <= set(col.REPRESENTATIVE_NAMES)
        assert len(col.BREAKDOWN_NAMES) == 6

    def test_load_unknown(self):
        with pytest.raises(GraphConstructionError):
            col.load("nonexistent")

    def test_load_caches(self):
        a = col.load("amazon")
        b = col.load("amazon")
        assert a is b

    def test_clear_cache(self):
        a = col.load("amazon")
        col.clear_cache()
        b = col.load("amazon")
        assert a is not b
        assert np.array_equal(a.column_idx, b.column_idx)  # still deterministic

    def test_all_connected(self):
        for g in col.representative_graphs():
            comp = connected_components(g)
            assert int(comp.max()) == 0, f"{g.name} is disconnected"

    def test_groups_cover_three_collections(self):
        groups = {s.group for s in col.REPRESENTATIVE_SPECS}
        assert groups == {"dimacs10", "snap", "law"}

    def test_deep_graphs_are_deep(self):
        """The regime axis of the paper's evaluation must hold."""
        for name in ("euro_osm", "hugebubbles", "il2010"):
            p = profile_graph(col.load(name))
            assert p.regime == "deep", f"{name} measured {p.regime}"

    def test_shallow_graphs_are_shallow(self):
        for name in ("ljournal", "google", "wiki", "hollywood"):
            p = profile_graph(col.load(name))
            assert p.regime == "shallow", f"{name} measured {p.regime}"

    def test_social_graphs_heavy_tailed(self):
        for name in ("ljournal", "wiki", "hollywood"):
            p = profile_graph(col.load(name))
            assert p.heavy_tail, f"{name} lacks a heavy tail"

    def test_scale_grows_graphs(self):
        small = col.load("amazon", scale=1)
        big = col.load("amazon", scale=2)
        assert big.n_vertices > 1.5 * small.n_vertices


class TestCorpus:
    def test_build_corpus_sorted_by_edges(self):
        corpus = col.build_corpus(sizes=[200, 600])
        edges = [g.n_edges for g in corpus]
        assert edges == sorted(edges)

    def test_corpus_spans_groups(self):
        corpus = col.build_corpus(sizes=[300])
        groups = {g.meta["group"] for g in corpus}
        assert groups == {"dimacs10", "snap", "law"}

    def test_corpus_deterministic(self):
        a = col.build_corpus(sizes=[300])
        b = col.build_corpus(sizes=[300])
        assert [g.name for g in a] == [g.name for g in b]
        assert all(np.array_equal(x.column_idx, y.column_idx)
                   for x, y in zip(a, b))

    def test_corpus_names_unique(self):
        corpus = col.build_corpus(sizes=[200, 600])
        names = [g.name for g in corpus]
        assert len(names) == len(set(names))
