"""Tests for the corpus disk cache (`repro.graphs.diskcache`).

The contract under test: a cache hit is bit-for-bit equivalent to a
rebuild (same CSR arrays, same re-applied metadata, same roots), the
cache can be disabled via the environment, and corrupt entries are
discarded and rebuilt rather than crashing a sweep.
"""

import numpy as np
import pytest

from repro.bench.harness import BenchConfig, pick_roots
from repro.graphs import collections as col
from repro.graphs import diskcache, generators as gen


@pytest.fixture()
def cache_in_tmp(tmp_path, monkeypatch):
    """Point the disk cache at a fresh temp dir; clear the memory cache."""
    monkeypatch.setenv(diskcache.ENV_VAR, str(tmp_path))
    col.clear_cache()
    yield tmp_path
    col.clear_cache()


@pytest.fixture()
def cache_disabled(monkeypatch):
    monkeypatch.setenv(diskcache.ENV_VAR, "0")
    col.clear_cache()
    yield
    col.clear_cache()


def _same_graph(a, b):
    return (np.array_equal(a.row_ptr, b.row_ptr)
            and np.array_equal(a.column_idx, b.column_idx)
            and a.name == b.name
            and a.directed == b.directed)


class TestCachePath:
    def test_deterministic(self, cache_in_tmp):
        p1 = diskcache.cache_path("corpus", "g", {"scale": 1}, 7)
        p2 = diskcache.cache_path("corpus", "g", {"scale": 1}, 7)
        assert p1 == p2

    def test_key_sensitivity(self, cache_in_tmp):
        base = diskcache.cache_path("corpus", "g", {"scale": 1}, 7)
        assert base != diskcache.cache_path("corpus", "g", {"scale": 2}, 7)
        assert base != diskcache.cache_path("corpus", "g", {"scale": 1}, 8)
        assert base != diskcache.cache_path("sweep", "g", {"scale": 1}, 7)

    def test_disabled_returns_none(self, cache_disabled):
        assert diskcache.cache_dir() is None
        assert diskcache.cache_path("corpus", "g", {}, 7) is None


class TestCachedBuild:
    def test_hit_equivalent_to_rebuild(self, cache_in_tmp):
        calls = []

        def build():
            calls.append(1)
            return gen.road_network(150, seed=13)

        first = diskcache.cached_build("t", "road", {"n": 150}, 13, build)
        second = diskcache.cached_build("t", "road", {"n": 150}, 13, build)
        assert len(calls) == 1  # second call served from disk
        assert np.array_equal(first.row_ptr, second.row_ptr)
        assert np.array_equal(first.column_idx, second.column_idx)

    def test_corrupt_entry_rebuilt(self, cache_in_tmp):
        build = lambda: gen.road_network(120, seed=5)
        g = diskcache.cached_build("t", "c", {}, 5, build)
        path = diskcache.cache_path("t", "c", {}, 5)
        assert path.exists()
        path.write_bytes(b"not an npz file")
        again = diskcache.cached_build("t", "c", {}, 5, build)
        assert np.array_equal(g.column_idx, again.column_idx)
        # The rebuild replaced the corrupt entry with a readable one.
        third = diskcache.cached_build("t", "c", {}, 5, lambda: 1 / 0)
        assert np.array_equal(g.column_idx, third.column_idx)

    def test_disabled_always_builds(self, cache_disabled):
        calls = []

        def build():
            calls.append(1)
            return gen.road_network(100, seed=2)

        diskcache.cached_build("t", "d", {}, 2, build)
        diskcache.cached_build("t", "d", {}, 2, build)
        assert len(calls) == 2

    def test_clear_disk_cache(self, cache_in_tmp):
        diskcache.cached_build("t", "x", {}, 1,
                               lambda: gen.road_network(90, seed=1))
        assert diskcache.clear_disk_cache() == 1
        assert not list(cache_in_tmp.glob("*.npz"))


class TestCorpusIntegration:
    def test_named_graph_hit_equivalence(self, cache_in_tmp):
        spec = col.REPRESENTATIVE_SPECS[5]  # citation — cheap to build
        cold = spec.build()
        col.clear_cache()
        warm = spec.build()  # disk hit; metadata re-applied by GraphSpec
        assert _same_graph(cold, warm)
        assert warm.meta.get("group") == spec.group

    def test_sweep_corpus_hit_equivalence_and_roots(self, cache_in_tmp):
        cold = col.build_corpus(sizes=[120])
        warm = col.build_corpus(sizes=[120])
        assert len(cold) == len(warm)
        cfg = BenchConfig(n_roots=2, seed=3)
        for a, b in zip(cold, warm):
            assert _same_graph(a, b)
            # Root picking derives from graph.name — identical on a hit.
            assert pick_roots(a, cfg) == pick_roots(b, cfg)
