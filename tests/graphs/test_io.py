"""Unit tests for graph I/O (Matrix Market, edge lists, npz)."""

import io

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graphs import generators as gen
from repro.graphs.io import (
    load_npz,
    read_edge_list,
    read_matrix_market,
    save_npz,
    write_edge_list,
    write_matrix_market,
)


MM_GENERAL = """%%MatrixMarket matrix coordinate pattern general
% a comment
3 3 3
1 2
2 3
3 1
"""

MM_SYMMETRIC = """%%MatrixMarket matrix coordinate real symmetric
3 3 2
2 1 1.5
3 2 -2.0
"""


class TestMatrixMarket:
    def test_read_general(self):
        g = read_matrix_market(io.StringIO(MM_GENERAL), name="tri")
        assert g.n_vertices == 3
        assert g.n_edges == 3
        assert g.directed
        assert g.has_edge(0, 1) and g.has_edge(1, 2) and g.has_edge(2, 0)

    def test_read_symmetric_expands(self):
        g = read_matrix_market(io.StringIO(MM_SYMMETRIC))
        assert not g.directed
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert g.n_edges == 4

    def test_roundtrip(self, small_road):
        buf = io.StringIO()
        write_matrix_market(small_road, buf)
        buf.seek(0)
        g = read_matrix_market(buf)
        assert g.n_vertices == small_road.n_vertices
        assert g.n_edges == small_road.n_edges
        assert np.array_equal(g.row_ptr, small_road.row_ptr)
        assert np.array_equal(g.column_idx, small_road.column_idx)

    def test_roundtrip_file(self, tmp_path, tiny_tree):
        path = tmp_path / "g.mtx"
        write_matrix_market(tiny_tree, str(path))
        g = read_matrix_market(str(path))
        assert g.n_edges == tiny_tree.n_edges

    @pytest.mark.parametrize("text,err", [
        ("not a header\n1 1 0\n", "not a MatrixMarket"),
        ("%%MatrixMarket matrix array real general\n1 1 0\n", "coordinate"),
        ("%%MatrixMarket matrix coordinate real hermitian\n1 1 0\n", "symmetry"),
        ("%%MatrixMarket matrix coordinate pattern general\n2 3 0\n", "square"),
        ("%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 2\n", "expected 2"),
        ("%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 2\n2 1\n", "more than"),
    ])
    def test_malformed_rejected(self, text, err):
        with pytest.raises(GraphFormatError, match=err):
            read_matrix_market(io.StringIO(text))


class TestEdgeList:
    def test_read_basic(self):
        g = read_edge_list(io.StringIO("# comment\n0 1\n1 2\n"), directed=True)
        assert g.n_vertices == 3
        assert g.n_edges == 2

    def test_read_undirected_symmetrizes(self):
        g = read_edge_list(io.StringIO("0 1\n"))
        assert g.has_edge(0, 1) and g.has_edge(1, 0)

    def test_explicit_vertex_count(self):
        g = read_edge_list(io.StringIO("0 1\n"), n_vertices=10, directed=True)
        assert g.n_vertices == 10

    def test_malformed_line(self):
        with pytest.raises(GraphFormatError):
            read_edge_list(io.StringIO("0\n"))

    def test_roundtrip(self, small_social):
        buf = io.StringIO()
        write_edge_list(small_social, buf)
        buf.seek(0)
        g = read_edge_list(buf, n_vertices=small_social.n_vertices)
        assert g.n_edges == small_social.n_edges


class TestNpz:
    def test_roundtrip(self, tmp_path, small_road):
        path = tmp_path / "g.npz"
        save_npz(small_road, path)
        g = load_npz(path)
        assert g.name == small_road.name
        assert g.directed == small_road.directed
        assert np.array_equal(g.row_ptr, small_road.row_ptr)
        assert np.array_equal(g.column_idx, small_road.column_idx)

    def test_missing_key(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, foo=np.array([1]))
        with pytest.raises(GraphFormatError):
            load_npz(path)
