"""Unit tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.errors import GraphConstructionError
from repro.graphs import generators as gen
from repro.graphs.properties import connected_components, num_bfs_levels


def n_components(g):
    return int(connected_components(g).max()) + 1


class TestElementary:
    def test_path(self):
        g = gen.path_graph(5)
        assert g.n_vertices == 5
        assert g.n_edges == 8
        assert num_bfs_levels(g, 0) == 5

    def test_path_single_vertex(self):
        g = gen.path_graph(1)
        assert g.n_vertices == 1
        assert g.n_edges == 0

    def test_cycle(self):
        g = gen.cycle_graph(6)
        assert g.n_edges == 12
        assert all(g.degree(v) == 2 for v in range(6))

    def test_cycle_too_small(self):
        with pytest.raises(GraphConstructionError):
            gen.cycle_graph(2)

    def test_star(self):
        g = gen.star_graph(10)
        assert g.degree(0) == 9
        assert all(g.degree(v) == 1 for v in range(1, 10))

    def test_complete(self):
        g = gen.complete_graph(5)
        assert g.n_edges == 20
        assert g.is_symmetric()

    def test_binary_tree(self):
        g = gen.binary_tree(3)
        assert g.n_vertices == 15
        assert num_bfs_levels(g, 0) == 4

    def test_binary_tree_depth_zero(self):
        g = gen.binary_tree(0)
        assert g.n_vertices == 1

    def test_grid(self):
        g = gen.grid2d(3, 4)
        assert g.n_vertices == 12
        assert num_bfs_levels(g, 0) == 3 + 4 - 1

    def test_grid_diagonal_adds_edges(self):
        plain = gen.grid2d(4, 4)
        diag = gen.grid2d(4, 4, diagonal=True)
        assert diag.n_edges > plain.n_edges

    def test_grid3d(self):
        g = gen.grid3d(3, 4, 5)
        assert g.n_vertices == 60
        # Interior degree 6, corner degree 3.
        assert g.degree().max() == 6
        assert g.degree().min() == 3
        assert num_bfs_levels(g, 0) == 3 + 4 + 5 - 2

    def test_grid3d_single_cell(self):
        g = gen.grid3d(1, 1, 1)
        assert g.n_vertices == 1 and g.n_edges == 0

    def test_grid3d_validates(self):
        with pytest.raises(GraphConstructionError):
            gen.grid3d(0, 2, 2)


class TestRandomFamilies:
    @pytest.mark.parametrize("builder,kwargs", [
        (gen.road_network, dict(n_vertices=500)),
        (gen.delaunay_mesh, dict(n_vertices=300)),
        (gen.random_geometric, dict(n_vertices=300)),
        (gen.preferential_attachment, dict(n_vertices=300, m=3)),
        (gen.small_world, dict(n_vertices=300, k=4)),
        (gen.web_copy_model, dict(n_vertices=300)),
        (gen.citation_graph, dict(n_vertices=300)),
        (gen.co_purchase, dict(n_vertices=300)),
    ])
    def test_connected_simple_symmetric(self, builder, kwargs):
        g = builder(seed=7, **kwargs)
        assert n_components(g) == 1, f"{g.name} disconnected"
        assert not g.has_self_loops()
        assert g.is_symmetric()

    @pytest.mark.parametrize("builder,kwargs", [
        (gen.road_network, dict(n_vertices=400)),
        (gen.preferential_attachment, dict(n_vertices=400, m=3)),
        (gen.rmat, dict(scale=8)),
        (gen.bubble_mesh, dict(n_bubbles=20, bubble_size=10)),
    ])
    def test_deterministic_under_seed(self, builder, kwargs):
        a = builder(seed=13, **kwargs)
        b = builder(seed=13, **kwargs)
        assert np.array_equal(a.row_ptr, b.row_ptr)
        assert np.array_equal(a.column_idx, b.column_idx)

    def test_different_seeds_differ(self):
        a = gen.road_network(400, seed=1)
        b = gen.road_network(400, seed=2)
        assert not (np.array_equal(a.row_ptr, b.row_ptr)
                    and np.array_equal(a.column_idx, b.column_idx))

    def test_road_is_deep(self):
        g = gen.road_network(2500, seed=5)
        assert num_bfs_levels(g, 0) > 1.2 * np.sqrt(g.n_vertices)

    def test_road_low_degree(self):
        g = gen.road_network(2000, seed=5)
        assert g.degree().mean() < 5

    def test_social_is_shallow(self):
        g = gen.preferential_attachment(2000, m=6, seed=5)
        assert num_bfs_levels(g, 0) <= 2.5 * np.log2(g.n_vertices)

    def test_social_heavy_tail(self):
        g = gen.preferential_attachment(2000, m=6, seed=5)
        deg = g.degree()
        assert deg.max() > 8 * deg.mean()

    def test_bubble_mesh_deep_and_connected(self):
        g = gen.bubble_mesh(100, 25, seed=5)
        assert n_components(g) == 1
        assert num_bfs_levels(g, 0) > np.sqrt(g.n_vertices)

    def test_rmat_size(self):
        g = gen.rmat(8, edge_factor=8, seed=3)
        assert g.n_vertices == 256
        assert g.n_edges > 256  # after dedupe/self-loop removal

    def test_rmat_directed_mode(self):
        g = gen.rmat(6, edge_factor=4, seed=3, symmetrize=False)
        assert g.directed

    def test_citation_dag_mode(self):
        g = gen.citation_graph(200, seed=3, symmetrize=False)
        assert g.directed
        # Every arc points to an earlier paper.
        for u, v in g.iter_edges():
            assert v < u

    def test_delaunay_planar_degree(self):
        g = gen.delaunay_mesh(500, seed=3)
        # Planar triangulation: average degree < 6 strictly (Euler).
        assert g.degree().mean() < 6.0

    def test_rgg_radius_override(self):
        small = gen.random_geometric(200, radius=0.05, seed=3)
        large = gen.random_geometric(200, radius=0.2, seed=3)
        assert large.n_edges > small.n_edges


class TestValidation:
    def test_bad_parameters_raise(self):
        with pytest.raises(GraphConstructionError):
            gen.road_network(1)
        with pytest.raises(GraphConstructionError):
            gen.preferential_attachment(5, m=10)
        with pytest.raises(GraphConstructionError):
            gen.small_world(100, k=4, rewire_p=1.5)
        with pytest.raises(GraphConstructionError):
            gen.rmat(0)
        with pytest.raises(GraphConstructionError):
            gen.binary_tree(-1)

    def test_backbone_connects(self):
        rng = np.random.default_rng(0)
        arcs = gen.random_spanning_backbone(50, rng, chain_bias=0.5)
        assert arcs.shape == (49, 2)
        # Every vertex > 0 appears as a child exactly once with parent < child.
        assert np.array_equal(np.sort(arcs[:, 1]), np.arange(1, 50))
        assert np.all(arcs[:, 0] < arcs[:, 1])

    def test_backbone_locality_window(self):
        rng = np.random.default_rng(0)
        arcs = gen.random_spanning_backbone(200, rng, chain_bias=0.0,
                                            locality_window=5)
        assert np.all(arcs[:, 1] - arcs[:, 0] <= 5)

    def test_backbone_empty(self):
        rng = np.random.default_rng(0)
        assert gen.random_spanning_backbone(1, rng).shape == (0, 2)
