"""Unit tests for the CSR graph substrate."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graphs.csr import CSRGraph, from_adjacency, from_edges


class TestConstruction:
    def test_from_edges_basic(self):
        g = from_edges(3, [(0, 1), (1, 2), (2, 0)], directed=True)
        assert g.n_vertices == 3
        assert g.n_edges == 3
        assert list(g.neighbors(0)) == [1]
        assert list(g.neighbors(2)) == [0]

    def test_from_edges_sorts_neighbors(self):
        g = from_edges(4, [(0, 3), (0, 1), (0, 2)], directed=True)
        assert list(g.neighbors(0)) == [1, 2, 3]

    def test_from_edges_unsorted_preserves_order(self):
        g = from_edges(4, [(0, 3), (0, 1), (0, 2)], directed=True,
                       sort_neighbors=False)
        assert list(g.neighbors(0)) == [3, 1, 2]

    def test_from_edges_dedupe(self):
        g = from_edges(3, [(0, 1), (0, 1), (1, 2)], directed=True, dedupe=True)
        assert g.n_edges == 2

    def test_from_edges_drop_self_loops(self):
        g = from_edges(3, [(0, 0), (0, 1)], directed=True, drop_self_loops=True)
        assert g.n_edges == 1
        assert not g.has_self_loops()

    def test_from_edges_keeps_self_loops_by_default(self):
        g = from_edges(3, [(0, 0), (0, 1)], directed=True)
        assert g.has_self_loops()

    def test_empty_graph(self):
        g = from_edges(0, [])
        assert g.n_vertices == 0
        assert g.n_edges == 0

    def test_vertices_without_edges(self):
        g = from_edges(5, [(0, 1)], directed=True)
        assert g.degree(3) == 0
        assert list(g.neighbors(3)) == []

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(GraphFormatError):
            from_edges(2, [(0, 5)])

    def test_negative_edge_rejected(self):
        with pytest.raises(GraphFormatError):
            from_edges(2, [(-1, 0)])

    def test_negative_n_rejected(self):
        with pytest.raises(GraphFormatError):
            from_edges(-1, [])

    def test_bad_shape_rejected(self):
        with pytest.raises(GraphFormatError):
            from_edges(3, np.array([[0, 1, 2]]))

    def test_from_adjacency(self):
        g = from_adjacency([[1, 2], [0], [0]])
        assert g.n_edges == 4
        assert list(g.neighbors(0)) == [1, 2]

    def test_direct_constructor_validation(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(np.array([1, 2]), np.array([0, 0]))  # row_ptr[0] != 0
        with pytest.raises(GraphFormatError):
            CSRGraph(np.array([0, 1]), np.array([0, 0]))  # length mismatch
        with pytest.raises(GraphFormatError):
            CSRGraph(np.array([0, 2, 1]), np.array([0]))  # decreasing

    def test_arrays_read_only(self):
        g = from_edges(2, [(0, 1)], directed=True)
        with pytest.raises(ValueError):
            g.row_ptr[0] = 5
        with pytest.raises(ValueError):
            g.column_idx[0] = 0


class TestAccessors:
    def test_degree_array(self):
        g = from_edges(3, [(0, 1), (0, 2), (1, 2)], directed=True)
        assert list(g.degree()) == [2, 1, 0]

    def test_degree_out_of_range(self):
        g = from_edges(2, [(0, 1)], directed=True)
        with pytest.raises(GraphFormatError):
            g.degree(5)

    def test_iter_edges(self):
        g = from_edges(3, [(0, 1), (1, 2)], directed=True)
        assert list(g.iter_edges()) == [(0, 1), (1, 2)]

    def test_edge_array_matches_iter(self):
        g = from_edges(4, [(0, 1), (0, 3), (2, 1)], directed=True)
        assert [tuple(e) for e in g.edge_array()] == list(g.iter_edges())

    def test_has_edge(self):
        g = from_edges(3, [(0, 1)], directed=True)
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 0)
        assert not g.has_edge(0, 2)

    def test_n_undirected_edges(self):
        g = from_edges(3, [(0, 1), (1, 0), (1, 2), (2, 1)])
        assert g.n_undirected_edges == 2

    def test_memory_bytes(self):
        g = from_edges(3, [(0, 1)], directed=True)
        assert g.memory_bytes() == (4 + 1) * 8


class TestTransforms:
    def test_symmetrize(self):
        g = from_edges(3, [(0, 1), (1, 2)], directed=True)
        s = g.symmetrize()
        assert s.is_symmetric()
        assert s.n_edges == 4

    def test_symmetrize_removes_self_loops(self):
        g = from_edges(2, [(0, 0), (0, 1)], directed=True)
        s = g.symmetrize()
        assert not s.has_self_loops()

    def test_reverse(self):
        g = from_edges(3, [(0, 1), (1, 2)], directed=True)
        r = g.reverse()
        assert r.has_edge(1, 0)
        assert r.has_edge(2, 1)
        assert not r.has_edge(0, 1)

    def test_reverse_twice_is_identity(self):
        g = from_edges(4, [(0, 1), (1, 2), (3, 0)], directed=True)
        rr = g.reverse().reverse()
        assert np.array_equal(rr.row_ptr, g.row_ptr)
        assert np.array_equal(rr.column_idx, g.column_idx)

    def test_permute(self):
        g = from_edges(3, [(0, 1), (1, 2)], directed=True)
        p = g.permute([2, 0, 1])  # old 0 -> new 2, old 1 -> new 0, old 2 -> new 1
        assert p.has_edge(2, 0)
        assert p.has_edge(0, 1)

    def test_permute_invalid(self):
        g = from_edges(3, [(0, 1)], directed=True)
        with pytest.raises(GraphFormatError):
            g.permute([0, 0, 1])

    def test_subgraph(self):
        g = from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)], directed=True)
        sub = g.subgraph([1, 2])
        assert sub.n_vertices == 2
        assert sub.has_edge(0, 1)  # old (1,2) relabelled
        assert sub.n_edges == 1

    def test_subgraph_duplicates_rejected(self):
        g = from_edges(3, [(0, 1)], directed=True)
        with pytest.raises(GraphFormatError):
            g.subgraph([1, 1])

    def test_sort_neighbors_idempotent(self):
        g = from_edges(4, [(0, 3), (0, 1)], directed=True, sort_neighbors=False)
        s = g.sort_neighbors()
        assert list(s.neighbors(0)) == [1, 3]
        assert s.meta.get("sorted_neighbors")

    def test_with_name(self):
        g = from_edges(2, [(0, 1)], directed=True)
        g2 = g.with_name("renamed", group="test")
        assert g2.name == "renamed"
        assert g2.meta["group"] == "test"
        assert g.name == ""  # original untouched
