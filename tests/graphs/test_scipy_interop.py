"""Tests for SciPy sparse-matrix interop."""

import numpy as np
import pytest
from scipy import sparse

from repro.errors import GraphFormatError
from repro.graphs import generators as gen
from repro.graphs.csr import CSRGraph


class TestToScipy:
    def test_roundtrip(self, small_road):
        mat = small_road.to_scipy()
        back = CSRGraph.from_scipy(mat, directed=small_road.directed)
        assert np.array_equal(back.row_ptr, small_road.row_ptr)
        assert np.array_equal(back.column_idx, small_road.column_idx)

    def test_shape_and_nnz(self, tiny_tree):
        mat = tiny_tree.to_scipy()
        assert mat.shape == (tiny_tree.n_vertices,) * 2
        assert mat.nnz == tiny_tree.n_edges

    def test_symmetric_graph_symmetric_matrix(self, small_road):
        mat = small_road.to_scipy()
        assert (mat != mat.T).nnz == 0


class TestFromScipy:
    def test_from_coo(self):
        coo = sparse.coo_matrix(
            (np.ones(3), ([0, 1, 2], [1, 2, 0])), shape=(3, 3))
        g = CSRGraph.from_scipy(coo, name="tri")
        assert g.has_edge(0, 1) and g.has_edge(2, 0)
        assert g.name == "tri"

    def test_rectangular_rejected(self):
        mat = sparse.csr_matrix(np.ones((2, 3)))
        with pytest.raises(GraphFormatError):
            CSRGraph.from_scipy(mat)

    def test_laplacian_structure(self):
        """Practical use: traverse the structure of a scipy-built grid."""
        from repro.validate import serial_dfs

        n = 5
        diags = sparse.diags([1, 1], [-1, 1], shape=(n, n))
        g = CSRGraph.from_scipy(diags.tocsr(), directed=False)
        r = serial_dfs(g, 0)
        assert r.n_visited == n
