"""The balanced k-way partitioner: round trips, determinism, quality.

The Hypothesis properties pin the :class:`PartitionedCSR` contract the
sharded tier leans on — every vertex lands in exactly one district,
every cut arc appears in exactly one halo table with a correct
receiving address, and internal + cut arcs conserve the stored arc
count — over arbitrary (directed, self-loopy, disconnected) graphs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphFormatError
from repro.graphs import generators as gen
from repro.graphs.csr import from_edges
from repro.graphs.partition import (
    partition_graph,
    partition_labels,
    partition_quality,
)
from repro.graphs.properties import profile_graph
from repro.utils.rng import make_rng


def random_graph(seed, n_max=60):
    rng = make_rng(seed)
    n = int(rng.integers(1, n_max))
    m = int(rng.integers(0, 4 * n))
    edges = rng.integers(0, n, size=(m, 2))
    directed = bool(rng.integers(0, 2))
    return from_edges(n, edges, directed=directed, dedupe=True)


# ----------------------------------------------------------------------
# Hypothesis round trips
# ----------------------------------------------------------------------
@given(seed=st.integers(0, 10**6), k=st.integers(1, 6))
@settings(max_examples=60)
def test_every_vertex_in_exactly_one_district(seed, k):
    g = random_graph(seed)
    part = partition_graph(g, k, seed=seed)
    seen = np.zeros(g.n_vertices, dtype=np.int64)
    for d in part.districts:
        seen[d.global_ids] += 1
        # Local ids round trip through the global map.
        assert np.array_equal(part.local_ids[d.global_ids],
                              np.arange(d.n_vertices))
    assert np.array_equal(seen, np.ones(g.n_vertices, dtype=np.int64))
    assert sum(d.n_vertices for d in part.districts) == g.n_vertices


@given(seed=st.integers(0, 10**6), k=st.integers(1, 6))
@settings(max_examples=60)
def test_every_cut_edge_in_exactly_one_halo_table(seed, k):
    g = random_graph(seed)
    part = partition_graph(g, k, seed=seed)
    labels = part.labels
    edges = g.edge_array()
    cut_mask = (labels[edges[:, 0]] != labels[edges[:, 1]]) \
        if edges.size else np.zeros(0, dtype=bool)
    expected = edges[cut_mask]
    halo = [np.column_stack([d.cut_src_global, d.cut_dst_global])
            for d in part.districts if d.n_cut_edges]
    halo = np.vstack(halo) if halo else np.empty((0, 2), dtype=np.int64)
    # Same multiset of (src, dst) arcs, each listed exactly once.
    order_e = np.lexsort((expected[:, 1], expected[:, 0]))
    order_h = np.lexsort((halo[:, 1], halo[:, 0]))
    assert np.array_equal(expected[order_e], halo[order_h])
    # Receiving addresses resolve to the destination vertex.
    for d in part.districts:
        assert np.array_equal(labels[d.cut_dst_global], d.cut_dst_district)
        assert np.array_equal(part.local_ids[d.cut_dst_global],
                              d.cut_dst_local)
        recv = [part.districts[int(dd)].global_ids[int(lo)]
                for dd, lo in zip(d.cut_dst_district, d.cut_dst_local)]
        assert np.array_equal(np.asarray(recv, dtype=np.int64),
                              d.cut_dst_global)


@given(seed=st.integers(0, 10**6), k=st.integers(1, 6))
@settings(max_examples=60)
def test_arc_conservation_and_invariant_checker(seed, k):
    g = random_graph(seed)
    part = partition_graph(g, k, seed=seed)
    part.check_invariants()  # raises on any structural violation
    internal = sum(d.subgraph.n_edges for d in part.districts)
    assert internal + part.n_cut_edges == g.n_edges


@given(seed=st.integers(0, 10**6), k=st.integers(1, 6))
@settings(max_examples=40)
def test_subgraph_arcs_are_the_induced_internal_arcs(seed, k):
    g = random_graph(seed)
    part = partition_graph(g, k, seed=seed)
    for d in part.districts:
        sub = d.subgraph
        src_l = np.repeat(np.arange(sub.n_vertices, dtype=np.int64),
                          np.diff(sub.row_ptr))
        src_g = d.global_ids[src_l]
        dst_g = d.global_ids[sub.column_idx]
        for u, v in zip(src_g[:50], dst_g[:50]):
            assert g.has_edge(int(u), int(v))
        assert np.all(part.labels[src_g] == d.index)
        assert np.all(part.labels[dst_g] == d.index)


@given(seed=st.integers(0, 10**6), k=st.integers(1, 6))
@settings(max_examples=40)
def test_deterministic_under_seed(seed, k):
    g = random_graph(seed)
    a = partition_labels(g, k, seed=7)
    b = partition_labels(g, k, seed=7)
    assert np.array_equal(a, b)


# ----------------------------------------------------------------------
# Quality + API edges
# ----------------------------------------------------------------------
@pytest.mark.parametrize("build,k", [
    (lambda: gen.grid2d(40, 40), 4),
    (lambda: gen.delaunay_mesh(1500, seed=3), 4),
    (lambda: gen.road_network(1500, seed=3), 4),
    (lambda: gen.random_geometric(1500, seed=3), 8),
])
def test_mesh_like_quality(build, k):
    """On low-expansion families the partitioner must actually be good:
    small cut, near-perfect balance (the bench gate's quality bar)."""
    g = build()
    part = partition_graph(g, k, seed=7)
    assert part.edge_cut_fraction <= 0.25
    assert part.balance_factor <= 1.2
    assert part.quality()["district_sizes"] == \
        [d.n_vertices for d in part.districts]


def test_k1_is_the_whole_graph():
    g = gen.binary_tree(6)
    part = partition_graph(g, 1, seed=0)
    assert part.k == 1 and part.n_cut_edges == 0
    assert part.edge_cut_fraction == 0.0 and part.balance_factor == 1.0
    sub = part.districts[0].subgraph
    assert sub.n_edges == g.n_edges
    assert np.array_equal(sub.row_ptr, g.row_ptr)
    assert np.array_equal(sub.column_idx, g.column_idx)


def test_k_clamped_to_n_vertices():
    g = gen.path_graph(3)
    part = partition_graph(g, 8, seed=0)
    assert part.k <= 3
    part.check_invariants()


def test_k_below_one_rejected():
    with pytest.raises(GraphFormatError):
        partition_labels(gen.path_graph(4), 0)


def test_quality_rejects_bad_label_shape():
    g = gen.path_graph(5)
    with pytest.raises(GraphFormatError):
        partition_quality(g, np.zeros(3, dtype=np.int64))


def test_disconnected_components_all_covered():
    # Two far-apart cliques plus isolated vertices: seeds must spread
    # across components and the leftovers still get a district.
    edges = [(u, v) for u in range(5) for v in range(5) if u != v]
    edges += [(u + 8, v + 8) for u, v in edges]
    g = from_edges(16, edges, name="two-cliques")
    part = partition_graph(g, 4, seed=1)
    part.check_invariants()
    assert np.all(part.labels >= 0)
    assert part.balance_factor <= 2.0  # no district swallowed the graph


def test_profile_graph_surfaces_partition_quality():
    g = gen.grid2d(24, 24)
    prof = profile_graph(g, partition_k=4, partition_seed=7)
    expected = partition_quality(g, partition_labels(g, 4, seed=7))
    assert prof.partition_k == expected["k"]
    assert prof.edge_cut_fraction == expected["edge_cut_fraction"]
    assert prof.balance_factor == expected["balance_factor"]
    # Without the knob the fields stay None (no partition computed).
    bare = profile_graph(g)
    assert bare.partition_k is None
    assert bare.edge_cut_fraction is None and bare.balance_factor is None
