"""Unit tests for graph property analyzers."""

import numpy as np
import pytest

from repro.graphs import generators as gen
from repro.graphs.properties import (
    approximate_diameter,
    bfs_levels,
    connected_components,
    degree_statistics,
    largest_component,
    num_bfs_levels,
    profile_graph,
)


class TestBfsLevels:
    def test_path(self):
        g = gen.path_graph(5)
        assert list(bfs_levels(g, 0)) == [0, 1, 2, 3, 4]
        assert list(bfs_levels(g, 2)) == [2, 1, 0, 1, 2]

    def test_unreachable(self, disconnected_graph):
        lv = bfs_levels(disconnected_graph, 0)
        assert lv[3] == -1 and lv[4] == -1 and lv[5] == -1
        assert lv[1] == 1 and lv[2] == 1

    def test_single_vertex(self):
        g = gen.path_graph(1)
        assert list(bfs_levels(g, 0)) == [0]
        assert num_bfs_levels(g, 0) == 1

    def test_matches_networkx(self):
        nx = pytest.importorskip("networkx")
        g = gen.preferential_attachment(200, m=3, seed=9)
        G = nx.Graph(list(g.iter_edges()))
        expected = nx.single_source_shortest_path_length(G, 0)
        lv = bfs_levels(g, 0)
        for v, d in expected.items():
            assert lv[v] == d

    def test_star_levels(self):
        g = gen.star_graph(50)
        assert num_bfs_levels(g, 0) == 2
        assert num_bfs_levels(g, 1) == 3


class TestComponents:
    def test_connected(self, tiny_tree):
        comp = connected_components(tiny_tree)
        assert set(comp) == {0}

    def test_disconnected(self, disconnected_graph):
        comp = connected_components(disconnected_graph)
        assert comp[0] == comp[1] == comp[2]
        assert comp[3] == comp[4]
        assert comp[0] != comp[3]
        assert len(set(comp)) == 3  # triangle, edge, isolated vertex

    def test_largest_component(self, disconnected_graph):
        sub, verts = largest_component(disconnected_graph)
        assert sub.n_vertices == 3
        assert set(verts) == {0, 1, 2}


class TestDiameter:
    def test_path_diameter(self):
        g = gen.path_graph(30)
        assert approximate_diameter(g, seed=1) == 29

    def test_cycle_diameter(self):
        g = gen.cycle_graph(20)
        assert approximate_diameter(g, seed=1) == 10

    def test_lower_bound(self):
        g = gen.road_network(500, seed=1)
        # Double-sweep is a lower bound: at least the eccentricity from 0.
        assert approximate_diameter(g, seed=1) >= num_bfs_levels(g, 0) - 1


class TestDegreeStats:
    def test_regular(self):
        g = gen.cycle_graph(10)
        stats = degree_statistics(g)
        assert stats["min"] == stats["max"] == 2
        assert not stats["heavy_tail"]

    def test_heavy_tail_detection(self):
        g = gen.preferential_attachment(2000, m=5, seed=3)
        assert degree_statistics(g)["heavy_tail"]

    def test_empty(self):
        from repro.graphs.csr import from_edges

        g = from_edges(0, [])
        stats = degree_statistics(g)
        assert stats["mean"] == 0.0


class TestProfile:
    def test_profile_fields(self, small_road):
        p = profile_graph(small_road, seed=1)
        assert p.n_vertices == small_road.n_vertices
        assert p.n_edges == small_road.n_edges
        assert p.group == "dimacs10"
        assert p.regime in ("deep", "mid", "shallow")

    def test_regimes(self):
        deep = profile_graph(gen.path_graph(400))
        shallow = profile_graph(gen.star_graph(400))
        assert deep.regime == "deep"
        assert shallow.regime == "shallow"
