"""Unit tests for vertex-ordering transforms."""

import numpy as np
import pytest

from repro.graphs import generators as gen
from repro.graphs.properties import bfs_levels
from repro.graphs.transform import (
    ORDERINGS,
    apply_ordering,
    bfs_relabel,
    degree_relabel,
    random_relabel,
)
from repro.validate import serial_dfs


def edges_as_set(g):
    return set(map(tuple, g.edge_array().tolist()))


class TestRelabelCorrectness:
    @pytest.mark.parametrize("ordering", ORDERINGS)
    def test_isomorphism_preserved(self, small_road, ordering):
        g, perm = apply_ordering(small_road, ordering, seed=3)
        assert g.n_vertices == small_road.n_vertices
        assert g.n_edges == small_road.n_edges
        # perm maps old edges onto new edges exactly.
        remapped = {(perm[u], perm[v]) for u, v in small_road.iter_edges()}
        assert remapped == edges_as_set(g)

    @pytest.mark.parametrize("ordering", ORDERINGS)
    def test_traversal_still_valid(self, small_road, ordering):
        g, perm = apply_ordering(small_road, ordering, seed=3)
        r = serial_dfs(g, int(perm[0]))
        assert r.n_visited == small_road.n_vertices

    def test_unknown_ordering(self, tiny_path):
        with pytest.raises(ValueError):
            apply_ordering(tiny_path, "alphabetical")

    def test_natural_is_identity(self, tiny_path):
        g, perm = apply_ordering(tiny_path, "natural")
        assert g is tiny_path
        assert np.array_equal(perm, np.arange(10))


class TestSpecificOrders:
    def test_random_deterministic_by_seed(self, small_road):
        a, pa = random_relabel(small_road, seed=5)
        b, pb = random_relabel(small_road, seed=5)
        assert np.array_equal(pa, pb)
        c, pc = random_relabel(small_road, seed=6)
        assert not np.array_equal(pa, pc)

    def test_bfs_relabel_levels_monotone(self, small_road):
        g, perm = bfs_relabel(small_road, root=0)
        lv = bfs_levels(g, int(perm[0]))
        # New ids sorted by level: level array must be nondecreasing.
        assert np.all(np.diff(lv) >= 0)

    def test_degree_relabel_hubs_first(self, small_social):
        g, _ = degree_relabel(small_social)
        deg = g.degree()
        assert np.all(np.diff(deg) <= 0)

    def test_degree_ascending(self, small_social):
        g, _ = degree_relabel(small_social, descending=False)
        deg = g.degree()
        assert np.all(np.diff(deg) >= 0)

    def test_names_tagged(self, small_road):
        g, _ = random_relabel(small_road, seed=1)
        assert g.name.endswith("#rand")
