"""Unit tests for the reference serial DFS (paper Algorithm 1)."""

import numpy as np
import pytest

from repro.graphs import generators as gen
from repro.validate.reference import (
    ROOT_PARENT,
    UNVISITED_PARENT,
    dfs_discovery_order,
    reachable_mask,
    serial_dfs,
)


class TestSerialDfs:
    def test_paper_figure1_order(self, paper_example_graph):
        """Figure 1(b): serial DFS visits a,b,d,e,c,f lexicographically."""
        r = serial_dfs(paper_example_graph, 0)
        assert list(r.order) == [0, 1, 3, 4, 2, 5]
        assert r.parent[1] == 0    # b <- a
        assert r.parent[3] == 1    # d <- b
        assert r.parent[4] == 3    # e <- d
        assert r.parent[2] == 4    # c <- e
        assert r.parent[5] == 2    # f <- c

    def test_path_graph(self):
        g = gen.path_graph(6)
        r = serial_dfs(g, 0)
        assert list(r.order) == [0, 1, 2, 3, 4, 5]
        assert all(r.parent[v] == v - 1 for v in range(1, 6))

    def test_root_conventions(self, tiny_tree):
        r = serial_dfs(tiny_tree, 0)
        assert r.parent[0] == ROOT_PARENT
        assert r.visited[0]

    def test_unreachable_marked(self, disconnected_graph):
        r = serial_dfs(disconnected_graph, 0)
        assert not r.visited[3]
        assert r.parent[3] == UNVISITED_PARENT
        assert r.n_visited == 3

    def test_visits_reachable_exactly(self, small_road):
        r = serial_dfs(small_road, 0)
        assert np.array_equal(r.visited, reachable_mask(small_road, 0))

    def test_edge_count_is_degree_sum_of_visited(self, small_social):
        r = serial_dfs(small_social, 0)
        deg = small_social.degree()
        assert r.edges_traversed == int(deg[r.visited].sum())

    def test_single_vertex(self):
        g = gen.path_graph(1)
        r = serial_dfs(g, 0)
        assert r.n_visited == 1
        assert r.edges_traversed == 0

    def test_root_out_of_range(self, tiny_path):
        from repro.errors import GraphFormatError

        with pytest.raises(GraphFormatError):
            serial_dfs(tiny_path, 99)

    def test_deterministic(self, small_road):
        a = serial_dfs(small_road, 5)
        b = serial_dfs(small_road, 5)
        assert np.array_equal(a.order, b.order)
        assert np.array_equal(a.parent, b.parent)

    def test_different_roots_cover_same_component(self, small_road):
        a = serial_dfs(small_road, 0)
        b = serial_dfs(small_road, 17)
        assert np.array_equal(a.visited, b.visited)  # connected graph

    def test_matches_networkx_tree_size(self):
        nx = pytest.importorskip("networkx")
        g = gen.delaunay_mesh(150, seed=4)
        G = nx.Graph(list(g.iter_edges()))
        r = serial_dfs(g, 0)
        assert r.n_visited == len(nx.node_connected_component(G, 0))


class TestHelpers:
    def test_discovery_order(self, paper_example_graph):
        r = serial_dfs(paper_example_graph, 0)
        rank = dfs_discovery_order(r.parent, r.order)
        assert rank[0] == 0
        assert rank[1] == 1
        assert rank[5] == 5

    def test_reachable_mask(self, disconnected_graph):
        mask = reachable_mask(disconnected_graph, 3)
        assert list(np.flatnonzero(mask)) == [3, 4]
