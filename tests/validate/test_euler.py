"""Unit + property tests for Euler-tour ancestor machinery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.graphs import generators as gen
from repro.validate import serial_dfs
from repro.validate.euler import EulerTour, build_euler_tour


def tour_of(graph, root=0):
    r = serial_dfs(graph, root)
    return build_euler_tour(r.parent, root, r.visited), r


class TestBuild:
    def test_path_ancestry(self):
        g = gen.path_graph(6)
        tour, _ = tour_of(g)
        for v in range(6):
            assert tour.is_ancestor(0, v)
            assert tour.is_ancestor(v, v)
        assert tour.is_ancestor(2, 5)
        assert not tour.is_ancestor(5, 2)

    def test_binary_tree_siblings_unrelated(self):
        g = gen.binary_tree(3)
        tour, _ = tour_of(g)
        assert not tour.is_ancestor(1, 2)  # children of the root
        assert not tour.is_ancestor(2, 1)
        assert tour.is_ancestor(1, 3)      # 3 is 1's child

    def test_depth_order_is_preorder(self):
        g = gen.binary_tree(3)
        tour, r = tour_of(g)
        assert list(tour.depth_order()) == list(r.order)

    def test_in_tree(self, disconnected_graph):
        tour, _ = tour_of(disconnected_graph, 0)
        assert tour.in_tree(1)
        assert not tour.in_tree(4)

    def test_query_outside_tree_raises(self, disconnected_graph):
        tour, _ = tour_of(disconnected_graph, 0)
        with pytest.raises(ValidationError):
            tour.is_ancestor(0, 4)


class TestErrors:
    def test_cycle_detected(self):
        parent = np.array([-1, 2, 1], dtype=np.int64)
        visited = np.array([True, True, True])
        with pytest.raises(ValidationError, match="unreachable|cycle"):
            build_euler_tour(parent, 0, visited)

    def test_root_must_be_visited(self):
        with pytest.raises(ValidationError):
            build_euler_tour(np.array([-1]), 0, np.array([False]))

    def test_root_parent_must_be_negative(self):
        parent = np.array([1, -1], dtype=np.int64)
        visited = np.array([True, True])
        with pytest.raises(ValidationError, match="negative"):
            build_euler_tour(parent, 0, visited)

    def test_unvisited_parent_rejected(self):
        parent = np.array([-1, 2, -2], dtype=np.int64)
        visited = np.array([True, True, False])
        with pytest.raises(ValidationError, match="unvisited parent"):
            build_euler_tour(parent, 0, visited)

    def test_root_out_of_range(self):
        with pytest.raises(ValidationError):
            build_euler_tour(np.array([-1]), 5, np.array([True]))


class TestPropertyAgainstChainWalk:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=25)
    def test_matches_parent_chain_walk(self, seed):
        """Euler ancestry must agree with walking the parent chain."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 60))
        g = gen.preferential_attachment(max(n, 5), m=2, seed=seed)
        tour, r = tour_of(g)
        for _ in range(10):
            u = int(rng.integers(0, g.n_vertices))
            v = int(rng.integers(0, g.n_vertices))
            # Walk v's chain to see if u appears.
            cur, found = v, False
            while cur >= 0:
                if cur == u:
                    found = True
                    break
                cur = int(r.parent[cur])
            assert tour.is_ancestor(u, v) == found
