"""Unit tests for the DFS-tree validators."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.graphs import generators as gen
from repro.graphs.csr import from_edges
from repro.validate.reference import (
    ROOT_PARENT,
    UNVISITED_PARENT,
    TraversalResult,
    serial_dfs,
)
from repro.validate.tree import (
    check_lexicographic,
    check_tree_validity,
    check_visited_matches_reachable,
    dfs_property_violations,
    validate_traversal,
)


def make_result(graph, root, parent, visited):
    return TraversalResult(
        root=root,
        visited=np.asarray(visited, dtype=bool),
        parent=np.asarray(parent, dtype=np.int64),
        order=np.empty(0, dtype=np.int64),
    )


class TestTreeValidity:
    def test_serial_result_passes(self, small_road):
        r = serial_dfs(small_road, 0)
        check_tree_validity(small_road, r)

    def test_root_not_visited(self, tiny_path):
        r = make_result(tiny_path, 0, [ROOT_PARENT] + [UNVISITED_PARENT] * 9,
                        [False] * 10)
        with pytest.raises(ValidationError, match="root"):
            check_tree_validity(tiny_path, r)

    def test_wrong_root_parent(self, tiny_path):
        parent = [5] + [UNVISITED_PARENT] * 9
        visited = [True] + [False] * 9
        r = make_result(tiny_path, 0, parent, visited)
        with pytest.raises(ValidationError, match="parent\\[root\\]"):
            check_tree_validity(tiny_path, r)

    def test_phantom_edge_rejected(self):
        g = gen.path_graph(4)
        # Claim parent[3] = 0, but (0,3) is not an edge.
        parent = [ROOT_PARENT, 0, 1, 0]
        r = make_result(g, 0, parent, [True] * 4)
        with pytest.raises(ValidationError, match="not a graph edge") as exc:
            check_tree_validity(g, r)
        assert exc.value.check == "tree_edge_missing"
        assert exc.value.details["vertex"] == 3
        assert exc.value.details["parent"] == 0

    def test_unvisited_parent_pointer_rejected(self):
        g = gen.path_graph(3)
        parent = [ROOT_PARENT, UNVISITED_PARENT, 1]
        visited = [True, False, True]
        r = make_result(g, 0, parent, visited)
        with pytest.raises(ValidationError, match="not visited"):
            check_tree_validity(g, r)

    def test_unvisited_with_parent_rejected(self):
        g = gen.path_graph(3)
        parent = [ROOT_PARENT, 0, 1]
        visited = [True, True, False]
        r = make_result(g, 0, parent, visited)
        with pytest.raises(ValidationError, match="unvisited") as exc:
            check_tree_validity(g, r)
        assert exc.value.check == "unvisited_with_parent"
        assert exc.value.details["vertices"] == [2]

    def test_cycle_in_parents_rejected(self):
        g = gen.cycle_graph(4)
        # 1 -> 2 -> 1 cycle, disconnected from root.
        parent = [ROOT_PARENT, 2, 1, UNVISITED_PARENT]
        visited = [True, True, True, False]
        r = make_result(g, 0, parent, visited)
        with pytest.raises(ValidationError, match="does not reach the root"):
            check_tree_validity(g, r)

    def test_shape_mismatch(self, tiny_path):
        r = TraversalResult(root=0, visited=np.ones(10, bool),
                            parent=np.zeros(3, np.int64),
                            order=np.empty(0, np.int64))
        with pytest.raises(ValidationError, match="shape"):
            check_tree_validity(tiny_path, r)


class TestVisitedCheck:
    def test_missing_vertex(self, tiny_path):
        r = serial_dfs(tiny_path, 0)
        broken = TraversalResult(root=0, visited=r.visited.copy(),
                                 parent=r.parent, order=r.order)
        broken.visited[9] = False
        with pytest.raises(ValidationError, match="mismatch") as exc:
            check_visited_matches_reachable(tiny_path, broken)
        # The error must identify the dropped vertex, not just complain.
        assert exc.value.check == "visited_mismatch"
        assert exc.value.details["missing"] == [9]
        assert exc.value.details["extra"] == []
        assert exc.value.details["root"] == 0

    def test_extra_vertex(self, disconnected_graph):
        r = serial_dfs(disconnected_graph, 0)
        broken = TraversalResult(root=0, visited=r.visited.copy(),
                                 parent=r.parent, order=r.order)
        broken.visited[4] = True
        with pytest.raises(ValidationError, match="mismatch") as exc:
            check_visited_matches_reachable(disconnected_graph, broken)
        assert exc.value.check == "visited_mismatch"
        assert exc.value.details["missing"] == []
        assert exc.value.details["extra"] == [4]

    def test_many_missing_vertices_all_listed(self, small_road):
        """details['missing'] carries the complete list, not the
        truncated handful shown in the message."""
        r = serial_dfs(small_road, 0)
        broken = TraversalResult(root=0, visited=r.visited.copy(),
                                 parent=r.parent, order=r.order)
        dropped = np.flatnonzero(r.visited)[10:30]
        broken.visited[dropped] = False
        with pytest.raises(ValidationError) as exc:
            check_visited_matches_reachable(small_road, broken)
        assert exc.value.details["missing"] == dropped.tolist()


class TestDfsProperty:
    def test_serial_dfs_has_zero_violations(self, small_road, small_social):
        for g in (small_road, small_social):
            r = serial_dfs(g, 0)
            assert dfs_property_violations(g, r) == 0.0

    def test_cross_edge_detected(self):
        """Triangle 0-1, 0-2, 1-2 with both 1 and 2 children of 0: the
        edge (1,2) joins siblings — a DFS-property violation."""
        edges = [(0, 1), (0, 2), (1, 2)]
        both = edges + [(v, u) for u, v in edges]
        g = from_edges(3, both)
        parent = [ROOT_PARENT, 0, 0]
        r = make_result(g, 0, parent, [True] * 3)
        check_tree_validity(g, r)  # still a valid spanning tree
        assert dfs_property_violations(g, r) == 1.0

    def test_tree_graph_never_violates(self, tiny_tree):
        r = serial_dfs(tiny_tree, 0)
        assert dfs_property_violations(tiny_tree, r) == 0.0


class TestLexicographic:
    def test_serial_passes(self, paper_example_graph):
        r = serial_dfs(paper_example_graph, 0)
        check_lexicographic(paper_example_graph, r)

    def test_valid_but_nonlex_tree_fails(self, paper_example_graph):
        """Figure 1(c): a valid parallel DFS tree that is not lexicographic."""
        # One processor walks a->b->d, another c->e / c->f (c rooted at a).
        parent = [ROOT_PARENT, 0, 0, 1, 2, 2]
        r = make_result(paper_example_graph, 0, parent, [True] * 6)
        check_tree_validity(paper_example_graph, r)
        with pytest.raises(ValidationError, match="lexicographic"):
            check_lexicographic(paper_example_graph, r)


class TestValidateTraversal:
    def test_full_report(self, small_road):
        r = serial_dfs(small_road, 0)
        rep = validate_traversal(small_road, r, check_lex=True)
        assert rep.tree_valid and rep.visited_correct
        assert rep.dfs_violation_fraction == 0.0
        assert rep.lexicographic is True
        assert rep.strict_dfs

    def test_lex_not_checked_by_default(self, small_road):
        r = serial_dfs(small_road, 0)
        rep = validate_traversal(small_road, r)
        assert rep.lexicographic is None
