"""Tests for DFS-based biconnectivity (articulation points / bridges)."""

import numpy as np
import pytest

from repro.apps.biconnectivity import biconnectivity
from repro.errors import ValidationError
from repro.graphs import generators as gen
from repro.graphs.csr import from_edges


def undirected(n, pairs):
    both = pairs + [(v, u) for u, v in pairs]
    return from_edges(n, both)


class TestSmallCases:
    def test_path_all_internal_articulation(self):
        g = gen.path_graph(5)
        r = biconnectivity(g)
        assert list(np.flatnonzero(r.articulation_points)) == [1, 2, 3]
        assert r.bridge_set() == {(0, 1), (1, 2), (2, 3), (3, 4)}
        assert r.n_components == 4  # each edge its own component

    def test_cycle_no_articulation(self):
        g = gen.cycle_graph(6)
        r = biconnectivity(g)
        assert not r.articulation_points.any()
        assert r.bridges.size == 0
        assert r.n_components == 1

    def test_barbell(self):
        """Two triangles joined by a bridge: the bridge endpoints are
        articulation points and three biconnected components exist."""
        g = undirected(6, [(0, 1), (1, 2), (2, 0),
                           (3, 4), (4, 5), (5, 3),
                           (2, 3)])
        r = biconnectivity(g)
        assert set(np.flatnonzero(r.articulation_points)) == {2, 3}
        assert r.bridge_set() == {(2, 3)}
        assert r.n_components == 3

    def test_star_hub_is_articulation(self):
        g = gen.star_graph(6)
        r = biconnectivity(g)
        assert list(np.flatnonzero(r.articulation_points)) == [0]
        assert len(r.bridge_set()) == 5

    def test_complete_graph_biconnected(self):
        g = gen.complete_graph(5)
        r = biconnectivity(g)
        assert not r.articulation_points.any()
        assert r.n_components == 1

    def test_disconnected(self, disconnected_graph):
        r = biconnectivity(disconnected_graph)
        # Triangle (no APs) + bridge component 3-4.
        assert not r.articulation_points[[0, 1, 2]].any()
        assert (3, 4) in r.bridge_set()

    def test_directed_rejected(self, dag_graph):
        with pytest.raises(ValidationError):
            biconnectivity(dag_graph)


class TestEdgeLabelling:
    def test_both_arc_directions_same_component(self):
        g = undirected(4, [(0, 1), (1, 2), (2, 0), (2, 3)])
        r = biconnectivity(g)
        src = np.repeat(np.arange(4), g.degree())
        for j in range(g.n_edges):
            u, v = int(src[j]), int(g.column_idx[j])
            # Find the reverse arc and compare labels.
            rev = [k for k in range(g.n_edges)
                   if src[k] == v and g.column_idx[k] == u][0]
            assert r.edge_component[j] == r.edge_component[rev]

    def test_every_edge_labelled(self, small_road):
        r = biconnectivity(small_road)
        assert np.all(r.edge_component >= 0)


class TestAgainstNetworkx:
    @pytest.mark.parametrize("builder,kwargs", [
        (gen.road_network, dict(n_vertices=300)),
        (gen.small_world, dict(n_vertices=250, k=4)),
        (gen.co_purchase, dict(n_vertices=250)),
    ])
    def test_articulation_points_match(self, builder, kwargs):
        nx = pytest.importorskip("networkx")
        g = builder(seed=13, **kwargs)
        r = biconnectivity(g)
        G = nx.Graph(list(g.iter_edges()))
        G.add_nodes_from(range(g.n_vertices))
        expected = set(nx.articulation_points(G))
        assert set(np.flatnonzero(r.articulation_points).tolist()) == expected

    def test_bridges_match(self):
        nx = pytest.importorskip("networkx")
        g = gen.road_network(300, seed=13)
        r = biconnectivity(g)
        G = nx.Graph(list(g.iter_edges()))
        expected = {(min(u, v), max(u, v)) for u, v in nx.bridges(G)}
        assert r.bridge_set() == expected

    def test_component_count_matches(self):
        nx = pytest.importorskip("networkx")
        g = gen.small_world(300, k=4, seed=5)
        r = biconnectivity(g)
        G = nx.Graph(list(g.iter_edges()))
        assert r.n_components == sum(1 for _ in nx.biconnected_components(G))
