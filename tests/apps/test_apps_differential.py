"""Differential tests: graph applications vs networkx oracles.

Each app (SCC, topological sort, cycle detection, spanning forests) is
checked against networkx on randomized corpora — dense/sparse random
digraphs, random DAGs, and the undirected generator families.  networkx
is an independent implementation, so agreement here is evidence the
apps are right, not merely self-consistent.
"""

import numpy as np
import pytest

networkx = pytest.importorskip("networkx")

from repro.apps.cycles import find_cycle, has_cycle
from repro.apps.scc import strongly_connected_components
from repro.apps.spanning import spanning_forest
from repro.apps.toposort import CycleFound, topological_sort, verify_topological_order
from repro.core import DiggerBeesConfig, run_diggerbees
from repro.graphs import generators as gen
from repro.graphs.csr import from_edges

CFG = DiggerBeesConfig(n_blocks=2, warps_per_block=2, hot_size=16,
                       hot_cutoff=4, cold_cutoff=4, flush_batch=4,
                       refill_batch=4, cold_reserve=16, seed=5)


def random_digraph(n, m, seed):
    rng = np.random.default_rng(seed)
    edges = {(int(u), int(v))
             for u, v in zip(rng.integers(0, n, m), rng.integers(0, n, m))
             if u != v}
    return sorted(edges)


def random_dag(n, m, seed):
    # Edges only from lower to higher ids: acyclic by construction.
    return [(u, v) if u < v else (v, u)
            for u, v in random_digraph(n, m, seed) if u != v]


def to_nx(graph):
    g = (networkx.DiGraph if graph.directed else networkx.Graph)()
    g.add_nodes_from(range(graph.n_vertices))
    g.add_edges_from((int(u), int(v)) for u, v in graph.iter_edges())
    return g


def assert_same_partition(labels, groups, n):
    """Our integer labelling must induce exactly the oracle's partition."""
    ours = {}
    for v in range(n):
        ours.setdefault(int(labels[v]), set()).add(v)
    assert sorted(map(sorted, ours.values())) == sorted(map(sorted, groups))


class TestSccVsNetworkx:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_digraphs(self, seed):
        n = 20 + 13 * seed
        g = from_edges(n, random_digraph(n, 3 * n, seed), directed=True)
        comp = strongly_connected_components(g)
        oracle = list(networkx.strongly_connected_components(to_nx(g)))
        assert_same_partition(comp, oracle, n)

    def test_condensation_order_matches_networkx_topology(self):
        """Tarjan ids are a reverse topological order of the condensation:
        every condensation arc must go from a higher id to a lower one."""
        g = from_edges(40, random_digraph(40, 120, 99), directed=True)
        comp = strongly_connected_components(g)
        for u, v in g.iter_edges():
            if comp[u] != comp[v]:
                assert comp[u] > comp[v]


class TestToposortVsNetworkx:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_dags(self, seed):
        n = 15 + 11 * seed
        g = from_edges(n, sorted(set(random_dag(n, 2 * n, seed))),
                       directed=True)
        nxg = to_nx(g)
        assert networkx.is_directed_acyclic_graph(nxg)
        order = topological_sort(g)
        verify_topological_order(g, order)
        # Cross-check with the oracle's definition directly.
        pos = {int(v): i for i, v in enumerate(order)}
        for u, v in nxg.edges:
            assert pos[u] < pos[v]

    @pytest.mark.parametrize("seed", range(8))
    def test_cyclic_digraphs_agree_with_oracle(self, seed):
        n = 18 + 9 * seed
        g = from_edges(n, random_digraph(n, 3 * n, seed), directed=True)
        if networkx.is_directed_acyclic_graph(to_nx(g)):
            verify_topological_order(g, topological_sort(g))
        else:
            with pytest.raises(CycleFound):
                topological_sort(g)


class TestCyclesVsNetworkx:
    def corpus(self):
        yield gen.binary_tree(6)                        # acyclic
        yield gen.path_graph(30)                        # acyclic
        yield gen.cycle_graph(12)                       # one cycle
        yield gen.road_network(200, seed=5)
        yield gen.small_world(80, k=4, seed=5)
        yield gen.preferential_attachment(90, m=2, seed=5)

    def test_has_cycle_matches_reachable_subgraph_oracle(self):
        for g in self.corpus():
            res = run_diggerbees(g, 0, config=CFG).traversal
            nodes = [v for v in range(g.n_vertices) if res.visited[v]]
            sub = to_nx(g).subgraph(nodes)
            oracle = sub.number_of_edges() >= sub.number_of_nodes()
            assert has_cycle(g, res) == oracle, g.name

    def test_find_cycle_witness_is_a_real_cycle(self):
        for g in self.corpus():
            res = run_diggerbees(g, 0, config=CFG).traversal
            cycle = find_cycle(g, res)
            if cycle is None:
                assert not has_cycle(g, res)
                continue
            assert len(set(cycle)) == len(cycle)
            for a, b in zip(cycle, cycle[1:]):
                assert g.has_edge(a, b)
            if len(cycle) > 1:
                assert g.has_edge(cycle[-1], cycle[0])


class TestSpanningVsNetworkx:
    def corpus(self):
        yield gen.path_graph(40)
        yield from_edges(6, [(0, 1), (1, 0), (1, 2), (2, 1),
                             (3, 4), (4, 3)], name="three-components")
        yield gen.road_network(150, seed=7)
        yield gen.delaunay_mesh(120, seed=7)

    def test_components_match_networkx(self):
        for g in self.corpus():
            forest = spanning_forest(g, config=CFG)
            oracle = list(networkx.connected_components(to_nx(g)))
            assert forest.n_components == len(oracle)
            assert_same_partition(forest.component, oracle, g.n_vertices)

    def test_forest_edges_are_real_and_spanning(self):
        for g in self.corpus():
            forest = spanning_forest(g, config=CFG)
            edges = forest.tree_edges()
            for p, c in edges:
                assert g.has_edge(int(p), int(c))
            # |V| - #components tree edges <=> a spanning forest.
            assert len(edges) == g.n_vertices - forest.n_components
