"""Unit tests for the DFS-tree applications."""

import numpy as np
import pytest

from repro.apps.cycles import find_cycle, has_cycle
from repro.apps.scc import condensation_edges, strongly_connected_components
from repro.apps.spanning import spanning_forest
from repro.apps.toposort import (
    CycleFound,
    topological_sort,
    verify_topological_order,
)
from repro.core import DiggerBeesConfig, run_diggerbees
from repro.errors import ValidationError
from repro.graphs import generators as gen
from repro.graphs.csr import from_edges
from repro.validate import serial_dfs

CFG = DiggerBeesConfig(n_blocks=2, warps_per_block=2, hot_size=16,
                       hot_cutoff=4, cold_cutoff=4, flush_batch=4,
                       refill_batch=4, cold_reserve=16, seed=1)


class TestCycles:
    def test_tree_has_no_cycle(self, tiny_tree):
        res = serial_dfs(tiny_tree, 0)
        assert not has_cycle(tiny_tree, res)
        assert find_cycle(tiny_tree, res) is None

    def test_cycle_graph_detected(self):
        g = gen.cycle_graph(8)
        res = serial_dfs(g, 0)
        assert has_cycle(g, res)
        cycle = find_cycle(g, res)
        assert sorted(cycle) == list(range(8))

    def test_cycle_from_parallel_tree(self):
        """Cycle detection needs only a valid (unordered) DFS tree."""
        g = gen.delaunay_mesh(300, seed=3)
        res = run_diggerbees(g, 0, config=CFG)
        cycle = find_cycle(g, res.traversal)
        assert cycle is not None and len(cycle) >= 3
        # Every consecutive pair of the cycle is a real edge.
        closed = cycle + [cycle[0]]
        for a, b in zip(closed, closed[1:]):
            assert g.has_edge(a, b)

    def test_cycle_vertices_distinct(self):
        g = gen.small_world(200, k=4, seed=2)
        res = serial_dfs(g, 0)
        cycle = find_cycle(g, res)
        assert len(cycle) == len(set(cycle))

    def test_directed_rejected(self, dag_graph):
        res = serial_dfs(dag_graph, 0)
        with pytest.raises(ValidationError):
            has_cycle(dag_graph, res)


class TestToposort:
    def test_dag_sorted(self, dag_graph):
        order = topological_sort(dag_graph)
        verify_topological_order(dag_graph, order)

    def test_citation_dag(self):
        g = gen.citation_graph(400, seed=3, symmetrize=False)
        # Citation arcs point old <- new; reverse for a forward DAG.
        order = topological_sort(g)
        verify_topological_order(g, order)

    def test_cycle_raises_with_witness(self):
        g = from_edges(4, [(0, 1), (1, 2), (2, 0), (2, 3)], directed=True)
        with pytest.raises(CycleFound) as exc:
            topological_sort(g)
        cyc = exc.value.cycle
        assert cyc[0] == cyc[-1]  # closed walk witness
        assert len(cyc) >= 3

    def test_undirected_rejected(self, tiny_path):
        with pytest.raises(ValidationError):
            topological_sort(tiny_path)

    def test_verify_rejects_bad_order(self, dag_graph):
        order = topological_sort(dag_graph)
        with pytest.raises(ValidationError):
            verify_topological_order(dag_graph, order[::-1])
        with pytest.raises(ValidationError):
            verify_topological_order(dag_graph, np.zeros(5, dtype=np.int64))

    def test_disconnected_covered(self):
        g = from_edges(5, [(0, 1), (3, 4)], directed=True)
        order = topological_sort(g)
        assert len(order) == 5
        verify_topological_order(g, order)


class TestScc:
    def test_single_cycle_is_one_component(self):
        g = from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)], directed=True)
        comp = strongly_connected_components(g)
        assert len(set(comp)) == 1

    def test_dag_all_singletons(self, dag_graph):
        comp = strongly_connected_components(dag_graph)
        assert len(set(comp)) == dag_graph.n_vertices

    def test_two_sccs_with_bridge(self):
        g = from_edges(6, [(0, 1), (1, 2), (2, 0),      # SCC A
                           (3, 4), (4, 5), (5, 3),      # SCC B
                           (2, 3)],                     # bridge A -> B
                       directed=True)
        comp = strongly_connected_components(g)
        assert comp[0] == comp[1] == comp[2]
        assert comp[3] == comp[4] == comp[5]
        assert comp[0] != comp[3]
        # Reverse topological numbering: A -> B implies id(A) > id(B).
        assert comp[0] > comp[3]

    def test_matches_networkx(self):
        nx = pytest.importorskip("networkx")
        g = gen.rmat(7, edge_factor=4, seed=5, symmetrize=False)
        comp = strongly_connected_components(g)
        G = nx.DiGraph(list(g.iter_edges()))
        G.add_nodes_from(range(g.n_vertices))
        for scc in nx.strongly_connected_components(G):
            ids = {comp[v] for v in scc}
            assert len(ids) == 1

    def test_condensation_is_dag(self):
        g = gen.rmat(6, edge_factor=4, seed=5, symmetrize=False)
        comp = strongly_connected_components(g)
        edges = condensation_edges(g, comp)
        # No self arcs and reverse-topological ids: u > v for every arc.
        assert np.all(edges[:, 0] != edges[:, 1])
        assert np.all(edges[:, 0] > edges[:, 1])

    def test_undirected_rejected(self, tiny_path):
        with pytest.raises(ValidationError):
            strongly_connected_components(tiny_path)


class TestSpanningForest:
    def test_connected_graph_one_tree(self, small_road):
        f = spanning_forest(small_road, config=CFG)
        assert f.n_components == 1
        assert f.tree_edges().shape[0] == small_road.n_vertices - 1

    def test_disconnected_graph(self, disconnected_graph):
        f = spanning_forest(disconnected_graph, config=CFG)
        assert f.n_components == 3
        assert set(f.component) == {0, 1, 2}

    def test_forest_edges_exist(self, disconnected_graph):
        f = spanning_forest(disconnected_graph, config=CFG)
        for p, c in f.tree_edges():
            assert disconnected_graph.has_edge(int(p), int(c))

    def test_directed_rejected(self, dag_graph):
        with pytest.raises(ValidationError):
            spanning_forest(dag_graph, config=CFG)
