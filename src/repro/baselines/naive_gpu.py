"""Naive GPU DFS: per-thread stacks, no stealing — the strawman the
paper's challenges section describes.

Paper §2.3 issue #2: "thread-private stacks cause warp divergence as
threads follow different execution paths".  This baseline is that naive
port, made concrete so the cost of ignoring the paper's design can be
measured:

* every *thread* owns a private stack in local (global) memory;
* the 32 threads of a warp execute in lockstep over divergent stacks:
  nothing coalesces, so each active lane replays a serialized dependent
  access chain (``LANE_SERIALIZATION`` per lane on top of the step's
  base latency);
* work spreads only *within* the seeded warp (a push lands on its
  emptiest lane); there is no stealing, so every other warp idles to
  termination — the load imbalance of issue #3 with no remedy.

The output is the usual visited+parent pair (still a valid spanning
tree: the visited CAS is shared), so the same validators apply.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import SimulationError
from repro.graphs.csr import CSRGraph
from repro.sim.device import DeviceSpec, H100
from repro.sim.engine import EventLoop, StepOutcome
from repro.sim.metrics import mteps as _mteps
from repro.sim.trace import SimCounters
from repro.validate.reference import ROOT_PARENT, UNVISITED_PARENT, TraversalResult

__all__ = ["NaiveGpuResult", "run_naive_gpu_dfs"]

#: Cycles of serialized memory latency per *divergent* active lane: the
#: lanes address unrelated vertices, so nothing coalesces and the step
#: replays one dependent access chain per lane (partial overlap keeps it
#: below a full visit_base each).
LANE_SERIALIZATION = 120

#: Local-memory (spilled) stack operations pay global latency.
LOCAL_STACK_OP = 55


@dataclass(frozen=True)
class NaiveGpuResult:
    """Outcome of the naive per-thread-stack GPU DFS."""

    traversal: TraversalResult
    cycles: int
    seconds: float
    counters: SimCounters
    device: DeviceSpec
    n_warps: int
    method: str = "Naive-GPU-DFS"

    @property
    def mteps(self) -> float:
        return _mteps(self.traversal.edges_traversed, self.seconds)


class _NaiveState:
    def __init__(self, graph: CSRGraph, root: int, n_warps: int,
                 device: DeviceSpec):
        graph._check_vertex(root)
        if n_warps < 1:
            raise SimulationError(f"n_warps must be >= 1, got {n_warps}")
        self.graph = graph
        self.device = device
        self.costs = device.costs
        n = graph.n_vertices
        self.visited = np.zeros(n, dtype=np.uint8)
        self.parent = np.full(n, UNVISITED_PARENT, dtype=np.int64)
        self.pending = 0
        self.counters = SimCounters()
        # 32 thread stacks per warp; work seeded on the root's thread only
        # (a single-source traversal cannot be statically partitioned —
        # exactly why the naive port starves).
        self.stacks: List[List[List[list]]] = [
            [[] for _ in range(32)] for _ in range(n_warps)
        ]
        self.visited[root] = 1
        self.parent[root] = ROOT_PARENT
        self.counters.vertices_visited += 1
        self.counters.record_task(0, 0)
        self.stacks[0][0].append([root, int(graph.row_ptr[root])])
        self.counters.pushes += 1
        self.pending = 1

    def is_terminated(self) -> bool:
        return self.pending == 0

    def try_claim(self, v: int, parent: int) -> bool:
        self.counters.cas_attempts += 1
        if self.visited[v]:
            self.counters.cas_failures += 1
            return False
        self.visited[v] = 1
        self.parent[v] = parent
        self.counters.vertices_visited += 1
        return True


class _NaiveWarp:
    """One warp advancing its 32 divergent thread stacks in lockstep.

    Each step: every thread with a non-empty stack performs one serial
    DFS iteration (Algorithm 1 body, one neighbour).  Lanes share the
    instruction stream, so the step's cost grows with the count of
    distinct active lanes (divergence serialization).
    """

    __slots__ = ("state", "warp_id", "backoff")

    def __init__(self, state: _NaiveState, warp_id: int):
        self.state = state
        self.warp_id = warp_id
        self.backoff = state.costs.idle_poll

    def step(self, now: int) -> StepOutcome:
        state = self.state
        if state.is_terminated():
            return StepOutcome(cost=0, made_progress=False, done=True)
        costs = state.costs
        rp, ci = state.graph.row_ptr, state.graph.column_idx
        threads = state.stacks[self.warp_id]
        active = [t for t in threads if t]
        if not active:
            # No stealing: the warp can only poll until global termination.
            state.counters.idle_polls += 1
            cost = self.backoff
            self.backoff = min(self.backoff * 2, costs.idle_backoff_max)
            return StepOutcome(cost=cost, made_progress=False)

        self.backoff = costs.idle_poll
        progressed = False
        for stack in active:
            top = stack[-1]
            u, i = top
            row_end = int(rp[u + 1])
            if i >= row_end:
                stack.pop()
                state.counters.pops += 1
                state.pending -= 1
                continue
            v = int(ci[i])
            top[1] = i + 1
            state.counters.edges_traversed += 1
            if state.try_claim(v, u):
                state.counters.record_task(self.warp_id, 0)
                # Spread new work to this warp's emptiest thread — the
                # only (intra-warp) balancing a naive port gets for free.
                target = min(threads, key=len)
                target.append([v, int(rp[v])])
                state.counters.pushes += 1
                state.pending += 1
                progressed = True
        # Lockstep cost: one base latency, then each divergent lane
        # replays a serialized access chain plus local-memory stack
        # traffic.  Contrast with DiggerBees, where the 32 lanes scan one
        # vertex's neighbours in a single coalesced transaction.
        cost = (costs.visit_base
                + (LANE_SERIALIZATION + LOCAL_STACK_OP) * len(active))
        return StepOutcome(cost=cost, made_progress=True)


def run_naive_gpu_dfs(
    graph: CSRGraph,
    root: int,
    *,
    n_warps: int = 32,
    device: DeviceSpec = H100,
) -> NaiveGpuResult:
    """Run the naive per-thread-stack GPU DFS (no stealing)."""
    state = _NaiveState(graph, root, n_warps, device)
    agents = [_NaiveWarp(state, w) for w in range(n_warps)]
    engine = EventLoop(agents, is_terminated=state.is_terminated).run()
    if state.pending != 0:
        raise SimulationError(f"naive GPU DFS left {state.pending} pending")
    traversal = TraversalResult(
        root=root,
        visited=state.visited.astype(bool),
        parent=state.parent,
        order=np.empty(0, dtype=np.int64),
        edges_traversed=state.counters.edges_traversed,
    )
    seconds = device.cycles_to_seconds(engine.cycles)
    return NaiveGpuResult(
        traversal=traversal,
        cycles=engine.cycles,
        seconds=seconds,
        counters=state.counters,
        device=device,
        n_warps=n_warps,
    )
