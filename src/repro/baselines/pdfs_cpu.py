"""CPU work-stealing parallel DFS baselines: CKL-PDFS and ACR-PDFS.

Both baselines run on the same event engine as DiggerBees, but with a
multicore CPU model (:class:`~repro.sim.device.CpuSpec`): one agent per
core, a private work deque per core, a shared ``visited`` array with
atomic claims.  Per the paper's Table 2, these methods report only
**reachability** (no DFS tree), which is also how we validate them.

The two differ in their stealing protocol, following the cited systems:

* **CKL-PDFS** (Cong, Kodali, Krishnamoorthy, Lea, Saraswat, Wen, ICPP'08
  — "adaptive work-stealing"): receiver-initiated.  An idle core picks a
  random victim and steals an *adaptive* batch — half of the victim's
  deque from the oldest end (steal-half), which their paper shows
  outperforms fixed-size steals on irregular graphs.
* **ACR-PDFS** (Acar, Charguéraud, Rainey, SC'15 — "work-efficient
  unordered DFS"): sender-initiated communication-by-request.  An idle
  core posts a request into the victim's request cell; the victim polls
  the cell between DFS steps and *donates* half its deque to the thief's
  mailbox.  This removes contention on the deque (work efficiency) at
  the price of donation latency — visible on small graphs, which is why
  the paper's speedup over ACR (1.83x) exceeds that over CKL (1.37x).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import SimulationError
from repro.graphs.csr import CSRGraph
from repro.sim.device import CpuSpec, XEON_MAX_9462
from repro.sim.engine import EventLoop, StepOutcome
from repro.sim.metrics import mteps as _mteps
from repro.sim.trace import SimCounters
from repro.utils.rng import make_rng, spawn
from repro.validate.reference import ROOT_PARENT, UNVISITED_PARENT, TraversalResult

__all__ = ["CpuDfsResult", "run_ckl_pdfs", "run_acr_pdfs"]

#: Neighbours examined per core step (superscalar scan of one cache line
#: worth of adjacency).
CPU_SCAN_WIDTH = 8


@dataclass(frozen=True)
class CpuDfsResult:
    """Outcome of a CPU PDFS run (reachability + timing)."""

    traversal: TraversalResult
    cycles: int
    seconds: float
    counters: SimCounters
    cores: int
    device: CpuSpec
    method: str

    @property
    def mteps(self) -> float:
        return _mteps(self.traversal.edges_traversed, self.seconds)


class _CpuRunState:
    """Shared state of one CPU PDFS run."""

    def __init__(self, graph: CSRGraph, root: int, cores: int, device: CpuSpec,
                 seed: int):
        graph._check_vertex(root)
        if cores < 1:
            raise SimulationError(f"cores must be >= 1, got {cores}")
        self.graph = graph
        self.root = root
        self.device = device
        self.costs = device.costs
        self.cores = cores
        n = graph.n_vertices
        self.visited = np.zeros(n, dtype=np.uint8)
        self.pending = 0
        self.counters = SimCounters()
        self.rngs = spawn(make_rng(seed), cores)
        # Per-core deques of [vertex, offset] plus ACR request/mailbox cells.
        self.deques: List[List[list]] = [[] for _ in range(cores)]
        self.requests: List[Optional[int]] = [None] * cores   # thief id or None
        self.mailboxes: List[Optional[list]] = [None] * cores  # donated batches

        self.visited[root] = 1
        self.counters.vertices_visited += 1
        self.counters.record_task(0, 0)
        self.deques[0].append([root, int(graph.row_ptr[root])])
        self.counters.pushes += 1
        self.pending = 1

    def is_terminated(self) -> bool:
        return self.pending == 0


class _CoreAgent:
    """One CPU core: private-deque DFS plus the configured steal protocol."""

    __slots__ = ("state", "core_id", "protocol", "backoff")

    def __init__(self, state: _CpuRunState, core_id: int, protocol: str):
        if protocol not in ("ckl", "acr"):
            raise SimulationError(f"unknown CPU protocol {protocol!r}")
        self.state = state
        self.core_id = core_id
        self.protocol = protocol
        self.backoff = state.costs.idle_poll

    # ------------------------------------------------------------------
    def step(self, now: int) -> StepOutcome:
        state = self.state
        if state.is_terminated():
            return StepOutcome(cost=0, made_progress=False, done=True)

        # ACR: victims service pending steal requests between DFS steps.
        if self.protocol == "acr":
            serviced = self._service_request()
            if serviced is not None:
                return serviced

        deque = state.deques[self.core_id]
        if deque:
            return self._expand(deque)

        # Idle: collect a donation (ACR) or steal (CKL) or post a request.
        if self.protocol == "acr":
            return self._acr_idle()
        return self._ckl_idle()

    # ------------------------------------------------------------------
    def _expand(self, deque: List[list]) -> StepOutcome:
        """One DFS step on the top deque entry (Algorithm 1 body, CPU costs).

        Cost = per-step overhead + (row-open miss on the row's first
        window) + one line cost per 4 scanned neighbours; see
        :class:`~repro.sim.device.CpuOpCosts` for the calibration.
        """
        state = self.state
        costs = state.costs
        counters = state.counters
        rp, ci = state.graph.row_ptr, state.graph.column_idx
        top = deque[-1]
        u, i = top
        row_end = int(rp[u + 1])
        self.backoff = costs.idle_poll
        if i >= row_end:
            deque.pop()
            counters.pops += 1
            state.pending -= 1
            return StepOutcome(cost=costs.pop)

        window = min(CPU_SCAN_WIDTH, row_end - i)
        nbrs = ci[i:i + window]
        unvis = np.flatnonzero(state.visited[nbrs] == 0)
        lines = -(-window // costs.line_width)  # ceil division
        cost = costs.visit_base + costs.visit_per_line * lines
        if i == int(rp[u]):
            cost += costs.row_open
        if unvis.size == 0:
            counters.edges_traversed += window
            new_off = i + window
            if new_off >= row_end:
                deque.pop()
                counters.pops += 1
                state.pending -= 1
                cost += costs.pop
            else:
                top[1] = new_off
            return StepOutcome(cost=cost)

        k = i + int(unvis[0])
        counters.edges_traversed += int(unvis[0]) + 1
        v = int(ci[k])
        top[1] = k + 1
        counters.cas_attempts += 1
        cost += costs.visited_cas
        if state.visited[v]:
            counters.cas_failures += 1
            return StepOutcome(cost=cost + costs.cas_retry)
        state.visited[v] = 1
        counters.vertices_visited += 1
        counters.record_task(0, self.core_id)
        deque.append([v, int(rp[v])])
        counters.pushes += 1
        state.pending += 1
        return StepOutcome(cost=cost + costs.push)

    # ------------------------------------------------------------------
    # CKL: receiver-initiated adaptive steal-half.
    # ------------------------------------------------------------------
    def _ckl_idle(self) -> StepOutcome:
        state = self.state
        costs = state.costs
        counters = state.counters
        rng = state.rngs[self.core_id]
        victim = int(rng.integers(0, state.cores))
        counters.intra_steal_attempts += 1
        vdq = state.deques[victim]
        if victim == self.core_id or len(vdq) < 2:
            counters.idle_polls += 1
            cost = costs.steal_fail + self.backoff
            self.backoff = min(self.backoff * 2, costs.idle_backoff_max)
            return StepOutcome(cost=cost, made_progress=False)
        # Adaptive: steal half the victim's deque from the oldest end.
        amount = max(1, len(vdq) // 2)
        stolen = vdq[:amount]
        del vdq[:amount]
        state.deques[self.core_id].extend(stolen)
        counters.intra_steal_successes += 1
        counters.intra_steal_entries += amount
        self.backoff = costs.idle_poll
        return StepOutcome(cost=costs.steal_base + costs.steal_per_entry * amount)

    # ------------------------------------------------------------------
    # ACR: sender-initiated communication-by-request.
    # ------------------------------------------------------------------
    def _service_request(self) -> Optional[StepOutcome]:
        """Victim side: donate half the deque to a requesting thief."""
        state = self.state
        costs = state.costs
        thief = state.requests[self.core_id]
        if thief is None:
            return None
        deque = state.deques[self.core_id]
        state.requests[self.core_id] = None
        if len(deque) < 2 or state.mailboxes[thief] is not None:
            # Nothing to donate (or thief mailbox still full): decline.
            return StepOutcome(cost=costs.pop, made_progress=False)
        amount = max(1, len(deque) // 2)
        donated = deque[:amount]
        del deque[:amount]
        state.mailboxes[thief] = donated
        c = state.counters
        c.intra_steal_successes += 1
        c.intra_steal_entries += amount
        return StepOutcome(cost=costs.steal_base + costs.steal_per_entry * amount)

    def _acr_idle(self) -> StepOutcome:
        state = self.state
        costs = state.costs
        counters = state.counters
        # Collect a donation if one arrived.
        mail = state.mailboxes[self.core_id]
        if mail is not None:
            state.mailboxes[self.core_id] = None
            state.deques[self.core_id].extend(mail)
            self.backoff = costs.idle_poll
            return StepOutcome(cost=costs.steal_per_entry * len(mail) + costs.pop)
        # Post a request to a random busy victim (one outstanding at a time).
        rng = state.rngs[self.core_id]
        victim = int(rng.integers(0, state.cores))
        counters.intra_steal_attempts += 1
        if (victim != self.core_id and state.deques[victim]
                and state.requests[victim] is None):
            state.requests[victim] = self.core_id
            return StepOutcome(cost=costs.steal_fail, made_progress=False)
        counters.idle_polls += 1
        cost = self.backoff
        self.backoff = min(self.backoff * 2, costs.idle_backoff_max)
        return StepOutcome(cost=cost, made_progress=False)


def _run_cpu_pdfs(graph: CSRGraph, root: int, protocol: str, method: str, *,
                  cores: Optional[int], device: CpuSpec, sim_scale: float,
                  seed: int) -> CpuDfsResult:
    if cores is None:
        cores = device.default_cores(sim_scale)
    state = _CpuRunState(graph, root, cores, device, seed)
    agents = [_CoreAgent(state, c, protocol) for c in range(cores)]
    loop = EventLoop(agents, is_terminated=state.is_terminated)
    engine = loop.run()
    if state.pending != 0:
        raise SimulationError(f"CPU PDFS stopped with {state.pending} pending")
    # Un-donated mailbox entries would be lost work; assert none remain.
    if any(m for m in state.mailboxes if m):
        raise SimulationError("CPU PDFS terminated with a full mailbox")

    n = graph.n_vertices
    parent = np.full(n, UNVISITED_PARENT, dtype=np.int64)
    parent[root] = ROOT_PARENT  # reachability-only output (Table 2)
    traversal = TraversalResult(
        root=root,
        visited=state.visited.astype(bool),
        parent=parent,
        order=np.empty(0, dtype=np.int64),
        edges_traversed=state.counters.edges_traversed,
    )
    seconds = device.cycles_to_seconds(engine.cycles)
    return CpuDfsResult(
        traversal=traversal,
        cycles=engine.cycles,
        seconds=seconds,
        counters=state.counters,
        cores=cores,
        device=device,
        method=method,
    )


def run_ckl_pdfs(graph: CSRGraph, root: int, *, cores: Optional[int] = None,
                 device: CpuSpec = XEON_MAX_9462, sim_scale: float = 1.0,
                 seed: int = 0) -> CpuDfsResult:
    """CKL-PDFS: adaptive (steal-half) receiver-initiated work stealing."""
    return _run_cpu_pdfs(graph, root, "ckl", "CKL-PDFS", cores=cores,
                         device=device, sim_scale=sim_scale, seed=seed)


def run_acr_pdfs(graph: CSRGraph, root: int, *, cores: Optional[int] = None,
                 device: CpuSpec = XEON_MAX_9462, sim_scale: float = 1.0,
                 seed: int = 0) -> CpuDfsResult:
    """ACR-PDFS: work-efficient sender-initiated (request/donate) stealing."""
    return _run_cpu_pdfs(graph, root, "acr", "ACR-PDFS", cores=cores,
                         device=device, sim_scale=sim_scale, seed=seed)
