"""NVG-DFS: parallel lexicographic DFS via BFS-style path propagation.

Reimplementation of Naumov, Vrielink, Garland, "Parallel Depth-First
Search for Directed Acyclic Graphs" (IA3 '17) — the GPU DFS baseline of
the paper.  No official implementation exists; like the paper's authors,
we reimplement the path-based algorithm from its description.

The algorithm assigns every vertex its lexicographically minimal *rank
path* — the sequence of adjacency ranks along a root path.  Sorting
vertices by minimal rank path yields exactly the lexicographic DFS
discovery order, and the last path element identifies the DFS parent.

* **DAG inputs** (``graph.directed`` and acyclic): one topological pass
  suffices — ``path(v) = min over in-arcs (u, v) of path(u) +
  (rank_u(v),)`` processed level by level.  This is Naumov's setting and
  is executed mechanically here (tested to match serial lexicographic
  DFS exactly).
* **General (cyclic/undirected) inputs** — the paper's evaluation
  setting: minimal paths can improve through arbitrary arcs, so the
  propagation must iterate to a fixpoint.  Information travels one tree
  edge per round, so the round count equals the lexicographic DFS tree
  depth — tens of thousands of rounds on deep graphs, which (with the
  per-round path traffic) is what makes the paper measure DiggerBees
  30.18x faster on average and >1000x on extreme graphs.  The converged
  output *is* the serial lexicographic DFS tree, so we emit that exact
  tree and charge the analytic fixpoint cost.

Path tracking is also the method's memory Achilles heel: storage grows
with path length x vertex count plus per-arc comparison buffers; the
paper reports NVG-DFS failing on 44 of 234 graphs, reproduced here via
:class:`~repro.errors.MemoryLimitExceeded` on a per-vertex budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import MemoryLimitExceeded, SimulationError
from repro.graphs.csr import CSRGraph
from repro.graphs.properties import bfs_levels
from repro.sim.device import DeviceSpec, H100
from repro.sim.metrics import mteps as _mteps
from repro.validate.reference import (
    ROOT_PARENT,
    UNVISITED_PARENT,
    TraversalResult,
    serial_dfs,
)

__all__ = ["NvgResult", "run_nvg_dfs", "nvg_memory_footprint", "is_dag"]

#: Bytes of path storage per vertex beyond which the run is declared out
#: of memory.  This is the sim-scale stand-in for the absolute 64-80 GB
#: limit that kills the method on deep paper-scale graphs: path storage
#: per vertex grows with average depth (and the phase-2 comparison
#: buffers with per-vertex arc count), both of which are scale-invariant
#: for a graph family, so a per-vertex budget reproduces the same
#: failure pattern (deep and/or dense graphs die; shallow sparse ones
#: survive).
PATH_BYTES_PER_VERTEX_BUDGET = 2200

#: Per-round synchronization cost of the fixpoint iteration, as a
#: fraction of a full kernel launch: the rounds run in a persistent
#: kernel with device-wide sync, cheaper than host-side relaunches.
ROUND_SYNC_DIVISOR = 8


@dataclass(frozen=True)
class NvgResult:
    """Outcome of an NVG-DFS run (ordered DFS tree + timing)."""

    traversal: TraversalResult
    cycles: int
    seconds: float
    levels: int
    rounds: int
    device: DeviceSpec
    method: str = "NVG-DFS"

    @property
    def mteps(self) -> float:
        return _mteps(self.traversal.edges_traversed, self.seconds)


def is_dag(graph: CSRGraph) -> bool:
    """True for a directed acyclic graph (Kahn's algorithm)."""
    if not graph.directed:
        return False
    n = graph.n_vertices
    indeg = np.zeros(n, dtype=np.int64)
    np.add.at(indeg, graph.column_idx, 1)
    queue = list(np.flatnonzero(indeg == 0))
    seen = 0
    rp, ci = graph.row_ptr, graph.column_idx
    while queue:
        u = queue.pop()
        seen += 1
        for j in range(int(rp[u]), int(rp[u + 1])):
            v = int(ci[j])
            indeg[v] -= 1
            if indeg[v] == 0:
                queue.append(v)
    return seen == n


def nvg_memory_footprint(graph: CSRGraph, level: np.ndarray) -> int:
    """Simulated bytes of path tracking.

    The implementation sizes its per-vertex path slots and per-arc
    phase-2 comparison buffers for the worst-case path length — the
    traversal's eccentricity — because path lengths are unknown until
    convergence: ``8 B x (ecc + 1) x (V_reached + E_reached)``.  Deep
    graphs blow up through the eccentricity factor, dense graphs through
    the arc term.
    """
    reached = level >= 0
    if not np.any(reached):
        return 0
    ecc = int(level[reached].max())
    n_reached = int(np.count_nonzero(reached))
    e_reached = int(graph.degree()[reached].sum())
    return 8 * (ecc + 1) * (n_reached + e_reached)


def _adjacency_ranks(graph: CSRGraph) -> np.ndarray:
    """rank_u(v) = position of v within u's adjacency list (CSR-relative)."""
    rp = graph.row_ptr
    starts = np.repeat(rp[:-1], np.diff(rp))
    return np.arange(graph.n_edges, dtype=np.int64) - starts


def _tree_depths(parent: np.ndarray, order: np.ndarray) -> np.ndarray:
    """Depth of each visited vertex in a parent tree (root depth 0).

    ``order`` must list vertices parents-before-children (discovery
    order), so one pass suffices.
    """
    depth = np.zeros(parent.shape[0], dtype=np.int64)
    for v in order:
        p = parent[v]
        depth[v] = 0 if p < 0 else depth[p] + 1
    return depth


def _topological_order(graph: CSRGraph) -> List[int]:
    """Kahn topological order of a DAG (deterministic: lowest id first)."""
    import heapq

    n = graph.n_vertices
    indeg = np.zeros(n, dtype=np.int64)
    np.add.at(indeg, graph.column_idx, 1)
    heap = list(np.flatnonzero(indeg == 0))
    heapq.heapify(heap)
    rp, ci = graph.row_ptr, graph.column_idx
    order = []
    while heap:
        u = heapq.heappop(heap)
        order.append(int(u))
        for j in range(int(rp[u]), int(rp[u + 1])):
            v = int(ci[j])
            indeg[v] -= 1
            if indeg[v] == 0:
                heapq.heappush(heap, v)
    if len(order) != n:
        raise SimulationError("topological sort called on a cyclic graph")
    return order


def _dag_propagation(graph: CSRGraph, root: int):
    """Mechanical one-pass minimal rank-path propagation over a DAG.

    Processes vertices in topological order (minimal rank paths do not
    respect BFS levels: a longer route with smaller ranks wins, and its
    arcs may stay within one BFS level).  Returns
    (parent, order, edges_touched, path_work).
    """
    n = graph.n_vertices
    rp, ci = graph.row_ptr, graph.column_idx
    ranks = _adjacency_ranks(graph)
    paths: List[Optional[Tuple[int, ...]]] = [None] * n
    parent = np.full(n, UNVISITED_PARENT, dtype=np.int64)
    paths[root] = ()
    parent[root] = ROOT_PARENT
    edges_touched = 0
    path_work = 0
    for u in _topological_order(graph):
        pu = paths[u]
        if pu is None:  # unreachable from root
            continue
        for j in range(int(rp[u]), int(rp[u + 1])):
            v = int(ci[j])
            edges_touched += 1
            cand = pu + (int(ranks[j]),)
            path_work += len(cand)
            if paths[v] is None or cand < paths[v]:
                paths[v] = cand
                parent[v] = u
    visited_idx = [v for v in range(n) if paths[v] is not None]
    visited_idx.sort(key=lambda v: paths[v])
    order = np.asarray(visited_idx, dtype=np.int64)
    return parent, order, edges_touched, path_work


def run_nvg_dfs(
    graph: CSRGraph,
    root: int,
    *,
    device: DeviceSpec = H100,
    sim_scale: float = 1.0,
    memory_budget_per_vertex: int = PATH_BYTES_PER_VERTEX_BUDGET,
) -> NvgResult:
    """Run NVG-DFS on ``graph`` from ``root``.

    Raises
    ------
    MemoryLimitExceeded
        When the simulated path-tracking footprint exceeds the budget
        (the paper's 44/234 failure mode).
    """
    graph._check_vertex(root)
    n = graph.n_vertices

    # ---- Phase 1: leveling. ----
    level = bfs_levels(graph, root)
    reached = level >= 0
    n_levels = int(level[reached].max()) + 1 if np.any(reached) else 0

    footprint = nvg_memory_footprint(graph, level)
    budget = memory_budget_per_vertex * max(1, int(np.sum(reached)))
    if footprint > budget:
        raise MemoryLimitExceeded(
            footprint, budget,
            detail=f"path tracking over {n_levels} levels",
        )

    costs = device.costs
    sms = max(1, device.default_blocks(sim_scale))
    throughput = costs.nvg_edge_throughput * sms  # path elements / cycle

    # ---- Phase 2: path propagation. ----
    if is_dag(graph):
        parent, order, edges_touched, path_work = _dag_propagation(graph, root)
        rounds = max(1, n_levels)
        sync_cycles = rounds * costs.kernel_launch  # one kernel per level
    else:
        # General graph: the converged fixpoint is the serial
        # lexicographic DFS tree; charge the iterative cost.
        ref = serial_dfs(graph, root)
        parent, order = ref.parent, ref.order
        depth = _tree_depths(parent, order)
        rounds = int(depth[order].max()) + 1 if order.size else 1
        avg_depth = float(depth[order].mean()) + 1.0 if order.size else 1.0
        edges_touched = graph.n_edges * 2  # relaxations until settled
        path_work = int(graph.n_edges * avg_depth)
        sync_cycles = (n_levels * costs.kernel_launch          # phase-1 BFS
                       + rounds * (costs.kernel_launch // ROUND_SYNC_DIVISOR))

    visited = np.zeros(n, dtype=bool)
    visited[order] = True
    if not np.array_equal(visited, reached):
        raise SimulationError("NVG path propagation missed reachable vertices")

    # ---- Phase 3: ordering (sort of the path labels). ----
    sort_cycles = order.size * np.log2(max(order.size, 2)) / throughput
    work_cycles = (edges_touched + path_work) / throughput
    log_launches = max(1, int(np.ceil(np.log2(max(n, 2)))))
    cycles = int(sync_cycles + log_launches * costs.kernel_launch
                 + work_cycles + sort_cycles)
    seconds = device.cycles_to_seconds(cycles)

    traversal = TraversalResult(
        root=root,
        visited=visited,
        parent=parent,
        order=order,
        edges_traversed=graph.n_edges,  # every arc is examined
    )
    return NvgResult(
        traversal=traversal,
        cycles=cycles,
        seconds=seconds,
        levels=n_levels,
        rounds=rounds,
        device=device,
    )
