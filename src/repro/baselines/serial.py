"""Serial DFS baseline with a single-core CPU timing model.

Wraps the reference :func:`repro.validate.reference.serial_dfs` with the
CPU cost table so it can appear in performance comparisons (and as the
denominator for parallel-efficiency sanity checks in tests).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.csr import CSRGraph
from repro.sim.device import CpuSpec, XEON_MAX_9462
from repro.sim.metrics import mteps as _mteps
from repro.validate.reference import TraversalResult, serial_dfs

__all__ = ["SerialDfsResult", "run_serial_dfs"]


@dataclass(frozen=True)
class SerialDfsResult:
    """Serial DFS output with modelled single-core timing."""

    traversal: TraversalResult
    cycles: int
    seconds: float
    device: CpuSpec
    method: str = "Serial-DFS"

    @property
    def mteps(self) -> float:
        return _mteps(self.traversal.edges_traversed, self.seconds)


def run_serial_dfs(graph: CSRGraph, root: int, *,
                   device: CpuSpec = XEON_MAX_9462) -> SerialDfsResult:
    """Serial stack-based DFS (Algorithm 1) with one-core timing.

    Per-edge cost: one dependent visited probe plus amortized stack
    traffic (the same constants the parallel CPU baselines pay, without
    any stealing overhead — serial DFS is perfectly work-efficient).
    """
    result = serial_dfs(graph, root)
    costs = device.costs
    # One row-open miss per visited vertex, one line cost per 4 scanned
    # neighbours, plus stack traffic — the same model as the parallel CPU
    # baselines minus all stealing overhead.
    lines = -(-result.edges_traversed // costs.line_width)
    cycles = (
        result.n_visited * (costs.row_open + costs.push + costs.pop)
        + lines * costs.visit_per_line
        + result.edges_traversed * 2  # visited-flag probe (no CAS needed)
    )
    seconds = device.cycles_to_seconds(cycles)
    return SerialDfsResult(
        traversal=result,
        cycles=int(cycles),
        seconds=seconds,
        device=device,
    )
