"""Baseline traversal implementations (paper Table 1 methods 1-4)."""

from repro.baselines.gpu_bfs import (
    GpuBfsResult,
    best_bfs,
    run_berrybees_bfs,
    run_gunrock_bfs,
)
from repro.baselines.naive_gpu import NaiveGpuResult, run_naive_gpu_dfs
from repro.baselines.nvg_dfs import NvgResult, nvg_memory_footprint, run_nvg_dfs
from repro.baselines.pdfs_cpu import CpuDfsResult, run_acr_pdfs, run_ckl_pdfs
from repro.baselines.serial import SerialDfsResult, run_serial_dfs

__all__ = [
    "run_serial_dfs",
    "SerialDfsResult",
    "run_ckl_pdfs",
    "run_acr_pdfs",
    "CpuDfsResult",
    "run_naive_gpu_dfs",
    "NaiveGpuResult",
    "run_nvg_dfs",
    "NvgResult",
    "nvg_memory_footprint",
    "run_gunrock_bfs",
    "run_berrybees_bfs",
    "best_bfs",
    "GpuBfsResult",
]
