"""GPU BFS baselines: Gunrock-style and BerryBees-style (paper §4.3).

Both are level-synchronous: the traversal itself is computed exactly
(frontier-vectorized BFS producing ``visited`` + ``level``, the Table 2
output of these methods), and the *time* comes from the kernel cost
model of DESIGN.md §4.1::

    time = sum over levels [ kernel_launch + frontier_edges / throughput ]

This is the faithful abstraction for level-synchronous GPU algorithms,
and it is exactly what makes BFS collapse on deep graphs: 'euro_osm'
needs 17,346 launches in the paper, so launch overhead dominates however
fast each kernel streams — the regime where DiggerBees wins.

* **Gunrock** (Wang et al., PPoPP'16): general frontier-based engine;
  per-level cost has the full launch + load-balancing overhead.
* **BerryBees** (Niu & Casas, PPoPP'25): bit-tensor-core frontiers;
  modelled as a throughput multiplier on large frontiers plus a slightly
  cheaper per-level fixed cost (bitmap frontier generation avoids the
  queue compaction pass).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.graphs.properties import bfs_levels
from repro.sim.device import DeviceSpec, H100
from repro.sim.metrics import mteps as _mteps
from repro.validate.reference import ROOT_PARENT, UNVISITED_PARENT, TraversalResult

__all__ = ["GpuBfsResult", "run_gunrock_bfs", "run_berrybees_bfs", "best_bfs"]


@dataclass(frozen=True)
class GpuBfsResult:
    """Outcome of a GPU BFS run (reachability + levels + timing)."""

    traversal: TraversalResult
    level: np.ndarray
    cycles: int
    seconds: float
    n_levels: int
    device: DeviceSpec
    method: str

    @property
    def mteps(self) -> float:
        return _mteps(self.traversal.edges_traversed, self.seconds)


def _frontier_edge_counts(graph: CSRGraph, level: np.ndarray) -> List[int]:
    """Edges expanded per BFS level (degree sum of each level's frontier)."""
    deg = graph.degree()
    reached = level >= 0
    if not np.any(reached):
        return []
    n_levels = int(level[reached].max()) + 1
    counts = []
    for d in range(n_levels):
        frontier = level == d
        counts.append(int(deg[frontier].sum()))
    return counts


def _run_bfs(graph: CSRGraph, root: int, device: DeviceSpec, sim_scale: float,
             method: str) -> GpuBfsResult:
    graph._check_vertex(root)
    level = bfs_levels(graph, root)
    per_level_edges = _frontier_edge_counts(graph, level)
    n_levels = len(per_level_edges)
    costs = device.costs
    sms = max(1, device.default_blocks(sim_scale))

    cycles = 0.0
    if method == "BerryBees":
        # Bitmap frontier: cheaper fixed per-level cost, and the
        # bit-tensor-core formulation multiplies streaming throughput on
        # wide frontiers (its advantage vanishes on tiny frontiers).
        launch = 0.8 * costs.kernel_launch
        for fe in per_level_edges:
            width_bonus = costs.bfs_bitmap_speedup if fe >= 4 * sms else 1.0
            throughput = costs.bfs_edge_throughput * width_bonus * sms
            cycles += launch + fe / throughput
    else:
        launch = costs.kernel_launch
        throughput = costs.bfs_edge_throughput * sms
        for fe in per_level_edges:
            cycles += launch + fe / throughput
    cycles = int(cycles) if n_levels else costs.kernel_launch

    visited = level >= 0
    n = graph.n_vertices
    parent = np.full(n, UNVISITED_PARENT, dtype=np.int64)
    parent[root] = ROOT_PARENT  # reachability + level output only (Table 2)
    edges = int(sum(per_level_edges))
    traversal = TraversalResult(
        root=root,
        visited=visited,
        parent=parent,
        order=np.empty(0, dtype=np.int64),
        edges_traversed=edges,
    )
    return GpuBfsResult(
        traversal=traversal,
        level=level,
        cycles=int(cycles),
        seconds=device.cycles_to_seconds(int(cycles)),
        n_levels=n_levels,
        device=device,
        method=method,
    )


def run_gunrock_bfs(graph: CSRGraph, root: int, *, device: DeviceSpec = H100,
                    sim_scale: float = 1.0) -> GpuBfsResult:
    """Gunrock-style frontier BFS under the kernel cost model."""
    return _run_bfs(graph, root, device, sim_scale, "Gunrock")


def run_berrybees_bfs(graph: CSRGraph, root: int, *, device: DeviceSpec = H100,
                      sim_scale: float = 1.0) -> GpuBfsResult:
    """BerryBees-style bit-tensor-core BFS under the kernel cost model."""
    return _run_bfs(graph, root, device, sim_scale, "BerryBees")


def best_bfs(graph: CSRGraph, root: int, *, device: DeviceSpec = H100,
             sim_scale: float = 1.0) -> GpuBfsResult:
    """The better-performing of the two BFS baselines (paper Figure 6's
    'Best BFS' series)."""
    g = run_gunrock_bfs(graph, root, device=device, sim_scale=sim_scale)
    b = run_berrybees_bfs(graph, root, device=device, sim_scale=sim_scale)
    return g if g.cycles <= b.cycles else b
