"""Greedy failure shrinker for ``repro.check`` fuzz cases.

Given a failing :class:`~repro.check.cases.FuzzCase`, repeatedly try
simplifying transformations (smaller graph, fewer blocks/warps/GPUs,
default ring geometry, no jitter, no adversarial victims) and keep any
transformation under which :func:`~repro.check.differential.check_case`
still fails — regardless of *which* oracle rung fails, since a shrink
frequently shifts the failure to an earlier, clearer stage.  Stops at a
fixpoint or when the evaluation budget runs out.

The shrunk case is no longer derivable from its seed, so it is tagged
``shrunk_from=<original seed>`` and reproduced via a ``--case`` JSON
spec instead of a bare seed (see
:attr:`~repro.check.differential.CheckFailure.repro_command`).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.check.cases import FuzzCase
from repro.check.differential import CheckFailure, check_case

__all__ = ["shrink_case"]

Transform = Tuple[str, Callable[[FuzzCase], FuzzCase]]


def _halve_vertices(c: FuzzCase) -> FuzzCase:
    return c.with_(n_vertices=max(8, c.n_vertices // 2))


def _clamped_ring(c: FuzzCase, hot_size: int) -> FuzzCase:
    return c.with_(
        hot_size=hot_size,
        hot_cutoff=min(c.hot_cutoff, hot_size - 1),
        flush_batch=min(c.flush_batch, hot_size - 1),
        refill_batch=min(c.refill_batch, hot_size - 1),
    )


#: Ordered, idempotent simplifications; earlier entries shrink harder.
TRANSFORMS: List[Transform] = [
    ("n/2", _halve_vertices),
    ("n/2", _halve_vertices),          # run twice per round: n shrinks fastest
    ("gpus=1", lambda c: c.with_(n_gpus=1)),
    ("blocks/2", lambda c: c.with_(
        n_blocks=max(1, c.n_blocks // 2), n_gpus=1)),
    ("warps/2", lambda c: c.with_(
        warps_per_block=max(1, c.warps_per_block // 2))),
    ("hot=8", lambda c: _clamped_ring(c, 8)),
    ("jitter=0", lambda c: c.with_(jitter=0)),
    ("no-adversarial", lambda c: c.with_(adversarial_victims=False)),
    ("no-perturb", lambda c: c.with_(perturb_seed=None, jitter=0)),
    ("family=path", lambda c: c.with_(family="path")),
]


def shrink_case(
    failure: CheckFailure,
    *,
    max_evals: int = 40,
    log: Optional[Callable[[str], None]] = None,
) -> CheckFailure:
    """Shrink ``failure`` greedily; returns the smallest failure found.

    Runs at most ``max_evals`` oracle-ladder evaluations.  The returned
    failure is ``failure`` itself if nothing smaller still fails.
    """
    best = failure
    current = failure.case
    evals = 0
    progressed = True
    while progressed and evals < max_evals:
        progressed = False
        for name, transform in TRANSFORMS:
            if evals >= max_evals:
                break
            candidate = transform(current).with_(
                shrunk_from=(current.shrunk_from
                             if current.shrunk_from is not None
                             else current.seed))
            if candidate == current:  # shrunk_from is compare=False
                continue  # transformation was a no-op
            evals += 1
            result = check_case(candidate, mutation=failure.mutation,
                                stress=failure.stress, turbo=failure.turbo,
                                hive=failure.hive, serve=failure.serve,
                                frontier=failure.frontier,
                                shard=failure.shard)
            if result is not None:
                current = candidate
                best = result
                progressed = True
                if log is not None:
                    log(f"  shrink[{name}] kept: {candidate.describe()} "
                        f"(stage={result.stage})")
    return best
