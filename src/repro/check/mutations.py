"""Hand-injected steal-protocol bugs (``repro.check`` mutation suite).

Each mutation is a classic lock-free work-stealing failure mode patched
into the live protocol code behind a test-only hook (a context manager
that monkeypatches one function or method and restores it on exit).  The
fuzzer must catch **every** registered mutation within its smoke budget
— that is what proves the checker can actually fail, the same reasoning
as ``tests/core/test_failure_injection.py`` but driven end-to-end
through the differential fuzz loop.

The suite spans the three detection layers on purpose:

* bugs whose corruption (duplicated or lost nodes) is caught by the
  invariant monitor's **global sweep** or the engine's deadlock guard;
* bugs caught only by the **event-level hooks** (a skipped reservation
  CAS commits against a stale token; the transfer itself stays
  well-formed, so no sweep or output validator can ever see it);
* bugs caught by the **flush/refill conservation hooks** (a node lost
  between HotRing flush and ColdSeg publish, a double-popped refill).

Use::

    with apply_mutation("intra_skip_cas_validation"):
        failure = check_case(case)          # must not be None
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterator

import numpy as np

from repro.core import inter_steal, intra_steal
from repro.core.state import RunState
from repro.core.twolevel_stack import ColdSeg, WarpStack

__all__ = ["Mutation", "MUTATIONS", "apply_mutation"]


@dataclass(frozen=True)
class Mutation:
    """One injected protocol bug."""

    name: str
    description: str
    #: Which layer is expected to catch it (documentation; any detection
    #: counts — a bug caught earlier than expected is still caught).
    expected_detector: str
    apply: Callable[[], "Iterator[None]"]


# ---------------------------------------------------------------------------
# Intra-block steal protocol bugs.
# ---------------------------------------------------------------------------

@contextmanager
def _intra_lost_cas_writeback():
    """Thief copies the victim's entries but the tail CAS write-back is
    lost: the victim keeps (and re-executes) entries the thief now also
    owns — node visited twice under conflicting owners."""
    original = intra_steal.execute_steal

    def buggy(state, block, thief_warp, plan):
        victim = block.stacks[plan.victim_warp]
        if not isinstance(victim, WarpStack):
            return original(state, block, thief_warp, plan)
        if (victim.hot.tail != plan.observed_tail
                or len(victim.hot) < state.config.hot_cutoff):
            state.counters.cas_failures += 1
            return False
        amount = min(plan.amount, len(victim.hot))
        idx = [(victim.hot.tail + j) % victim.hot.size
               for j in range(amount)]
        verts = [victim.hot.vertex[i] for i in idx]
        offs = [victim.hot.offset[i] for i in idx]
        # BUG: victim.hot.tail is never advanced.
        thief = block.stacks[thief_warp]
        if isinstance(thief, WarpStack):
            thief.hot.put_batch(verts, offs)
        else:
            thief.put_batch(verts, offs)
        block.set_active(thief_warp, True)
        state.counters.intra_steal_successes += 1
        state.counters.intra_steal_entries += amount
        return True

    intra_steal.execute_steal = buggy
    try:
        yield
    finally:
        intra_steal.execute_steal = original


@contextmanager
def _intra_dropped_transfer():
    """The reservation CAS succeeds but the fenced copy never lands: the
    stolen entries vanish (forgotten ``threadfence_block``), leaving the
    traversal permanently short of work."""
    original = intra_steal.execute_steal

    def buggy(state, block, thief_warp, plan):
        victim = block.stacks[plan.victim_warp]
        if not isinstance(victim, WarpStack):
            return original(state, block, thief_warp, plan)
        if (victim.hot.tail != plan.observed_tail
                or len(victim.hot) < state.config.hot_cutoff):
            state.counters.cas_failures += 1
            return False
        amount = min(plan.amount, len(victim.hot))
        victim.hot.take_from_tail(amount)
        # BUG: the entries are never delivered to the thief.
        block.set_active(thief_warp, True)
        state.counters.intra_steal_successes += 1
        return True

    intra_steal.execute_steal = buggy
    try:
        yield
    finally:
        intra_steal.execute_steal = original


@contextmanager
def _intra_skip_cas_validation():
    """The thief forgets the atomicCAS tail validation (Algorithm 3 line
    15) and commits against whatever the tail is *now*.  The transfer
    itself still moves well-formed entries, so only the monitor's
    linearizability check can see the stale reservation."""
    original = intra_steal.execute_steal

    def buggy(state, block, thief_warp, plan):
        counters = state.counters
        counters.intra_steal_attempts += 1
        victim_stack = block.stacks[plan.victim_warp]
        # BUG: `_tail_token(victim_stack) != plan.observed_tail` is gone.
        counters.cas_attempts += 1
        if intra_steal._hot_rest(victim_stack) < state.config.hot_cutoff:
            counters.cas_failures += 1
            return False
        amount = min(plan.amount, intra_steal._hot_rest(victim_stack))
        if isinstance(victim_stack, WarpStack):
            token_at_commit = victim_stack.hot.tail
            verts, offs = victim_stack.hot.take_from_tail(amount)
        else:
            token_at_commit = victim_stack._seg.bottom
            verts, offs = victim_stack.take_from_tail(amount)
        monitor = state.monitor
        if monitor is not None:
            monitor.on_steal(
                kind="intra",
                victim=(block.block_id, plan.victim_warp),
                thief=(block.block_id, thief_warp),
                verts=verts,
                token_at_commit=token_at_commit,
                observed_token=plan.observed_tail,
                amount=amount,
                observed_rest=plan.observed_rest,
            )
        thief_stack = block.stacks[thief_warp]
        if isinstance(thief_stack, WarpStack):
            thief_stack.hot.put_batch(verts, offs)
        else:
            thief_stack.put_batch(verts, offs)
        block.set_active(thief_warp, True)
        block.contention_debt[plan.victim_warp] += state.costs.victim_debt_intra
        counters.intra_steal_successes += 1
        counters.intra_steal_entries += amount
        return True

    intra_steal.execute_steal = buggy
    try:
        yield
    finally:
        intra_steal.execute_steal = original


@contextmanager
def _intra_stale_read_aba():
    """ABA: the thief reads the victim's slots at its *stale* observed
    tail position while advancing the live tail — when the tail moved in
    between, the copied slots are recycled ring positions whose contents
    belong to someone else (duplicates) while the truly reserved entries
    are destroyed (losses)."""
    original = intra_steal.execute_steal

    def buggy(state, block, thief_warp, plan):
        victim = block.stacks[plan.victim_warp]
        if not isinstance(victim, WarpStack):
            return original(state, block, thief_warp, plan)
        hot = victim.hot
        if len(hot) < state.config.hot_cutoff:
            state.counters.cas_failures += 1
            return False
        amount = min(plan.amount, len(hot))
        # BUG: read at the stale observed position instead of the live tail.
        idx = [(plan.observed_tail + j) % hot.size for j in range(amount)]
        verts = [hot.vertex[i] for i in idx]
        offs = [hot.offset[i] for i in idx]
        hot.tail = (hot.tail + amount) % hot.size
        thief = block.stacks[thief_warp]
        if isinstance(thief, WarpStack):
            thief.hot.put_batch(verts, offs)
        else:
            thief.put_batch(verts, offs)
        block.set_active(thief_warp, True)
        state.counters.intra_steal_successes += 1
        state.counters.intra_steal_entries += amount
        return True

    intra_steal.execute_steal = buggy
    try:
        yield
    finally:
        intra_steal.execute_steal = original


# ---------------------------------------------------------------------------
# Inter-block steal protocol bugs.
# ---------------------------------------------------------------------------

@contextmanager
def _inter_skip_cas_validation():
    """Inter-block variant of the forgotten reservation CAS: the leader
    commits without validating the ColdSeg ``bottom`` it observed
    (Algorithm 4 line 20)."""
    original = inter_steal.execute_steal

    def buggy(state, my_block, leader_warp, plan):
        counters = state.counters
        counters.inter_steal_attempts += 1
        victim_block = state.blocks[plan.victim_block]
        victim_stack = victim_block.stacks[plan.victim_warp]
        if not isinstance(victim_stack, WarpStack):
            counters.cas_failures += 1
            return False
        cold = victim_stack.cold
        # BUG: `cold.bottom != plan.observed_bottom` is gone.
        counters.cas_attempts += 1
        if len(cold) < state.config.cold_cutoff:
            counters.cas_failures += 1
            return False
        amount = min(plan.amount, len(cold))
        token_at_commit = cold.bottom
        verts, offs = cold.steal_from_bottom(amount)
        monitor = state.monitor
        if monitor is not None:
            monitor.on_steal(
                kind="remote" if plan.remote else "inter",
                victim=(plan.victim_block, plan.victim_warp),
                thief=(my_block, leader_warp),
                verts=verts,
                token_at_commit=token_at_commit,
                observed_token=plan.observed_bottom,
                amount=amount,
                observed_rest=plan.observed_rest,
            )
        thief_block = state.blocks[my_block]
        thief_stack = thief_block.stacks[leader_warp]
        if isinstance(thief_stack, WarpStack):
            thief_stack.hot.put_batch(verts, offs)
        else:
            thief_stack.put_batch(verts, offs)
        thief_block.set_active(leader_warp, True)
        counters.inter_steal_successes += 1
        counters.inter_steal_entries += amount
        return True

    inter_steal.execute_steal = buggy
    try:
        yield
    finally:
        inter_steal.execute_steal = original


# ---------------------------------------------------------------------------
# Two-level stack transfer bugs.
# ---------------------------------------------------------------------------

@contextmanager
def _flush_publish_drop():
    """A node is lost between HotRing flush and ColdSeg publish: the
    global-memory store of the last entry of every multi-entry flush
    batch never lands (forgotten fence before publishing ``top``)."""
    original = ColdSeg.push_batch

    def buggy(self, verts, offs):
        if len(verts) >= 2:
            verts, offs = verts[:-1], offs[:-1]  # BUG: last entry dropped
        original(self, verts, offs)

    ColdSeg.push_batch = buggy
    try:
        yield
    finally:
        ColdSeg.push_batch = original


@contextmanager
def _refill_double_pop():
    """Refill copies the ColdSeg's top entries into the HotRing but the
    decrement of ``top`` is lost: the same entries will be refilled (or
    stolen) again — a double-pop."""
    original = ColdSeg.pop_batch

    def buggy(self, count):
        lo = self.top - count
        verts = self.vertex[lo:self.top].copy()
        offs = self.offset[lo:self.top].copy()
        # BUG: `self.top = lo` never happens.
        return verts, offs

    ColdSeg.pop_batch = buggy
    try:
        yield
    finally:
        ColdSeg.pop_batch = original


# ---------------------------------------------------------------------------
# Claim (visited CAS) bugs.
# ---------------------------------------------------------------------------

@contextmanager
def _claim_lost_store():
    """The winning claim's visited store is occasionally lost (dropped
    write): later scans see the vertex unvisited and claim it again while
    its first stack entry still exists."""
    original = RunState.try_claim_vertex

    def buggy(self, v, parent):
        won = original(self, v, parent)
        if won and v % 7 == 3:
            self.visited[v] = 0  # BUG: the store never became visible
        return won

    RunState.try_claim_vertex = buggy
    try:
        yield
    finally:
        RunState.try_claim_vertex = original


# ---------------------------------------------------------------------------
# Registry.
# ---------------------------------------------------------------------------

MUTATIONS: Dict[str, Mutation] = {
    m.name: m for m in (
        Mutation(
            name="intra_lost_cas_writeback",
            description="intra steal copies entries but the tail CAS "
                        "write-back is lost (duplication)",
            expected_detector="sweep: vertex owned by two stacks",
            apply=_intra_lost_cas_writeback,
        ),
        Mutation(
            name="intra_dropped_transfer",
            description="intra steal removes entries but the fenced copy "
                        "never lands (lost work)",
            expected_detector="sweep: pending counter vs actual entries",
            apply=_intra_dropped_transfer,
        ),
        Mutation(
            name="intra_skip_cas_validation",
            description="intra steal skips the tail reservation CAS "
                        "(stale commit)",
            expected_detector="monitor: CAS linearizability hook",
            apply=_intra_skip_cas_validation,
        ),
        Mutation(
            name="intra_stale_read_aba",
            description="intra steal reads slots at the stale observed "
                        "tail while advancing the live tail (ABA)",
            expected_detector="sweep/validators: duplicated + lost nodes",
            apply=_intra_stale_read_aba,
        ),
        Mutation(
            name="inter_skip_cas_validation",
            description="inter steal skips the ColdSeg bottom reservation "
                        "CAS (stale commit)",
            expected_detector="monitor: CAS linearizability hook",
            apply=_inter_skip_cas_validation,
        ),
        Mutation(
            name="flush_publish_drop",
            description="last entry of each flush batch lost between "
                        "HotRing flush and ColdSeg publish",
            expected_detector="monitor: flush conservation hook",
            apply=_flush_publish_drop,
        ),
        Mutation(
            name="refill_double_pop",
            description="refill copies ColdSeg entries without moving "
                        "top (double-pop duplication)",
            expected_detector="monitor: refill conservation hook",
            apply=_refill_double_pop,
        ),
        Mutation(
            name="claim_lost_store",
            description="winning visited-CAS store occasionally lost "
                        "(vertex claimed twice)",
            expected_detector="sweep: stacked vertex not marked visited",
            apply=_claim_lost_store,
        ),
    )
}


@contextmanager
def apply_mutation(name):
    """Context manager applying mutation ``name`` (None is a no-op)."""
    if name is None:
        yield
        return
    if name not in MUTATIONS:
        raise KeyError(
            f"unknown mutation {name!r}; known: {sorted(MUTATIONS)}"
        )
    with MUTATIONS[name].apply():
        yield
