"""Steal-protocol invariant instrumentation (``repro.check`` part 1).

An :class:`InvariantMonitor` attaches to one :class:`~repro.core.state.RunState`
and asserts, *at the event that breaks them*, the protocol invariants that
make DiggerBees' lock-free stealing correct:

* **CAS linearizability of ownership transfer** — the token a steal
  validated (HotRing ``tail`` for intra-block, ColdSeg ``bottom`` for
  inter-block) must equal the token at the commit point.  A protocol
  that skips or mis-implements the reservation CAS commits against a
  stale observation; on hardware that is the ABA window, and in the
  simulator this check is the only thing that can see it (the transfer
  itself still moves well-formed entries).
* **Flush/publish conservation** — every entry leaving the HotRing in a
  flush must appear, bit-identical and in order, at the top of the
  ColdSeg; every refill must shrink the ColdSeg by exactly what the
  HotRing gained.  No node may be lost (or invented) between the
  HotRing flush and the ColdSeg publish.
* **Single ownership / no lost nodes (global sweep)** — periodically
  (every ``check_every`` engine steps) and at the end of the run, the
  union of all stacks must contain every pending entry exactly once,
  every stacked vertex must already be claimed (visited), and the
  global ``pending`` counter must equal the true entry count.  A
  duplicated steal shows up as a vertex owned by two stacks or as
  ``actual > pending``; a dropped transfer as ``actual < pending``.
* **Steal sanity** — a steal may not move more entries than its plan
  observed, and stolen vertices must already be visited (they were
  claimed before being pushed).

All hooks raise :class:`~repro.errors.InvariantViolation` (a
``SimulationError``) at the first breach, so the engine stops on the
exact offending event and the seed reproduces it deterministically.

Usage::

    monitor = InvariantMonitor(check_every=128)
    result = run_diggerbees(graph, root, config=cfg,
                            instrument=monitor.attach,
                            check_invariants=True)
    # monitor.steal_events / flush_events / sweeps tell you what was covered
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from repro.core.state import RunState
from repro.core.twolevel_stack import WarpStack
from repro.errors import InvariantViolation

__all__ = ["InvariantMonitor"]

Owner = Tuple[int, int]  # (block_id, warp_id)


class InvariantMonitor:
    """Protocol-invariant checker; see module docstring.

    Parameters
    ----------
    check_every:
        Global-sweep period in engine steps.  Smaller catches corruption
        closer to its cause but costs O(entries) per sweep; the fuzzer
        uses 64–256 on its small graphs.
    """

    def __init__(self, check_every: int = 128):
        if check_every < 1:
            raise ValueError(f"check_every must be >= 1, got {check_every}")
        self.check_every = int(check_every)
        self.state: Optional[RunState] = None
        # Coverage counters (asserted on by tests, reported by the CLI).
        self.steal_events = 0
        self.flush_events = 0
        self.refill_events = 0
        self.sweeps = 0

    # ------------------------------------------------------------------
    def attach(self, state: RunState) -> Callable[[int], None]:
        """Wire this monitor into ``state``; returns the step observer.

        Matches the ``instrument`` contract of
        :func:`repro.core.diggerbees.run_diggerbees`.
        """
        self.state = state
        state.monitor = self
        for block in state.blocks:
            for warp, stack in enumerate(block.stacks):
                if isinstance(stack, WarpStack):
                    stack.monitor = self
                    stack.owner = (block.block_id, warp)
        return self._on_step

    def _on_step(self, steps: int) -> None:
        if steps % self.check_every == 0:
            self.sweep()

    # ------------------------------------------------------------------
    # Event hooks (called from the protocol code under `monitor is not None`).
    # ------------------------------------------------------------------
    def on_steal(self, *, kind: str, victim: Owner, thief: Owner,
                 verts: np.ndarray, token_at_commit: int,
                 observed_token: int, amount: int,
                 observed_rest: int) -> None:
        """Validate one committed steal (intra / inter / remote)."""
        self.steal_events += 1
        if token_at_commit != observed_token:
            raise InvariantViolation(
                f"{kind}-steal CAS linearizability breach: thief {thief} "
                f"committed against victim {victim} with token "
                f"{token_at_commit} but its reservation observed "
                f"{observed_token} — the ownership-transfer CAS validated "
                f"a stale pointer (ABA window)"
            )
        if amount > observed_rest:
            raise InvariantViolation(
                f"{kind}-steal over-reservation: thief {thief} took "
                f"{amount} entries from {victim} but the validated "
                f"observation only covered {observed_rest}"
            )
        if len(verts) != amount:
            raise InvariantViolation(
                f"{kind}-steal transfer mismatch: reserved {amount} "
                f"entries from {victim} but moved {len(verts)}"
            )
        state = self.state
        for v in verts.tolist():
            if not state.visited[v]:
                raise InvariantViolation(
                    f"{kind}-steal moved unclaimed vertex {v} from "
                    f"{victim} to {thief}: entries must be claimed "
                    f"(visited) before they are ever stacked"
                )

    def on_flush(self, stack: WarpStack, verts: np.ndarray, offs: np.ndarray,
                 hot_before: int, cold_before: int) -> None:
        """Conservation across a HotRing -> ColdSeg flush."""
        self.flush_events += 1
        count = len(verts)
        owner = stack.owner
        if len(stack.hot) != hot_before - count:
            raise InvariantViolation(
                f"flush by {owner} removed {hot_before - len(stack.hot)} "
                f"HotRing entries but reported {count}"
            )
        if len(stack.cold) != cold_before + count:
            raise InvariantViolation(
                f"flush by {owner} lost entries between HotRing flush and "
                f"ColdSeg publish: {count} left the ring, ColdSeg grew by "
                f"{len(stack.cold) - cold_before}"
            )
        published = stack.cold.snapshot()[-count:]
        expected = list(zip(verts.tolist(), offs.tolist()))
        if published != expected:
            raise InvariantViolation(
                f"flush by {owner} published corrupted entries: HotRing "
                f"released {expected[:8]}..., ColdSeg holds {published[:8]}..."
            )

    def on_refill(self, stack: WarpStack, verts: np.ndarray, offs: np.ndarray,
                  hot_before: int, cold_before: int) -> None:
        """Conservation across a ColdSeg -> HotRing refill."""
        self.refill_events += 1
        count = len(verts)
        owner = stack.owner
        if len(stack.cold) != cold_before - count:
            raise InvariantViolation(
                f"refill by {owner} duplicated entries: {count} entered the "
                f"HotRing but the ColdSeg shrank by "
                f"{cold_before - len(stack.cold)} (double-pop)"
            )
        if len(stack.hot) != hot_before + count:
            raise InvariantViolation(
                f"refill by {owner} lost entries: ColdSeg released {count}, "
                f"HotRing grew by {len(stack.hot) - hot_before}"
            )
        installed = stack.hot.snapshot()[-count:]
        expected = list(zip(verts.tolist(), offs.tolist()))
        if installed != expected:
            raise InvariantViolation(
                f"refill by {owner} installed corrupted entries: ColdSeg "
                f"released {expected[:8]}..., HotRing holds {installed[:8]}..."
            )

    # ------------------------------------------------------------------
    # Global sweep.
    # ------------------------------------------------------------------
    def sweep(self) -> None:
        """Full-state ownership/conservation sweep (see module docstring)."""
        self.sweeps += 1
        state = self.state
        visited = state.visited
        seen: dict = {}
        actual = 0
        for block in state.blocks:
            for warp, stack in enumerate(block.stacks):
                entries = stack.snapshot()
                actual += len(entries)
                owner = (block.block_id, warp)
                for v, _ in entries:
                    if not visited[v]:
                        raise InvariantViolation(
                            f"stacked vertex {v} (owner {owner}) is not "
                            f"marked visited: it was pushed without a "
                            f"winning claim, so a second warp can claim "
                            f"and traverse it again"
                        )
                    prev = seen.get(v)
                    if prev is not None:
                        raise InvariantViolation(
                            f"vertex {v} is owned by two stacks at once "
                            f"({prev} and {owner}): a steal duplicated it, "
                            f"so its subtree will be traversed twice under "
                            f"conflicting owners"
                        )
                    seen[v] = owner
        if actual != state.pending:
            kind = "lost" if actual < state.pending else "invented"
            raise InvariantViolation(
                f"pending counter says {state.pending} stack entries but "
                f"the stacks hold {actual}: {abs(actual - state.pending)} "
                f"entries were {kind} (termination counter and true work "
                f"have diverged)"
            )

    def final_check(self) -> None:
        """Post-run sweep: the traversal must have drained every stack."""
        self.sweep()
        state = self.state
        if state.pending != 0:
            raise InvariantViolation(
                f"run ended with {state.pending} entries still pending"
            )
