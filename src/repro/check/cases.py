"""Seeded fuzz-case generation for ``repro.check``.

One integer seed deterministically names one complete test case: graph
family, size, generator seed, root, and a full
:class:`~repro.core.config.DiggerBeesConfig` including the schedule
perturbation.  ``python -m repro.check repro <seed>`` therefore rebuilds
*exactly* the run that failed, with no corpus files to ship around.

Case parameters deliberately skew toward the configurations where steal
protocols are stressed: tiny HotRings (frequent flushes, thief/owner tail
races), low steal cutoffs (many qualifying victims), multiple blocks
(inter-block CAS traffic), adversarial victim choice, and schedule
jitter.  Production-sized configs are correct *because* these hostile
ones are.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.core.config import DiggerBeesConfig
from repro.graphs import generators as gen
from repro.graphs.csr import CSRGraph

__all__ = ["FuzzCase", "case_from_seed", "FAMILIES"]

#: Graph families the fuzzer draws from, spanning the paper's three
#: structural regimes (deep/narrow, shallow/wide, intermediate) plus the
#: elementary corner cases.
FAMILIES = (
    "path",
    "cycle",
    "binary_tree",
    "star",
    "grid2d",
    "road_network",
    "delaunay_mesh",
    "random_geometric",
    "preferential_attachment",
    "small_world",
    "rmat",
    "star_mesh",
    "wide_layers",
)


@dataclass(frozen=True)
class FuzzCase:
    """One fully-determined fuzz input (graph + config + schedule)."""

    seed: int                    # the seed that named this case (repro key)
    family: str
    n_vertices: int
    graph_seed: int
    root: int = 0
    n_blocks: int = 2
    warps_per_block: int = 2
    n_gpus: int = 1
    hot_size: int = 8
    hot_cutoff: int = 2
    cold_cutoff: int = 2
    flush_batch: int = 2
    refill_batch: int = 2
    two_level: bool = True
    victim_policy: str = "two_choice"
    flush_policy: str = "tail"
    perturb_seed: Optional[int] = None
    jitter: int = 0
    adversarial_victims: bool = False
    shrunk_from: Optional[int] = field(default=None, compare=False)

    # ------------------------------------------------------------------
    def build_graph(self) -> CSRGraph:
        n = self.n_vertices
        s = self.graph_seed
        if self.family == "path":
            return gen.path_graph(n)
        if self.family == "cycle":
            return gen.cycle_graph(max(3, n))
        if self.family == "binary_tree":
            # depth chosen so the vertex count is comparable to n
            depth = max(2, n.bit_length() - 1)
            return gen.binary_tree(depth)
        if self.family == "star":
            return gen.star_graph(n)
        if self.family == "grid2d":
            side = max(2, int(n ** 0.5))
            return gen.grid2d(side, side)
        if self.family == "road_network":
            return gen.road_network(n, seed=s)
        if self.family == "delaunay_mesh":
            return gen.delaunay_mesh(n, seed=s)
        if self.family == "random_geometric":
            return gen.random_geometric(n, seed=s)
        if self.family == "preferential_attachment":
            return gen.preferential_attachment(n, m=3, seed=s)
        if self.family == "small_world":
            return gen.small_world(n, k=4, seed=s)
        if self.family == "rmat":
            # rmat takes a log2 scale: 2**scale vertices close to n.
            return gen.rmat(max(4, n.bit_length() - 1), edge_factor=6, seed=s)
        if self.family == "star_mesh":
            # hubs * (1 + leaves) vertices close to n.
            return gen.star_mesh(max(2, n // 12), leaves_per_hub=11, seed=s)
        if self.family == "wide_layers":
            # 1 + width * depth vertices close to n.
            return gen.wide_layers(max(2, n // 5), 5, seed=s)
        raise ValueError(f"unknown fuzz family {self.family!r}")

    def build_config(self, **overrides) -> DiggerBeesConfig:
        kwargs = dict(
            n_blocks=self.n_blocks,
            warps_per_block=self.warps_per_block,
            n_gpus=self.n_gpus,
            hot_size=self.hot_size,
            hot_cutoff=self.hot_cutoff,
            cold_cutoff=self.cold_cutoff,
            flush_batch=self.flush_batch,
            refill_batch=self.refill_batch,
            two_level=self.two_level,
            victim_policy=self.victim_policy,
            flush_policy=self.flush_policy,
            cold_reserve=max(16, self.cold_cutoff),
            seed=self.graph_seed,
            perturb_seed=self.perturb_seed,
            jitter=self.jitter,
            adversarial_victims=self.adversarial_victims,
        )
        kwargs.update(overrides)
        return DiggerBeesConfig(**kwargs)

    def describe(self) -> str:
        """One-line summary used in failure reports."""
        parts = [
            f"seed={self.seed}",
            f"family={self.family}",
            f"n={self.n_vertices}",
            f"grid={self.n_blocks}x{self.warps_per_block}",
            f"hot={self.hot_size}/{self.hot_cutoff}",
            f"cold_cutoff={self.cold_cutoff}",
            f"flush={self.flush_batch}@{self.flush_policy}",
        ]
        if not self.two_level:
            parts.append("one-level")
        if self.n_gpus > 1:
            parts.append(f"gpus={self.n_gpus}")
        if self.perturb_seed is not None:
            parts.append(f"perturb={self.perturb_seed}+j{self.jitter}")
        if self.adversarial_victims:
            parts.append("adversarial")
        if self.shrunk_from is not None:
            parts.append(f"(shrunk from seed {self.shrunk_from})")
        return " ".join(parts)

    def with_(self, **kwargs) -> "FuzzCase":
        """Copy with overrides (shrinker transformation helper)."""
        return replace(self, **kwargs)


def case_from_seed(seed: int, *, stress: bool = False) -> FuzzCase:
    """Derive the complete fuzz case named by ``seed``.

    ``stress=True`` biases toward maximum steal contention (tiny rings,
    minimum cutoffs, adversarial victims, jitter always on) — used by the
    mutation sanity suite, where the goal is to *trigger* the injected
    bug as fast as possible rather than to sample broadly.
    """
    rnd = random.Random(seed)
    family = FAMILIES[rnd.randrange(len(FAMILIES))]
    if stress:
        n = rnd.choice((48, 96, 160, 240))
        hot_size = rnd.choice((8, 8, 16))
        n_blocks = rnd.choice((2, 2, 4))
        warps = rnd.choice((2, 4))
        two_level = True
        adversarial = True
        jitter = rnd.randrange(1, 5)
        hot_cutoff = 2
        cold_cutoff = 2
        flush_batch = rnd.choice((2, 3))
    else:
        n = rnd.choice((32, 64, 120, 200, 320, 480))
        hot_size = rnd.choice((8, 16, 32))
        n_blocks = rnd.choice((1, 2, 2, 4))
        warps = rnd.choice((1, 2, 2, 4))
        two_level = rnd.random() >= 0.15
        adversarial = rnd.random() < 0.5
        jitter = rnd.choice((0, 0, 1, 2, 4))
        hot_cutoff = rnd.choice((2, 3, 4))
        cold_cutoff = rnd.choice((2, 4, 6))
        flush_batch = rnd.choice((2, 3, 4))
    flush_batch = min(flush_batch, hot_size - 1)
    hot_cutoff = min(hot_cutoff, hot_size - 1)
    n_gpus = 2 if (n_blocks == 4 and rnd.random() < 0.25) else 1
    perturb = seed if (stress or rnd.random() < 0.7) else None
    if perturb is None:
        jitter = 0  # jitter samples come from the perturbation RNG
    return FuzzCase(
        seed=seed,
        family=family,
        n_vertices=n,
        graph_seed=rnd.randrange(1 << 20),
        root=0,
        n_blocks=n_blocks,
        warps_per_block=warps,
        n_gpus=n_gpus,
        hot_size=hot_size,
        hot_cutoff=hot_cutoff,
        cold_cutoff=cold_cutoff,
        flush_batch=flush_batch,
        refill_batch=flush_batch,
        two_level=two_level,
        victim_policy="two_choice" if rnd.random() < 0.8 else "random",
        flush_policy="tail" if rnd.random() < 0.85 else "head",
        perturb_seed=perturb,
        jitter=jitter,
        adversarial_victims=adversarial,
    )
