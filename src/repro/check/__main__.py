"""Entry point: ``python -m repro.check <fuzz|repro|mutants> ...``."""

import sys

from repro.check.cli import main

sys.exit(main())
