"""Serve-diff oracle: a live daemon the check ladder queries against.

One :class:`ServeOracle` per process hosts a real :class:`~repro.serve.
server.ServeServer` on a background thread — real socket, real wire
protocol, real admission/cache/dispatch stack — and the ``serve-diff``
rung in :mod:`repro.check.differential` sends every fuzz case's DFS
through it, asserting the served payload is *equal* to the canonical
payload of the direct run (:func:`~repro.serve.protocol.
dfs_result_to_dict` on both sides, so equality is bit-identity of
parents, visited sets, cycle counts, step counts, and counters).

The daemon runs with ``jobs = 0``: queries execute on threads inside
this process, which is what lets the mutation sanity suite work through
the served path — :func:`~repro.check.mutations.apply_mutation`
monkeypatches engine internals process-wide, so the daemon's executor
sees exactly the same injected bug as the direct run.  Mutated queries
always set ``no_cache`` so a mutant's (wrong) result can never be
memoized and later served for the clean engine.

Each case's graph is registered over the wire (the ``add_graph`` op),
keyed by content fingerprint so repeated cases re-use the resident
entry and its warm result cache.
"""

from __future__ import annotations

import atexit
import os
import tempfile
import threading
from typing import Any, Dict, Optional, Tuple

from repro.errors import ServeError

__all__ = ["ServeOracle", "serve_oracle", "shutdown_oracle"]


class ServeOracle:
    """A daemon on a background thread, queried synchronously."""

    def __init__(self, *, batch_window: float = 0.0,
                 cache_entries: int = 512):
        self._tempdir = tempfile.mkdtemp(prefix="repro-serve-oracle-")
        self.socket_path = os.path.join(self._tempdir, "oracle.sock")
        self._batch_window = batch_window
        self._cache_entries = cache_entries
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._loop = None
        self._server = None
        self._client = None
        self._registered: Dict[str, str] = {}  # fingerprint -> name
        self._thread = threading.Thread(
            target=self._thread_main, name="serve-oracle", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise ServeError("serve oracle daemon failed to start in time")
        if self._startup_error is not None:
            raise ServeError(
                f"serve oracle daemon failed to start: "
                f"{self._startup_error}")

    # ------------------------------------------------------------------
    def _thread_main(self) -> None:
        import asyncio

        async def amain():
            from repro.core.config import ServeConfig
            from repro.serve.corpus import ResidentCorpus
            from repro.serve.server import ServeServer

            # share=False: jobs=0 never ships graphs to workers, so shm
            # exports would only leak segments if the process dies hard.
            corpus = ResidentCorpus(share=False)
            server = ServeServer(corpus, ServeConfig(
                batch_window=self._batch_window,
                cache_entries=self._cache_entries,
                jobs=0, cache_dir="off", drain_timeout=5.0))
            await server.start(self.socket_path)
            self._server = server
            self._loop = asyncio.get_running_loop()
            self._ready.set()
            await server.serve_until_shutdown()

        try:
            asyncio.run(amain())
        except BaseException as exc:  # startup or teardown failure
            self._startup_error = exc
            self._ready.set()

    def _connect(self):
        from repro.serve.client import SyncServeClient

        if self._client is None:
            self._client = SyncServeClient(self.socket_path, timeout=120.0)
        return self._client

    # ------------------------------------------------------------------
    def register(self, graph) -> str:
        """Ensure ``graph`` is resident; returns its daemon-side name."""
        from repro.serve.corpus import graph_fingerprint

        fp = graph_fingerprint(graph)
        name = self._registered.get(fp)
        if name is not None:
            return name
        name = f"case-{fp}"
        self._connect().add_graph(name, graph.row_ptr, graph.column_idx,
                                  directed=graph.directed)
        self._registered[fp] = name
        return name

    def query_dfs(self, graph, root: int,
                  config_overrides: Optional[Dict[str, Any]] = None, *,
                  no_cache: bool = False,
                  ) -> Tuple[Dict[str, Any], bool]:
        """Serve one DFS; returns ``(result payload, was_cached)``.

        Raises :class:`ServeError` on transport failure or an error
        response — in the check ladder both are serve-diff failures.
        """
        name = self.register(graph)
        client = self._connect()
        resp = client.query("dfs", name, root=root,
                            config=config_overrides, no_cache=no_cache)
        return resp.result, resp.cached

    def stop(self) -> None:
        if self._client is not None:
            try:
                self._client.close()
            except Exception:
                pass
            self._client = None
        if self._loop is not None and self._server is not None:
            import asyncio

            try:
                fut = asyncio.run_coroutine_threadsafe(
                    self._server.stop(), self._loop)
                fut.result(timeout=10.0)
            except Exception:
                pass
        self._thread.join(timeout=10.0)


# ---------------------------------------------------------------------------
# Process-wide singleton (the ladder may serve thousands of cases; one
# daemon amortizes startup and keeps per-graph caches warm across them).
# ---------------------------------------------------------------------------

_ORACLE: Optional[ServeOracle] = None
_ORACLE_LOCK = threading.Lock()


def serve_oracle() -> ServeOracle:
    """The process-wide oracle daemon, started on first use."""
    global _ORACLE
    with _ORACLE_LOCK:
        if _ORACLE is None:
            _ORACLE = ServeOracle()
            atexit.register(shutdown_oracle)
        return _ORACLE


def shutdown_oracle() -> None:
    """Stop the singleton (idempotent; re-startable on next use)."""
    global _ORACLE
    with _ORACLE_LOCK:
        oracle, _ORACLE = _ORACLE, None
    if oracle is not None:
        oracle.stop()
