"""Command-line driver for ``repro.check``.

Subcommands::

    python -m repro.check fuzz [--cases N | --smoke | --seconds S]
                               [--start-seed K] [--stress] [--turbo]
                               [--hive] [--frontier] [--shard]
                               [--swarm] [--no-shrink]
    python -m repro.check repro <seed> [--stress] [--turbo] [--hive]
                                       [--frontier] [--shard] [--swarm]
                                       [--mutation NAME]
    python -m repro.check repro --case '<json>' [--mutation NAME]
    python -m repro.check mutants [--names a,b] [--budget N] [--turbo]
                                  [--hive] [--frontier] [--shard]
                                  [--swarm]

``fuzz`` samples seed-derived cases and runs each through the oracle
ladder, shrinking the first failure and exiting non-zero with a one-line
repro command.  ``repro`` replays exactly one case.  ``mutants`` runs
the mutation sanity suite: every registered hand-injected protocol bug
must be caught within the per-mutation case budget — this is the check
that the checker itself works.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.check.cases import case_from_seed
from repro.check.differential import (
    CheckFailure,
    case_from_json,
    check_case,
)
from repro.check.mutations import MUTATIONS
from repro.check.shrink import shrink_case

__all__ = ["main"]

#: Per-mutation case budget for the sanity suite (stress cases are built
#: to trigger steal traffic fast; most mutations die on the first case).
MUTANT_CASE_BUDGET = 12


def _echo(msg: str) -> None:
    print(msg, flush=True)


# ---------------------------------------------------------------------------
# fuzz
# ---------------------------------------------------------------------------

def cmd_fuzz(args) -> int:
    deadline = time.monotonic() + args.seconds if args.seconds else None
    n_cases = 40 if args.smoke and args.cases is None else (args.cases or 200)
    seed = args.start_seed
    ran = 0
    t0 = time.monotonic()
    while ran < n_cases:
        if deadline is not None and time.monotonic() >= deadline:
            break
        case = case_from_seed(seed, stress=args.stress)
        failure = check_case(case, stress=args.stress, turbo=args.turbo,
                             hive=args.hive, serve=args.serve,
                             frontier=args.frontier, shard=args.shard,
                             swarm=args.swarm)
        ran += 1
        if failure is not None:
            _echo(failure.report())
            if not args.no_shrink:
                _echo("shrinking...")
                failure = shrink_case(failure, log=_echo)
                _echo(failure.report())
            _echo(f"repro: {failure.repro_command}")
            return 1
        if args.verbose:
            _echo(f"ok    {case.describe()}")
        seed += 1
    dt = time.monotonic() - t0
    _echo(f"fuzz: {ran} cases passed in {dt:.1f}s "
          f"(seeds {args.start_seed}..{seed - 1})")
    return 0


# ---------------------------------------------------------------------------
# repro
# ---------------------------------------------------------------------------

def cmd_repro(args) -> int:
    if args.case:
        case = case_from_json(args.case)
    elif args.seed is not None:
        case = case_from_seed(args.seed, stress=args.stress)
    else:
        _echo("repro: need a <seed> or --case '<json>'")
        return 2
    _echo(f"case: {case.describe()}")
    failure = check_case(case, mutation=args.mutation, stress=args.stress,
                         turbo=args.turbo, hive=args.hive, serve=args.serve,
                         frontier=args.frontier, shard=args.shard,
                         swarm=args.swarm)
    if failure is None:
        _echo("PASS: all oracle stages agree")
        return 0
    _echo(failure.report())
    return 1


# ---------------------------------------------------------------------------
# mutants
# ---------------------------------------------------------------------------

def run_mutant(name: str, *, budget: int = MUTANT_CASE_BUDGET,
               start_seed: int = 0,
               turbo: bool = False,
               hive: bool = False,
               serve: bool = False,
               frontier: bool = False,
               shard: bool = False,
               swarm: bool = False) -> Optional[CheckFailure]:
    """Fuzz one mutation with stress cases; return its first detection.

    ``turbo=True`` runs the primary pass under the fused turbo loop;
    ``hive=True`` adds the batched-lockstep differential rung.  Stress
    cases always carry a schedule perturbation, under which both engines
    fall back to the generic loop — so the perturbation is stripped
    here to make the fused/batched paths actually execute the buggy
    protocol.
    """
    for seed in range(start_seed, start_seed + budget):
        case = case_from_seed(seed, stress=True)
        if turbo or hive:
            case = case.with_(perturb_seed=None, jitter=0)
        failure = check_case(case, mutation=name, stress=True, turbo=turbo,
                             hive=hive, serve=serve, frontier=frontier,
                             shard=shard, swarm=swarm)
        if failure is not None:
            return failure
    return None


def cmd_mutants(args) -> int:
    names: List[str] = (args.names.split(",") if args.names
                        else sorted(MUTATIONS))
    missed = []
    for name in names:
        if name not in MUTATIONS:
            _echo(f"unknown mutation {name!r}; known: {sorted(MUTATIONS)}")
            return 2
        t0 = time.monotonic()
        failure = run_mutant(name, budget=args.budget, turbo=args.turbo,
                             hive=args.hive, serve=args.serve,
                             frontier=args.frontier, shard=args.shard,
                             swarm=args.swarm)
        dt = time.monotonic() - t0
        if failure is None:
            missed.append(name)
            _echo(f"MISSED {name}: not caught within {args.budget} cases "
                  f"({dt:.1f}s) — the checker has a blind spot")
        else:
            _echo(f"caught {name} [{failure.stage}] seed={failure.case.seed} "
                  f"({dt:.1f}s): {failure.message.splitlines()[0]}")
            if args.verbose:
                _echo(f"  repro: {failure.repro_command}")
    if missed:
        _echo(f"mutation suite FAILED: {len(missed)}/{len(names)} "
              f"undetected: {missed}")
        return 1
    _echo(f"mutation suite passed: {len(names)}/{len(names)} injected "
          f"bugs detected")
    return 0


# ---------------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.check",
        description="Differential fuzzing + steal-protocol invariant checks",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fuzz = sub.add_parser("fuzz", help="run the differential fuzz loop")
    fuzz.add_argument("--cases", type=int, default=None,
                      help="number of cases (default 200; 40 with --smoke)")
    fuzz.add_argument("--smoke", action="store_true",
                      help="CI smoke budget (40 cases or --seconds cap)")
    fuzz.add_argument("--seconds", type=float, default=None,
                      help="wall-clock budget; stops sampling when exceeded")
    fuzz.add_argument("--start-seed", type=int, default=0)
    fuzz.add_argument("--stress", action="store_true",
                      help="bias cases toward maximum steal contention")
    fuzz.add_argument("--no-shrink", action="store_true")
    fuzz.add_argument("--turbo", action="store_true",
                      help="run the primary pass under the fused turbo loop")
    fuzz.add_argument("--hive", action="store_true",
                      help="add the batched-lockstep (hive) differential "
                           "rung on eligible cases")
    fuzz.add_argument("--serve", action="store_true",
                      help="add the serve differential rung: every "
                           "case's DFS is also run through a live "
                           "repro.serve daemon and must match exactly")
    fuzz.add_argument("--frontier", action="store_true",
                      help="add the frontier differential rung: the "
                           "bit-packed SpMV engine must match the DFS "
                           "on reachability and its own level/parent "
                           "contract on every case")
    fuzz.add_argument("--shard", action="store_true",
                      help="add the shard differential rung: the "
                           "sharded tier (k=2 and k=4) must match the "
                           "unsharded engine on reachability and edge "
                           "inspections and be k-invariant on every "
                           "case")
    fuzz.add_argument("--swarm", action="store_true",
                      help="add the swarm differential rung: every "
                           "case-root lane of a three-lane lockstep "
                           "batch must be bit-identical to the "
                           "single-root frontier engine and agree "
                           "with the DFS/bfs_levels/min-parent "
                           "references on every case")
    fuzz.add_argument("--verbose", action="store_true")
    fuzz.set_defaults(func=cmd_fuzz)

    repro = sub.add_parser("repro", help="replay one case by seed or spec")
    repro.add_argument("seed", type=int, nargs="?", default=None)
    repro.add_argument("--case", type=str, default=None,
                       help="full JSON case spec (for shrunk cases)")
    repro.add_argument("--stress", action="store_true")
    repro.add_argument("--turbo", action="store_true",
                       help="run the primary pass under the fused turbo loop")
    repro.add_argument("--hive", action="store_true",
                       help="add the batched-lockstep (hive) differential "
                            "rung")
    repro.add_argument("--serve", action="store_true",
                       help="add the serve differential rung")
    repro.add_argument("--frontier", action="store_true",
                       help="add the frontier differential rung")
    repro.add_argument("--shard", action="store_true",
                       help="add the shard differential rung")
    repro.add_argument("--swarm", action="store_true",
                       help="add the swarm differential rung")
    repro.add_argument("--mutation", type=str, default=None,
                       choices=sorted(MUTATIONS))
    repro.set_defaults(func=cmd_repro)

    mutants = sub.add_parser(
        "mutants", help="verify every injected protocol bug is caught")
    mutants.add_argument("--names", type=str, default=None,
                         help="comma-separated subset (default: all)")
    mutants.add_argument("--budget", type=int, default=MUTANT_CASE_BUDGET)
    mutants.add_argument("--turbo", action="store_true",
                         help="run mutants under the fused turbo loop "
                              "(perturbation stripped so turbo engages)")
    mutants.add_argument("--hive", action="store_true",
                         help="also run the batched-lockstep (hive) "
                              "differential rung (perturbation stripped "
                              "so the hive engages)")
    mutants.add_argument("--serve", action="store_true",
                         help="run every mutant with the serve "
                              "differential rung active (injected bugs "
                              "must be caught through the served path)")
    mutants.add_argument("--frontier", action="store_true",
                         help="run every mutant with the frontier "
                              "differential rung active (injected DFS "
                              "bugs must still be caught with the "
                              "frontier oracle in the ladder)")
    mutants.add_argument("--shard", action="store_true",
                         help="run every mutant with the shard "
                              "differential rung active (injected bugs "
                              "must be caught through the sharded "
                              "tier's merge and self-checks)")
    mutants.add_argument("--swarm", action="store_true",
                         help="run every mutant with the swarm "
                              "differential rung active (injected DFS "
                              "bugs must still be caught with the "
                              "lockstep swarm oracle in the ladder)")
    mutants.add_argument("--verbose", action="store_true")
    mutants.set_defaults(func=cmd_mutants)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
