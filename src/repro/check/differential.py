"""Differential check driver for one fuzz case (``repro.check`` part 3).

:func:`check_case` runs a :class:`~repro.check.cases.FuzzCase` through a
fixed oracle ladder and reports the first failure (or None):

1. **monitored run** — DiggerBees under a live
   :class:`~repro.check.invariants.InvariantMonitor` with the engine's
   per-step sweep observer and the post-run ``check_invariants`` pass;
2. **output validation** — :func:`repro.validate.tree.validate_traversal`
   (tree validity + visited/reachable equality);
3. **serial reference** — visited set must equal
   :func:`~repro.validate.reference.serial_dfs`'s (the ground truth);
4. **fastpath differential** — rerun with ``fastpath`` flipped; cycles,
   steps, parent and visited must be bit-identical (the fast path
   promises an *identical schedule*, not merely a correct one);
5. **turbo differential** — rerun with ``turbo`` flipped; the fused
   scheduler-agent loop (:mod:`repro.core.turbo`) promises the identical
   schedule too, so cycles, steps, parent and visited must match
   bit-for-bit (skipped where the fused loop cannot engage: perturbed
   schedules and one-level stacks);
5b. **hive differential** (opt-in via ``hive=True``) — rerun the case as
   a two-run lockstep batch on the NumPy hive engine
   (:mod:`repro.core.hive`); every batched run must match the primary
   result bit-for-bit on cycles, steps, parent, visited *and* counters
   (skipped where the hive cannot engage, same gates as turbo plus
   hive eligibility);
5c. **hive steal-path differential** (with 5b) — rerun the same batch
   with ``hive_steal="scalar"``, pinning the per-lane scalar bailout
   against the vectorized steal/refill/leader passes that 5b just
   exercised; both engines must replay the primary's schedule exactly;
5d. **serve differential** (opt-in via ``serve=True``) — send the case's
   DFS through a live :mod:`repro.serve` daemon (real socket, wire
   protocol, admission, cache); the served payload must equal the
   canonical payload of the primary result, and — for unmutated runs —
   the repeat query must come back from the result cache, still
   identical;
5e. **frontier differential** (opt-in via ``frontier=True``) — run the
   bit-packed SpMV engine (:mod:`repro.core.frontier`) on the same
   graph; its visited set must equal the DFS's, its level array must
   equal :func:`~repro.graphs.properties.bfs_levels`, its parent array
   must equal the independent min-parent oracle, and forced push/pull
   runs must be bit-identical to the auto-switched one;
5f. **shard differential** (opt-in via ``shard=True``) — run the sharded
   execution tier (:mod:`repro.core.shard`) at k=2 and k=4 on the same
   graph; each run's visited set must equal both the primary's and the
   serial reference's, its levels must equal
   :func:`~repro.graphs.properties.bfs_levels`, its edge count must
   equal the primary's, its parent tree must equal the independent
   min-parent oracle (undirected cases), and the two k values must be
   bit-identical to each other (the canonical merge promises
   k-invariance);
5g. **swarm differential** (opt-in via ``swarm=True``) — run the case's
   root as one lane of a three-lane lockstep swarm batch
   (:mod:`repro.core.swarm`, with a second distinct root and the case
   root duplicated); every case-root lane must be bit-identical to the
   single-root :func:`~repro.core.frontier.run_frontier` result on
   visited, parent, level and the push/pull/edges-scanned profile, its
   visited set must equal the DFS's, its levels must equal
   ``bfs_levels``, and its parent tree must equal the independent
   min-parent oracle (undirected cases) — lane batching must never
   leak state across lanes;
6. **scheduler differential** — heap vs calendar-queue rerun must agree
   exactly (skipped under perturbation, which bypasses both);
7. **PDFS baseline differential** — CKL-PDFS reachability on the same
   graph must match (skipped on larger cases; it is the slowest oracle).

Every failure carries the one-line shell command that reproduces it
deterministically (acceptance criterion: *"every failure the fuzzer
reports prints a one-line repro command"*).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, fields
from typing import Optional

import numpy as np

from repro.check.cases import FuzzCase
from repro.check.invariants import InvariantMonitor
from repro.check.mutations import apply_mutation
from repro.core.diggerbees import DiggerBeesResult, run_diggerbees
from repro.errors import ReproError
from repro.validate.reference import serial_dfs
from repro.validate.tree import validate_traversal

__all__ = ["CheckFailure", "check_case", "run_monitored", "case_to_json",
           "case_from_json", "PDFS_MAX_VERTICES"]

#: Cases at or below this size also run the CKL-PDFS baseline oracle.
PDFS_MAX_VERTICES = 400


@dataclass(frozen=True)
class CheckFailure:
    """One oracle-ladder failure, with its deterministic repro command."""

    case: FuzzCase
    stage: str          # which oracle rung failed
    message: str        # first line of the underlying error / mismatch
    mutation: Optional[str] = None
    stress: bool = False
    turbo: bool = False
    hive: bool = False
    serve: bool = False
    frontier: bool = False
    shard: bool = False
    swarm: bool = False

    @property
    def repro_command(self) -> str:
        """One-line shell command that reproduces this exact failure."""
        cmd = "python -m repro.check repro"
        if self.case.shrunk_from is None:
            cmd += f" {self.case.seed}"
        else:
            # Shrunk cases are no longer seed-derivable: ship the full spec.
            cmd += f" --case '{case_to_json(self.case)}'"
        if self.stress:
            cmd += " --stress"  # also selects the per-step sweep period
        if self.turbo:
            cmd += " --turbo"
        if self.hive:
            cmd += " --hive"
        if self.serve:
            cmd += " --serve"
        if self.frontier:
            cmd += " --frontier"
        if self.shard:
            cmd += " --shard"
        if self.swarm:
            cmd += " --swarm"
        if self.mutation:
            cmd += f" --mutation {self.mutation}"
        return cmd

    def report(self) -> str:
        """Multi-line human-readable failure report."""
        lines = [
            f"FAIL [{self.stage}] {self.case.describe()}",
            f"  {self.message.splitlines()[0]}",
            f"  repro: {self.repro_command}",
        ]
        return "\n".join(lines)


def case_to_json(case: FuzzCase) -> str:
    """Compact JSON spec of a case (used for shrunk-case repro commands)."""
    return json.dumps(asdict(case), separators=(",", ":"))


def case_from_json(text: str) -> FuzzCase:
    """Inverse of :func:`case_to_json` (ignores unknown keys)."""
    data = json.loads(text)
    known = {f.name for f in fields(FuzzCase)}
    return FuzzCase(**{k: v for k, v in data.items() if k in known})


def _payload_diff(expected: dict, got: dict) -> str:
    """One-line summary of where two canonical payloads differ."""
    if expected == got:
        return ""
    if not isinstance(got, dict):
        return f"payload is {type(got).__name__}, not an object"
    keys = sorted(set(expected) | set(got))
    bad = [k for k in keys if expected.get(k) != got.get(k)]
    parts = []
    for k in bad[:4]:
        e, g = expected.get(k), got.get(k)
        if isinstance(e, list) and isinstance(g, list):
            if len(e) != len(g):
                parts.append(f"{k}: length {len(e)} vs {len(g)}")
            else:
                at = next(i for i, (a, b) in enumerate(zip(e, g)) if a != b)
                parts.append(f"{k}: first diff at index {at} "
                             f"({e[at]!r} vs {g[at]!r})")
        else:
            parts.append(f"{k}: {str(e)[:40]!r} vs {str(g)[:40]!r}")
    return "; ".join(parts) or "payloads differ"


def run_monitored(case: FuzzCase, *, check_every: int = 64,
                  **config_overrides) -> DiggerBeesResult:
    """Run one case under a fresh invariant monitor; raises on violation."""
    graph = case.build_graph()
    config = case.build_config(**config_overrides)
    monitor = InvariantMonitor(check_every=check_every)
    result = run_diggerbees(
        graph, case.root, config=config,
        check_invariants=True, instrument=monitor.attach,
    )
    monitor.final_check()
    return result


def check_case(case: FuzzCase, *, mutation: Optional[str] = None,
               stress: bool = False, turbo: bool = False,
               hive: bool = False, serve: bool = False,
               frontier: bool = False, shard: bool = False,
               swarm: bool = False,
               check_every: Optional[int] = None) -> Optional[CheckFailure]:
    """Run the full oracle ladder on ``case``; None means it passed.

    ``mutation`` (a name from :data:`repro.check.mutations.MUTATIONS`)
    applies the named injected bug for the whole ladder — used by the
    mutation sanity suite and by ``repro --mutation`` to replay a
    mutant's failure.

    ``turbo`` runs the primary (monitored) pass with the fused turbo
    loop; the turbo-differential rung then compares against the generic
    engine instead of vice versa.  Bugs visible only under turbo are
    caught either way, since both modes run on every eligible case.

    ``hive`` adds the batched-lockstep differential rung: the case is
    rerun as a two-run hive batch and every batched run must match the
    primary result bit-for-bit, counters included.  Opt-in because it
    roughly doubles eligible cases' cost.

    ``serve`` adds the serve differential rung: the case's DFS is sent
    through the process-wide :class:`~repro.check.serve_oracle.
    ServeOracle` daemon and the served payload must equal the primary
    result's canonical payload exactly.  Mutated runs bypass the
    daemon's result cache so an injected bug's output is never memoized
    across the mutation boundary.

    ``frontier`` adds the frontier differential rung: the bit-packed
    SpMV engine traverses the same graph and must agree with the DFS on
    reachability, with :func:`~repro.graphs.properties.bfs_levels` on
    level structure, and with the independent min-parent oracle on the
    tree — and its push/pull/auto modes must be bit-identical.

    ``shard`` adds the shard differential rung: the sharded execution
    tier partitions the graph, runs one engine per district with the
    case's config, and the canonical merged result must agree with the
    primary on reachability and edge inspections, with ``bfs_levels``
    on levels, with the min-parent oracle on the tree (undirected
    cases), and be bit-identical between k=2 and k=4.

    ``swarm`` adds the swarm differential rung: the case's root runs as
    one lane of a three-lane lockstep batch (with a second distinct
    root in the middle and the case root duplicated at the end, so
    cross-lane leakage has somewhere to come from) and every case-root
    lane must be bit-identical to the single-root frontier engine while
    also agreeing with the DFS, ``bfs_levels`` and the min-parent
    oracle.

    ``check_every`` defaults to a per-step sweep (1) in stress mode —
    transient corruption (e.g. an ABA duplicate that the victim pops a
    step later) is only visible to a sweep that runs before the next
    step — and to 64 otherwise, where throughput matters more.
    """
    if check_every is None:
        check_every = 1 if stress else 64

    def fail(stage: str, message: str) -> CheckFailure:
        return CheckFailure(case=case, stage=stage, message=str(message),
                            mutation=mutation, stress=stress, turbo=turbo,
                            hive=hive, serve=serve, frontier=frontier,
                            shard=shard, swarm=swarm)

    with apply_mutation(mutation):
        # Stage 1: monitored run (invariant hooks + periodic sweep).
        try:
            result = run_monitored(case, check_every=check_every,
                                   turbo=turbo)
        except ReproError as exc:
            return fail("invariants", f"{type(exc).__name__}: {exc}")

        graph = case.build_graph()

        # Stage 2: output validators (tree validity, visited vs reachable).
        try:
            validate_traversal(graph, result.traversal)
        except ReproError as exc:
            return fail("validate", f"{type(exc).__name__}: {exc}")

        # Stage 3: serial reference (ground-truth reachability).
        ref = serial_dfs(graph, case.root)
        if not np.array_equal(ref.visited, result.traversal.visited):
            missing = np.flatnonzero(ref.visited & ~result.traversal.visited)
            extra = np.flatnonzero(~ref.visited & result.traversal.visited)
            return fail(
                "serial-diff",
                f"visited set differs from serial DFS: "
                f"{missing.size} missing (e.g. {missing[:5].tolist()}), "
                f"{extra.size} extra (e.g. {extra[:5].tolist()})",
            )

        # Stage 4: fastpath differential — flipping the expansion path
        # must reproduce the *identical* schedule, not just a correct one.
        try:
            flipped = run_monitored(
                case, check_every=check_every, turbo=turbo,
                fastpath=not case.build_config().fastpath,
            )
        except ReproError as exc:
            return fail("fastpath-diff", f"{type(exc).__name__}: {exc}")
        if flipped.cycles != result.cycles:
            return fail("fastpath-diff",
                        f"cycles diverge: fastpath={result.cycles}, "
                        f"reference={flipped.cycles}")
        if flipped.engine.steps != result.engine.steps:
            return fail("fastpath-diff",
                        f"steps diverge: fastpath={result.engine.steps}, "
                        f"reference={flipped.engine.steps}")
        if not np.array_equal(flipped.traversal.parent,
                              result.traversal.parent):
            diff = np.flatnonzero(
                flipped.traversal.parent != result.traversal.parent)
            return fail("fastpath-diff",
                        f"parent arrays diverge at {diff.size} vertices "
                        f"(e.g. {diff[:5].tolist()})")
        if not np.array_equal(flipped.traversal.visited,
                              result.traversal.visited):
            return fail("fastpath-diff", "visited arrays diverge")

        # Stage 5: turbo differential — the fused scheduler-agent loop
        # must replay the identical schedule.  Only runs where the fused
        # loop can actually engage (two-level, unperturbed); elsewhere
        # turbo falls back to the generic loop and the comparison would
        # be a self-test.
        if case.perturb_seed is None and case.two_level:
            try:
                fused = run_monitored(case, check_every=check_every,
                                      turbo=not turbo)
            except ReproError as exc:
                return fail("turbo-diff", f"{type(exc).__name__}: {exc}")
            if (fused.cycles != result.cycles
                    or fused.engine.steps != result.engine.steps):
                return fail(
                    "turbo-diff",
                    f"fused loop diverges: cycles "
                    f"{result.cycles}/{fused.cycles}, steps "
                    f"{result.engine.steps}/{fused.engine.steps}")
            if not np.array_equal(fused.traversal.parent,
                                  result.traversal.parent):
                diff = np.flatnonzero(
                    fused.traversal.parent != result.traversal.parent)
                return fail("turbo-diff",
                            f"parent arrays diverge at {diff.size} vertices "
                            f"(e.g. {diff[:5].tolist()})")
            if not np.array_equal(fused.traversal.visited,
                                  result.traversal.visited):
                return fail("turbo-diff", "visited arrays diverge")

        # Stage 5b: hive differential — the batched lockstep engine must
        # replay the identical schedule for every run in a batch.  A
        # two-run batch exercises true lockstep (shared slabs, per-tick
        # selection) rather than degenerating to a scalar drain.
        if hive and case.perturb_seed is None and case.two_level:
            from repro.core.hive import hive_eligible, run_hive

            hconfig = case.build_config()
            if hive_eligible(hconfig):
                try:
                    pair = run_hive(graph, [(case.root, hconfig)] * 2)
                except ReproError as exc:
                    return fail("hive-diff", f"{type(exc).__name__}: {exc}")
                for i, hres in enumerate(pair):
                    if (hres.cycles != result.cycles
                            or hres.engine.steps != result.engine.steps):
                        return fail(
                            "hive-diff",
                            f"lockstep run {i} diverges: cycles "
                            f"{result.cycles}/{hres.cycles}, steps "
                            f"{result.engine.steps}/{hres.engine.steps}")
                    if not np.array_equal(hres.traversal.parent,
                                          result.traversal.parent):
                        diff = np.flatnonzero(hres.traversal.parent
                                              != result.traversal.parent)
                        return fail(
                            "hive-diff",
                            f"lockstep run {i}: parent arrays diverge at "
                            f"{diff.size} vertices "
                            f"(e.g. {diff[:5].tolist()})")
                    if not np.array_equal(hres.traversal.visited,
                                          result.traversal.visited):
                        return fail("hive-diff",
                                    f"lockstep run {i}: visited arrays "
                                    f"diverge")
                    if vars(hres.counters) != vars(result.counters):
                        keys = sorted(
                            k for k, v in vars(result.counters).items()
                            if vars(hres.counters).get(k) != v)
                        return fail(
                            "hive-diff",
                            f"lockstep run {i}: counters diverge "
                            f"({', '.join(keys)})")

                # Stage 5c: hive steal-path differential — the batched
                # steal/refill/leader passes (hive_steal="vector", the
                # default above) against the per-lane scalar bailout.
                # Both must replay the primary's schedule exactly, so
                # any drift in the vectorized CAS/transfer/cost logic
                # surfaces as a cycles/steps/counter mismatch here.
                sconfig = hconfig.with_overrides(hive_steal="scalar")
                try:
                    spair = run_hive(graph, [(case.root, sconfig)] * 2)
                except ReproError as exc:
                    return fail("hive-steal-diff",
                                f"{type(exc).__name__}: {exc}")
                for i, hres in enumerate(spair):
                    if (hres.cycles != result.cycles
                            or hres.engine.steps != result.engine.steps):
                        return fail(
                            "hive-steal-diff",
                            f"scalar-steal run {i} diverges: cycles "
                            f"{result.cycles}/{hres.cycles}, steps "
                            f"{result.engine.steps}/{hres.engine.steps}")
                    if not np.array_equal(hres.traversal.parent,
                                          result.traversal.parent):
                        return fail(
                            "hive-steal-diff",
                            f"scalar-steal run {i}: parent arrays diverge")
                    if not np.array_equal(hres.traversal.visited,
                                          result.traversal.visited):
                        return fail(
                            "hive-steal-diff",
                            f"scalar-steal run {i}: visited arrays diverge")
                    if vars(hres.counters) != vars(result.counters):
                        keys = sorted(
                            k for k, v in vars(result.counters).items()
                            if vars(hres.counters).get(k) != v)
                        return fail(
                            "hive-steal-diff",
                            f"scalar-steal run {i}: counters diverge "
                            f"({', '.join(keys)})")

        # Stage 5d: serve differential — the daemon-served payload must
        # equal the canonical payload of the direct run.  The oracle
        # daemon executes in this process (jobs=0), so the mutation
        # monkeypatch is live on its executor threads and injected bugs
        # flow through the full wire/admission/dispatch stack.
        if serve:
            from repro.check.serve_oracle import serve_oracle
            from repro.serve.protocol import dfs_result_to_dict

            expected = dfs_result_to_dict(result)
            overrides = asdict(case.build_config(turbo=turbo))
            mutated = mutation is not None
            try:
                served, was_cached = serve_oracle().query_dfs(
                    graph, case.root, overrides, no_cache=mutated)
            except ReproError as exc:
                return fail("serve-diff", f"{type(exc).__name__}: {exc}")
            mismatch = _payload_diff(expected, served)
            if mismatch:
                return fail("serve-diff",
                            f"served payload diverges from direct "
                            f"execution: {mismatch}")
            if not mutated:
                # Repeat query: must come back from the result cache
                # (first query either populated it or already hit) and
                # stay identical — the memo path serves the same bytes.
                try:
                    served2, was_cached2 = serve_oracle().query_dfs(
                        graph, case.root, overrides)
                except ReproError as exc:
                    return fail("serve-diff",
                                f"cache-path query failed: "
                                f"{type(exc).__name__}: {exc}")
                if not was_cached2:
                    return fail("serve-diff",
                                "repeat query missed the result cache")
                mismatch = _payload_diff(expected, served2)
                if mismatch:
                    return fail("serve-diff",
                                f"cached payload diverges from direct "
                                f"execution: {mismatch}")

        # Stage 5e: frontier differential — the bit-packed SpMV engine
        # traverses the same graph; every piece of its result contract
        # is pinned against an independent reference: reachability
        # against the DFS result, levels against bfs_levels, the tree
        # against the min-parent oracle (shares no code with the
        # per-level gathers), and mode bit-identity across push/pull.
        if frontier:
            from repro.core.frontier import (
                FrontierConfig,
                min_parent_tree,
                run_frontier,
            )
            from repro.graphs.properties import bfs_levels

            try:
                fr = run_frontier(graph, case.root)
                validate_traversal(graph, fr.traversal)
            except ReproError as exc:
                return fail("frontier-diff", f"{type(exc).__name__}: {exc}")
            if not np.array_equal(fr.traversal.visited,
                                  result.traversal.visited):
                missing = np.flatnonzero(result.traversal.visited
                                         & ~fr.traversal.visited)
                extra = np.flatnonzero(~result.traversal.visited
                                       & fr.traversal.visited)
                return fail(
                    "frontier-diff",
                    f"visited set differs from DFS: {missing.size} missing "
                    f"(e.g. {missing[:5].tolist()}), {extra.size} extra "
                    f"(e.g. {extra[:5].tolist()})")
            ref_levels = bfs_levels(graph, case.root)
            if not np.array_equal(fr.level, ref_levels):
                diff = np.flatnonzero(fr.level != ref_levels)
                return fail(
                    "frontier-diff",
                    f"level array diverges from bfs_levels at {diff.size} "
                    f"vertices (e.g. {diff[:5].tolist()})")
            if not graph.directed:
                # The min-parent oracle and the pull path both read each
                # vertex's own row as in-edges — symmetric CSR only.
                oracle = min_parent_tree(graph, ref_levels, case.root)
                if not np.array_equal(fr.traversal.parent, oracle):
                    diff = np.flatnonzero(fr.traversal.parent != oracle)
                    return fail(
                        "frontier-diff",
                        f"parent diverges from the min-parent oracle at "
                        f"{diff.size} vertices (e.g. {diff[:5].tolist()})")
                for forced in ("push", "pull"):
                    try:
                        alt = run_frontier(
                            graph, case.root,
                            config=FrontierConfig(mode=forced))
                    except ReproError as exc:
                        return fail("frontier-diff",
                                    f"{forced} mode: "
                                    f"{type(exc).__name__}: {exc}")
                    if not (np.array_equal(alt.traversal.parent,
                                           fr.traversal.parent)
                            and np.array_equal(alt.level, fr.level)):
                        return fail(
                            "frontier-diff",
                            f"forced {forced} mode diverges from auto "
                            f"(modes promise bit-identical results)")

        # Stage 5f: shard differential — the sharded tier partitions the
        # graph, runs the case's engine per district, and its canonical
        # merge must agree with everything already pinned above:
        # reachability with the primary AND the serial reference, levels
        # with bfs_levels, edge inspections with the primary, the tree
        # with the independent min-parent oracle (undirected), and the
        # whole result must be invariant between k=2 and k=4.
        if shard:
            from repro.core.frontier import min_parent_tree
            from repro.core.shard import run_sharded
            from repro.graphs.properties import bfs_levels

            sconfig = case.build_config(turbo=turbo)
            sharded = {}
            for kk in (2, 4):
                try:
                    sres = run_sharded(graph, case.root, config=sconfig,
                                       k=kk)
                    validate_traversal(graph, sres.traversal)
                except ReproError as exc:
                    return fail("shard-diff",
                                f"k={kk}: {type(exc).__name__}: {exc}")
                sharded[kk] = sres
                if not np.array_equal(sres.traversal.visited,
                                      result.traversal.visited):
                    missing = np.flatnonzero(result.traversal.visited
                                             & ~sres.traversal.visited)
                    extra = np.flatnonzero(~result.traversal.visited
                                           & sres.traversal.visited)
                    return fail(
                        "shard-diff",
                        f"k={kk}: visited set differs from the unsharded "
                        f"engine: {missing.size} missing "
                        f"(e.g. {missing[:5].tolist()}), {extra.size} "
                        f"extra (e.g. {extra[:5].tolist()})")
                if not np.array_equal(sres.traversal.visited, ref.visited):
                    return fail("shard-diff",
                                f"k={kk}: visited set differs from "
                                f"serial DFS")
                if (sres.traversal.edges_traversed
                        != result.traversal.edges_traversed):
                    return fail(
                        "shard-diff",
                        f"k={kk}: edge inspections diverge: sharded="
                        f"{sres.traversal.edges_traversed}, primary="
                        f"{result.traversal.edges_traversed}")
                ref_levels = bfs_levels(graph, case.root)
                if not np.array_equal(sres.levels, ref_levels):
                    diff = np.flatnonzero(sres.levels != ref_levels)
                    return fail(
                        "shard-diff",
                        f"k={kk}: level array diverges from bfs_levels "
                        f"at {diff.size} vertices "
                        f"(e.g. {diff[:5].tolist()})")
                if not graph.directed:
                    oracle = min_parent_tree(graph, ref_levels, case.root)
                    if not np.array_equal(sres.traversal.parent, oracle):
                        diff = np.flatnonzero(
                            sres.traversal.parent != oracle)
                        return fail(
                            "shard-diff",
                            f"k={kk}: parent diverges from the "
                            f"min-parent oracle at {diff.size} vertices "
                            f"(e.g. {diff[:5].tolist()})")
            if not np.array_equal(sharded[2].traversal.parent,
                                  sharded[4].traversal.parent):
                diff = np.flatnonzero(sharded[2].traversal.parent
                                      != sharded[4].traversal.parent)
                return fail(
                    "shard-diff",
                    f"k=2 vs k=4 parent arrays diverge at {diff.size} "
                    f"vertices (e.g. {diff[:5].tolist()}) — the "
                    f"canonical merge must be k-invariant")
            if (sharded[2].traversal.edges_traversed
                    != sharded[4].traversal.edges_traversed):
                return fail("shard-diff",
                            "k=2 vs k=4 edge inspections diverge")

        # Stage 5g: swarm differential — the case root runs as lanes 0
        # and 2 of a three-lane lockstep batch (a *different* root in
        # the middle, so cross-lane state leakage has a source, and the
        # case root duplicated, so per-lane retirement and swap removal
        # get exercised on identical twins).  Every case-root lane must
        # be bit-identical to the single-root frontier engine, and the
        # whole contract is re-pinned against the independent
        # references: DFS reachability, bfs_levels, min-parent oracle.
        if swarm:
            from repro.core.frontier import min_parent_tree, run_frontier
            from repro.core.swarm import run_swarm
            from repro.graphs.properties import bfs_levels

            n = graph.n_vertices
            other = (case.root + max(1, n // 2)) % n
            roots = [case.root, other, case.root]
            try:
                single = run_frontier(graph, case.root)
                lanes = run_swarm(graph, roots)
                validate_traversal(graph, lanes[0].traversal)
            except ReproError as exc:
                return fail("swarm-diff", f"{type(exc).__name__}: {exc}")
            for li in (0, 2):
                lane = lanes[li]
                if not np.array_equal(lane.traversal.visited,
                                      single.traversal.visited):
                    return fail(
                        "swarm-diff",
                        f"lane {li}: visited set diverges from the "
                        f"single-root frontier engine (lanes must be "
                        f"bit-identical)")
                if not np.array_equal(lane.traversal.parent,
                                      single.traversal.parent):
                    diff = np.flatnonzero(lane.traversal.parent
                                          != single.traversal.parent)
                    return fail(
                        "swarm-diff",
                        f"lane {li}: parent diverges from the "
                        f"single-root frontier engine at {diff.size} "
                        f"vertices (e.g. {diff[:5].tolist()})")
                if not np.array_equal(lane.level, single.level):
                    return fail(
                        "swarm-diff",
                        f"lane {li}: level array diverges from the "
                        f"single-root frontier engine")
                if (lane.n_levels, lane.pushes, lane.pulls,
                        lane.edges_scanned) != (single.n_levels,
                                                single.pushes,
                                                single.pulls,
                                                single.edges_scanned):
                    return fail(
                        "swarm-diff",
                        f"lane {li}: execution profile diverges from the "
                        f"single-root frontier engine: "
                        f"levels/pushes/pulls/edges "
                        f"{lane.n_levels}/{lane.pushes}/{lane.pulls}/"
                        f"{lane.edges_scanned} vs "
                        f"{single.n_levels}/{single.pushes}/"
                        f"{single.pulls}/{single.edges_scanned}")
            if not np.array_equal(lanes[0].traversal.visited,
                                  result.traversal.visited):
                missing = np.flatnonzero(result.traversal.visited
                                         & ~lanes[0].traversal.visited)
                extra = np.flatnonzero(~result.traversal.visited
                                       & lanes[0].traversal.visited)
                return fail(
                    "swarm-diff",
                    f"visited set differs from DFS: {missing.size} "
                    f"missing (e.g. {missing[:5].tolist()}), "
                    f"{extra.size} extra (e.g. {extra[:5].tolist()})")
            ref_levels = bfs_levels(graph, case.root)
            if not np.array_equal(lanes[0].level, ref_levels):
                diff = np.flatnonzero(lanes[0].level != ref_levels)
                return fail(
                    "swarm-diff",
                    f"level array diverges from bfs_levels at "
                    f"{diff.size} vertices (e.g. {diff[:5].tolist()})")
            if not graph.directed:
                oracle = min_parent_tree(graph, ref_levels, case.root)
                if not np.array_equal(lanes[0].traversal.parent, oracle):
                    diff = np.flatnonzero(
                        lanes[0].traversal.parent != oracle)
                    return fail(
                        "swarm-diff",
                        f"parent diverges from the min-parent oracle at "
                        f"{diff.size} vertices (e.g. {diff[:5].tolist()})")

        # Stage 6: scheduler differential (heap vs calendar queue).
        # Perturbed runs use the dedicated perturbation loop, which
        # bypasses the scheduler choice entirely — nothing to compare.
        if case.perturb_seed is None:
            other = ("calendar"
                     if case.build_config().scheduler == "heap" else "heap")
            try:
                swapped = run_monitored(case, check_every=check_every,
                                        scheduler=other)
            except ReproError as exc:
                return fail("scheduler-diff", f"{type(exc).__name__}: {exc}")
            if (swapped.cycles != result.cycles
                    or swapped.engine.steps != result.engine.steps):
                return fail(
                    "scheduler-diff",
                    f"schedulers diverge: heap/calendar cycles "
                    f"{result.cycles}/{swapped.cycles}, steps "
                    f"{result.engine.steps}/{swapped.engine.steps}")

        # Stage 7: CPU PDFS baseline (reachability oracle, small cases).
        if graph.n_vertices <= PDFS_MAX_VERTICES:
            from repro.baselines.pdfs_cpu import run_ckl_pdfs
            try:
                pdfs = run_ckl_pdfs(graph, case.root)
            except ReproError as exc:
                return fail("pdfs-diff", f"{type(exc).__name__}: {exc}")
            if not np.array_equal(pdfs.traversal.visited,
                                  result.traversal.visited):
                return fail("pdfs-diff",
                            "visited set differs from CKL-PDFS baseline")

    return None
