"""Correctness tooling: invariant monitor, schedule fuzzer, differential
fuzz driver, failure shrinker, and the mutation sanity suite.

The oracle hierarchy (weakest to strongest coupling to the protocol):

1. serial reference DFS (ground-truth reachability);
2. output validators (:mod:`repro.validate.tree`);
3. steal-protocol invariant hooks (:class:`InvariantMonitor`) firing at
   every steal / flush / refill plus a periodic global sweep;
4. differential reruns (fastpath vs reference expansion, heap vs
   calendar scheduler, CPU PDFS baselines).

See ``docs/TESTING.md`` for the full map and CLI usage.
"""

from repro.check.cases import FAMILIES, FuzzCase, case_from_seed
from repro.check.differential import (
    CheckFailure,
    case_from_json,
    case_to_json,
    check_case,
    run_monitored,
)
from repro.check.invariants import InvariantMonitor
from repro.check.mutations import MUTATIONS, Mutation, apply_mutation
from repro.check.shrink import shrink_case

__all__ = [
    "FAMILIES",
    "FuzzCase",
    "case_from_seed",
    "CheckFailure",
    "case_from_json",
    "case_to_json",
    "check_case",
    "run_monitored",
    "InvariantMonitor",
    "MUTATIONS",
    "Mutation",
    "apply_mutation",
    "shrink_case",
]
