"""Calibration report: what the cost tables imply vs the paper's rates.

DESIGN.md §4.3 keeps every tunable constant in ``repro.sim.device``;
this module derives the *physical* quantities those constants imply
(per-worker nanoseconds per edge, kernel-launch wall time, streaming
bandwidth share) and compares them against the anchor points taken from
the paper's measurements.  `benchmarks/bench_calibration.py` prints the
table so calibration drift shows up in benchmark logs, not just diffs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.sim.device import A100, H100, XEON_MAX_9462, CpuSpec, DeviceSpec

__all__ = ["CalibrationAnchor", "ANCHORS", "derive_anchors", "calibration_table"]


@dataclass(frozen=True)
class CalibrationAnchor:
    """One physically meaningful derived quantity with its paper target."""

    name: str
    unit: str
    derived: float
    target: float          # anchor implied by the paper's measurements
    tolerance: float       # acceptable relative deviation

    @property
    def within_tolerance(self) -> bool:
        if self.target == 0:
            return self.derived == 0
        return abs(self.derived / self.target - 1.0) <= self.tolerance


def _gpu_step_ns(device: DeviceSpec, window: int = 3) -> float:
    """Wall latency of one warp DFS step scanning ``window`` neighbours."""
    cycles = device.costs.visit_base + device.costs.visit_per_edge * window
    return cycles / device.clock_hz * 1e9


def _cpu_edge_ns(cpu: CpuSpec, row_len: int) -> float:
    """Per-edge wall latency on a CPU core for rows of ``row_len``."""
    c = cpu.costs
    lines = -(-min(row_len, 8) // c.line_width)
    # One step per 8-neighbour window plus the row-open miss.
    windows = -(-row_len // 8)
    cycles = c.row_open + windows * (c.visit_base + c.visit_per_line * lines)
    return cycles / cpu.clock_hz * 1e9 / row_len


def _launch_us(device: DeviceSpec) -> float:
    return device.costs.kernel_launch / device.clock_hz * 1e6


def _stream_gteps(device: DeviceSpec) -> float:
    """Device-wide BFS streaming rate implied by the cost table."""
    return (device.costs.bfs_edge_throughput * device.sm_count
            * device.clock_hz / 1e9)


def derive_anchors() -> List[CalibrationAnchor]:
    """All calibration anchors (see the paper-derived targets inline)."""
    return [
        # Paper: DiggerBees euro_osm 2292 MTEPS over ~1056 warps at ~3
        # consumed edges/step => ~460 ns/edge => ~1.4 us/step at full
        # utilization; our per-step latency models the dependent-chain
        # portion only (~0.1-0.2 us), utilization supplies the rest.
        CalibrationAnchor(
            "H100 warp DFS step latency", "ns",
            _gpu_step_ns(H100), 115.0, 0.25),
        CalibrationAnchor(
            "A100 warp DFS step latency", "ns",
            _gpu_step_ns(A100), 125.0, 0.25),
        # Paper: CKL-PDFS euro_osm 378 MTEPS / 64 cores = 169 ns/edge on
        # degree-3 rows.
        CalibrationAnchor(
            "Xeon per-edge latency (deg-3 rows)", "ns",
            _cpu_edge_ns(XEON_MAX_9462, 3), 169.0, 0.45),
        # Paper: CKL-PDFS hollywood 2738 MTEPS / 64 cores = 23 ns/edge on
        # degree-30 rows (cache-line amortization).
        CalibrationAnchor(
            "Xeon per-edge latency (deg-30 rows)", "ns",
            _cpu_edge_ns(XEON_MAX_9462, 30), 23.0, 0.60),
        # Level-synchronous launch + sync overhead: ~6 us per level.
        CalibrationAnchor(
            "H100 kernel launch + sync", "us", _launch_us(H100), 6.1, 0.15),
        CalibrationAnchor(
            "A100 kernel launch + sync", "us", _launch_us(A100), 7.0, 0.15),
        # Streaming BFS: bandwidth-bound, so the two devices must sit
        # within ~4% of each other (1.94 vs 2.02 TB/s).
        CalibrationAnchor(
            "H100/A100 BFS stream ratio", "x",
            _stream_gteps(H100) / _stream_gteps(A100), 1.04, 0.05),
    ]


def calibration_table() -> str:
    """Rendered calibration report."""
    from repro.utils.tables import format_table

    rows = []
    for a in derive_anchors():
        rows.append([a.name, f"{a.derived:.1f} {a.unit}",
                     f"{a.target:.1f} {a.unit}",
                     "ok" if a.within_tolerance else "DRIFTED"])
    return format_table(
        ["anchor", "derived from cost table", "paper target", "status"],
        rows, aligns=["l", "r", "r", "l"],
        title="Calibration — physical quantities implied by repro.sim.device",
    )
