"""Execution simulators: device models, event engine, counters, metrics."""

from repro.sim.device import (
    A100,
    H100,
    XEON_MAX_9462,
    CpuOpCosts,
    CpuSpec,
    DeviceSpec,
    OpCosts,
    get_device,
    hotring_smem_bytes,
    required_stack_bytes,
)
from repro.sim.engine import Agent, EngineResult, EventLoop, StepOutcome
from repro.sim.metrics import PerfSample, mteps
from repro.sim.trace import SimCounters, TraceEvent, TraceLog

__all__ = [
    "DeviceSpec",
    "CpuSpec",
    "OpCosts",
    "CpuOpCosts",
    "A100",
    "H100",
    "XEON_MAX_9462",
    "get_device",
    "hotring_smem_bytes",
    "required_stack_bytes",
    "EventLoop",
    "Agent",
    "StepOutcome",
    "EngineResult",
    "SimCounters",
    "TraceLog",
    "TraceEvent",
    "PerfSample",
    "mteps",
]
