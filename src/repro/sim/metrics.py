"""Performance metric computation (MTEPS etc.).

The paper reports traversal performance as MTEPS — million traversed
edges per second — where "traversed edges" counts neighbour inspections
and the runtime is the simulated kernel time.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PerfSample", "mteps"]


def mteps(edges_traversed: int, seconds: float) -> float:
    """Million traversed edges per second; raises on non-positive runtime."""
    if seconds <= 0:
        raise ValueError(f"runtime must be positive, got {seconds}")
    if edges_traversed < 0:
        raise ValueError(f"edge count must be >= 0, got {edges_traversed}")
    return edges_traversed / seconds / 1e6


@dataclass(frozen=True)
class PerfSample:
    """One (method, graph, device, root) performance measurement."""

    method: str
    graph: str
    device: str
    root: int
    edges_traversed: int
    cycles: int
    seconds: float
    failed: bool = False
    failure_reason: str = ""

    @property
    def mteps(self) -> float:
        """MTEPS, or 0.0 for failed runs (the paper plots failures as 0)."""
        if self.failed or self.seconds <= 0:
            return 0.0
        return mteps(self.edges_traversed, self.seconds)

    @staticmethod
    def failure(method: str, graph: str, device: str, root: int,
                reason: str) -> "PerfSample":
        """A failed-run marker (e.g. NVG-DFS memory exhaustion)."""
        return PerfSample(
            method=method, graph=graph, device=device, root=root,
            edges_traversed=0, cycles=0, seconds=0.0,
            failed=True, failure_reason=reason,
        )
