"""Device models and operation cost tables (single source of truth).

The simulator prices each algorithmic operation in **cycles** of the
modelled device.  Two regimes matter (DESIGN.md §4.1):

* DFS warp steps are *latency-bound dependent chains*: each step issues a
  dependent global-memory access (row_ptr, then column_idx, then the
  visited flag), so a step costs hundreds of cycles regardless of how few
  bytes move.  This is what caps per-warp DFS throughput on real GPUs.
* Level-synchronous BFS kernels are *throughput-bound streaming*: cost =
  kernel-launch overhead + frontier work divided by device-wide edge
  throughput.  Launch overhead per level is what makes BFS collapse on
  deep graphs (euro_osm: 17,346 levels).

All constants live here with their rationale so calibration drift is
visible in one diff.  Absolute MTEPS are *modelled*, not measured; only
relative shapes are claimed (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

__all__ = [
    "OpCosts",
    "CpuOpCosts",
    "DeviceSpec",
    "CpuSpec",
    "A100",
    "H100",
    "XEON_MAX_9462",
    "get_device",
    "GPU_DEVICES",
]


@dataclass(frozen=True)
class OpCosts:
    """GPU operation costs in device cycles.

    ``visit_base`` dominates: it models the dependent-load latency chain
    of one DFS expansion step (read top entry, fetch row_ptr pair, fetch a
    32-wide slice of column_idx, probe visited[]).  ``visit_per_edge``
    adds the marginal cost of scanning additional neighbours within the
    32-wide window (register/SMEM work, nearly free next to the latency).
    """

    # Warp-level DFS stepping (latency-bound).
    visit_base: int = 220
    visit_per_edge: int = 2
    hot_push: int = 4            # shared-memory circular-buffer insert
    hot_pop: int = 4
    visited_cas: int = 40        # atomicCAS on the global visited array
    cas_retry: int = 30          # extra cost when a CAS loses

    # HotRing <-> ColdSeg movement (bulk async copies; paper §3.3 notes
    # TMA-driven copies are ~5% faster for refill, reflected below).
    flush_base: int = 160
    flush_per_entry: int = 2
    refill_base: int = 152
    refill_per_entry: int = 2

    # Work stealing.
    steal_scan_per_warp: int = 6     # reading a peer's head/tail in SMEM
    steal_intra_base: int = 260      # CAS + fence + SMEM copy setup,
    # including the victim-side slowdown of tail contention (charged to
    # the thief since the victim is not re-priced mid-flight)
    steal_intra_per_entry: int = 2
    steal_inter_base: int = 1400     # global probe + CAS + fence + victim-side
    # global-memory contention
    steal_inter_per_entry: int = 4   # gmem -> smem copy per entry
    steal_fail: int = 130            # aborted reservation (lost CAS / below cutoff)
    victim_debt_intra: int = 260     # victim-side slowdown per intra steal
    victim_debt_inter: int = 520     # victim-side slowdown per inter steal
    # Multi-GPU extension: stealing across NVLink costs several times a
    # same-GPU global steal (protocol hop + remote atomics + PCIe/NVLink
    # latency), and the remote victim pays more coherence recovery.
    steal_remote_base: int = 5600
    steal_remote_per_entry: int = 16
    victim_debt_remote: int = 1040

    # Idle behaviour: polling with exponential backoff (a real kernel
    # would spin on an SMEM/global flag; backoff keeps event counts sane).
    idle_poll: int = 80
    idle_backoff_max: int = 4096

    # Level-synchronous baseline kernels.  Launch cost includes the
    # host-side sync + frontier-size readback between levels (~6 us on
    # real systems), which is what makes BFS collapse at 17k levels.
    kernel_launch: int = 12000
    bfs_edge_throughput: float = 0.55  # edges/cycle/SM, streaming regime
    bfs_bitmap_speedup: float = 1.9  # BerryBees bit-tensor frontier advantage
    nvg_edge_throughput: float = 0.35  # NVG path updates move more bytes/edge


@dataclass(frozen=True)
class CpuOpCosts:
    """CPU costs (cycles) for the work-stealing DFS baselines.

    Calibrated to the paper's measured per-core rates at full scale
    (graphs far exceed LLC): CKL-PDFS sustains ~170 ns/edge on
    low-degree road networks (dependent DRAM chain per row) but only
    ~25 ns/edge on high-degree social graphs, where long adjacency rows
    amortize the row-open miss across many cache-line-resident
    neighbours.  The model therefore charges ``row_open`` once per
    vertex (the dependent row_ptr + first-line miss) plus
    ``visit_per_line`` per 4 scanned neighbours (one cache line of the
    visited bitmap / column indices).
    """

    visit_base: int = 120        # per-step instruction + branch overhead
    row_open: int = 800          # dependent row_ptr + first-neighbour-line miss
    line_width: int = 4          # neighbours per cached line
    visit_per_line: int = 60     # additional line of neighbours/visited probes
    push: int = 4
    pop: int = 4
    visited_cas: int = 24
    cas_retry: int = 16
    steal_base: int = 320        # remote deque CAS + cache-line transfers
    steal_per_entry: int = 10
    steal_fail: int = 90
    idle_poll: int = 50
    idle_backoff_max: int = 2048


@dataclass(frozen=True)
class DeviceSpec:
    """A GPU model: SM array + memory capacity + clock + cost table."""

    name: str
    sm_count: int
    max_warps_per_block: int
    shared_mem_per_block: int     # bytes
    memory_bytes: int
    clock_hz: float
    costs: OpCosts = field(default_factory=OpCosts)

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert device cycles to wall-clock seconds."""
        return cycles / self.clock_hz

    def default_blocks(self, sim_scale: float = 1.0) -> int:
        """Block count for the paper's v4 configuration (one per SM).

        ``sim_scale`` < 1 shrinks the simulated machine proportionally
        (the simulator traverses scaled-down graphs; shrinking the SM
        array by the same factor preserves work-per-warp, and the
        A100:H100 ratio is preserved exactly).
        """
        if not (0.0 < sim_scale <= 1.0):
            raise ValueError(f"sim_scale must be in (0, 1], got {sim_scale}")
        return max(1, int(round(self.sm_count * sim_scale)))

    def scaled(self, **overrides) -> "DeviceSpec":
        """Copy with field overrides (for ablations and tests)."""
        return replace(self, **overrides)


@dataclass(frozen=True)
class CpuSpec:
    """A multicore CPU model for the PDFS baselines."""

    name: str
    cores: int
    memory_bytes: int
    clock_hz: float
    costs: CpuOpCosts = field(default_factory=CpuOpCosts)

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / self.clock_hz

    def default_cores(self, sim_scale: float = 1.0) -> int:
        if not (0.0 < sim_scale <= 1.0):
            raise ValueError(f"sim_scale must be in (0, 1], got {sim_scale}")
        return max(1, int(round(self.cores * sim_scale)))


# ---------------------------------------------------------------------------
# Presets (paper Table 1).
# ---------------------------------------------------------------------------

#: NVIDIA A100 (Ampere) PCIe: 108 SMs, 80 GB, 1.94 TB/s.  Clock = boost.
#: Cross-generation calibration (paper 4.4): costs are in *cycles of
#: this device*, so wall-clock-bound quantities get different cycle
#: counts than on H100.  (1) Memory latency is nearly constant in
#: nanoseconds across generations (HBM2e vs HBM3 differ ~10%), so
#: latency-bound DFS steps cost fewer A100 cycles at the lower clock.
#: (2) Kernel-launch + sync overhead is host-side and roughly constant
#: in wall time (slightly higher on the PCIe part).  (3) Streaming
#: throughput is *bandwidth*-bound -- 1.94 vs 2.02 TB/s, only ~4% apart --
#: so per-SM-per-cycle edge throughput is higher on A100 (fewer SMs
#: share almost the same bandwidth).  These three facts are what make
#: DiggerBees (latency+SM-bound) scale ~SM-count across generations
#: while NVG-DFS/BFS (launch+bandwidth-bound) barely move: the paper
#: measures 1.33x vs 1.18x.
A100 = DeviceSpec(
    name="A100",
    sm_count=108,
    max_warps_per_block=32,
    shared_mem_per_block=164 * 1024,
    memory_bytes=80 * 2**30,
    clock_hz=1.41e9,
    costs=OpCosts(
        # Latency-bound ops: ~9% more wall latency than H100.
        visit_base=171,              # 121 ns (H100: 220 cyc = 111 ns)
        visited_cas=36,
        flush_base=124,
        refill_base=124,             # Ampere lacks TMA: refill == flush
        steal_intra_base=205,
        steal_inter_base=1100,
        steal_fail=100,
        victim_debt_intra=205,
        victim_debt_inter=410,
        idle_poll=63,
        idle_backoff_max=3230,
        # Host-side launch: ~7.0 us vs H100's ~6.1 us.
        kernel_launch=9870,
        # Bandwidth-bound streaming: total edges/s proportional to
        # 1.94/2.02 TB/s, expressed per-SM-per-cycle.
        bfs_edge_throughput=0.90,
        nvg_edge_throughput=0.577,
    ),
)

#: NVIDIA H100 (Hopper) SXM5: 132 SMs, 64 GB, 2.02 TB/s, TMA async copies.
H100 = DeviceSpec(
    name="H100",
    sm_count=132,
    max_warps_per_block=32,
    shared_mem_per_block=228 * 1024,
    memory_bytes=64 * 2**30,
    clock_hz=1.98e9,
    costs=OpCosts(),
)

#: Intel Xeon Max 9462: 2 x 32 cores, 2 x 64 GB HBM, 1 TB/s.
XEON_MAX_9462 = CpuSpec(
    name="XeonMax9462",
    cores=64,
    memory_bytes=128 * 2**30,
    clock_hz=2.7e9,
)

GPU_DEVICES: Dict[str, DeviceSpec] = {"A100": A100, "H100": H100}


def get_device(name: str) -> DeviceSpec:
    """Look up a GPU preset by name (case-insensitive)."""
    key = name.upper()
    if key not in GPU_DEVICES:
        raise KeyError(f"unknown device {name!r}; available: {sorted(GPU_DEVICES)}")
    return GPU_DEVICES[key]


def stack_entry_bytes() -> int:
    """Bytes per two-level-stack entry: <vertex|offset> as two int32 words."""
    return 8


def hotring_smem_bytes(hot_size: int, warps_per_block: int) -> int:
    """Shared-memory footprint of a block's HotRings (+ head/tail + mask).

    Used to check a configuration actually fits the device's shared
    memory, which is the paper's issue #1.
    """
    per_warp = hot_size * stack_entry_bytes() + 2 * 4  # entries + head/tail
    return warps_per_block * per_warp + 4              # + 32-bit active mask


def required_stack_bytes(deepest_path: int) -> int:
    """Stack bytes a serial DFS would need for a path of given length.

    Motivates the two-level design: road graphs have paths of tens of
    thousands of vertices, i.e. megabytes of stack vs ~100 KB of SMEM.
    """
    return deepest_path * stack_entry_bytes()
