"""Export simulator traces to Chrome's trace-event format.

A :class:`~repro.sim.trace.TraceLog` can be dumped to the JSON format
understood by ``chrome://tracing`` / Perfetto, giving an interactive
timeline of every warp's visits, stack traffic, and steals: one process
per block, one thread per warp, one instant event per trace record (the
simulator records *actions*, not durations, so instant events with the
action kind as category is the faithful mapping).

Usage::

    result = run_diggerbees(g, 0, config=cfg.with_overrides(trace=True))
    export_chrome_trace(result.trace, "trace.json",
                        clock_hz=result.device.clock_hz)
"""

from __future__ import annotations

import json
import pathlib
from typing import IO, Optional, Union

from repro.sim.trace import TraceLog

__all__ = ["chrome_trace_events", "export_chrome_trace"]

PathLike = Union[str, pathlib.Path]

#: Sort order of event kinds in the Perfetto UI legend.
_KIND_COLOURS = {
    "visit": "good",
    "pop": "white",
    "flush": "bad",
    "refill": "terrible",
    "steal_intra": "yellow",
    "steal_inter": "olive",
    "steal_remote": "black",
    "steal_intra_fail": "grey",
    "steal_inter_fail": "grey",
}


def chrome_trace_events(trace: TraceLog, *, clock_hz: float = 1.98e9) -> list:
    """Convert a trace to a list of Chrome trace-event dicts.

    Timestamps are converted from simulated cycles to microseconds
    (Chrome's native unit).  Instant events carry the action detail in
    ``args``.
    """
    if clock_hz <= 0:
        raise ValueError(f"clock_hz must be positive, got {clock_hz}")
    events = []
    seen_threads = set()
    for ev in trace.events:
        if (ev.block, ev.warp) not in seen_threads:
            seen_threads.add((ev.block, ev.warp))
            events.append({
                "name": "thread_name", "ph": "M",
                "pid": ev.block, "tid": ev.warp,
                "args": {"name": f"warp {ev.warp}"},
            })
            events.append({
                "name": "process_name", "ph": "M",
                "pid": ev.block, "tid": 0,
                "args": {"name": f"block {ev.block}"},
            })
        record = {
            "name": ev.kind,
            "cat": ev.kind,
            "ph": "i",                      # instant event
            "s": "t",                       # thread-scoped
            "ts": ev.time / clock_hz * 1e6,  # cycles -> us
            "pid": ev.block,
            "tid": ev.warp,
            "args": {"detail": list(ev.detail)},
        }
        cname = _KIND_COLOURS.get(ev.kind)
        if cname:
            record["cname"] = cname
        events.append(record)
    return events


def export_chrome_trace(trace: Optional[TraceLog],
                        path_or_file: Union[PathLike, IO],
                        *, clock_hz: float = 1.98e9) -> int:
    """Write a trace as Chrome trace JSON; returns the event count.

    Raises ``ValueError`` when the run kept no trace (construct the
    config with ``trace=True``).
    """
    if trace is None:
        raise ValueError("no trace recorded; run with trace=True")
    events = chrome_trace_events(trace, clock_hz=clock_hz)
    payload = {"traceEvents": events, "displayTimeUnit": "ns"}
    if hasattr(path_or_file, "write"):
        json.dump(payload, path_or_file)
    else:
        with open(path_or_file, "w") as fh:
            json.dump(payload, fh)
    return len(events)
