"""Execution counters and optional event tracing.

Every algorithm running on the simulator reports through a
:class:`SimCounters` instance: edge traversals (the MTEPS numerator),
stack traffic, steal attempts/successes at both levels, CAS contention,
and per-block task counts (the Figure 9 measurement).  Tracing is off by
default; when enabled it records a bounded list of structured events for
debugging and for the §3.6 execution-example test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["SimCounters", "TraceEvent", "TraceLog"]


@dataclass
class SimCounters:
    """Mutable counter block shared by all agents of one simulation run."""

    # Work accounting.
    edges_traversed: int = 0          # neighbour inspections
    vertices_visited: int = 0         # successful visited-CAS claims
    pushes: int = 0
    pops: int = 0

    # Two-level stack traffic.
    flushes: int = 0
    flush_entries: int = 0
    refills: int = 0
    refill_entries: int = 0
    coldseg_compactions: int = 0
    max_hot_depth: int = 0
    max_cold_depth: int = 0

    # Stealing.
    intra_steal_attempts: int = 0
    intra_steal_successes: int = 0
    intra_steal_entries: int = 0
    inter_steal_attempts: int = 0
    inter_steal_successes: int = 0
    inter_steal_entries: int = 0
    # Multi-GPU extension: cross-GPU (NVLink) steals, a subset of inter.
    remote_steal_successes: int = 0
    remote_steal_entries: int = 0

    # Contention.
    cas_attempts: int = 0
    cas_failures: int = 0

    # Idleness.
    idle_polls: int = 0

    # Per-block tasks (vertices expanded), keyed by block id: Figure 9.
    tasks_per_block: Dict[int, int] = field(default_factory=dict)
    # Per-warp tasks keyed by (block, warp): §3.6 balance statement.
    tasks_per_warp: Dict[Tuple[int, int], int] = field(default_factory=dict)

    def record_task(self, block: int, warp: int, count: int = 1) -> None:
        """Credit ``count`` expanded vertices to ``(block, warp)``."""
        self.tasks_per_block[block] = self.tasks_per_block.get(block, 0) + count
        key = (block, warp)
        self.tasks_per_warp[key] = self.tasks_per_warp.get(key, 0) + count

    def block_task_array(self, n_blocks: int) -> List[int]:
        """Tasks per block as a dense list of length ``n_blocks``."""
        return [self.tasks_per_block.get(b, 0) for b in range(n_blocks)]

    @property
    def intra_steal_fail_rate(self) -> float:
        if self.intra_steal_attempts == 0:
            return 0.0
        return 1.0 - self.intra_steal_successes / self.intra_steal_attempts

    @property
    def inter_steal_fail_rate(self) -> float:
        if self.inter_steal_attempts == 0:
            return 0.0
        return 1.0 - self.inter_steal_successes / self.inter_steal_attempts

    @property
    def cas_failure_rate(self) -> float:
        if self.cas_attempts == 0:
            return 0.0
        return self.cas_failures / self.cas_attempts

    def as_dict(self) -> dict:
        """Flat dict for reports (per-block maps summarized)."""
        d = {
            k: v
            for k, v in self.__dict__.items()
            if not isinstance(v, dict)
        }
        d["n_blocks_with_tasks"] = len(self.tasks_per_block)
        d["n_warps_with_tasks"] = len(self.tasks_per_warp)
        return d


@dataclass(frozen=True)
class TraceEvent:
    """One structured trace record."""

    time: int
    block: int
    warp: int
    kind: str           # visit | push | pop | flush | refill | steal_intra | ...
    detail: tuple = ()


class TraceLog:
    """Bounded in-memory event trace (disabled unless constructed).

    ``limit`` guards against runaway memory on large runs; hitting it
    stops recording (``truncated`` flips to True) rather than raising,
    because traces are diagnostics, not results.
    """

    def __init__(self, limit: int = 200_000):
        if limit <= 0:
            raise ValueError(f"trace limit must be positive, got {limit}")
        self.limit = limit
        self.events: List[TraceEvent] = []
        self.truncated = False

    def record(self, time: int, block: int, warp: int, kind: str,
               detail: tuple = ()) -> None:
        if len(self.events) >= self.limit:
            self.truncated = True
            return
        self.events.append(TraceEvent(time, block, warp, kind, detail))

    def filter(self, kind: Optional[str] = None, block: Optional[int] = None,
               warp: Optional[int] = None) -> List[TraceEvent]:
        """Events matching all given criteria."""
        out = self.events
        if kind is not None:
            out = [e for e in out if e.kind == kind]
        if block is not None:
            out = [e for e in out if e.block == block]
        if warp is not None:
            out = [e for e in out if e.warp == warp]
        return out

    def kinds(self) -> Dict[str, int]:
        """Histogram of event kinds."""
        hist: Dict[str, int] = {}
        for e in self.events:
            hist[e.kind] = hist.get(e.kind, 0) + 1
        return hist

    def __len__(self) -> int:
        return len(self.events)
