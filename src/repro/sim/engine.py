"""Deterministic event-driven execution engine.

The engine steps a set of :class:`Agent` objects (warps on the GPU model,
cores on the CPU model) in global cycle order.  Each ``step`` performs one
atomic action against shared state and returns its cost in cycles; the
agent is then re-scheduled at ``now + cost``.  Atomicity at step
granularity gives exact CAS semantics: the winner's mutation is visible to
every later step, losers observe the new value.

Determinism: the ready queue is a heap keyed by ``(ready_at, seq)`` where
``seq`` is a monotonically increasing tie-breaker, so two runs with the
same seed produce identical schedules.  (FIFO tie-breaking also mirrors
fair hardware arbitration of simultaneous requests.)

Termination is algorithm-defined via ``is_terminated``; the engine adds a
deadlock guard (progress must occur within ``deadlock_window`` consecutive
steps) and a hard ``max_cycles`` safety net.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, List, Optional, Protocol, Sequence

from repro.errors import DeadlockError, SimulationError

__all__ = ["Agent", "StepOutcome", "EngineResult", "EventLoop"]


@dataclass(frozen=True)
class StepOutcome:
    """Result of one agent step.

    ``cost`` — cycles consumed (must be >= 1 unless the agent is done).
    ``made_progress`` — True when the step advanced the global computation
    (visited a vertex, moved entries, acquired work); used by the deadlock
    guard, so an algorithm in which *only* failed steal attempts and idle
    polls occur for a long window is reported as deadlocked.
    ``done`` — the agent leaves the schedule permanently.
    """

    cost: int
    made_progress: bool = True
    done: bool = False


class Agent(Protocol):
    """Anything the event loop can schedule."""

    def step(self, now: int) -> StepOutcome:  # pragma: no cover - protocol
        """Perform one atomic action at simulated time ``now``."""
        ...


@dataclass
class EngineResult:
    """Outcome of one simulation: elapsed cycles and scheduling stats."""

    cycles: int
    steps: int
    agents: int

    def seconds(self, clock_hz: float) -> float:
        return self.cycles / clock_hz


class EventLoop:
    """Heap-based deterministic scheduler (see module docstring).

    Parameters
    ----------
    agents:
        The agents to schedule; all start ready at time 0.
    is_terminated:
        Global predicate checked between steps; when it turns True the
        loop stops immediately (remaining queued events are abandoned,
        modelling kernel exit once the done-flag is observed).
    max_cycles:
        Hard upper bound on simulated time (safety net against
        miscalibrated runs); exceeding it raises ``SimulationError``.
    deadlock_window:
        If no step reports progress for this many consecutive steps while
        ``is_terminated`` stays False, raise ``DeadlockError``.  Sized
        generously relative to the agent count so legitimate idle phases
        (everyone polling while one warp works) never trip it.
    """

    def __init__(
        self,
        agents: Sequence[Agent],
        *,
        is_terminated: Callable[[], bool],
        max_cycles: int = 50_000_000_000,
        deadlock_window: Optional[int] = None,
    ):
        if not agents:
            raise SimulationError("event loop needs at least one agent")
        self._agents = list(agents)
        self._is_terminated = is_terminated
        self._max_cycles = int(max_cycles)
        self._deadlock_window = deadlock_window or max(10_000, 200 * len(agents))

    def run(self) -> EngineResult:
        """Run to termination; returns elapsed cycles and step count."""
        heap: List = []
        for seq, agent in enumerate(self._agents):
            heapq.heappush(heap, (0, seq, agent))
        next_seq = len(self._agents)
        now = 0
        steps = 0
        stale = 0

        while heap:
            if self._is_terminated():
                break
            ready_at, _, agent = heapq.heappop(heap)
            if ready_at > now:
                now = ready_at
            if now > self._max_cycles:
                raise SimulationError(
                    f"simulation exceeded max_cycles={self._max_cycles} "
                    f"(steps={steps}); cost model or algorithm is runaway"
                )
            outcome = agent.step(now)
            steps += 1
            if outcome.made_progress:
                stale = 0
            else:
                stale += 1
                if stale > self._deadlock_window:
                    raise DeadlockError(
                        f"no progress in {stale} consecutive steps at cycle "
                        f"{now} with work pending"
                    )
            if not outcome.done:
                if outcome.cost < 1:
                    raise SimulationError(
                        f"agent {agent!r} returned non-positive cost "
                        f"{outcome.cost} without finishing"
                    )
                heapq.heappush(heap, (now + outcome.cost, next_seq, agent))
                next_seq += 1

        return EngineResult(cycles=now, steps=steps, agents=len(self._agents))
