"""Deterministic event-driven execution engine.

The engine steps a set of :class:`Agent` objects (warps on the GPU model,
cores on the CPU model) in global cycle order.  Each ``step`` performs one
atomic action against shared state and returns its cost in cycles; the
agent is then re-scheduled at ``now + cost``.  Atomicity at step
granularity gives exact CAS semantics: the winner's mutation is visible to
every later step, losers observe the new value.

Determinism: events are totally ordered by ``(ready_at, seq)`` where
``seq`` is a monotonically increasing tie-breaker, so two runs with the
same seed produce identical schedules.  (FIFO tie-breaking also mirrors
fair hardware arbitration of simultaneous requests.)

Two schedulers implement that contract bit-for-bit identically:

* ``"heap"`` — the classic binary heap.  Entries are mutable three-slot
  lists that are *reused* across reschedules (the popped entry is
  refreshed in place and pushed back), so the steady state allocates no
  per-step tuples.
* ``"calendar"`` — a bucketed calendar queue: events land in a FIFO
  bucket per distinct ``ready_at`` and a small heap orders only the
  distinct timestamps.  Because an agent is always rescheduled at
  ``now + cost`` with ``cost >= 1``, insertions never target the bucket
  currently draining, and because ``seq`` order equals scheduling order,
  bucket FIFO order *is* ``seq`` order.  This is the fast path when many
  agents share timestamps (the common small-cost case).

``scheduler="auto"`` (the default) selects the calendar queue.  The
golden determinism tests assert both produce identical ``EngineResult``
and traversal output.

Termination is algorithm-defined via ``is_terminated``; the engine adds a
deadlock guard (progress must occur within ``deadlock_window`` consecutive
steps) and a hard ``max_cycles`` safety net.  The budget is checked
against each event's ``ready_at`` *before* the step executes, so no
over-budget step is ever run.  ``poll_interval`` trades termination-check
frequency for speed: with the default of 1 the predicate is polled before
every step (exact, bit-for-bit reproducible cycle counts); larger values
poll every N steps, which can overshoot the final cycle count by a few
events and is only meant for throwaway capacity sweeps.

Schedule fuzzing (``repro.check``)
----------------------------------
``perturb_seed`` switches the loop into the *perturbed* scheduler used by
the correctness fuzzer: tie-breaking among same-cycle events is
randomized (instead of FIFO) and ``jitter`` adds a random 0..jitter cycle
latency to every reschedule, both drawn from a ``random.Random`` seeded
with ``perturb_seed``.  The perturbed schedule is still a *legal*
interleaving of the cost model — every event still runs at or after its
ready time and step atomicity is preserved — so any invariant or
validation failure it surfaces is a real protocol bug, not a fuzzing
artifact.  Runs are deterministic given the seed.  ``on_step`` is an
optional observer called with the running step count after every executed
step; the invariant monitor uses it to run periodic global sweeps.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Protocol, Sequence

from repro.errors import DeadlockError, SimulationError

__all__ = ["Agent", "StepOutcome", "EngineResult", "EventLoop", "SCHEDULERS",
           "over_budget_error", "deadlocked_error", "non_positive_cost_error"]

#: Accepted ``scheduler`` arguments ("auto" resolves to the calendar queue).
SCHEDULERS = ("auto", "heap", "calendar")


# ----------------------------------------------------------------------
# Shared error formatting.  The generic engine, the turbo fused loop,
# and the hive batch engine all promise *identical* failure behavior:
# one message format per failure class, asserted by the differential
# ladder, so the three drains build their exceptions here.
def over_budget_error(max_cycles: int, ready_at: int,
                      steps: int) -> SimulationError:
    return SimulationError(
        f"simulation exceeded max_cycles={max_cycles} "
        f"(next event at {ready_at}, steps={steps}); cost model or "
        f"algorithm is runaway"
    )


def deadlocked_error(stale: int, now: int) -> DeadlockError:
    return DeadlockError(
        f"no progress in {stale} consecutive steps at cycle "
        f"{now} with work pending"
    )


def non_positive_cost_error(agent: object, cost: int) -> SimulationError:
    return SimulationError(
        f"agent {agent!r} returned non-positive cost "
        f"{cost} without finishing"
    )


class StepOutcome:
    """Result of one agent step.

    ``cost`` — cycles consumed (must be >= 1 unless the agent is done).
    ``made_progress`` — True when the step advanced the global computation
    (visited a vertex, moved entries, acquired work); used by the deadlock
    guard, so an algorithm in which *only* failed steal attempts and idle
    polls occur for a long window is reported as deadlocked.
    ``done`` — the agent leaves the schedule permanently.

    A plain ``__slots__`` class rather than a dataclass: one is allocated
    per simulated step, so construction cost is on the engine's critical
    path.  Treat instances as immutable once returned.
    """

    __slots__ = ("cost", "made_progress", "done")

    def __init__(self, cost: int, made_progress: bool = True,
                 done: bool = False):
        self.cost = cost
        self.made_progress = made_progress
        self.done = done

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"StepOutcome(cost={self.cost}, "
                f"made_progress={self.made_progress}, done={self.done})")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StepOutcome):
            return NotImplemented
        return (self.cost == other.cost
                and self.made_progress == other.made_progress
                and self.done == other.done)


class Agent(Protocol):
    """Anything the event loop can schedule."""

    def step(self, now: int) -> StepOutcome:  # pragma: no cover - protocol
        """Perform one atomic action at simulated time ``now``."""
        ...


@dataclass
class EngineResult:
    """Outcome of one simulation: elapsed cycles and scheduling stats.

    ``exact_cycles`` is True when the termination predicate was polled
    before every event (``poll_interval == 1``), i.e. the cycle count is
    bit-for-bit reproducible.  With ``poll_interval > 1`` the loop may
    execute a few events past the logical end, so ``cycles`` can
    overshoot — consumers that gate on cycle counts (``repro.bench``)
    must refuse inexact results.
    """

    cycles: int
    steps: int
    agents: int
    exact_cycles: bool = True

    def seconds(self, clock_hz: float) -> float:
        return self.cycles / clock_hz


class EventLoop:
    """Deterministic scheduler (see module docstring).

    Parameters
    ----------
    agents:
        The agents to schedule; all start ready at time 0.
    is_terminated:
        Global predicate checked between steps; when it turns True the
        loop stops immediately (remaining queued events are abandoned,
        modelling kernel exit once the done-flag is observed).
    max_cycles:
        Hard upper bound on simulated time (safety net against
        miscalibrated runs).  An event whose ``ready_at`` exceeds it
        raises ``SimulationError`` *without executing*.
    deadlock_window:
        If no step reports progress for this many consecutive steps while
        ``is_terminated`` stays False, raise ``DeadlockError``.  Sized
        generously relative to the agent count so legitimate idle phases
        (everyone polling while one warp works) never trip it.
    scheduler:
        ``"heap"``, ``"calendar"``, or ``"auto"`` (default; resolves to
        the calendar queue).  Both produce identical schedules.
    poll_interval:
        Check ``is_terminated`` every this many steps.  1 (default) is
        exact; values > 1 are faster but may overshoot the final cycle
        count — never use them when cycle counts must be reproducible.
    perturb_seed:
        When not None, run the *perturbed* scheduler: same-cycle events
        are drained in a random (seeded, deterministic) order instead of
        FIFO, exploring alternative legal interleavings.  Used by the
        ``repro.check`` schedule fuzzer; overrides ``scheduler``.
    jitter:
        Maximum extra latency (cycles) randomly added to each reschedule
        under the perturbed scheduler.  Requires ``perturb_seed``.
    on_step:
        Optional observer called with the cumulative step count after
        every executed step (invariant-monitor hook).
    """

    def __init__(
        self,
        agents: Sequence[Agent],
        *,
        is_terminated: Callable[[], bool],
        max_cycles: int = 50_000_000_000,
        deadlock_window: Optional[int] = None,
        scheduler: str = "auto",
        poll_interval: int = 1,
        perturb_seed: Optional[int] = None,
        jitter: int = 0,
        on_step: Optional[Callable[[int], None]] = None,
    ):
        if not agents:
            raise SimulationError("event loop needs at least one agent")
        if scheduler not in SCHEDULERS:
            raise SimulationError(
                f"scheduler must be one of {SCHEDULERS}, got {scheduler!r}"
            )
        if poll_interval < 1:
            raise SimulationError(
                f"poll_interval must be >= 1, got {poll_interval}"
            )
        if jitter < 0:
            raise SimulationError(f"jitter must be >= 0, got {jitter}")
        if jitter and perturb_seed is None:
            raise SimulationError("jitter requires perturb_seed")
        self._agents = list(agents)
        self._is_terminated = is_terminated
        self._max_cycles = int(max_cycles)
        self._deadlock_window = deadlock_window or max(10_000, 200 * len(agents))
        self._scheduler = "calendar" if scheduler == "auto" else scheduler
        self._poll_interval = int(poll_interval)
        self._perturb_seed = perturb_seed
        self._jitter = int(jitter)
        self._on_step = on_step

    def run(self) -> EngineResult:
        """Run to termination; returns elapsed cycles and step count."""
        if self._perturb_seed is not None:
            return self._run_perturbed()
        if self._scheduler == "heap":
            return self._run_heap()
        return self._run_calendar()

    # ------------------------------------------------------------------
    def _over_budget(self, ready_at: int, steps: int) -> SimulationError:
        return over_budget_error(self._max_cycles, ready_at, steps)

    def _deadlocked(self, stale: int, now: int) -> DeadlockError:
        return deadlocked_error(stale, now)

    # ------------------------------------------------------------------
    def _run_heap(self) -> EngineResult:
        """Binary-heap scheduler with slot-reuse entries."""
        # Entries are mutable [ready_at, seq, agent] lists; the initial
        # ascending-seq layout is already heap-ordered.
        heap: List[list] = [[0, seq, agent]
                            for seq, agent in enumerate(self._agents)]
        next_seq = len(self._agents)
        now = 0
        steps = 0
        stale = 0
        countdown = 1  # force a termination check before the first step

        # Hot-loop locals.
        pop = heapq.heappop
        push = heapq.heappush
        is_terminated = self._is_terminated
        max_cycles = self._max_cycles
        window = self._deadlock_window
        poll = self._poll_interval
        on_step = self._on_step

        while heap:
            countdown -= 1
            if countdown == 0:
                if is_terminated():
                    break
                countdown = poll
            entry = pop(heap)
            ready_at = entry[0]
            agent = entry[2]
            if ready_at > now:
                if ready_at > max_cycles:
                    raise self._over_budget(ready_at, steps)
                now = ready_at
            outcome = agent.step(now)
            steps += 1
            if on_step is not None:
                on_step(steps)
            if outcome.made_progress:
                stale = 0
            else:
                stale += 1
                if stale > window:
                    raise self._deadlocked(stale, now)
            if not outcome.done:
                cost = outcome.cost
                if cost < 1:
                    raise non_positive_cost_error(agent, cost)
                # Slot reuse: refresh the popped entry in place.
                entry[0] = now + cost
                entry[1] = next_seq
                next_seq += 1
                push(heap, entry)

        return EngineResult(cycles=now, steps=steps, agents=len(self._agents),
                            exact_cycles=poll == 1)

    # ------------------------------------------------------------------
    def _run_calendar(self) -> EngineResult:
        """Bucketed calendar-queue scheduler.

        ``buckets`` maps each distinct ``ready_at`` to a FIFO list of
        agents; ``times`` is a heap over the distinct timestamps only.
        Rescheduling appends at ``now + cost > now``, so the bucket being
        drained never grows, and appends happen in ``seq`` order — the
        drain order is exactly the heap scheduler's ``(ready_at, seq)``.
        """
        buckets = {0: list(self._agents)}
        times = [0]
        now = 0
        steps = 0
        stale = 0
        countdown = 1

        pop_time = heapq.heappop
        push_time = heapq.heappush
        is_terminated = self._is_terminated
        max_cycles = self._max_cycles
        window = self._deadlock_window
        poll = self._poll_interval
        on_step = self._on_step

        while times:
            t = times[0]
            bucket = buckets[t]
            for agent in bucket:
                # Order matters for bit-exactness with the heap scheduler:
                # termination is observed *before* time advances to this
                # event, so `cycles` never includes an abandoned event.
                countdown -= 1
                if countdown == 0:
                    if is_terminated():
                        return EngineResult(cycles=now, steps=steps,
                                            agents=len(self._agents),
                                            exact_cycles=poll == 1)
                    countdown = poll
                if t > now:
                    if t > max_cycles:
                        raise self._over_budget(t, steps)
                    now = t
                outcome = agent.step(now)
                steps += 1
                if on_step is not None:
                    on_step(steps)
                if outcome.made_progress:
                    stale = 0
                else:
                    stale += 1
                    if stale > window:
                        raise self._deadlocked(stale, now)
                if not outcome.done:
                    cost = outcome.cost
                    if cost < 1:
                        raise non_positive_cost_error(agent, cost)
                    t2 = now + cost
                    b2 = buckets.get(t2)
                    if b2 is None:
                        buckets[t2] = [agent]
                        push_time(times, t2)
                    else:
                        b2.append(agent)
            pop_time(times)
            del buckets[t]

        return EngineResult(cycles=now, steps=steps, agents=len(self._agents),
                            exact_cycles=poll == 1)

    # ------------------------------------------------------------------
    def _run_perturbed(self) -> EngineResult:
        """Schedule fuzzer: randomized tie-breaking plus latency jitter.

        A binary heap over ``(ready_at, rand, seq, agent)`` entries:
        ``rand`` scrambles the order of same-cycle events (FIFO in the
        production schedulers) and ``seq`` keeps the comparison total so
        agents are never compared.  With ``jitter > 0`` each reschedule
        lands ``cost + U[0, jitter]`` cycles out.  Every choice is drawn
        from ``random.Random(perturb_seed)``, so a (seed, jitter) pair
        names one concrete interleaving exactly.
        """
        rnd = random.Random(self._perturb_seed)
        randbits = rnd.getrandbits
        jitter = self._jitter
        heap = [(0, randbits(32), seq, agent)
                for seq, agent in enumerate(self._agents)]
        heapq.heapify(heap)
        next_seq = len(self._agents)
        now = 0
        steps = 0
        stale = 0
        countdown = 1

        pop = heapq.heappop
        push = heapq.heappush
        is_terminated = self._is_terminated
        max_cycles = self._max_cycles
        window = self._deadlock_window
        poll = self._poll_interval
        on_step = self._on_step

        while heap:
            countdown -= 1
            if countdown == 0:
                if is_terminated():
                    break
                countdown = poll
            ready_at, _, _, agent = pop(heap)
            if ready_at > now:
                if ready_at > max_cycles:
                    raise self._over_budget(ready_at, steps)
                now = ready_at
            outcome = agent.step(now)
            steps += 1
            if on_step is not None:
                on_step(steps)
            if outcome.made_progress:
                stale = 0
            else:
                stale += 1
                if stale > window:
                    raise self._deadlocked(stale, now)
            if not outcome.done:
                cost = outcome.cost
                if cost < 1:
                    raise non_positive_cost_error(agent, cost)
                if jitter:
                    cost += rnd.randrange(jitter + 1)
                push(heap, (now + cost, randbits(32), next_seq, agent))
                next_seq += 1

        return EngineResult(cycles=now, steps=steps, agents=len(self._agents),
                            exact_cycles=poll == 1)
