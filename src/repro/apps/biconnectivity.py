"""Articulation points and bridges via DFS (Hopcroft-Tarjan, iterative).

The paper's introduction notes the trend of "DFS-avoidance" — e.g.
parallel biconnectivity reformulated to bypass DFS [27] at the price of
more complex algorithms.  This module is the classic DFS-based solution
the avoidance literature is avoiding: articulation points, bridges, and
biconnected-component labelling of edges, in one iterative low-link
pass over CSR.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import ValidationError
from repro.graphs.csr import CSRGraph

__all__ = ["BiconnectivityResult", "biconnectivity"]


@dataclass(frozen=True)
class BiconnectivityResult:
    """Articulation structure of an undirected graph.

    ``edge_component[j]`` labels stored arc ``j`` with its biconnected
    component id (both directions of an undirected edge get the same
    label); ``-1`` marks self-loops/arcs out of the traversed region.
    """

    articulation_points: np.ndarray    # bool per vertex
    bridges: np.ndarray                # (k, 2) vertex pairs, u < v
    edge_component: np.ndarray         # int per stored arc
    n_components: int

    def is_articulation(self, v: int) -> bool:
        return bool(self.articulation_points[v])

    def bridge_set(self) -> set:
        return {tuple(b) for b in self.bridges.tolist()}


def biconnectivity(graph: CSRGraph) -> BiconnectivityResult:
    """Hopcroft-Tarjan low-link computation over all components.

    Raises :class:`ValidationError` on directed input (biconnectivity is
    an undirected notion; symmetrize first).
    """
    if graph.directed:
        raise ValidationError("biconnectivity requires an undirected graph")
    n = graph.n_vertices
    rp, ci = graph.row_ptr, graph.column_idx

    disc = np.full(n, -1, dtype=np.int64)
    low = np.zeros(n, dtype=np.int64)
    is_ap = np.zeros(n, dtype=bool)
    edge_comp = np.full(graph.n_edges, -1, dtype=np.int64)
    bridges: List[tuple] = []
    edge_stack: List[int] = []      # CSR arc indices of tree/back edges
    clock = 0
    n_comp = 0

    # Arc j's reverse arc index, for labelling both directions at once.
    reverse = _reverse_arc_index(graph)

    for start in range(n):
        if disc[start] >= 0:
            continue
        root = start
        root_children = 0
        # Frame: [vertex, arc cursor, parent arc (CSR index) or -1]
        stack = [[start, int(rp[start]), -1]]
        disc[start] = low[start] = clock
        clock += 1
        while stack:
            frame = stack[-1]
            u, j, parc = frame
            if j < rp[u + 1]:
                frame[1] = j + 1
                v = int(ci[j])
                if v == u:
                    continue  # self-loop: no biconnectivity content
                if disc[v] < 0:
                    # Tree edge.
                    if u == root:
                        root_children += 1
                    edge_stack.append(j)
                    disc[v] = low[v] = clock
                    clock += 1
                    stack.append([v, int(rp[v]), j])
                elif parc >= 0 and v == int(ci[reverse[parc]]) and j == reverse[parc]:
                    continue  # the reverse of the tree edge we came by
                elif disc[v] < disc[u]:
                    # Back edge to an ancestor.
                    edge_stack.append(j)
                    low[u] = min(low[u], disc[v])
            else:
                stack.pop()
                if parc < 0:
                    continue  # component root finished
                p = int(_arc_src(graph, parc))
                low[p] = min(low[p], low[u])
                if low[u] >= disc[p]:
                    # p separates u's subtree: pop one biconnected comp
                    # (p's articulation status handled below; the root is
                    # special-cased by its child count).
                    comp_arcs = []
                    while edge_stack:
                        arc = edge_stack.pop()
                        comp_arcs.append(arc)
                        if arc == parc:
                            break
                    for arc in comp_arcs:
                        edge_comp[arc] = n_comp
                        edge_comp[reverse[arc]] = n_comp
                    if len(comp_arcs) == 1:
                        a, b = int(_arc_src(graph, parc)), int(ci[parc])
                        bridges.append((min(a, b), max(a, b)))
                    if p != root:
                        is_ap[p] = True
                    n_comp += 1
        if root_children > 1:
            is_ap[root] = True

    bridge_arr = (np.asarray(sorted(set(bridges)), dtype=np.int64)
                  if bridges else np.empty((0, 2), dtype=np.int64))
    return BiconnectivityResult(
        articulation_points=is_ap,
        bridges=bridge_arr,
        edge_component=edge_comp,
        n_components=n_comp,
    )


def _reverse_arc_index(graph: CSRGraph) -> np.ndarray:
    """reverse[j] = CSR index of arc (v, u) for arc j = (u, v).

    Requires a symmetric graph; raises otherwise.  For parallel-free
    symmetric CSR with sorted neighbours this is a binary search per arc.
    """
    rp, ci = graph.row_ptr, graph.column_idx
    src = np.repeat(np.arange(graph.n_vertices, dtype=np.int64),
                    graph.degree())
    reverse = np.full(graph.n_edges, -1, dtype=np.int64)
    for j in range(graph.n_edges):
        u, v = int(src[j]), int(ci[j])
        lo, hi = int(rp[v]), int(rp[v + 1])
        pos = lo + int(np.searchsorted(ci[lo:hi], u))
        if pos >= hi or ci[pos] != u:
            raise ValidationError(
                f"arc ({u}->{v}) has no reverse: graph is not symmetric"
            )
        reverse[j] = pos
    return reverse


def _arc_src(graph: CSRGraph, j: int) -> int:
    """Source vertex of stored arc ``j`` (binary search over row_ptr)."""
    return int(np.searchsorted(graph.row_ptr, j, side="right") - 1)
