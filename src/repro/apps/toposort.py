"""Topological sorting via DFS finish order (paper §1 motivation).

Classic application of DFS: reverse finishing order of a full DFS over a
DAG is a topological order.  Implemented iteratively over CSR with
explicit white/grey/black colouring so directed cycles are detected (and
reported with a witness) rather than silently mis-sorted.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import ValidationError
from repro.graphs.csr import CSRGraph

__all__ = ["topological_sort", "CycleFound", "verify_topological_order"]

_WHITE, _GREY, _BLACK = 0, 1, 2


class CycleFound(ValidationError):
    """Raised when a directed cycle makes topological sorting impossible."""

    def __init__(self, cycle: List[int]):
        self.cycle = cycle
        super().__init__(f"graph contains a directed cycle: {cycle}")


def topological_sort(graph: CSRGraph) -> np.ndarray:
    """Topological order of a directed acyclic graph (DFS finish order).

    Raises
    ------
    ValidationError
        If the graph is undirected.
    CycleFound
        If a directed cycle exists (with an explicit witness cycle).
    """
    if not graph.directed:
        raise ValidationError("topological sort requires a directed graph")
    n = graph.n_vertices
    rp, ci = graph.row_ptr, graph.column_idx
    color = np.full(n, _WHITE, dtype=np.int8)
    on_path: List[int] = []
    finish: List[int] = []

    for start in range(n):
        if color[start] != _WHITE:
            continue
        stack = [[start, int(rp[start])]]
        color[start] = _GREY
        on_path.append(start)
        while stack:
            top = stack[-1]
            u, i = top
            if i < rp[u + 1]:
                v = int(ci[i])
                top[1] = i + 1
                if color[v] == _GREY:
                    # Back edge: the grey path from v to u plus (u, v).
                    idx = on_path.index(v)
                    raise CycleFound(on_path[idx:] + [v])
                if color[v] == _WHITE:
                    color[v] = _GREY
                    on_path.append(v)
                    stack.append([v, int(rp[v])])
            else:
                stack.pop()
                color[u] = _BLACK
                on_path.pop()
                finish.append(u)
    return np.asarray(finish[::-1], dtype=np.int64)


def verify_topological_order(graph: CSRGraph, order: np.ndarray) -> None:
    """Raise unless ``order`` is a permutation with all arcs forward."""
    n = graph.n_vertices
    order = np.asarray(order)
    if not np.array_equal(np.sort(order), np.arange(n)):
        raise ValidationError("order is not a permutation of the vertices")
    pos = np.empty(n, dtype=np.int64)
    pos[order] = np.arange(n)
    for u, v in graph.iter_edges():
        if pos[u] >= pos[v]:
            raise ValidationError(
                f"arc ({u} -> {v}) violates the order "
                f"(positions {pos[u]} >= {pos[v]})"
            )
