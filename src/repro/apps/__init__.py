"""Applications on DFS trees (the paper's §1 motivations)."""

from repro.apps.biconnectivity import BiconnectivityResult, biconnectivity
from repro.apps.cycles import find_cycle, has_cycle
from repro.apps.scc import condensation_edges, strongly_connected_components
from repro.apps.spanning import SpanningForest, spanning_forest
from repro.apps.toposort import (
    CycleFound,
    topological_sort,
    verify_topological_order,
)

__all__ = [
    "biconnectivity",
    "BiconnectivityResult",
    "has_cycle",
    "find_cycle",
    "topological_sort",
    "verify_topological_order",
    "CycleFound",
    "strongly_connected_components",
    "condensation_edges",
    "spanning_forest",
    "SpanningForest",
]
