"""Spanning forest of an undirected graph using DiggerBees per component.

Demonstrates the paper's point that unordered parallel DFS is a drop-in
primitive: a spanning forest only needs *a* valid tree per component, so
each component is traversed by the simulated GPU algorithm and the parent
arrays are merged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.config import DiggerBeesConfig
from repro.core.diggerbees import run_diggerbees
from repro.errors import ValidationError
from repro.graphs.csr import CSRGraph
from repro.sim.device import DeviceSpec, H100
from repro.validate.reference import ROOT_PARENT, UNVISITED_PARENT

__all__ = ["SpanningForest", "spanning_forest"]


@dataclass(frozen=True)
class SpanningForest:
    """A spanning forest: per-vertex parent (-1 at roots) and component id."""

    parent: np.ndarray
    component: np.ndarray
    roots: tuple
    total_cycles: int

    @property
    def n_components(self) -> int:
        return len(self.roots)

    def tree_edges(self) -> np.ndarray:
        """All forest edges as (parent, child) pairs."""
        children = np.flatnonzero(self.parent >= 0)
        return np.column_stack([self.parent[children], children])


def spanning_forest(
    graph: CSRGraph,
    *,
    config: Optional[DiggerBeesConfig] = None,
    device: DeviceSpec = H100,
) -> SpanningForest:
    """Compute a spanning forest with one DiggerBees run per component."""
    if graph.directed:
        raise ValidationError("spanning_forest requires an undirected graph")
    config = config or DiggerBeesConfig(n_blocks=2, warps_per_block=4,
                                        hot_size=32, hot_cutoff=8,
                                        cold_cutoff=8, flush_batch=8,
                                        refill_batch=8, cold_reserve=32)
    n = graph.n_vertices
    parent = np.full(n, UNVISITED_PARENT, dtype=np.int64)
    component = np.full(n, -1, dtype=np.int64)
    roots: List[int] = []
    total_cycles = 0
    for v in range(n):
        if component[v] >= 0:
            continue
        res = run_diggerbees(graph, v, config=config, device=device)
        mask = res.traversal.visited
        new = mask & (component < 0)
        if not new[v]:
            raise ValidationError(f"component root {v} not covered by its run")
        component[new] = len(roots)
        parent[new] = res.traversal.parent[new]
        roots.append(v)
        total_cycles += res.cycles
    parent[np.asarray(roots, dtype=np.int64)] = ROOT_PARENT
    return SpanningForest(
        parent=parent,
        component=component,
        roots=tuple(roots),
        total_cycles=total_cycles,
    )
