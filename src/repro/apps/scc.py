"""Strongly connected components via iterative Tarjan (paper §1: DFS's
classic "structural analysis" application, Tarjan 1972 [92])."""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import ValidationError
from repro.graphs.csr import CSRGraph

__all__ = ["strongly_connected_components", "condensation_edges"]


def strongly_connected_components(graph: CSRGraph) -> np.ndarray:
    """Component id per vertex (Tarjan's algorithm, iterative).

    Ids are assigned in reverse topological order of the condensation
    (Tarjan's natural output order): if there is an arc from component A
    to component B (A != B), then ``id(A) > id(B)``.
    """
    if not graph.directed:
        raise ValidationError(
            "SCC requires a directed graph; undirected components live in "
            "repro.graphs.properties.connected_components"
        )
    n = graph.n_vertices
    rp, ci = graph.row_ptr, graph.column_idx
    index = np.full(n, -1, dtype=np.int64)
    lowlink = np.zeros(n, dtype=np.int64)
    on_stack = np.zeros(n, dtype=bool)
    comp = np.full(n, -1, dtype=np.int64)
    tarjan_stack: List[int] = []
    next_index = 0
    next_comp = 0

    for start in range(n):
        if index[start] >= 0:
            continue
        # Each frame: [vertex, next CSR offset].
        work = [[start, int(rp[start])]]
        index[start] = lowlink[start] = next_index
        next_index += 1
        tarjan_stack.append(start)
        on_stack[start] = True
        while work:
            top = work[-1]
            u, i = top
            if i < rp[u + 1]:
                v = int(ci[i])
                top[1] = i + 1
                if index[v] < 0:
                    index[v] = lowlink[v] = next_index
                    next_index += 1
                    tarjan_stack.append(v)
                    on_stack[v] = True
                    work.append([v, int(rp[v])])
                elif on_stack[v]:
                    lowlink[u] = min(lowlink[u], index[v])
            else:
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[u])
                if lowlink[u] == index[u]:
                    while True:
                        w = tarjan_stack.pop()
                        on_stack[w] = False
                        comp[w] = next_comp
                        if w == u:
                            break
                    next_comp += 1
    return comp


def condensation_edges(graph: CSRGraph, comp: np.ndarray) -> np.ndarray:
    """Unique inter-component arcs of the condensation DAG."""
    edges = graph.edge_array()
    cu = comp[edges[:, 0]]
    cv = comp[edges[:, 1]]
    mask = cu != cv
    pairs = np.column_stack([cu[mask], cv[mask]])
    return np.unique(pairs, axis=0) if pairs.size else pairs.reshape(0, 2)
