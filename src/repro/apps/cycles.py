"""Cycle detection on top of a (parallel) DFS tree.

One of the paper's motivating applications: "many graph applications
require only the tree structure (e.g. cycle detection or topological
sorting)".  For an undirected graph, any non-tree edge within the
reachable set closes a cycle with tree paths, so a DiggerBees tree (no
lexicographic order needed) suffices.  ``find_cycle`` reconstructs one
explicit cycle through tree-path intersection.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.graphs.csr import CSRGraph
from repro.validate.reference import TraversalResult

__all__ = ["has_cycle", "find_cycle"]


def _tree_path_to_root(parent: np.ndarray, v: int) -> List[int]:
    path = [v]
    while parent[path[-1]] >= 0:
        path.append(int(parent[path[-1]]))
        if len(path) > parent.shape[0]:
            raise ValidationError("parent array contains a cycle")
    return path


def _first_non_tree_edge(graph: CSRGraph,
                         result: TraversalResult) -> Optional[Tuple[int, int]]:
    parent = result.parent
    visited = result.visited
    for u, v in graph.iter_edges():
        if not graph.directed and u > v:
            continue
        if u == v:
            return (u, v)  # self loop
        if not (visited[u] and visited[v]):
            continue
        if parent[v] == u or parent[u] == v:
            continue
        return (u, v)
    return None


def has_cycle(graph: CSRGraph, result: TraversalResult) -> bool:
    """True iff the reachable subgraph contains a cycle.

    ``result`` is any valid DFS/spanning tree of the reachable set (e.g.
    a DiggerBees output).  Undirected: a cycle exists iff some edge of
    the reachable subgraph is not a tree edge.
    """
    if graph.directed:
        raise ValidationError(
            "has_cycle over a spanning tree is defined for undirected "
            "graphs; use repro.apps.toposort for directed acyclicity"
        )
    return _first_non_tree_edge(graph, result) is not None


def find_cycle(graph: CSRGraph, result: TraversalResult) -> Optional[List[int]]:
    """Return one explicit cycle as a vertex list, or None if acyclic.

    The cycle is formed by a non-tree edge ``(u, v)`` plus the tree paths
    from ``u`` and ``v`` up to their lowest common ancestor.
    """
    if graph.directed:
        raise ValidationError("find_cycle requires an undirected graph")
    edge = _first_non_tree_edge(graph, result)
    if edge is None:
        return None
    u, v = edge
    if u == v:
        return [u]
    pu = _tree_path_to_root(result.parent, u)
    pv = _tree_path_to_root(result.parent, v)
    # Lowest common ancestor: first shared vertex from the root side.
    set_u = {x: i for i, x in enumerate(pu)}
    lca_idx_v = next(i for i, x in enumerate(pv) if x in set_u)
    lca = pv[lca_idx_v]
    up = pu[: set_u[lca] + 1]            # u .. lca
    down = pv[:lca_idx_v][::-1]          # lca-child .. v reversed
    cycle = up + down
    # Sanity: consecutive vertices adjacent, ends joined by the non-tree edge.
    for a, b in zip(cycle, cycle[1:]):
        if not (result.parent[a] == b or result.parent[b] == a):
            raise ValidationError("reconstructed cycle uses a phantom edge")
    return cycle
