"""Warp-level DFS execution (paper §3.3) as an event-engine agent.

Each :class:`WarpAgent` is one warp: all 32 lanes follow the same DFS
path, so a simulator step models one warp-wide action:

* **expand** — inspect up to 32 neighbours of the top stack entry in one
  coalesced window, claim the first unvisited one via the visited
  atomicCAS, and push it (flushing the HotRing to the ColdSeg first if
  full); or pop the entry when its adjacency is exhausted.
* **refill** — when the HotRing empties but the ColdSeg holds entries,
  pull a batch back (TMA-priced asynchronous copy).
* **steal** — when the whole two-level stack is empty the warp turns
  idle (clearing its active-mask bit) and runs the two-phase stealing
  protocols of §3.4/§3.5: intra-block stealing whenever a peer warp is
  active, inter-block stealing when the entire block is idle and this
  warp is the block leader (warp 0).
* **poll** — nothing to steal: exponential-backoff polling.

Costs come from the device's :class:`~repro.sim.device.OpCosts`; the v1
ablation (one-level stack) pays global-memory latency on every stack
operation (``gstack_penalty``).
"""

from __future__ import annotations

from enum import Enum
from typing import Optional

import numpy as np

from repro.core import inter_steal, intra_steal
from repro.core.state import RunState
from repro.core.twolevel_stack import WarpStack
from repro.sim.engine import StepOutcome

__all__ = ["WarpAgent", "WARP_WIDTH"]

#: Lanes per warp: the neighbour-scan window of one expand step.
WARP_WIDTH = 32

#: Extra cycles a one-level (global-memory) stack pays per push/pop/peek
#: versus the shared-memory HotRing — the v1-vs-v2 gap of §4.5.
GSTACK_PENALTY = 55


class _Phase(Enum):
    RUN = "run"
    RESERVE_INTRA = "reserve_intra"
    RESERVE_INTER = "reserve_inter"


class WarpAgent:
    """One warp of the DiggerBees grid (see module docstring)."""

    __slots__ = ("state", "block_id", "warp_id", "block", "stack", "rng",
                 "phase", "intra_plan", "inter_plan", "backoff")

    def __init__(self, state: RunState, block_id: int, warp_id: int):
        self.state = state
        self.block_id = block_id
        self.warp_id = warp_id
        self.block = state.blocks[block_id]
        self.stack = self.block.stacks[warp_id]
        # Per-warp RNG stream derived from the block's (deterministic).
        block_rng = state.block_rngs[block_id]
        self.rng = np.random.default_rng(
            block_rng.bit_generator.seed_seq.spawn(1)[0]
        ) if warp_id == 0 else None  # only leaders sample victims randomly
        self.phase = _Phase.RUN
        self.intra_plan: Optional[intra_steal.IntraStealPlan] = None
        self.inter_plan: Optional[inter_steal.InterStealPlan] = None
        self.backoff = state.costs.idle_poll

    # ------------------------------------------------------------------
    def step(self, now: int) -> StepOutcome:
        state = self.state
        if state.is_terminated():
            return StepOutcome(cost=0, made_progress=False, done=True)
        if self.phase is _Phase.RESERVE_INTRA:
            return self._reserve_intra(now)
        if self.phase is _Phase.RESERVE_INTER:
            return self._reserve_inter(now)
        if not self.stack.is_empty:
            return self._work(now)
        return self._idle(now)

    # ------------------------------------------------------------------
    # Active execution.
    # ------------------------------------------------------------------
    def _work(self, now: int) -> StepOutcome:
        state = self.state
        costs = state.costs
        self.block.set_active(self.warp_id, True)
        self.backoff = costs.idle_poll

        # Pay any victim-side contention accrued from steals against us.
        debt = self.block.contention_debt[self.warp_id]
        if debt:
            self.block.contention_debt[self.warp_id] = 0

        if isinstance(self.stack, WarpStack) and self.stack.can_refill():
            moved = self.stack.refill()
            state.counters.refills += 1
            state.counters.refill_entries += moved
            state.record(now, self.block_id, self.warp_id, "refill", (moved,))
            return StepOutcome(cost=debt + costs.refill_base
                               + costs.refill_per_entry * moved)
        out = self._expand(now)
        if debt:
            out = StepOutcome(cost=out.cost + debt,
                              made_progress=out.made_progress, done=out.done)
        return out

    def _expand(self, now: int) -> StepOutcome:
        """One warp-wide DFS step on the top stack entry (Algorithm 1 body)."""
        state = self.state
        costs = state.costs
        counters = state.counters
        graph = state.graph
        rp, ci = graph.row_ptr, graph.column_idx
        two_level = isinstance(self.stack, WarpStack)
        top = self.stack.hot if two_level else self.stack
        gpenalty = 0 if two_level else GSTACK_PENALTY

        u, i = top.peek()
        row_end = int(rp[u + 1])
        if i >= row_end:
            # Adjacency exhausted: fast pop (offset notionally set to -1).
            top.pop()
            counters.pops += 1
            state.pending -= 1
            state.record(now, self.block_id, self.warp_id, "pop", (u,))
            return StepOutcome(cost=costs.hot_pop + gpenalty)

        window = min(WARP_WIDTH, row_end - i)
        nbrs = ci[i:i + window]
        unvis = np.flatnonzero(state.visited[nbrs] == 0)
        cost = costs.visit_base + costs.visit_per_edge * window + gpenalty

        if unvis.size == 0:
            # Whole window already visited: consume it.
            counters.edges_traversed += window
            new_off = i + window
            if new_off >= row_end:
                top.pop()
                counters.pops += 1
                state.pending -= 1
                cost += costs.hot_pop + gpenalty
                state.record(now, self.block_id, self.warp_id, "pop", (u,))
            else:
                top.update_top_offset(new_off)
            return StepOutcome(cost=cost)

        # Claim the first unvisited neighbour in the window.
        k = i + int(unvis[0])
        counters.edges_traversed += int(unvis[0]) + 1
        v = int(ci[k])
        top.update_top_offset(k + 1)
        claimed = state.try_claim_vertex(v, u)
        cost += costs.visited_cas
        if not claimed:
            # Lost the CAS to a concurrent warp (cannot happen under step
            # atomicity after the visited check, but kept for safety).
            cost += costs.cas_retry
            return StepOutcome(cost=cost)

        counters.record_task(self.block_id, self.warp_id)
        # Push <v | row_ptr[v]>, flushing first when the HotRing is full.
        if two_level:
            if self.stack.needs_flush():
                moved = self.stack.flush()
                counters.flushes += 1
                counters.flush_entries += moved
                cost += costs.flush_base + costs.flush_per_entry * moved
                state.record(now, self.block_id, self.warp_id, "flush", (moved,))
            self.stack.hot.push(v, int(rp[v]))
            counters.max_hot_depth = max(counters.max_hot_depth, len(self.stack.hot))
            counters.max_cold_depth = max(counters.max_cold_depth, len(self.stack.cold))
        else:
            self.stack.push(v, int(rp[v]))
        counters.pushes += 1
        state.pending += 1
        cost += costs.hot_push + gpenalty
        state.record(now, self.block_id, self.warp_id, "visit", (u, v))
        return StepOutcome(cost=cost)

    # ------------------------------------------------------------------
    # Idle execution: stealing and polling.
    # ------------------------------------------------------------------
    def _idle(self, now: int) -> StepOutcome:
        state = self.state
        costs = state.costs
        config = state.config
        self.block.set_active(self.warp_id, False)

        # Intra-block stealing: any peer in my block active?
        if config.enable_intra_steal and not self.block.idle:
            plan = intra_steal.select_victim(state, self.block, self.warp_id)
            scan_cost = costs.steal_scan_per_warp * self.block.n_warps
            if plan is not None:
                self.intra_plan = plan
                self.phase = _Phase.RESERVE_INTRA
                return StepOutcome(cost=scan_cost)
            return self._poll(scan_cost)

        # Inter-block stealing: leader warp of an idle block.
        if (config.enable_inter_steal and self.warp_id == 0
                and self.block.idle and config.n_blocks > 1):
            plan = inter_steal.select_victim(state, self.block_id, self.rng)
            probe_cost = costs.steal_scan_per_warp * config.warps_per_block + 40
            if plan is not None:
                self.inter_plan = plan
                self.phase = _Phase.RESERVE_INTER
                return StepOutcome(cost=probe_cost)
            return self._poll(probe_cost)

        return self._poll(0)

    def _poll(self, extra: int) -> StepOutcome:
        """Exponential-backoff idle poll (no work found)."""
        costs = self.state.costs
        self.state.counters.idle_polls += 1
        cost = extra + self.backoff
        self.backoff = min(self.backoff * 2, costs.idle_backoff_max)
        return StepOutcome(cost=cost, made_progress=False)

    def _reserve_intra(self, now: int) -> StepOutcome:
        state = self.state
        costs = state.costs
        plan = self.intra_plan
        self.phase = _Phase.RUN
        self.intra_plan = None
        ok = intra_steal.execute_steal(state, self.block, self.warp_id, plan)
        if ok:
            self.backoff = costs.idle_poll
            state.record(now, self.block_id, self.warp_id, "steal_intra",
                         (plan.victim_warp, plan.amount))
            return StepOutcome(cost=costs.steal_intra_base
                               + costs.steal_intra_per_entry * plan.amount)
        state.record(now, self.block_id, self.warp_id, "steal_intra_fail",
                     (plan.victim_warp,))
        return StepOutcome(cost=costs.steal_fail, made_progress=False)

    def _reserve_inter(self, now: int) -> StepOutcome:
        state = self.state
        costs = state.costs
        plan = self.inter_plan
        self.phase = _Phase.RUN
        self.inter_plan = None
        ok = inter_steal.execute_steal(state, self.block_id, self.warp_id, plan)
        if ok:
            self.backoff = costs.idle_poll
            kind = "steal_remote" if plan.remote else "steal_inter"
            state.record(now, self.block_id, self.warp_id, kind,
                         (plan.victim_block, plan.victim_warp, plan.amount))
            if plan.remote:
                return StepOutcome(cost=costs.steal_remote_base
                                   + costs.steal_remote_per_entry * plan.amount)
            return StepOutcome(cost=costs.steal_inter_base
                               + costs.steal_inter_per_entry * plan.amount)
        state.record(now, self.block_id, self.warp_id, "steal_inter_fail",
                     (plan.victim_block, plan.victim_warp))
        return StepOutcome(cost=costs.steal_fail, made_progress=False)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"WarpAgent(block={self.block_id}, warp={self.warp_id}, "
                f"phase={self.phase.value}, stack={len(self.stack)})")
