"""Warp-level DFS execution (paper §3.3) as an event-engine agent.

Each :class:`WarpAgent` is one warp: all 32 lanes follow the same DFS
path, so a simulator step models one warp-wide action:

* **expand** — inspect up to 32 neighbours of the top stack entry in one
  coalesced window, claim the first unvisited one via the visited
  atomicCAS, and push it (flushing the HotRing to the ColdSeg first if
  full); or pop the entry when its adjacency is exhausted.
* **refill** — when the HotRing empties but the ColdSeg holds entries,
  pull a batch back (TMA-priced asynchronous copy).
* **steal** — when the whole two-level stack is empty the warp turns
  idle (clearing its active-mask bit) and runs the two-phase stealing
  protocols of §3.4/§3.5: intra-block stealing whenever a peer warp is
  active, inter-block stealing when the entire block is idle and this
  warp is the block leader (warp 0).
* **poll** — nothing to steal: exponential-backoff polling.

Costs come from the device's :class:`~repro.sim.device.OpCosts`; the v1
ablation (one-level stack) pays global-memory latency on every stack
operation (``gstack_penalty``).

Fast path
---------
``_expand`` (selected by ``config.fastpath``, the default) scans the
neighbour window over the plain-Python adjacency mirrors precomputed in
:class:`~repro.core.state.RunState` (``row_ptr_list``/``col_idx_list``)
and reads visited flags through ``visited_mv`` — a memoryview aliasing
the NumPy ``visited`` buffer.  At window width <= 32 this removes the
per-step NumPy dispatch/allocation overhead that dominates the simulator
wall-clock.  ``_expand_reference`` keeps the original NumPy
implementation; both charge identical costs and mutate identical state,
so schedules are bit-for-bit equal (the golden determinism test asserts
cycles, steps, and the DFS tree match).
"""

from __future__ import annotations

from enum import Enum
from typing import Optional

import numpy as np

from repro.core import inter_steal, intra_steal
from repro.core.state import RunState
from repro.core.twolevel_stack import WarpStack
from repro.sim.engine import StepOutcome
from repro.utils.fastrand import wrap_generator

__all__ = ["WarpAgent", "WARP_WIDTH"]

#: Lanes per warp: the neighbour-scan window of one expand step.
WARP_WIDTH = 32

#: Extra cycles a one-level (global-memory) stack pays per push/pop/peek
#: versus the shared-memory HotRing — the v1-vs-v2 gap of §4.5.
GSTACK_PENALTY = 55


class _Phase(Enum):
    RUN = "run"
    RESERVE_INTRA = "reserve_intra"
    RESERVE_INTER = "reserve_inter"


class WarpAgent:
    """One warp of the DiggerBees grid (see module docstring)."""

    __slots__ = ("state", "block_id", "warp_id", "block", "stack", "rng",
                 "phase", "intra_plan", "inter_plan", "backoff",
                 "_two_level", "_gpenalty", "_bit", "_fastpath", "_out",
                 "_hv", "_ho", "_ptrs", "_hpi", "_tpi", "_hsize",
                 "_cptrs", "_cti", "_cbi",
                 "_c_pop", "_c_visit_base", "_c_visit_per_edge",
                 "_c_push", "_c_visited_cas", "_c_cas_retry",
                 "_c_flush_base", "_c_flush_per_entry")

    def __init__(self, state: RunState, block_id: int, warp_id: int):
        self.state = state
        self.block_id = block_id
        self.warp_id = warp_id
        self.block = state.blocks[block_id]
        self.stack = self.block.stacks[warp_id]
        # Per-warp RNG stream derived from the block's (deterministic).
        # wrap_generator swaps in a bit-exact amortized replica of
        # Generator.integers — the victim sampler's draws dominate the
        # fallback path's cost otherwise (see repro.utils.fastrand).
        block_rng = state.block_rngs[block_id]
        self.rng = wrap_generator(np.random.default_rng(
            block_rng.bit_generator.seed_seq.spawn(1)[0]
        )) if warp_id == 0 else None  # only leaders sample victims randomly
        self.phase = _Phase.RUN
        self.intra_plan: Optional[intra_steal.IntraStealPlan] = None
        self.inter_plan: Optional[inter_steal.InterStealPlan] = None
        self.backoff = state.costs.idle_poll
        # Per-run constants hoisted out of the hot loop.  The gstack
        # penalty folds into the per-operation constants so the fast
        # expand path does one attribute read per cost term.
        self._two_level = isinstance(self.stack, WarpStack)
        self._gpenalty = 0 if self._two_level else GSTACK_PENALTY
        self._bit = 1 << warp_id
        self._fastpath = state.config.fastpath
        # SoA fast-path bindings: the HotRing's entry lists and the
        # run-wide head/tail pointer slab with this ring's slot indices.
        # All alias the same storage the HotRing object exposes, so the
        # steal/flush code paths observe every mutation made here.
        if self._two_level:
            hot = self.stack.hot
            self._hv = hot.vertex
            self._ho = hot.offset
            self._ptrs = hot._ptrs
            self._hpi = hot._hi
            self._tpi = hot._ti
            self._hsize = hot.size
            cold = self.stack.cold
            self._cptrs = cold._ptrs
            self._cti = cold._ti
            self._cbi = cold._bi
        else:
            self._hv = self._ho = self._ptrs = None
            self._hpi = self._tpi = self._hsize = 0
            self._cptrs = None
            self._cti = self._cbi = 0
        costs = state.costs
        self._c_pop = costs.hot_pop + self._gpenalty
        self._c_visit_base = costs.visit_base + self._gpenalty
        self._c_visit_per_edge = costs.visit_per_edge
        self._c_push = costs.hot_push + self._gpenalty
        self._c_visited_cas = costs.visited_cas
        self._c_cas_retry = costs.cas_retry
        self._c_flush_base = costs.flush_base
        self._c_flush_per_entry = costs.flush_per_entry
        # One StepOutcome reused across this agent's steps.  The engine
        # (and every test) consumes an outcome before the agent steps
        # again, so reuse removes one allocation per simulated step.
        self._out = StepOutcome(cost=0)

    # ------------------------------------------------------------------
    def step(self, now: int) -> StepOutcome:
        state = self.state
        if state.pending == 0:  # inlined state.is_terminated()
            return StepOutcome(cost=0, made_progress=False, done=True)
        phase = self.phase
        if phase is not _Phase.RUN:
            if phase is _Phase.RESERVE_INTRA:
                return self._reserve_intra(now)
            return self._reserve_inter(now)
        stack = self.stack
        if self._two_level and self._fastpath:
            # Inlined _work() for the common case: two-level stack on the
            # fast path (identical costs/effects, fewer Python frames).
            cptrs = self._cptrs
            ptrs = self._ptrs
            hot_empty = ptrs[self._hpi] == ptrs[self._tpi]
            if not hot_empty or cptrs[self._cti] != cptrs[self._cbi]:
                block = self.block
                bit = self._bit
                if not block.active_mask & bit:
                    block.active_mask |= bit
                costs = state.costs
                self.backoff = costs.idle_poll
                # Pay any victim-side contention accrued from steals on us.
                debt = block.contention_debt[self.warp_id]
                if debt:
                    block.contention_debt[self.warp_id] = 0
                if hot_empty:  # cold is non-empty here: refill
                    moved = stack.refill()
                    counters = state.counters
                    counters.refills += 1
                    counters.refill_entries += moved
                    if state.trace is not None:
                        state.record(now, self.block_id, self.warp_id,
                                     "refill", (moved,))
                    return StepOutcome(cost=debt + costs.refill_base
                                       + costs.refill_per_entry * moved)
                out = self._expand(now)
                if debt:
                    out.cost += debt  # not yet visible outside this step
                return out
            return self._idle(now)
        if not stack.is_empty:
            return self._work(now)
        return self._idle(now)

    # ------------------------------------------------------------------
    # Active execution.
    # ------------------------------------------------------------------
    def _work(self, now: int) -> StepOutcome:
        state = self.state
        costs = state.costs
        block = self.block
        bit = self._bit
        if not block.active_mask & bit:
            block.active_mask |= bit
        self.backoff = costs.idle_poll

        # Pay any victim-side contention accrued from steals against us.
        debt = block.contention_debt[self.warp_id]
        if debt:
            block.contention_debt[self.warp_id] = 0

        if self._two_level and self.stack.can_refill():
            moved = self.stack.refill()
            state.counters.refills += 1
            state.counters.refill_entries += moved
            state.record(now, self.block_id, self.warp_id, "refill", (moved,))
            return StepOutcome(cost=debt + costs.refill_base
                               + costs.refill_per_entry * moved)
        if self._fastpath:
            out = self._expand(now)
        else:
            out = self._expand_reference(now)
        if debt:
            out.cost += debt  # StepOutcome not yet visible outside this step
        return out

    def _expand(self, now: int) -> StepOutcome:
        """One warp-wide DFS step on the top stack entry (Algorithm 1 body).

        Fast path: identical costs, counters, and mutations to
        :meth:`_expand_reference`, but the neighbour-window scan runs over
        the RunState's plain-Python adjacency mirrors instead of NumPy
        fancy indexing (see module docstring).
        """
        state = self.state
        counters = state.counters
        two_level = self._two_level
        out = self._out
        out.made_progress = True
        out.done = False

        # Inline HotRing top access for the two-level case: peek, pop and
        # update_top_offset all address the same ``head - 1`` slot, and the
        # step is atomic, so reading the pointers once is safe.  Reads go
        # through the SoA bindings (pointer slab + entry memoryviews) —
        # unboxed int64 scalars with no NumPy dispatch.
        if two_level:
            ptrs = self._ptrs
            hpi = self._hpi
            pos = ptrs[hpi] - 1
            if pos < 0:
                pos = self._hsize - 1
            hv = self._hv
            ho = self._ho
            u = hv[pos]
            i = ho[pos]
        else:
            top = self.stack
            u, i = top.peek()
        row_end = state.row_ptr_list[u + 1]
        if i >= row_end:
            # Adjacency exhausted: fast pop (offset notionally set to -1).
            if two_level:
                ptrs[hpi] = pos
            else:
                top.pop()
            counters.pops += 1
            state.pending -= 1
            if state.trace is not None:
                state.record(now, self.block_id, self.warp_id, "pop", (u,))
            out.cost = self._c_pop
            return out

        wend = i + WARP_WIDTH
        if wend > row_end:
            wend = row_end
        window = wend - i
        ci = state.col_idx_list
        visited = state.visited_mv
        k = -1
        for j in range(i, wend):
            if not visited[ci[j]]:
                k = j
                break
        cost = self._c_visit_base + self._c_visit_per_edge * window

        if k < 0:
            # Whole window already visited: consume it.
            counters.edges_traversed += window
            if wend >= row_end:
                if two_level:
                    ptrs[hpi] = pos
                else:
                    top.pop()
                counters.pops += 1
                state.pending -= 1
                cost += self._c_pop
                if state.trace is not None:
                    state.record(now, self.block_id, self.warp_id, "pop", (u,))
            else:
                if two_level:
                    ho[pos] = wend
                else:
                    top.update_top_offset(wend)
            out.cost = cost
            return out

        # Claim the first unvisited neighbour in the window.
        counters.edges_traversed += k - i + 1
        v = ci[k]
        if two_level:
            ho[pos] = k + 1
        else:
            top.update_top_offset(k + 1)
        claimed = state.try_claim_vertex(v, u)
        cost += self._c_visited_cas
        if not claimed:
            # Lost the CAS to a concurrent warp (cannot happen under step
            # atomicity after the visited check, but kept for safety).
            out.cost = cost + self._c_cas_retry
            return out

        # Inlined counters.record_task(block_id, warp_id).
        bid = self.block_id
        tpb = counters.tasks_per_block
        tpb[bid] = tpb.get(bid, 0) + 1
        tpw = counters.tasks_per_warp
        key = (bid, self.warp_id)
        tpw[key] = tpw.get(key, 0) + 1
        # Push <v | row_ptr[v]>, flushing first when the HotRing is full.
        if two_level:
            stack = self.stack
            hsize = self._hsize
            tpi = self._tpi
            head = ptrs[hpi]
            nxt = head + 1
            if nxt == hsize:
                nxt = 0
            if nxt == ptrs[tpi]:  # inlined needs_flush(): ring is full
                moved = stack.flush()
                counters.flushes += 1
                counters.flush_entries += moved
                cost += self._c_flush_base + self._c_flush_per_entry * moved
                if state.trace is not None:
                    state.record(now, self.block_id, self.warp_id, "flush",
                                 (moved,))
                head = ptrs[hpi]  # the "head" flush policy retracts it
                nxt = head + 1
                if nxt == hsize:
                    nxt = 0
            # Inlined hot.push(): the flush guarantees a free slot.
            hv[head] = v
            ho[head] = state.row_ptr_list[v]
            ptrs[hpi] = nxt
            depth = nxt - ptrs[tpi]
            if depth < 0:
                depth += hsize
            if depth > counters.max_hot_depth:
                counters.max_hot_depth = depth
            cptrs = self._cptrs
            depth = cptrs[self._cti] - cptrs[self._cbi]
            if depth > counters.max_cold_depth:
                counters.max_cold_depth = depth
        else:
            self.stack.push(v, state.row_ptr_list[v])
        counters.pushes += 1
        state.pending += 1
        cost += self._c_push
        if state.trace is not None:
            state.record(now, self.block_id, self.warp_id, "visit", (u, v))
        out.cost = cost
        return out

    def _expand_reference(self, now: int) -> StepOutcome:
        """Reference NumPy implementation of the expand step.

        Selected by ``config.fastpath=False``; kept verbatim so the
        golden determinism test can assert the fast path reproduces it
        bit-for-bit.
        """
        state = self.state
        costs = state.costs
        counters = state.counters
        graph = state.graph
        rp, ci = graph.row_ptr, graph.column_idx
        two_level = self._two_level
        top = self.stack.hot if two_level else self.stack
        gpenalty = self._gpenalty

        u, i = top.peek()
        row_end = int(rp[u + 1])
        if i >= row_end:
            # Adjacency exhausted: fast pop (offset notionally set to -1).
            top.pop()
            counters.pops += 1
            state.pending -= 1
            state.record(now, self.block_id, self.warp_id, "pop", (u,))
            return StepOutcome(cost=costs.hot_pop + gpenalty)

        window = min(WARP_WIDTH, row_end - i)
        nbrs = ci[i:i + window]
        unvis = np.flatnonzero(state.visited[nbrs] == 0)
        cost = costs.visit_base + costs.visit_per_edge * window + gpenalty

        if unvis.size == 0:
            # Whole window already visited: consume it.
            counters.edges_traversed += window
            new_off = i + window
            if new_off >= row_end:
                top.pop()
                counters.pops += 1
                state.pending -= 1
                cost += costs.hot_pop + gpenalty
                state.record(now, self.block_id, self.warp_id, "pop", (u,))
            else:
                top.update_top_offset(new_off)
            return StepOutcome(cost=cost)

        # Claim the first unvisited neighbour in the window.
        k = i + int(unvis[0])
        counters.edges_traversed += int(unvis[0]) + 1
        v = int(ci[k])
        top.update_top_offset(k + 1)
        claimed = state.try_claim_vertex(v, u)
        cost += costs.visited_cas
        if not claimed:
            # Lost the CAS to a concurrent warp (cannot happen under step
            # atomicity after the visited check, but kept for safety).
            cost += costs.cas_retry
            return StepOutcome(cost=cost)

        counters.record_task(self.block_id, self.warp_id)
        # Push <v | row_ptr[v]>, flushing first when the HotRing is full.
        if two_level:
            if self.stack.needs_flush():
                moved = self.stack.flush()
                counters.flushes += 1
                counters.flush_entries += moved
                cost += costs.flush_base + costs.flush_per_entry * moved
                state.record(now, self.block_id, self.warp_id, "flush", (moved,))
            self.stack.hot.push(v, int(rp[v]))
            counters.max_hot_depth = max(counters.max_hot_depth, len(self.stack.hot))
            counters.max_cold_depth = max(counters.max_cold_depth, len(self.stack.cold))
        else:
            self.stack.push(v, int(rp[v]))
        counters.pushes += 1
        state.pending += 1
        cost += costs.hot_push + gpenalty
        state.record(now, self.block_id, self.warp_id, "visit", (u, v))
        return StepOutcome(cost=cost)

    # ------------------------------------------------------------------
    # Idle execution: stealing and polling.
    # ------------------------------------------------------------------
    def _idle(self, now: int) -> StepOutcome:
        state = self.state
        costs = state.costs
        config = state.config
        block = self.block
        if block.active_mask & self._bit:
            block.active_mask &= ~self._bit

        # Intra-block stealing: any peer in my block active?
        if config.enable_intra_steal and block.active_mask:
            plan = intra_steal.select_victim(state, block, self.warp_id)
            extra = costs.steal_scan_per_warp * block.n_warps
            if plan is not None:
                self.intra_plan = plan
                self.phase = _Phase.RESERVE_INTRA
                return StepOutcome(cost=extra)
        # Inter-block stealing: leader warp of an idle block.
        elif (config.enable_inter_steal and self.warp_id == 0
                and block.active_mask == 0 and config.n_blocks > 1):
            plan = inter_steal.select_victim(state, self.block_id, self.rng)
            extra = costs.steal_scan_per_warp * config.warps_per_block + 40
            if plan is not None:
                self.inter_plan = plan
                self.phase = _Phase.RESERVE_INTER
                return StepOutcome(cost=extra)
        else:
            extra = 0

        return self._poll(extra)

    def _poll(self, extra: int) -> StepOutcome:
        """Exponential-backoff idle poll (no work found)."""
        costs = self.state.costs
        self.state.counters.idle_polls += 1
        cost = extra + self.backoff
        self.backoff = min(self.backoff * 2, costs.idle_backoff_max)
        out = self._out
        out.cost = cost
        out.made_progress = False
        out.done = False
        return out

    def _reserve_intra(self, now: int) -> StepOutcome:
        state = self.state
        costs = state.costs
        plan = self.intra_plan
        self.phase = _Phase.RUN
        self.intra_plan = None
        ok = intra_steal.execute_steal(state, self.block, self.warp_id, plan)
        if ok:
            self.backoff = costs.idle_poll
            state.record(now, self.block_id, self.warp_id, "steal_intra",
                         (plan.victim_warp, plan.amount))
            return StepOutcome(cost=costs.steal_intra_base
                               + costs.steal_intra_per_entry * plan.amount)
        state.record(now, self.block_id, self.warp_id, "steal_intra_fail",
                     (plan.victim_warp,))
        return StepOutcome(cost=costs.steal_fail, made_progress=False)

    def _reserve_inter(self, now: int) -> StepOutcome:
        state = self.state
        costs = state.costs
        plan = self.inter_plan
        self.phase = _Phase.RUN
        self.inter_plan = None
        ok = inter_steal.execute_steal(state, self.block_id, self.warp_id, plan)
        if ok:
            self.backoff = costs.idle_poll
            kind = "steal_remote" if plan.remote else "steal_inter"
            state.record(now, self.block_id, self.warp_id, kind,
                         (plan.victim_block, plan.victim_warp, plan.amount))
            if plan.remote:
                return StepOutcome(cost=costs.steal_remote_base
                                   + costs.steal_remote_per_entry * plan.amount)
            return StepOutcome(cost=costs.steal_inter_base
                               + costs.steal_inter_per_entry * plan.amount)
        state.record(now, self.block_id, self.warp_id, "steal_inter_fail",
                     (plan.victim_block, plan.victim_warp))
        return StepOutcome(cost=costs.steal_fail, made_progress=False)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"WarpAgent(block={self.block_id}, warp={self.warp_id}, "
                f"phase={self.phase.value}, stack={len(self.stack)})")
