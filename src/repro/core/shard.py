"""Sharded execution tier: one engine per district, rounds over cut edges.

This lifts the paper's inter-block steal protocol one level up.  A
:class:`~repro.graphs.partition.PartitionedCSR` splits the graph into
``k`` balanced districts (:mod:`repro.graphs.partition`); each district
runs its own DiggerBees engine (turbo/fastpath, selected exactly as in
:func:`repro.core.diggerbees.run_diggerbees`) over the *unvisited* part
of its subgraph, and a message-passing round protocol over the cut-edge
halo tables replaces inter-block leader steals at the top level:

1. **Round** — every district holding activation roots runs one engine
   over the induced subgraph of its unvisited vertices.  A *virtual
   super-root* (local vertex 0) wired to that round's activation roots
   models the leader warp injecting stolen work, so a single engine run
   drains all activations at once.  District runs within a round are
   independent and fan out over the persistent worker pool
   (:func:`repro.bench.harness.lease_pool`), each district's subgraph
   exported once into shared memory (:mod:`repro.graphs.shm`).
2. **Barrier** — newly visited vertices are merged; cut arcs leaving
   them become messages.  A message whose target is still unvisited is
   a *delivered activation*: the target becomes one of the receiving
   district's roots next round.  Delivered activations are accounted as
   remote steals (``remote_steal_successes`` / ``_entries``) and priced
   with the device's NVLink cost table (``steal_remote_base`` per
   communicating district pair, ``steal_remote_per_entry`` per
   activation).
3. **Termination** — no activations survive the barrier.

Modeled time is ``sum over rounds of (max district cycles + barrier
communication)`` — the makespan of a fleet of k devices running in
lockstep rounds.

Merged results are *canonical*: a schedule-dependent DFS parent array
cannot be simultaneously partition-invariant and equal to any one
engine's steal schedule (lexicographic DFS is P-complete — there is no
shortcut), so the sharded tier reports the repository's established
order-independent tree instead: ``visited`` is bit-identical to the
unsharded engines (it is the reachable set), ``parent`` is the
deterministic min-parent tree over BFS levels (the same canonical tree
:mod:`repro.core.frontier` emits, pinned by oracle rung 5e), ``levels``
are hop distances, and ``edges_traversed`` equals the unsharded
engines' count (every visited vertex's adjacency is inspected exactly
once, in exactly one district-round).  The whole result is therefore
bit-identical across every ``k`` and every ``jobs`` value, which is
what lets it slot into the differential-oracle ladder (rung 5f).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import DiggerBeesConfig
from repro.core.diggerbees import run_diggerbees
from repro.errors import SimulationError
from repro.graphs.csr import CSRGraph, from_edges
from repro.graphs.partition import PartitionedCSR, partition_graph
from repro.sim.device import DeviceSpec, H100
from repro.sim.engine import EngineResult
from repro.sim.metrics import mteps as _mteps
from repro.sim.trace import SimCounters
from repro.validate.reference import (
    ROOT_PARENT,
    UNVISITED_PARENT,
    TraversalResult,
)

__all__ = ["ShardedResult", "run_sharded", "sharded_levels",
           "canonical_parent"]

_IDX = np.int64

#: Partition memo keyed by (name, n, m, k, seed, checksum): the serve
#: daemon answers many queries against the same resident graph, and
#: re-partitioning per query would dwarf the traversal itself.
_PARTITION_CACHE: Dict[tuple, PartitionedCSR] = {}
_PARTITION_CACHE_MAX = 8


def _partition_key(graph: CSRGraph, k: int, seed: int) -> tuple:
    ci = graph.column_idx
    stride = max(1, ci.size // 64)
    probe = int(ci[::stride].sum()) if ci.size else 0
    return (graph.name, graph.n_vertices, graph.n_edges, k, seed, probe)


def _cached_partition(graph: CSRGraph, k: int, seed: int) -> PartitionedCSR:
    key = _partition_key(graph, k, seed)
    part = _PARTITION_CACHE.get(key)
    if part is None or part.graph is not graph and not (
            np.array_equal(part.graph.row_ptr, graph.row_ptr)
            and np.array_equal(part.graph.column_idx, graph.column_idx)):
        part = partition_graph(graph, k, seed=seed)
        if len(_PARTITION_CACHE) >= _PARTITION_CACHE_MAX:
            _PARTITION_CACHE.pop(next(iter(_PARTITION_CACHE)))
        _PARTITION_CACHE[key] = part
    return part


# ----------------------------------------------------------------------
# Canonical merge oracles (levels + min-parent tree), computed shard-wise
# ----------------------------------------------------------------------
def sharded_levels(part: PartitionedCSR, root: int) -> np.ndarray:
    """Hop distance from ``root`` per vertex (-1 unreachable), computed
    as a distributed level-synchronous BFS: districts expand their local
    frontier over internal arcs and exchange cut-arc candidates at each
    level barrier.  Equals ``graphs.properties.bfs_levels`` exactly.
    """
    graph = part.graph
    n = graph.n_vertices
    level = np.full(n, -1, dtype=_IDX)
    level[root] = 0
    frontiers: Dict[int, np.ndarray] = {
        int(part.labels[root]): np.array([part.local_ids[root]], dtype=_IDX)
    }
    depth = 0
    while frontiers:
        depth += 1
        candidates: List[np.ndarray] = []
        for d, local_front in frontiers.items():
            dist = part.districts[d]
            sub = dist.subgraph
            rp, ci = sub.row_ptr, sub.column_idx
            starts, ends = rp[local_front], rp[local_front + 1]
            deg = ends - starts
            total = int(deg.sum())
            if total:
                # Gather all adjacency slices in one vectorized pass:
                # element j of the output is ci[starts[v] + offset] for
                # the v-th frontier vertex it falls under.
                base = np.repeat(starts - np.concatenate(
                    ([0], np.cumsum(deg)[:-1])), deg)
                out = ci[base + np.arange(total, dtype=_IDX)]
                candidates.append(dist.global_ids[np.unique(out)])
            if dist.cut_src_local.size:
                in_front = np.zeros(sub.n_vertices, dtype=bool)
                in_front[local_front] = True
                candidates.append(dist.cut_dst_global[
                    in_front[dist.cut_src_local]])
        if not candidates:
            break
        cand = np.unique(np.concatenate(candidates))
        new = cand[level[cand] < 0]
        if new.size == 0:
            break
        level[new] = depth
        frontiers = {}
        for d in np.unique(part.labels[new]):
            members = new[part.labels[new] == d]
            frontiers[int(d)] = part.local_ids[members]
    return level


def canonical_parent(part: PartitionedCSR, levels: np.ndarray,
                     root: int) -> np.ndarray:
    """Deterministic min-parent tree over ``levels``, computed shard-wise.

    ``parent[v]`` is the smallest global id ``u`` with a stored arc
    ``u -> v`` and ``levels[u] == levels[v] - 1`` — the same canonical
    tree as :func:`repro.core.frontier.min_parent_tree`, but scattered
    per district (internal arcs from each subgraph, cross arcs from the
    halo tables) so no global edge array is materialized.
    """
    n = part.graph.n_vertices
    big = np.iinfo(_IDX).max
    best = np.full(n, big, dtype=_IDX)
    for dist in part.districts:
        sub = dist.subgraph
        if sub.n_edges:
            src_l = np.repeat(np.arange(sub.n_vertices, dtype=_IDX),
                              np.diff(sub.row_ptr))
            src_g = dist.global_ids[src_l]
            dst_g = dist.global_ids[sub.column_idx]
            m = (levels[src_g] >= 0) & (levels[src_g] + 1 == levels[dst_g])
            np.minimum.at(best, dst_g[m], src_g[m])
        if dist.cut_src_global.size:
            cs, cd = dist.cut_src_global, dist.cut_dst_global
            m = (levels[cs] >= 0) & (levels[cs] + 1 == levels[cd])
            np.minimum.at(best, cd[m], cs[m])
    parent = np.full(n, UNVISITED_PARENT, dtype=_IDX)
    reached = levels >= 0
    parent[reached] = np.where(best[reached] == big, UNVISITED_PARENT,
                               best[reached])
    parent[root] = ROOT_PARENT
    if np.any(reached & (parent == UNVISITED_PARENT)):
        bad = np.flatnonzero(reached & (parent == UNVISITED_PARENT))
        raise SimulationError(
            f"canonical parent undefined for reached vertices "
            f"{bad[:8].tolist()}")
    return parent


# ----------------------------------------------------------------------
# District round execution (runs in pool workers)
# ----------------------------------------------------------------------
def _run_district_round(payload) -> tuple:
    """One district, one round: engine over the unvisited induced
    subgraph behind a virtual super-root.  Module-level so the
    process-pool fan-out can pickle it; the district subgraph arrives
    as a shared-memory spec (attached + cached worker-side) or, on the
    pickle fallback, as the graph itself.
    """
    from repro.bench.harness import _resolve_task_graph

    sub_or_spec, unvisited, roots, config, device = payload
    sub = _resolve_task_graph(sub_or_spec)
    unvisited = np.asarray(unvisited, dtype=_IDX)
    roots = np.asarray(roots, dtype=_IDX)
    # Local id -> virtual-graph id (0 is the super-root).
    pos = np.full(sub.n_vertices, -1, dtype=_IDX)
    pos[unvisited] = np.arange(unvisited.size, dtype=_IDX) + 1
    src = np.repeat(np.arange(sub.n_vertices, dtype=_IDX),
                    np.diff(sub.row_ptr))
    dst = sub.column_idx
    m = (pos[src] > 0) & (pos[dst] > 0)
    internal = np.column_stack([pos[src[m]], pos[dst[m]]])
    virt = np.column_stack([np.zeros(roots.size, dtype=_IDX),
                            pos[roots]])
    vgraph = from_edges(int(unvisited.size) + 1,
                        np.vstack([virt, internal]),
                        directed=sub.directed, name=f"{sub.name}#round")
    res = run_diggerbees(vgraph, 0, config=config, device=device)
    newly = unvisited[res.traversal.visited[1:]]
    return (newly, res.cycles, res.engine.steps, res.engine.exact_cycles,
            res.counters, int(roots.size))


def _merge_counters(agg: SimCounters, run: SimCounters, n_roots: int,
                    block_offset: int) -> None:
    """Fold one district run into the aggregate, dropping the virtual
    super-root's own artifacts (its claim, push/pop, and the ``n_roots``
    activation-arc inspections) so merged totals match an unsharded run.
    """
    agg.edges_traversed += run.edges_traversed - n_roots
    agg.vertices_visited += run.vertices_visited - 1
    agg.pushes += run.pushes - 1
    agg.pops += run.pops - 1
    for name in ("flushes", "flush_entries", "refills", "refill_entries",
                 "coldseg_compactions", "intra_steal_attempts",
                 "intra_steal_successes", "intra_steal_entries",
                 "inter_steal_attempts", "inter_steal_successes",
                 "inter_steal_entries", "cas_attempts", "cas_failures",
                 "idle_polls"):
        setattr(agg, name, getattr(agg, name) + getattr(run, name))
    agg.max_hot_depth = max(agg.max_hot_depth, run.max_hot_depth)
    agg.max_cold_depth = max(agg.max_cold_depth, run.max_cold_depth)
    for block, count in run.tasks_per_block.items():
        key = block_offset + block
        agg.tasks_per_block[key] = agg.tasks_per_block.get(key, 0) + count
    for (block, warp), count in run.tasks_per_warp.items():
        key = (block_offset + block, warp)
        agg.tasks_per_warp[key] = agg.tasks_per_warp.get(key, 0) + count


# ----------------------------------------------------------------------
# Result type + driver
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardedResult:
    """Merged outcome of one sharded traversal.

    Mirrors :class:`~repro.core.diggerbees.DiggerBeesResult` (traversal,
    cycles, seconds, counters, engine) so it drops into the same report
    and wire-payload paths, and adds the shard-tier extras: the
    partition, per-round protocol stats, and canonical BFS levels.
    """

    traversal: TraversalResult
    levels: np.ndarray
    cycles: int
    seconds: float
    counters: SimCounters
    config: DiggerBeesConfig
    device: DeviceSpec
    engine: EngineResult
    partition: PartitionedCSR
    rounds: Tuple[dict, ...] = field(default_factory=tuple)
    jobs: int = 1

    @property
    def k(self) -> int:
        return self.partition.k

    @property
    def mteps(self) -> float:
        return _mteps(self.traversal.edges_traversed, self.seconds)

    @property
    def n_visited(self) -> int:
        return self.traversal.n_visited

    @property
    def n_rounds(self) -> int:
        return len(self.rounds)

    def summary(self) -> dict:
        c = self.counters
        return {
            "mteps": self.mteps,
            "cycles": self.cycles,
            "seconds": self.seconds,
            "visited": self.n_visited,
            "edges": self.traversal.edges_traversed,
            "k": self.k,
            "rounds": self.n_rounds,
            "remote_steals": c.remote_steal_successes,
            "remote_steal_entries": c.remote_steal_entries,
            "intra_steals": c.intra_steal_successes,
            "inter_steals": c.inter_steal_successes,
            "engine_steps": self.engine.steps,
            **{f"partition_{key}": val
               for key, val in self.partition.quality().items()
               if key != "district_sizes"},
        }


def run_sharded(
    graph: CSRGraph,
    root: int,
    *,
    config: Optional[DiggerBeesConfig] = None,
    k: int = 2,
    partition: Optional[PartitionedCSR] = None,
    partition_seed: int = 0,
    jobs: int = 1,
    device: DeviceSpec = H100,
) -> ShardedResult:
    """Traverse ``graph`` from ``root`` across ``k`` concurrent districts.

    ``partition`` short-circuits the partitioner (callers holding a
    :class:`PartitionedCSR` — the serve daemon memoizes per resident
    graph); otherwise a seeded partition is computed (and memoized per
    graph identity).  ``jobs > 1`` fans district runs of each round out
    over the persistent worker pool; results are bit-identical for
    every ``jobs`` and every ``k``.
    """
    graph._check_vertex(root)
    config = config or DiggerBeesConfig()
    if partition is not None:
        if partition.graph.n_vertices != graph.n_vertices:
            raise SimulationError(
                f"partition is over a {partition.graph.n_vertices}-vertex "
                f"graph, got {graph.n_vertices} vertices")
        part = partition
    else:
        part = _cached_partition(graph, k, partition_seed)
    n = graph.n_vertices
    costs = device.costs
    visited = np.zeros(n, dtype=bool)
    counters = SimCounters()
    total_cycles = 0
    total_steps = 0
    exact = True
    rounds: List[dict] = []
    # Activation inboxes: district -> sorted local root ids.
    inbox: Dict[int, np.ndarray] = {
        int(part.labels[root]): np.array([part.local_ids[root]], dtype=_IDX)
    }
    use_pool = jobs > 1 and part.k > 1
    pool_handle = None
    exported: Dict[int, object] = {}
    wire_subs: Dict[int, object] = {
        d.index: d.subgraph for d in part.districts}
    try:
        if use_pool:
            from repro.bench.harness import lease_pool

            try:
                from repro.graphs.shm import export_csr

                for d in part.districts:
                    handle = export_csr(d.subgraph)
                    exported[d.index] = handle
                    wire_subs[d.index] = handle.spec
            except Exception:
                for handle in exported.values():
                    handle.close()
                exported = {}
                wire_subs = {d.index: d.subgraph for d in part.districts}
            pool_handle = lease_pool(jobs)
        while inbox:
            active = sorted(inbox)
            # Ship shm specs only on the fan-out path: resolving a spec
            # inline would attach segments into the parent's own worker
            # cache, whose views then outlive the handles at shutdown.
            fan_out = pool_handle is not None and len(active) > 1
            payloads = []
            for d in active:
                dist = part.districts[d]
                local_unvisited = np.flatnonzero(
                    ~visited[dist.global_ids]).astype(_IDX)
                sub = wire_subs[d] if fan_out else dist.subgraph
                payloads.append((sub, local_unvisited, inbox[d],
                                 config, device))
            if fan_out:
                try:
                    outs = list(pool_handle.executor.map(
                        _run_district_round, payloads))
                except Exception:
                    from repro.bench.harness import release_pool

                    release_pool(pool_handle, broken=True)
                    pool_handle = None
                    raise
            else:
                outs = [_run_district_round(p) for p in payloads]
            round_cycles = 0
            newly_global: List[np.ndarray] = []
            for d, out in zip(active, outs):
                newly, cycles, steps, run_exact, run_counters, n_roots = out
                dist = part.districts[d]
                newly_global.append(dist.global_ids[newly])
                round_cycles = max(round_cycles, cycles)
                total_steps += steps
                exact = exact and run_exact
                _merge_counters(counters, run_counters, n_roots,
                                d * config.n_blocks)
            new_mask = np.zeros(n, dtype=bool)
            for arr in newly_global:
                new_mask[arr] = True
            if np.any(new_mask & visited):
                dup = np.flatnonzero(new_mask & visited)
                raise SimulationError(
                    f"round protocol revisited vertices "
                    f"{dup[:8].tolist()}")
            visited |= new_mask
            # Barrier: scan cut arcs leaving newly visited vertices.
            inbox = {}
            n_messages = 0
            delivered_global: List[np.ndarray] = []
            pairs = set()
            for d in active:
                dist = part.districts[d]
                if dist.cut_src_global.size == 0:
                    continue
                m = new_mask[dist.cut_src_global]
                if not np.any(m):
                    continue
                n_messages += int(np.count_nonzero(m))
                targets_g = dist.cut_dst_global[m]
                targets_d = dist.cut_dst_district[m]
                live = ~visited[targets_g]
                if not np.any(live):
                    continue
                delivered_global.append(targets_g[live])
                for dd in np.unique(targets_d[live]):
                    pairs.add((d, int(dd)))
            # Emitting a message IS the inspection of that cut arc: each
            # stored arc out of a visited vertex is scanned exactly once
            # (internal arcs by the district engine, cut arcs here), so
            # merged edges_traversed matches the unsharded engines.
            counters.edges_traversed += n_messages
            delivered = (np.unique(np.concatenate(delivered_global))
                         if delivered_global else np.empty(0, dtype=_IDX))
            for d in np.unique(part.labels[delivered]):
                members = delivered[part.labels[delivered] == d]
                inbox[int(d)] = np.sort(part.local_ids[members])
            comm_cycles = 0
            if delivered.size:
                counters.remote_steal_successes += len(pairs)
                counters.remote_steal_entries += int(delivered.size)
                comm_cycles = (len(pairs) * costs.steal_remote_base
                               + int(delivered.size)
                               * costs.steal_remote_per_entry)
            total_cycles += round_cycles + comm_cycles
            rounds.append({
                "round": len(rounds),
                "active_districts": active,
                "newly_visited": int(np.count_nonzero(new_mask)),
                "cut_messages": n_messages,
                "delivered_activations": int(delivered.size),
                "district_pairs": len(pairs),
                "engine_cycles": int(round_cycles),
                "comm_cycles": int(comm_cycles),
            })
    finally:
        if pool_handle is not None:
            from repro.bench.harness import release_pool

            release_pool(pool_handle)
        for handle in exported.values():
            handle.close()

    # Canonical merge: reachable set + deterministic min-parent tree.
    levels = sharded_levels(part, root)
    if not np.array_equal(levels >= 0, visited):
        raise SimulationError(
            "sharded visited set disagrees with level-sync reachability")
    parent = canonical_parent(part, levels, root)
    edges = int(np.diff(graph.row_ptr)[visited].sum())
    if counters.edges_traversed != edges:
        raise SimulationError(
            f"aggregated edge inspections ({counters.edges_traversed}) != "
            f"sum of visited out-degrees ({edges}); a district expanded "
            f"a vertex twice or skipped one")
    if counters.vertices_visited != int(np.count_nonzero(visited)):
        raise SimulationError(
            f"aggregated vertex claims ({counters.vertices_visited}) != "
            f"visited count ({int(np.count_nonzero(visited))})")
    traversal = TraversalResult(
        root=root,
        visited=visited,
        parent=parent,
        order=np.empty(0, dtype=_IDX),
        edges_traversed=edges,
    )
    engine = EngineResult(
        cycles=total_cycles,
        steps=total_steps,
        agents=config.n_blocks * config.warps_per_block * part.k,
        exact_cycles=exact,
    )
    return ShardedResult(
        traversal=traversal,
        levels=levels,
        cycles=total_cycles,
        seconds=device.cycles_to_seconds(total_cycles),
        counters=counters,
        config=config,
        device=device,
        engine=engine,
        partition=part,
        rounds=tuple(rounds),
        jobs=jobs,
    )
