"""Intra-block work stealing (paper §3.4, Algorithm 3, Figure 3a).

The protocol is optimistic and two-phase, exactly as on hardware:

1. **Victim selection** (:func:`select_victim`): the idle thief scans its
   block's peers, computes each ``hot_rest = (head - tail + hot_size) %
   hot_size``, and picks the maximum provided it reaches ``hot_cutoff``.
   The observed ``tail`` is recorded in the returned plan.
2. **Work reservation + local transfer** (:func:`execute_steal`, a later
   simulator step): the thief validates the victim's ``tail`` against the
   observation — the atomicCAS of Algorithm 3 line 15.  If another thief
   moved the tail in between (Figure 3a's Warp2), the CAS fails and the
   thief restarts selection.  On success it takes ``hot_cutoff / 2``
   entries from the victim's tail, fences, copies them into its own
   HotRing, advances its head, and flips its active-mask bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.state import BlockState, RunState
from repro.core.twolevel_stack import WarpStack

__all__ = ["IntraStealPlan", "select_victim", "select_victims_batch",
           "execute_steal"]


@dataclass(frozen=True)
class IntraStealPlan:
    """Outcome of victim selection: who to rob and what was observed."""

    victim_warp: int
    observed_tail: int
    observed_rest: int
    amount: int


def _hot_rest(stack) -> int:
    """Stealable depth of a peer's fast stack."""
    if isinstance(stack, WarpStack):
        return len(stack.hot)
    return len(stack)  # one-level stack: the whole stack is in global memory


def _tail_token(stack) -> int:
    """The pointer the reservation CAS validates (HotRing tail / seg bottom)."""
    if isinstance(stack, WarpStack):
        return stack.hot.tail
    return stack._seg.bottom


def select_victim(state: RunState, block: BlockState,
                  thief_warp: int) -> Optional[IntraStealPlan]:
    """Step 1 of Algorithm 3: scan peers, pick max ``hot_rest`` >= cutoff.

    Returns None when no peer qualifies (all below ``hot_cutoff``).

    With ``state.fuzz_rng`` set (``adversarial_victims`` fuzzing), the
    thief instead picks a *random* peer among all that reach the cutoff,
    so the fuzzer explores steal interleavings the deterministic
    max-depth scan can never produce.
    """
    cutoff = state.config.hot_cutoff
    fuzz = state.fuzz_rng
    if fuzz is not None:
        qualifying = [
            (w, rest) for w in range(block.n_warps)
            if w != thief_warp
            and (rest := block.hot_rest(w)) >= cutoff
        ]
        if not qualifying:
            return None
        victim, rest = qualifying[fuzz.randrange(len(qualifying))]
        return IntraStealPlan(
            victim_warp=victim,
            observed_tail=_tail_token(block.stacks[victim]),
            observed_rest=rest,
            amount=state.config.intra_steal_amount,
        )
    best_rest = 0
    best_warp = -1
    stacks = block.stacks
    for w in range(block.n_warps):
        if w == thief_warp:
            continue
        # Inlined _hot_rest: this scan runs on every idle step of every
        # warp with an active peer, so it avoids the per-peer call chain.
        s = stacks[w]
        if type(s) is WarpStack:
            hot = s.hot
            ptrs = hot._ptrs  # direct slab read: skip property dispatch
            rest = ptrs[hot._hi] - ptrs[hot._ti]
            if rest < 0:
                rest += hot.size
        else:
            rest = len(s)
        if rest > best_rest:
            best_rest = rest
            best_warp = w
    if best_warp < 0 or best_rest < cutoff:
        return None
    return IntraStealPlan(
        victim_warp=best_warp,
        observed_tail=_tail_token(block.stacks[best_warp]),
        observed_rest=best_rest,
        amount=state.config.intra_steal_amount,
    )


def select_victims_batch(heads: np.ndarray, tails: np.ndarray,
                         hot_size: int, thief_warps: np.ndarray,
                         cutoff: int):
    """Vectorized step 1 of Algorithm 3 across independent thief lanes.

    ``heads``/``tails`` are ``(lanes, n_warps)`` gathers of each thief's
    block's HotRing pointer pairs and ``thief_warps`` each thief's own
    warp index within its block.  Per lane this replays the scalar
    :func:`select_victim` scan exactly: ``hot_rest = (head - tail +
    hot_size) % hot_size`` per peer, the thief's own lane excluded, and
    a strict ``>`` maximum so the *first* peer at the maximum wins —
    ``argmax`` ties break identically.

    Returns ``(victim_warp, token, rest, ok)`` arrays; ``token`` is the
    observed tail (the reservation CAS token) and ``ok`` marks lanes
    whose best rest reaches ``cutoff``.  Used by the hive engine's
    batched selection pass; the scalar function remains the oracle (and
    the mutation-suite patch point).
    """
    rest = heads - tails
    np.add(rest, hot_size, out=rest, where=rest < 0)
    lanes = np.arange(rest.shape[0])
    rest[lanes, thief_warps] = -1
    victim = rest.argmax(axis=1)
    best = rest[lanes, victim]
    token = tails[lanes, victim]
    return victim, token, best, best >= cutoff


def execute_steal(state: RunState, block: BlockState, thief_warp: int,
                  plan: IntraStealPlan) -> bool:
    """Steps 2-3 of Algorithm 3: CAS-validate, then transfer locally.

    Returns True on success.  Failure means the victim's tail moved (a
    competing thief won) or the victim dropped below the cutoff; the
    caller restarts selection, mirroring Figure 3a.
    """
    counters = state.counters
    counters.intra_steal_attempts += 1
    victim_stack = block.stacks[plan.victim_warp]

    # atomicCAS(tail, observed, observed + amount): in the simulator the
    # validation and the take are one atomic step, so "token unchanged and
    # still enough work" is exactly CAS success.
    if _tail_token(victim_stack) != plan.observed_tail:
        counters.cas_failures += 1
        return False
    counters.cas_attempts += 1
    if _hot_rest(victim_stack) < state.config.hot_cutoff:
        counters.cas_failures += 1
        return False

    amount = min(plan.amount, _hot_rest(victim_stack))
    # Raw commit-point token read for the invariant monitor: independent
    # of _tail_token so a broken token read path is still caught.
    if isinstance(victim_stack, WarpStack):
        token_at_commit = victim_stack.hot.tail
        verts, offs = victim_stack.hot.take_from_tail(amount)
    else:
        token_at_commit = victim_stack._seg.bottom
        verts, offs = victim_stack.take_from_tail(amount)
    monitor = state.monitor
    if monitor is not None:
        monitor.on_steal(
            kind="intra",
            victim=(block.block_id, plan.victim_warp),
            thief=(block.block_id, thief_warp),
            verts=verts,
            token_at_commit=token_at_commit,
            observed_token=plan.observed_tail,
            amount=amount,
            observed_rest=plan.observed_rest,
        )

    # threadfence_block() then local copy into the thief's own stack.
    thief_stack = block.stacks[thief_warp]
    if isinstance(thief_stack, WarpStack):
        thief_stack.hot.put_batch(verts, offs)
    else:
        thief_stack.put_batch(verts, offs)

    block.set_active(thief_warp, True)
    # Victim-side contention: its tail cache line was invalidated and its
    # next operations serialize behind the CAS.
    block.contention_debt[plan.victim_warp] += state.costs.victim_debt_intra
    counters.intra_steal_successes += 1
    counters.intra_steal_entries += amount
    return True
