"""Swarm frontier: lockstep direction-optimizing BFS over many roots.

This is the frontier-side analogue of the hive DFS tier: B traversals of
the *same* graph advance level-synchronously together, one NumPy pass
per level serving every live root.  All per-root state is kept
*lane-transposed* so a 64-lane word is the unit of work:

* ``visited_T`` is an ``(n, lane-words)`` uint64 bit-matrix — row ``v``
  packs "which lanes have visited ``v``", so one AND over a shared edge
  list resolves 64 lanes at a time;
* ``parent_T`` / ``level_T`` are ``(n, B)`` matrices, so the
  destination-sorted winner scatters stream through memory row by row;
* the frontier is a flat lane-tagged ``(vertex, lane)`` pair list plus
  its transposed bit image ``front_T``, refreshed incrementally (only
  rows touched at the last commit are ever cleared).

Each level runs two grouped passes over the live lanes:

* **push** — the union of all pushing lanes' frontiers is gathered from
  CSR once; each lane's edges are carved out of that shared adjacency
  slab by per-root membership (a searchsorted slice map), then one
  combined min-reduction over ``(lane, dst)`` keys picks every lane's
  parents at once;
* **pull** — one SpMV-style gather over the union of the pulling lanes'
  unvisited sets, then a vectorized ``front_T[src] & ~visited_T[dst]``
  AND resolves every lane's active pull edges at once.  A segmented
  prefix-OR (Hillis-Steele over the lane words) down each
  ``(dst, src)``-sorted adjacency run isolates each lane's *first*
  active source — exactly the min-parent tie-break — so winners expand
  to pairs straight from the packed first-occurrence bits, with no
  per-lane Python loop and no per-edge claim scatter.

The two passes compute the same discovery relation (unvisited vertices
adjacent to the frontier, parented by the minimum frontier source), so
*which* pass serves a lane is a cost choice, not a semantic one.  When
the pushing lanes' combined frontier edge mass exceeds the whole arc
array, carving per-lane adjacency slabs costs more than the packed
pull pass the pulling lanes are already paying for — so those push
lanes **fold into the pull pass**: their lane bits join the same AND /
prefix-OR sweep at zero marginal cost, while their counters still
record a push with push edge mass (the direction decision is
semantics; the shared sweep is mechanism).

Beamer's alpha/beta direction switch runs *per lane* on exactly the
quantities the single-root engine uses (frontier edge mass, unvisited
edge mass, frontier size); both operands are carried forward from the
winner commit, so mega-frontier levels never pay a fresh reduction.
On commits both operands fall out of the discovery pair stream as two
lane bincounts (float64 sums of int64 degrees, exact).  The min-parent
tie-break matches the single-root ``_min_per_dst`` reduction — so
every lane's ``visited`` / ``level`` / ``parent`` / push-pull/edge
counters are **bit-identical** to a single-root
:func:`repro.core.frontier.run_frontier` from the same root.  Finished
roots retire by compaction: their entries simply drop out of the flat
frontier (the swap-removal analogue of the hive tier), so late levels
only pay for the lanes still alive.

``seconds`` on each returned result is the batch wall clock divided by
the number of roots — the amortized per-root cost, which is the number
the crossover sweep and the serve router care about.

Directed graphs run push-only for the same reason as the single-root
engine (the pull gather reads rows as in-edges, valid only on symmetric
CSR).
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

import numpy as np

from repro.core import bitset
from repro.core.frontier import (
    FrontierConfig,
    FrontierResult,
    _gather,
    _min_per_dst,
)
from repro.graphs.csr import CSRGraph
from repro.validate.reference import (
    ROOT_PARENT,
    TraversalResult,
    UNVISITED_PARENT,
)

__all__ = ["run_swarm"]


def run_swarm(graph: CSRGraph, roots: Sequence[int], *,
              config: Optional[FrontierConfig] = None
              ) -> List[FrontierResult]:
    """Traverse ``graph`` from every root in ``roots``, lockstep.

    Returns one :class:`FrontierResult` per root, in input order; each
    is bit-identical (visited / level / parent / counters) to a
    single-root :func:`repro.core.frontier.run_frontier` from that
    root.  Duplicate roots are fine — lanes are fully independent.
    """
    config = config or FrontierConfig()
    roots = np.asarray(list(roots), dtype=np.int64)
    if roots.size and (int(roots.min()) < 0
                       or int(roots.max()) >= graph.n_vertices):
        bad = roots[(roots < 0) | (roots >= graph.n_vertices)][0]
        graph._check_vertex(int(bad))
    B = roots.size
    if B == 0:
        return []

    n = graph.n_vertices
    rp, ci = graph.row_ptr, graph.column_idx
    deg = (rp[1:] - rp[:-1]).astype(np.int64)
    mode = "push" if graph.directed else config.mode
    neighbors_sorted = bool(graph.meta.get("sorted_neighbors", False))
    total_arcs = int(ci.size)

    t0 = time.perf_counter()
    lanes0 = np.arange(B, dtype=np.int64)
    visited_T = bitset.empty_bitmatrix(n, B)
    bitset.set_bits_2d(visited_T, roots, lanes0)
    # Parent and level interleave in one ``(n, B, 2)`` block: a
    # discovery writes both halves of the same (vertex, lane) slot, so
    # the commit scatter dirties one cache line per pair instead of two
    # distant ones — the scatter is line-traffic-bound, and this halves
    # it.  The block starts uninitialized: every *reached* slot is
    # overwritten by exactly one commit (or the root init), and the
    # unreached remainder gets its sentinels backfilled at assembly
    # from the visited mask — on connected graphs that remainder is
    # empty, so the whole 2·n·B sentinel sweep disappears.
    state = np.empty((n, B, 2), dtype=np.int64)
    parent_T, level_T = state[..., 0], state[..., 1]
    state_flat = state.reshape(-1)
    parent_T[roots, lanes0] = ROOT_PARENT
    level_T[roots, lanes0] = 0

    m_unvisited = np.full(B, int(deg.sum()), dtype=np.int64) - deg[roots]
    pulling = np.full(B, mode == "pull", dtype=bool)
    pushes = np.zeros(B, dtype=np.int64)
    pulls = np.zeros(B, dtype=np.int64)
    edges_scanned = np.zeros(B, dtype=np.int64)
    n_levels = np.ones(B, dtype=np.int64)

    # Flat lane-tagged frontier: vertex f_vert[i] is live in lane
    # f_lane[i].  The per-lane Beamer operands (frontier edge mass and
    # size) are carried forward from each winner commit, where they
    # fall out of reductions the commit needs anyway.
    f_vert = roots.copy()
    f_lane = lanes0.copy()
    m_front = deg[roots].astype(np.float64)
    f_size = np.ones(B, dtype=np.int64)

    # Lane-transposed frontier image, consumed by the pull pass.
    # Invariant: ``front_T`` holds bits exactly in ``touched_rows``
    # (the rows written at the last commit), so refreshing it is two
    # sparse row writes.  Push-only runs (directed) skip the upkeep.
    track_T = mode != "push"
    if track_T:
        front_T = bitset.empty_bitmatrix(n, B)
        bitset.set_bits_2d(front_T, roots, lanes0)
        touched_rows = np.unique(roots)
    depth = 0

    while f_vert.size:
        depth += 1
        if mode == "auto":
            # Per-lane Beamer switch on the exact single-root operands:
            # frontier edge mass vs unvisited edge mass (alpha), then
            # frontier vertex count vs n (beta).  Inactive lanes get a
            # harmless update — their frontier is empty, so both masses
            # are zero and they never run again.
            go_pull = m_front * config.alpha > m_unvisited
            go_push = f_size * config.beta < n
            pulling = (pulling & ~go_push) | (~pulling & go_pull)

        live = f_size > 0
        push_mask = live & ~pulling
        pull_mask = live & pulling
        any_push = bool(push_mask.any())
        any_pull = bool(pull_mask.any())

        # Counters are direction semantics, recorded up front — they do
        # not depend on which pass mechanically serves the lane.
        if any_push:
            pushes[push_mask] += 1
            # A pushing lane scans its whole frontier's adjacency: its
            # carried edge mass, no fresh reduction needed.
            edges_scanned[push_mask] += m_front[push_mask].astype(np.int64)
        if any_pull:
            pulls[pull_mask] += 1
            # A pulling lane scans every one of its own unvisited
            # vertices' edges, exactly like the single-root engine.
            edges_scanned[pull_mask] += m_unvisited[pull_mask]

        # Heavy push frontiers ride the packed pull pass for free: when
        # their combined edge mass tops the whole arc array, per-lane
        # slab carving is the costlier mechanism.
        fold = (any_push and any_pull
                and float(m_front[push_mask].sum()) > total_arcs)
        scan_mask = (push_mask | pull_mask) if fold else pull_mask

        push_w_vert = push_w_lane = push_w_par = None
        pull_rows = pull_bits = None
        p_lane = p_vert = p_par = None

        # ---- grouped push: one union gather, per-lane slice carving --
        if any_push and not fold:
            if any_pull:
                push_e = ~pulling[f_lane]
                c_vert = f_vert[push_e]
                c_lane = f_lane[push_e]
            else:
                c_vert, c_lane = f_vert, f_lane
            union = np.unique(c_vert)
            u_counts = (rp[union + 1] - rp[union]).astype(np.int64)
            u_row0 = np.zeros(union.size, dtype=np.int64)
            np.cumsum(u_counts[:-1], out=u_row0[1:])
            total_u = int(u_counts.sum())
            if total_u:
                flat_u = (np.repeat(rp[union] - u_row0, u_counts)
                          + np.arange(total_u, dtype=np.int64))
                neigh_u = ci[flat_u]
                # Carve each (lane, frontier-vertex) pair's adjacency
                # slice out of the shared slab.
                pos = np.searchsorted(union, c_vert)
                cnt = u_counts[pos]
                total = int(cnt.sum())
                if total:
                    row0 = np.zeros(c_vert.size, dtype=np.int64)
                    np.cumsum(cnt[:-1], out=row0[1:])
                    eflat = (np.repeat(u_row0[pos] - row0, cnt)
                             + np.arange(total, dtype=np.int64))
                    e_neigh = neigh_u[eflat]
                    e_src = np.repeat(c_vert, cnt)
                    e_lane = np.repeat(c_lane, cnt)
                    unseen = ~bitset.test_bits_2d(visited_T, e_neigh,
                                                  e_lane)
                    key = e_lane[unseen] * n + e_neigh[unseen]
                    w_key, push_w_par = _min_per_dst(key, e_src[unseen])
                    push_w_lane = w_key // n
                    push_w_vert = w_key % n

        # ---- grouped pull (plus folded push lanes): one gather over
        # the union unvisited set --------------------------------------
        if any_pull:
            # Lane-bit mask of the scanning lanes; tail bits past B stay
            # zero, so ~visited_T's garbage tail is masked off too, and
            # so are the bits non-scanning lanes left in ``front_T``.
            lane_bits = bitset.empty_bitset(B)
            bitset.set_bits(lane_bits, np.flatnonzero(scan_mask))
            unv_T = ~visited_T & lane_bits
            cand = np.flatnonzero(np.bitwise_or.reduce(unv_T, axis=1))
            neigh_u, dst_u = _gather(rp, ci, cand)
            if neigh_u.size:
                # ``dst_u`` ascends already (cand is sorted); ordering
                # each dst run by src makes "first active occurrence"
                # the min-parent tie-break.
                if neighbors_sorted:
                    neigh_s, dst_s = neigh_u, dst_u
                else:
                    order = np.lexsort((neigh_u, dst_u))
                    neigh_s, dst_s = neigh_u[order], dst_u[order]
                # One AND resolves every lane's active pull edges.
                active = front_T[neigh_s] & unv_T[dst_s]
                # Segmented exclusive prefix-OR down each dst run: a
                # lane's first active row in its run is its min-src
                # parent edge.  Hillis-Steele doubling costs
                # log2(max degree) masked OR passes over the lane
                # words — all in the packed domain.  Two rows are in
                # the same run exactly when their (sorted) dsts match,
                # so the span masks come straight off ``dst_s``.
                starts = np.empty(dst_s.size, dtype=bool)
                starts[0] = True
                np.not_equal(dst_s[1:], dst_s[:-1], out=starts[1:])
                scan = active.copy()
                span = 1
                max_run = int((rp[cand + 1] - rp[cand]).max())
                while span < max_run:
                    same = dst_s[span:] == dst_s[:-span]
                    np.bitwise_or(scan[span:], scan[:-span],
                                  out=scan[span:], where=same[:, None])
                    span <<= 1
                pre = np.zeros_like(active)
                cont = ~starts[1:]
                pre[1:][cont] = scan[:-1][cont]
                win = active & ~pre
                # Per-run OR of the active bits = lanes discovering
                # that dst this level, committed as whole bit rows so
                # the visited/frontier updates stay in the packed
                # domain.
                run_starts = np.flatnonzero(starts)
                found = np.bitwise_or.reduceat(active, run_starts,
                                               axis=0)
                keep = np.flatnonzero(np.bitwise_or.reduce(found,
                                                           axis=1))
                if keep.size:
                    pull_rows = dst_s[run_starts[keep]]
                    pull_bits = found[keep]
                    # Expand the first-occurrence bits; compressing to
                    # the rows that hold any bit first shrinks the
                    # expansion domain severalfold on long-run levels
                    # (one winner row per lane scattered across a run),
                    # while the pair count is unchanged.  The row
                    # coordinate then indexes the sorted edge arrays
                    # directly, one gather per pair array.
                    wrows = np.flatnonzero(
                        np.bitwise_or.reduce(win, axis=1))
                    wr, p_lane = bitset.nonzero_bits_2d(win[wrows])
                    prow = wrows[wr]
                    p_vert = dst_s[prow]
                    p_par = neigh_s[prow]

        if push_w_vert is None and p_vert is None:
            break

        # ---- commit: packed-row updates for the bit state, one flat
        # scatter per part for parent/level ---------------------------
        if track_T:
            front_T[touched_rows] = 0
        if pull_rows is not None:
            visited_T[pull_rows] |= pull_bits
            front_T[pull_rows] = pull_bits
        if push_w_vert is not None:
            bitset.set_bits_2d(visited_T, push_w_vert, push_w_lane)
            if track_T:
                bitset.set_bits_2d(front_T, push_w_vert, push_w_lane)
        if track_T:
            if pull_rows is None:
                touched_rows = np.unique(push_w_vert)
            elif push_w_vert is None:
                touched_rows = pull_rows
            else:
                tm = np.zeros(n, dtype=bool)
                tm[pull_rows] = True
                tm[push_w_vert] = True
                touched_rows = np.flatnonzero(tm)

        if push_w_vert is not None:
            slot = (push_w_vert * B + push_w_lane) << 1
            state_flat[slot] = push_w_par
            state_flat[slot + 1] = depth
            wdeg = np.bincount(push_w_lane, weights=deg[push_w_vert],
                               minlength=B)
            f_size = np.bincount(push_w_lane, minlength=B)
        if p_vert is not None:
            slot = (p_vert * B + p_lane) << 1
            state_flat[slot] = p_par
            state_flat[slot + 1] = depth
            # Both Beamer operands are lane sums over the discovery
            # set: each discovered (vertex, lane) pair contributes its
            # degree to the lane's next frontier edge mass and one to
            # its size.  Sparse commits take two pair-domain bincounts;
            # dense ones (mega levels where most lanes discover most
            # rows) fold both into one 2-row dgemm over the unpacked
            # discovery mask, which beats streaming the pair arrays
            # ~3x.  Either way every product and sum is a small integer
            # held exactly in float64.
            if p_lane.size > 48 * pull_rows.size:
                fm = bitset.unpack_bits_2d(pull_bits, B)
                w2 = np.empty((2, pull_rows.size), dtype=np.float64)
                w2[0] = deg[pull_rows]
                w2[1] = 1.0
                stats = w2 @ fm.astype(np.float64)
                wdeg_p = stats[0]
                fs_p = stats[1].astype(np.int64)
            else:
                wdeg_p = np.bincount(p_lane, weights=deg[p_vert],
                                     minlength=B)
                fs_p = np.bincount(p_lane, minlength=B)
            if push_w_vert is None:
                wdeg, f_size = wdeg_p, fs_p
            else:
                wdeg = wdeg + wdeg_p
                f_size = f_size + fs_p
        m_unvisited -= wdeg.astype(np.int64)
        m_front = wdeg
        # Lanes that discovered anything this level now reach ``depth``.
        n_levels[f_size > 0] = depth + 1

        # Retirement by compaction: lanes with no winners this level
        # simply vanish from the flat frontier.
        if push_w_vert is None:
            f_vert, f_lane = p_vert, p_lane
        elif p_vert is None:
            f_vert, f_lane = push_w_vert, push_w_lane
        else:
            f_vert = np.concatenate((push_w_vert, p_vert))
            f_lane = np.concatenate((push_w_lane, p_lane))

    per_root_seconds = (time.perf_counter() - t0) / B
    # Per-lane column views over the shared transposed state: lanes own
    # disjoint columns, so handing out views is alias-safe.  Every
    # cross-vertex reduction runs batched over the lane axis — the
    # per-lane Python loop below only wraps views and scalars.
    visited_all = bitset.unpack_bits_2d(visited_T, B)
    # Backfill sentinels for slots no commit ever touched (unreached
    # vertices).  ``state`` began uninitialized, so this masked write is
    # what establishes the UNVISITED_PARENT / -1 contract.
    miss = ~visited_all
    if miss.any():
        parent_T[miss] = UNVISITED_PARENT
        level_T[miss] = -1
    results: List[FrontierResult] = []
    for b in range(B):
        traversal = TraversalResult(
            root=int(roots[b]),
            visited=visited_all[:, b],
            parent=parent_T[:, b],
            order=np.empty(0, dtype=np.int64),
            edges_traversed=int(edges_scanned[b]),
        )
        results.append(FrontierResult(
            traversal=traversal,
            level=level_T[:, b],
            n_levels=int(n_levels[b]),
            pushes=int(pushes[b]),
            pulls=int(pulls[b]),
            edges_scanned=int(edges_scanned[b]),
            seconds=per_root_seconds,
        ))
    return results
