"""Multi-source DiggerBees: several roots seeded across the grid at once.

Two uses beyond the paper's single-source runs:

* **Forest traversal** — cover a disconnected graph in one simulation
  instead of one run per component.  All roots are claimed up front, so
  several roots inside one component partition it into several trees —
  the standard semantics of parallel multi-source traversal (exact
  duplicate roots are dropped).
* **Warm starts** — single-source DFS suffers a long ramp-up while one
  warp's subtree feeds the whole grid; seeding k roots spread over the
  blocks shortcuts that ramp, which is how a production library would
  run the GAP-style many-source benchmarks.

Roots are assigned round-robin over blocks (root i -> block i % n_blocks,
warp 0 of that block), mirroring how a launcher would scatter seed
vertices.  The output is a spanning *forest*: ``parent`` is -1 at each
root that claimed its own component and the ``roots`` tuple records the
claiming subset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.config import DiggerBeesConfig
from repro.core.state import RunState
from repro.core.twolevel_stack import WarpStack
from repro.core.warp_dfs import WarpAgent
from repro.errors import SimulationError
from repro.graphs.csr import CSRGraph
from repro.sim.device import DeviceSpec, H100
from repro.sim.engine import EventLoop
from repro.validate.reference import ROOT_PARENT, TraversalResult

__all__ = ["MultiSourceResult", "run_diggerbees_multi"]


@dataclass(frozen=True)
class MultiSourceResult:
    """Outcome of a multi-source run (a spanning forest)."""

    traversal: TraversalResult       # root field = first seeding root
    roots: Tuple[int, ...]           # roots that actually claimed a tree
    cycles: int
    seconds: float
    counters: object
    config: DiggerBeesConfig
    device: DeviceSpec

    @property
    def mteps(self) -> float:
        from repro.sim.metrics import mteps as _mteps

        return _mteps(self.traversal.edges_traversed, self.seconds)

    @property
    def n_trees(self) -> int:
        return len(self.roots)


def run_diggerbees_multi(
    graph: CSRGraph,
    roots: Sequence[int],
    *,
    config: Optional[DiggerBeesConfig] = None,
    device: DeviceSpec = H100,
    check_invariants: bool = False,
) -> MultiSourceResult:
    """Run DiggerBees seeded from several roots in one simulation.

    Exact duplicate roots are dropped; distinct roots inside the same
    component each claim a tree (the component is partitioned among
    them).
    """
    if not roots:
        raise SimulationError("run_diggerbees_multi needs at least one root")
    config = config or DiggerBeesConfig()
    for r in roots:
        graph._check_vertex(int(r))

    # Build state seeded with the FIRST root via the normal path, then
    # add the remaining seeds round-robin across blocks.
    state = RunState(graph, int(roots[0]), config, device)
    claimed_roots = [int(roots[0])]
    for i, r in enumerate(roots[1:], start=1):
        r = int(r)
        if state.visited[r]:
            continue  # duplicate root or same component seed: skip
        block_id = i % config.n_blocks
        state.visited[r] = 1
        state.parent[r] = ROOT_PARENT
        state.counters.vertices_visited += 1
        state.counters.record_task(block_id, 0)
        stack = state.blocks[block_id].stacks[0]
        if isinstance(stack, WarpStack):
            if stack.needs_flush():
                stack.flush()
            stack.hot.push(r, int(graph.row_ptr[r]))
        else:
            stack.push(r, int(graph.row_ptr[r]))
        state.counters.pushes += 1
        state.pending += 1
        state.blocks[block_id].set_active(0, True)
        claimed_roots.append(r)

    agents = [
        WarpAgent(state, b, w)
        for b in range(config.n_blocks)
        for w in range(config.warps_per_block)
    ]
    engine = EventLoop(agents, is_terminated=state.is_terminated,
                       max_cycles=config.max_cycles,
                       scheduler=config.scheduler).run()
    if state.pending != 0:
        raise SimulationError(
            f"multi-source run stopped with {state.pending} entries pending"
        )
    if check_invariants:
        state.check_invariants()

    traversal = TraversalResult(
        root=int(roots[0]),
        visited=state.visited.astype(bool),
        parent=state.parent,
        order=np.empty(0, dtype=np.int64),
        edges_traversed=state.counters.edges_traversed,
    )
    return MultiSourceResult(
        traversal=traversal,
        roots=tuple(claimed_roots),
        cycles=engine.cycles,
        seconds=device.cycles_to_seconds(engine.cycles),
        counters=state.counters,
        config=config,
        device=device,
    )
