"""The two-level stack data structure (paper §3.2).

Each warp owns one :class:`HotRing` (a circular buffer modelling the fast
shared-memory portion) and one :class:`ColdSeg` (a linear global-memory
segment).  Entries are ``<vertex | offset>`` pairs, where ``offset`` is an
absolute index into ``column_idx`` pointing at the next neighbour to
visit.

Pointer conventions follow the paper exactly (Figure 2):

* HotRing: ``head`` is the next free slot, ``tail`` the oldest entry;
  empty iff ``head == tail``; full iff ``(head + 1) % hot_size == tail``
  (one slot sacrificed to disambiguate).  The owner pushes/pops at
  ``head``; intra-block thieves CAS ``tail`` forward.
* ColdSeg: ``top`` / ``bottom``; empty iff ``top == bottom``.  The owner
  flushes to / refills from ``top`` (LIFO, preserving locality);
  inter-block thieves CAS ``bottom`` forward (FIFO, taking the oldest
  entries, which root the largest unexplored subtrees).

The ColdSeg here is backed by growable NumPy arrays with in-place
compaction.  The paper statically sizes each segment at ``nv / nw``; at
simulator scale a single warp can transiently exceed that before stealing
spreads the work, so we grow dynamically and *account* the paper's static
capacity separately (``configured_capacity``) for reporting.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.errors import SimulationError, StackOverflowError

__all__ = ["HotRing", "ColdSeg", "WarpStack", "OneLevelStack"]

_ENTRY_DTYPE = np.int64


class HotRing:
    """Circular <vertex|offset> buffer (shared-memory model).

    All index arithmetic is modulo ``size``; the structure stores at most
    ``size - 1`` entries.

    Structure-of-arrays backing: the head/tail pointer pair can live
    inside a run-wide slab preallocated by
    :class:`~repro.core.state.RunState` (``head``/``tail`` become two
    slots of a shared plain list).  The turbo fused loop binds that slab
    to a local variable and addresses every ring of the grid without
    attribute dispatch, while the methods here and the ``head``/``tail``
    properties stay the single source of truth for all other code paths
    (steals, flushes, invariant sweeps).  A standalone ``HotRing(size)``
    allocates its own private pointer slots, preserving the original API.

    The entry arrays are plain Python lists, not NumPy arrays: the
    owner touches one slot at a time (push/pop/peek run once per
    simulated warp action), and a list subscript is several times
    cheaper than ndarray indexing plus scalar unboxing.  Batch
    operations convert at the boundary; they accept either lists or
    NumPy arrays and return NumPy arrays (the ColdSeg side stays
    vectorized).
    """

    __slots__ = ("size", "vertex", "offset", "_ptrs", "_hi", "_ti")

    def __init__(self, size: int, *,
                 vertex: Optional[list] = None,
                 offset: Optional[list] = None,
                 ptrs: Optional[list] = None, base: int = 0):
        if size < 2:
            raise SimulationError(f"HotRing size must be >= 2, got {size}")
        self.size = size
        self.vertex = [0] * size if vertex is None else vertex
        self.offset = [0] * size if offset is None else offset
        if ptrs is None:
            ptrs, base = [0, 0], 0
        self._ptrs = ptrs
        self._hi = base
        self._ti = base + 1
        ptrs[base] = 0
        ptrs[base + 1] = 0

    # ``head``/``tail`` read/write the pointer slab so every consumer —
    # owner, thieves, tests assigning pointers directly — observes the
    # same storage the fused loop binds locally.
    @property
    def head(self) -> int:
        return self._ptrs[self._hi]

    @head.setter
    def head(self, value: int) -> None:
        self._ptrs[self._hi] = value

    @property
    def tail(self) -> int:
        return self._ptrs[self._ti]

    @tail.setter
    def tail(self, value: int) -> None:
        self._ptrs[self._ti] = value

    # -- state ----------------------------------------------------------
    # Hot-path methods below use branch arithmetic instead of ``%`` and
    # direct pointer-slab reads instead of property dispatch: each runs
    # once per simulated warp action, so constant factors matter.

    def __len__(self) -> int:
        """Occupancy: ``(head - tail + size) % size`` — the paper's hot_rest."""
        ptrs = self._ptrs
        d = ptrs[self._hi] - ptrs[self._ti]
        return d if d >= 0 else d + self.size

    @property
    def is_empty(self) -> bool:
        ptrs = self._ptrs
        return ptrs[self._hi] == ptrs[self._ti]

    @property
    def is_full(self) -> bool:
        ptrs = self._ptrs
        nxt = ptrs[self._hi] + 1
        if nxt == self.size:
            nxt = 0
        return nxt == ptrs[self._ti]

    @property
    def free_slots(self) -> int:
        return self.size - 1 - len(self)

    # -- owner operations (at head) --------------------------------------
    def push(self, vertex: int, offset: int) -> None:
        """Fast push (Figure 2c): insert at ``head`` and advance it."""
        ptrs = self._ptrs
        head = ptrs[self._hi]
        nxt = head + 1
        if nxt == self.size:
            nxt = 0
        if nxt == ptrs[self._ti]:
            raise StackOverflowError(
                f"push into full HotRing (size={self.size}); caller must "
                f"flush first"
            )
        self.vertex[head] = vertex
        self.offset[head] = offset
        ptrs[self._hi] = nxt

    def peek(self) -> Tuple[int, int]:
        """Read the top entry (at ``head - 1``) without removing it."""
        ptrs = self._ptrs
        pos = ptrs[self._hi]
        if pos == ptrs[self._ti]:
            raise SimulationError("peek on empty HotRing")
        pos -= 1
        if pos < 0:
            pos = self.size - 1
        return self.vertex[pos], self.offset[pos]

    def update_top_offset(self, offset: int) -> None:
        """Overwrite the top entry's offset (Algorithm 1's updateTop)."""
        ptrs = self._ptrs
        pos = ptrs[self._hi]
        if pos == ptrs[self._ti]:
            raise SimulationError("update_top_offset on empty HotRing")
        pos -= 1
        if pos < 0:
            pos = self.size - 1
        self.offset[pos] = offset

    def pop(self) -> Tuple[int, int]:
        """Fast pop (Figure 2d): retract ``head`` and return the entry."""
        ptrs = self._ptrs
        pos = ptrs[self._hi]
        if pos == ptrs[self._ti]:
            raise SimulationError("pop on empty HotRing")
        pos -= 1
        if pos < 0:
            pos = self.size - 1
        ptrs[self._hi] = pos
        return self.vertex[pos], self.offset[pos]

    # -- batch extraction -------------------------------------------------
    def take_from_tail(self, count: int) -> Tuple[np.ndarray, np.ndarray]:
        """Remove the ``count`` oldest entries (advancing ``tail``).

        Used by the owner's *flush* and by intra-block thieves after a
        successful tail CAS.  Returns (vertices, offsets) oldest-first.
        """
        if count < 1 or count > len(self):
            raise SimulationError(
                f"take_from_tail({count}) with only {len(self)} entries"
            )
        ptrs = self._ptrs
        tail = ptrs[self._ti]
        size = self.size
        vl, ol = self.vertex, self.offset
        end = tail + count
        if end <= size:
            if type(vl) is list:
                verts = np.asarray(vl[tail:end], dtype=_ENTRY_DTYPE)
                offs = np.asarray(ol[tail:end], dtype=_ENTRY_DTYPE)
            else:
                # ndarray row backing (hive batch slabs): slices are
                # views of live ring storage, so copy before the slots
                # can be overwritten by later pushes.
                verts = np.array(vl[tail:end], dtype=_ENTRY_DTYPE)
                offs = np.array(ol[tail:end], dtype=_ENTRY_DTYPE)
            if end == size:
                end = 0
        else:
            end -= size
            if type(vl) is list:
                verts = np.asarray(vl[tail:] + vl[:end], dtype=_ENTRY_DTYPE)
                offs = np.asarray(ol[tail:] + ol[:end], dtype=_ENTRY_DTYPE)
            else:
                # ``+`` would be elementwise addition on ndarrays;
                # concatenate (which also copies) is the wrap-around.
                verts = np.concatenate((vl[tail:], vl[:end]))
                offs = np.concatenate((ol[tail:], ol[:end]))
        ptrs[self._ti] = end
        return verts, offs

    def put_batch(self, verts, offs) -> None:
        """Insert a batch at ``head`` preserving order (oldest first).

        Used for refill and by thieves installing stolen entries; the
        oldest entry lands deepest (closest to ``tail``).  Accepts NumPy
        arrays or plain sequences; values are stored as Python ints.
        """
        count = len(verts)
        if count == 0:
            return
        if count > self.free_slots:
            raise StackOverflowError(
                f"put_batch({count}) exceeds free space {self.free_slots}"
            )
        if type(verts) is np.ndarray:
            verts = verts.tolist()
        if type(offs) is np.ndarray:
            offs = offs.tolist()
        ptrs = self._ptrs
        head = ptrs[self._hi]
        size = self.size
        vl, ol = self.vertex, self.offset
        for k in range(count):
            vl[head] = verts[k]
            ol[head] = offs[k]
            head += 1
            if head == size:
                head = 0
        ptrs[self._hi] = head

    def snapshot(self) -> List[Tuple[int, int]]:
        """Entries oldest-first (for tests and invariant checks)."""
        n = len(self)
        tail = self._ptrs[self._ti]
        size = self.size
        return [(self.vertex[(tail + k) % size], self.offset[(tail + k) % size])
                for k in range(n)]


class ColdSeg:
    """Linear global-memory segment with ``top``/``bottom`` pointers.

    The live region is ``[bottom, top)``.  ``push_batch`` appends at
    ``top`` (flush), ``pop_batch`` removes from ``top`` (refill),
    ``steal_from_bottom`` removes from ``bottom`` (inter-block steal).
    The backing array grows by doubling and compacts (shifting the live
    region to offset 0) when the dead prefix dominates.

    Structure-of-arrays backing, mirroring :class:`HotRing`: the
    ``top``/``bottom`` pointer pair can live inside a run-wide slab
    (two slots of a shared list, or a row of the hive engine's batched
    pointer array).  The fused loops bind the slab locally and read
    every segment's occupancy without attribute dispatch; the
    properties here remain the single source of truth for all other
    code paths.  A standalone ``ColdSeg(reserve)`` allocates private
    pointer slots, preserving the original API.
    """

    __slots__ = ("vertex", "offset", "_ptrs", "_ti", "_bi",
                 "configured_capacity", "compactions", "peak_occupancy")

    def __init__(self, reserve: int = 256, configured_capacity: int = 0, *,
                 ptrs=None, base: int = 0):
        if reserve < 1:
            raise SimulationError(f"ColdSeg reserve must be >= 1, got {reserve}")
        self.vertex = np.zeros(reserve, dtype=_ENTRY_DTYPE)
        self.offset = np.zeros(reserve, dtype=_ENTRY_DTYPE)
        if ptrs is None:
            ptrs, base = [0, 0], 0
        self._ptrs = ptrs
        self._ti = base
        self._bi = base + 1
        ptrs[base] = 0
        ptrs[base + 1] = 0
        #: The paper's static nv/nw sizing, for reporting only.
        self.configured_capacity = configured_capacity
        self.compactions = 0
        self.peak_occupancy = 0

    # ``top``/``bottom`` read/write the pointer slab so the owner,
    # thieves, and the fused loops all observe the same storage.
    @property
    def top(self) -> int:
        return self._ptrs[self._ti]

    @top.setter
    def top(self, value: int) -> None:
        self._ptrs[self._ti] = value

    @property
    def bottom(self) -> int:
        return self._ptrs[self._bi]

    @bottom.setter
    def bottom(self, value: int) -> None:
        self._ptrs[self._bi] = value

    def __len__(self) -> int:
        """Occupancy: ``top - bottom`` — the paper's cold_rest."""
        ptrs = self._ptrs
        return int(ptrs[self._ti] - ptrs[self._bi])

    @property
    def is_empty(self) -> bool:
        ptrs = self._ptrs
        return ptrs[self._ti] == ptrs[self._bi]

    def _ensure_room(self, count: int) -> None:
        cap = self.vertex.size
        ptrs = self._ptrs
        top = ptrs[self._ti]
        bottom = ptrs[self._bi]
        if top + count <= cap:
            return
        live = top - bottom
        # Prefer compaction when at least half the array is dead prefix.
        if bottom >= cap // 2 and live + count <= cap:
            self.vertex[:live] = self.vertex[bottom:top]
            self.offset[:live] = self.offset[bottom:top]
            ptrs[self._bi] = 0
            ptrs[self._ti] = live
            self.compactions += 1
            return
        new_cap = cap
        while top + count > new_cap:
            new_cap *= 2
        nv = np.zeros(new_cap, dtype=_ENTRY_DTYPE)
        no = np.zeros(new_cap, dtype=_ENTRY_DTYPE)
        nv[bottom:top] = self.vertex[bottom:top]
        no[bottom:top] = self.offset[bottom:top]
        self.vertex, self.offset = nv, no

    def push_batch(self, verts: np.ndarray, offs: np.ndarray) -> None:
        """Flush target (Figure 2e): append oldest-first at ``top``."""
        count = len(verts)
        if count == 0:
            return
        self._ensure_room(count)
        ptrs = self._ptrs
        top = ptrs[self._ti]
        self.vertex[top:top + count] = verts
        self.offset[top:top + count] = offs
        ptrs[self._ti] = top + count
        self.peak_occupancy = max(self.peak_occupancy, len(self))

    def pop_batch(self, count: int) -> Tuple[np.ndarray, np.ndarray]:
        """Refill source (Figure 2f): remove the ``count`` newest entries.

        Returns them oldest-first so the HotRing's ``put_batch`` restores
        the original stacking order.
        """
        if count < 1 or count > len(self):
            raise SimulationError(f"pop_batch({count}) with only {len(self)} entries")
        ptrs = self._ptrs
        top = ptrs[self._ti]
        lo = top - count
        verts = self.vertex[lo:top].copy()
        offs = self.offset[lo:top].copy()
        ptrs[self._ti] = lo
        return verts, offs

    def steal_from_bottom(self, count: int) -> Tuple[np.ndarray, np.ndarray]:
        """Inter-block steal (Figure 3b): remove the ``count`` oldest entries."""
        if count < 1 or count > len(self):
            raise SimulationError(
                f"steal_from_bottom({count}) with only {len(self)} entries"
            )
        ptrs = self._ptrs
        bottom = ptrs[self._bi]
        verts = self.vertex[bottom:bottom + count].copy()
        offs = self.offset[bottom:bottom + count].copy()
        ptrs[self._bi] = bottom + count
        return verts, offs

    def view_top(self, count: int) -> Tuple[np.ndarray, np.ndarray]:
        """Read-only views of the ``count`` newest entries (refill source).

        The hive engine's vectorized refill pass copies straight from
        these views into the batched HotRing slab and advances ``top``
        through the shared pointer slab itself, skipping the per-entry
        copies of :meth:`pop_batch` (which stays the scalar path and the
        mutation-suite patch point).  Callers must consume the views
        before moving the pointers.
        """
        ptrs = self._ptrs
        top = ptrs[self._ti]
        lo = top - count
        return self.vertex[lo:top], self.offset[lo:top]

    def view_bottom(self, count: int) -> Tuple[np.ndarray, np.ndarray]:
        """Read-only views of the ``count`` oldest entries (steal source).

        Inter-block counterpart of :meth:`view_top`, used by the hive
        engine's batched reservation pass in place of
        :meth:`steal_from_bottom`.  Callers must consume the views
        before moving the pointers.
        """
        bottom = self._ptrs[self._bi]
        return (self.vertex[bottom:bottom + count],
                self.offset[bottom:bottom + count])

    def snapshot(self) -> List[Tuple[int, int]]:
        """Entries oldest-first (for tests)."""
        ptrs = self._ptrs
        top, bottom = ptrs[self._ti], ptrs[self._bi]
        return list(zip(
            self.vertex[bottom:top].tolist(),
            self.offset[bottom:top].tolist(),
        ))


class WarpStack:
    """A warp's complete two-level stack: HotRing + ColdSeg.

    The flush/refill orchestration lives here; step *costs* are charged
    by the warp agent, which calls these methods and prices them via the
    device cost table.

    ``flush_policy`` selects which end of the HotRing is flushed:

    * ``"tail"`` (the paper's choice, §3.3): the *oldest* entries move to
      the ColdSeg, preserving recent entries near the head for traversal
      locality and staging the big old branches for inter-block stealing.
    * ``"head"`` (ablation): the newest entries move instead — this keeps
      ancestors hot but destroys traversal locality (the warp's next pop
      must immediately refill) and feeds thieves the smallest branches.

    ``monitor``/``owner`` are optional instrumentation slots set by the
    ``repro.check`` invariant monitor: when a monitor is attached, every
    flush and refill reports the exact entries moved so the monitor can
    assert conservation across the HotRing/ColdSeg boundary (no node lost
    between flush and publish).  Both stay None in production runs.
    """

    __slots__ = ("hot", "cold", "flush_batch", "refill_batch", "flush_policy",
                 "monitor", "owner")

    def __init__(self, hot_size: int, flush_batch: int, refill_batch: int,
                 cold_reserve: int = 256, configured_cold_capacity: int = 0,
                 flush_policy: str = "tail",
                 hot_vertex: Optional[list] = None,
                 hot_offset: Optional[list] = None,
                 hot_ptrs: Optional[list] = None, hot_base: int = 0,
                 cold_ptrs=None, cold_base: int = 0):
        if flush_batch >= hot_size or refill_batch >= hot_size:
            raise SimulationError(
                "flush/refill batch must be smaller than hot_size"
            )
        if flush_policy not in ("tail", "head"):
            raise SimulationError(
                f"flush_policy must be 'tail' or 'head', got {flush_policy!r}"
            )
        self.hot = HotRing(hot_size, vertex=hot_vertex, offset=hot_offset,
                           ptrs=hot_ptrs, base=hot_base)
        self.cold = ColdSeg(cold_reserve, configured_cold_capacity,
                            ptrs=cold_ptrs, base=cold_base)
        self.flush_batch = flush_batch
        self.refill_batch = refill_batch
        self.flush_policy = flush_policy
        self.monitor = None
        self.owner = None

    def __len__(self) -> int:
        return len(self.hot) + len(self.cold)

    @property
    def is_empty(self) -> bool:
        hot, cold = self.hot, self.cold
        ptrs = hot._ptrs  # direct slab reads: skip property dispatch
        cptrs = cold._ptrs
        return (ptrs[hot._hi] == ptrs[hot._ti]
                and cptrs[cold._ti] == cptrs[cold._bi])

    def needs_flush(self) -> bool:
        """True when a push requires flushing first (HotRing full)."""
        hot = self.hot
        ptrs = hot._ptrs
        nxt = ptrs[hot._hi] + 1
        if nxt == hot.size:
            nxt = 0
        return nxt == ptrs[hot._ti]

    def flush(self) -> int:
        """Move ``flush_batch`` HotRing entries to the ColdSeg.

        Under the default ``"tail"`` policy the oldest entries move
        (Figure 2e); under the ``"head"`` ablation the newest do.
        Returns the number of entries moved.
        """
        count = min(self.flush_batch, len(self.hot))
        if count == 0:
            raise SimulationError("flush on empty HotRing")
        monitor = self.monitor
        if monitor is not None:
            hot_before, cold_before = len(self.hot), len(self.cold)
        if self.flush_policy == "tail":
            verts, offs = self.hot.take_from_tail(count)
            self.cold.push_batch(verts, offs)
        else:
            # Pop the newest entries off the head; re-reverse so the
            # ColdSeg still stores oldest-first within the batch.
            pairs = [self.hot.pop() for _ in range(count)]
            pairs.reverse()
            verts = np.asarray([p[0] for p in pairs], dtype=_ENTRY_DTYPE)
            offs = np.asarray([p[1] for p in pairs], dtype=_ENTRY_DTYPE)
            self.cold.push_batch(verts, offs)
        if monitor is not None:
            monitor.on_flush(self, verts, offs, hot_before, cold_before)
        return count

    def can_refill(self) -> bool:
        hot, cold = self.hot, self.cold
        ptrs = hot._ptrs
        cptrs = cold._ptrs
        return (ptrs[hot._hi] == ptrs[hot._ti]
                and cptrs[cold._ti] != cptrs[cold._bi])

    def refill(self) -> int:
        """Move up to ``refill_batch`` newest ColdSeg entries into the HotRing.

        Returns the number of entries moved (Figure 2f).
        """
        if not self.can_refill():
            raise SimulationError("refill requires empty HotRing and non-empty ColdSeg")
        monitor = self.monitor
        if monitor is not None:
            hot_before, cold_before = len(self.hot), len(self.cold)
        count = min(self.refill_batch, len(self.cold), self.hot.free_slots)
        verts, offs = self.cold.pop_batch(count)
        self.hot.put_batch(verts, offs)
        if monitor is not None:
            monitor.on_refill(self, verts, offs, hot_before, cold_before)
        return count

    def snapshot(self) -> List[Tuple[int, int]]:
        """All entries oldest-first: ColdSeg bottom..top then HotRing tail..head."""
        return self.cold.snapshot() + self.hot.snapshot()


class OneLevelStack:
    """The v1 ablation: a single unbounded stack in global memory.

    Mechanically identical to a HotRing of unbounded size (owner at the
    top, thieves at the bottom), but every operation is priced at global
    latency by the warp agent.  Backed by a ColdSeg reused as a plain
    growable stack.
    """

    __slots__ = ("_seg",)

    def __init__(self, reserve: int = 256):
        self._seg = ColdSeg(reserve)

    def __len__(self) -> int:
        return len(self._seg)

    @property
    def is_empty(self) -> bool:
        return self._seg.is_empty

    def push(self, vertex: int, offset: int) -> None:
        self._seg.push_batch(np.array([vertex], dtype=_ENTRY_DTYPE),
                             np.array([offset], dtype=_ENTRY_DTYPE))

    def peek(self) -> Tuple[int, int]:
        if self.is_empty:
            raise SimulationError("peek on empty stack")
        return (int(self._seg.vertex[self._seg.top - 1]),
                int(self._seg.offset[self._seg.top - 1]))

    def update_top_offset(self, offset: int) -> None:
        if self.is_empty:
            raise SimulationError("update_top_offset on empty stack")
        self._seg.offset[self._seg.top - 1] = offset

    def pop(self) -> Tuple[int, int]:
        v, o = self._seg.pop_batch(1)
        return int(v[0]), int(o[0])

    def take_from_tail(self, count: int) -> Tuple[np.ndarray, np.ndarray]:
        """Steal interface: remove the oldest ``count`` entries."""
        return self._seg.steal_from_bottom(count)

    def put_batch(self, verts: np.ndarray, offs: np.ndarray) -> None:
        self._seg.push_batch(verts, offs)

    def snapshot(self) -> List[Tuple[int, int]]:
        return self._seg.snapshot()
