"""DiggerBees configuration (paper §3 parameters and §4.5 versions).

The defaults are the paper's: ``hot_size = 128`` entries per warp HotRing,
``hot_cutoff = 32`` for intra-block stealing, ``cold_cutoff = 64`` for
inter-block stealing.  The four progressive versions of the §4.5
breakdown are exposed as constructors:

* ``v1`` — one-level stack (global memory), single block, intra-block
  stealing only;
* ``v2`` — two-level stack, single block, intra-block stealing only;
* ``v3`` — two-level stack, half the SMs, intra- + inter-block stealing;
* ``v4`` — two-level stack, one block per SM, full mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.errors import SimulationError
from repro.sim.device import DeviceSpec, H100, hotring_smem_bytes
from repro.sim.engine import SCHEDULERS

__all__ = ["DiggerBeesConfig", "ServeConfig", "SHARD_MIN_VERTICES",
           "VICTIM_POLICIES", "HIVE_STEAL_MODES"]

#: Smallest resident graph the serve daemon will answer with the
#: sharded tier (``ServeConfig.shards >= 2``).  Below this, partition +
#: round-barrier overhead dwarfs any concurrency win, so queries stay
#: on the single-engine DFS path.
SHARD_MIN_VERTICES = 1024

VICTIM_POLICIES = ("two_choice", "random")

HIVE_STEAL_MODES = ("vector", "scalar")


@dataclass(frozen=True)
class DiggerBeesConfig:
    """Complete parameterization of a DiggerBees run.

    Parameters
    ----------
    n_blocks, warps_per_block:
        Grid shape.  The paper launches one block per SM (v4) with warps
        as the execution unit; ``warps_per_block`` defaults to 4 so the
        per-warp work at simulator scale matches the paper's at full
        scale.
    hot_size:
        HotRing capacity in entries (circular buffer; one slot is kept
        free to distinguish full from empty, so ``hot_size - 1`` usable).
    hot_cutoff / cold_cutoff:
        Minimum victim stack depth for intra-/inter-block stealing; a
        thief reserves half the cutoff per steal (paper §3.4/§3.5).
    flush_batch / refill_batch:
        Entries moved per HotRing<->ColdSeg transfer (paper leaves the
        value open; a quarter ring balances transfer cost and reuse).
    two_level:
        ``False`` selects the v1 ablation: the whole stack lives in
        global memory and every stack operation pays global latency.
    enable_intra_steal / enable_inter_steal:
        Mechanism switches for the §4.5 breakdown.
    victim_policy:
        ``"two_choice"`` (paper, load-aware power-of-two-choices) or
        ``"random"`` (the Fig 9 baseline).
    flush_policy:
        ``"tail"`` (paper §3.3: flush the oldest entries) or ``"head"``
        (ablation: flush the newest).
    cold_reserve:
        Initial per-warp ColdSeg capacity in entries; segments grow and
        compact dynamically (see :class:`repro.core.twolevel_stack.ColdSeg`).
    n_gpus:
        Multi-GPU extension (beyond the paper): blocks are partitioned
        contiguously across GPUs; stealing prefers same-GPU victims and
        falls back to NVLink-priced remote steals only when an entire
        GPU runs dry (hierarchical stealing in the spirit of the
        multi-GPU systems the paper's related work cites).
    seed:
        Seed for victim sampling; runs are fully deterministic given it.
    scheduler:
        Event-loop implementation: ``"auto"`` (default, the bucketed
        calendar queue), ``"calendar"``, or ``"heap"``.  All produce
        bit-for-bit identical schedules; the knob exists so the golden
        determinism tests can cross-check them.
    fastpath:
        Use the vectorized expand fast path in :class:`WarpAgent`
        (default).  ``False`` selects the reference NumPy implementation;
        both produce identical cycles, steps, and DFS trees — the golden
        determinism tests assert it.
    turbo:
        Fuse the calendar-queue drain and the :class:`WarpAgent`
        expand/pop state machine into one monomorphic inner loop
        (:func:`repro.core.turbo.run_turbo`).  Bit-identical cycles,
        steps, counters, and traversal output to the fast path (the
        ``repro.check`` oracle ladder has a dedicated turbo rung).  The
        fused loop only engages for the homogeneous two-level fastpath
        case with no schedule perturbation; otherwise the run silently
        falls back to the generic event loop, so ``turbo=True`` is always
        safe to set.
    perturb_seed / jitter:
        Schedule-fuzzing knobs (``repro.check``): with ``perturb_seed``
        set the engine drains same-cycle events in a seeded random order
        instead of FIFO, and ``jitter`` adds up to that many random extra
        cycles to every reschedule.  Both explore alternative *legal*
        interleavings of the cost model; correctness invariants must hold
        under every one of them.  ``jitter > 0`` requires a seed.
    adversarial_victims:
        Fuzzing knob: steal-victim selection picks a *random* qualifying
        victim (seeded by ``seed``) instead of the deterministic
        max-depth victim, widening the set of steal interleavings the
        fuzzer can reach.  Off in production runs.
    hive_steal:
        Steal-protocol execution tier of the hive batch engine
        (:mod:`repro.core.hive`): ``"vector"`` (default) runs refills,
        two-phase steal reservations and inter-block leader work as
        batched NumPy passes over the shared slabs; ``"scalar"`` keeps
        the original per-lane ``step()`` bailout.  Both are
        bit-identical — the scalar mode is retained as the differential
        oracle for the vectorized protocol (``repro.check``'s
        hive-steal-diff rung).  Ignored outside the hive engine.
    """

    n_blocks: int = 4
    warps_per_block: int = 4
    n_gpus: int = 1
    hot_size: int = 128
    hot_cutoff: int = 32
    cold_cutoff: int = 64
    flush_batch: int = 32
    refill_batch: int = 32
    two_level: bool = True
    enable_intra_steal: bool = True
    enable_inter_steal: bool = True
    victim_policy: str = "two_choice"
    flush_policy: str = "tail"
    cold_reserve: int = 256
    seed: int = 0
    trace: bool = False
    max_cycles: int = 200_000_000_000
    scheduler: str = "auto"
    fastpath: bool = True
    turbo: bool = False
    perturb_seed: Optional[int] = None
    jitter: int = 0
    adversarial_victims: bool = False
    hive_steal: str = "vector"

    def __post_init__(self) -> None:
        if self.n_blocks < 1:
            raise SimulationError(f"n_blocks must be >= 1, got {self.n_blocks}")
        if self.n_gpus < 1:
            raise SimulationError(f"n_gpus must be >= 1, got {self.n_gpus}")
        if self.n_blocks % self.n_gpus != 0:
            raise SimulationError(
                f"n_blocks ({self.n_blocks}) must divide evenly across "
                f"{self.n_gpus} GPUs"
            )
        if self.warps_per_block < 1 or self.warps_per_block > 32:
            raise SimulationError(
                f"warps_per_block must be in [1, 32] (32-bit active mask), "
                f"got {self.warps_per_block}"
            )
        if self.hot_size < 4:
            raise SimulationError(f"hot_size must be >= 4, got {self.hot_size}")
        if not (1 <= self.hot_cutoff < self.hot_size):
            raise SimulationError(
                f"hot_cutoff must be in [1, hot_size), got {self.hot_cutoff}"
            )
        if self.cold_cutoff < 2:
            raise SimulationError(f"cold_cutoff must be >= 2, got {self.cold_cutoff}")
        if not (1 <= self.flush_batch < self.hot_size):
            raise SimulationError(
                f"flush_batch must be in [1, hot_size), got {self.flush_batch}"
            )
        if not (1 <= self.refill_batch < self.hot_size):
            raise SimulationError(
                f"refill_batch must be in [1, hot_size), got {self.refill_batch}"
            )
        if self.victim_policy not in VICTIM_POLICIES:
            raise SimulationError(
                f"victim_policy must be one of {VICTIM_POLICIES}, "
                f"got {self.victim_policy!r}"
            )
        if self.flush_policy not in ("tail", "head"):
            raise SimulationError(
                f"flush_policy must be 'tail' or 'head', "
                f"got {self.flush_policy!r}"
            )
        if self.scheduler not in SCHEDULERS:
            raise SimulationError(
                f"scheduler must be one of {SCHEDULERS}, "
                f"got {self.scheduler!r}"
            )
        if self.cold_reserve < self.cold_cutoff:
            raise SimulationError(
                f"cold_reserve ({self.cold_reserve}) must be >= cold_cutoff "
                f"({self.cold_cutoff})"
            )
        if self.hive_steal not in HIVE_STEAL_MODES:
            raise SimulationError(
                f"hive_steal must be one of {HIVE_STEAL_MODES}, "
                f"got {self.hive_steal!r}"
            )
        if self.jitter < 0:
            raise SimulationError(f"jitter must be >= 0, got {self.jitter}")
        if self.jitter and self.perturb_seed is None:
            raise SimulationError(
                "jitter > 0 requires perturb_seed (jitter samples come "
                "from the schedule-perturbation RNG)"
            )

    @property
    def n_warps(self) -> int:
        """Total warp count across the grid."""
        return self.n_blocks * self.warps_per_block

    @property
    def blocks_per_gpu(self) -> int:
        return self.n_blocks // self.n_gpus

    def gpu_of_block(self, block_id: int) -> int:
        """GPU owning ``block_id`` (contiguous partition)."""
        return block_id // self.blocks_per_gpu

    @property
    def intra_steal_amount(self) -> int:
        """Entries reserved per intra-block steal (hot_cutoff / 2)."""
        return max(1, self.hot_cutoff // 2)

    @property
    def inter_steal_amount(self) -> int:
        """Entries reserved per inter-block steal (cold_cutoff / 2)."""
        return max(1, self.cold_cutoff // 2)

    def check_fits_device(self, device: DeviceSpec) -> None:
        """Raise unless the HotRings fit the device's shared memory
        (paper issue #1: this is exactly the constraint that forces the
        two-level design)."""
        if not self.two_level:
            return  # v1 keeps the stack in global memory
        need = hotring_smem_bytes(self.hot_size, self.warps_per_block)
        if need > device.shared_mem_per_block:
            raise SimulationError(
                f"HotRings need {need} B of shared memory per block but "
                f"{device.name} provides {device.shared_mem_per_block} B"
            )

    def with_overrides(self, **kwargs) -> "DiggerBeesConfig":
        """Copy with field overrides."""
        return replace(self, **kwargs)

    # ------------------------------------------------------------------
    # The four §4.5 breakdown versions.
    # ------------------------------------------------------------------
    @classmethod
    def v1(cls, device: DeviceSpec = H100, *, sim_scale: float = 1.0,
           **overrides) -> "DiggerBeesConfig":
        """One-level (global-memory) stack, one block, intra-block stealing."""
        base = dict(n_blocks=1, two_level=False, enable_inter_steal=False)
        base.update(overrides)
        return cls(**base)

    @classmethod
    def v2(cls, device: DeviceSpec = H100, *, sim_scale: float = 1.0,
           **overrides) -> "DiggerBeesConfig":
        """Two-level stack, one block, intra-block stealing."""
        base = dict(n_blocks=1, two_level=True, enable_inter_steal=False)
        base.update(overrides)
        return cls(**base)

    @classmethod
    def v3(cls, device: DeviceSpec = H100, *, sim_scale: float = 1.0,
           **overrides) -> "DiggerBeesConfig":
        """Two-level stack, half the SMs, intra + inter stealing (66 blocks on H100)."""
        blocks = max(1, device.default_blocks(sim_scale) // 2)
        base = dict(n_blocks=blocks, two_level=True, enable_inter_steal=True)
        base.update(overrides)
        return cls(**base)

    @classmethod
    def v4(cls, device: DeviceSpec = H100, *, sim_scale: float = 1.0,
           **overrides) -> "DiggerBeesConfig":
        """Full DiggerBees: one block per SM (132 blocks on H100)."""
        blocks = device.default_blocks(sim_scale)
        base = dict(n_blocks=blocks, two_level=True, enable_inter_steal=True)
        base.update(overrides)
        return cls(**base)

    @classmethod
    def version(cls, v: int, device: DeviceSpec = H100, *, sim_scale: float = 1.0,
                **overrides) -> "DiggerBeesConfig":
        """Constructor dispatch by version number 1-4."""
        ctors = {1: cls.v1, 2: cls.v2, 3: cls.v3, 4: cls.v4}
        if v not in ctors:
            raise SimulationError(f"version must be 1-4, got {v}")
        return ctors[v](device, sim_scale=sim_scale, **overrides)


@dataclass(frozen=True)
class ServeConfig:
    """Knobs of the traversal query service (:mod:`repro.serve`).

    Lives next to :class:`DiggerBeesConfig` because the admission layer
    is an engine-level concern: the window/max-batch pair decides how
    concurrent DFS queries coalesce into :mod:`repro.core.hive` lockstep
    batches, which is the same trade (amortized per-tick cost vs. added
    latency) the hive engine itself makes over sweep shards.

    Parameters
    ----------
    batch_window:
        Seconds a newly opened admission group waits for companions
        before it is flushed to execution.  ``0`` disables coalescing:
        every query runs the moment it arrives (the lowest-latency,
        lowest-throughput setting).
    max_batch:
        Hard cap on requests per hive batch; a group flushes immediately
        when it fills, without waiting out the window.
    jobs:
        Worker processes for query execution.  ``0`` executes in the
        daemon process (thread executor) — no pickling, no shared
        memory, ideal for tests and the check oracle; ``>= 1`` routes
        batches through the persistent process pool in
        :mod:`repro.bench.harness` with zero-copy shm graph hand-off.
    cache_entries:
        Per-graph result-cache capacity (LRU).  ``0`` disables caching.
    cache_dir:
        Disk spill for the result cache: ``None`` resolves
        ``$REPRO_SERVE_CACHE`` (or the default user cache dir), ``"off"``
        keeps the cache memory-only, any other string is used as the
        directory path.
    drain_timeout:
        Seconds a clean shutdown waits for in-flight batches before
        abandoning them.
    backend:
        Traversal backend for DFS queries: ``"dfs"`` (default) answers
        every query with the DFS simulation tiers exactly as before;
        ``"frontier"`` forces the bit-packed frontier engine
        (:mod:`repro.core.frontier`); ``"swarm"`` forces the
        lane-batched swarm tier (:mod:`repro.core.swarm`) — a whole
        admission group runs as one lockstep multi-root batch; ``"auto"``
        routes per graph shape through
        :func:`repro.core.dispatch.choose_backend` — degenerate graphs
        go straight to the frontier engine, shallow graphs to the
        frontier side (swarm when ``max_batch`` allows coalescing),
        deep/mid graphs and any query carrying engine-config overrides
        stay on DFS, and a recorded calibration artifact
        (``benchmarks/calibration_routing.json``) replaces the regime
        proxy with measured per-regime costs.  Routing is a
        deterministic function of the graph fingerprint and the query,
        and the resolved backend is part of the result-cache key.
    shards:
        Sharded execution tier (:mod:`repro.core.shard`) for large
        resident graphs: ``0`` (default) and ``1`` leave sharding off;
        ``k >= 2`` answers override-free DFS queries on graphs with at
        least :data:`SHARD_MIN_VERTICES` vertices by partitioning the
        graph into ``k`` districts and running one engine per district
        (concurrently across worker processes when ``jobs > 1``).  The
        merged traversal is the canonical sharded result — reachable set
        and levels bit-identical to the unsharded engine, parent the
        deterministic min-parent tree — and ``"shard"`` becomes part of
        the result-cache key, so sharded and unsharded answers never
        alias.
    """

    batch_window: float = 0.005
    max_batch: int = 64
    jobs: int = 0
    cache_entries: int = 4096
    cache_dir: Optional[str] = None
    drain_timeout: float = 10.0
    backend: str = "dfs"
    shards: int = 0

    def __post_init__(self) -> None:
        if self.batch_window < 0:
            raise SimulationError(
                f"batch_window must be >= 0, got {self.batch_window}")
        if self.max_batch < 1:
            raise SimulationError(
                f"max_batch must be >= 1, got {self.max_batch}")
        if self.jobs < 0:
            raise SimulationError(f"jobs must be >= 0, got {self.jobs}")
        if self.cache_entries < 0:
            raise SimulationError(
                f"cache_entries must be >= 0, got {self.cache_entries}")
        if self.drain_timeout < 0:
            raise SimulationError(
                f"drain_timeout must be >= 0, got {self.drain_timeout}")
        if self.shards < 0:
            raise SimulationError(
                f"shards must be >= 0, got {self.shards}")
        from repro.core.dispatch import BACKEND_CHOICES

        if self.backend not in BACKEND_CHOICES:
            raise SimulationError(
                f"backend must be one of {BACKEND_CHOICES}, "
                f"got {self.backend!r}")

    def with_(self, **kwargs) -> "ServeConfig":
        return replace(self, **kwargs)
