"""Bit-packed vertex sets over ``uint64`` words (the frontier engine's
working representation).

A set over ``n`` vertices is ``ceil(n / 64)`` little-endian ``uint64``
words: vertex ``v`` lives at bit ``v & 63`` of word ``v >> 6``.  This is
the layout GPU BFS codes keep in registers/shared memory for frontier
and visited bitmaps; here it buys the same thing in NumPy — set algebra
(`or`, `and-not`), membership tests, and population counts run over
``n / 64`` machine words instead of ``n`` bools.

The 1-d helpers cover one vertex set; the ``*_2d`` family extends the
same layout across a *lane* axis for the swarm engine
(:mod:`repro.core.swarm`): a ``(B, words)`` matrix holds one set per
lane, and membership tests / population counts / pack round-trips run
batched over all lanes at once.

All helpers are pure functions except :func:`set_bits` /
:func:`set_bits_2d`, which mutate in place (the engines reuse their
visited words across levels).  The packed layout is byte-order
independent: :func:`pack_bits`/:func:`unpack_bits` normalize through
little-endian byte views, so a set packed on any host tests identically
with the shift-based helpers.

Population counts use :func:`numpy.bitwise_count` (NumPy >= 2.0, a
native per-word popcount) when available, falling back to the original
per-byte LUT gather on older NumPy; both paths agree bit-for-bit on
every dtype and ragged final word.
"""

from __future__ import annotations

import sys

import numpy as np

__all__ = [
    "WORD_BITS",
    "n_words",
    "empty_bitset",
    "pack_bits",
    "unpack_bits",
    "set_bits",
    "test_bits",
    "popcount",
    "nonzero_bits",
    "empty_bitmatrix",
    "pack_bits_2d",
    "unpack_bits_2d",
    "set_bits_2d",
    "test_bits_2d",
    "popcount_2d",
    "nonzero_bits_2d",
]

WORD_BITS = 64

_SWAP = sys.byteorder != "little"

#: Per-byte population counts (popcount via one gather + sum).  Kept as
#: the fallback for NumPy < 2.0, and as the oracle the equivalence test
#: pins the native path against.
_POPCOUNT8 = np.array([bin(i).count("1") for i in range(256)],
                      dtype=np.uint16)

#: NumPy >= 2.0 ships a hardware popcount ufunc.
_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")

#: Per-byte popcounts widened for index arithmetic (cumsum-safe).
_COUNT8_I64 = _POPCOUNT8.astype(np.int64)

#: ``_BITPOS8[b, k]`` is the position of the k-th set bit of byte ``b``
#: (rows padded with zeros past the byte's popcount).  Drives the
#: sparse-path expansion in :func:`nonzero_bits_2d`; kept flat so the
#: gather is one 1-d fancy index (2-d advanced indexing costs ~2x).
_BITPOS8 = np.zeros((256, 8), dtype=np.uint8)
for _b in range(256):
    _ps = [_k for _k in range(8) if _b >> _k & 1]
    _BITPOS8[_b, :len(_ps)] = _ps
del _b, _ps
_BITPOS8_FLAT = _BITPOS8.reshape(-1).astype(np.int64)


def n_words(n_bits: int) -> int:
    """Words needed for a set over ``n_bits`` elements."""
    if n_bits < 0:
        raise ValueError(f"n_bits must be >= 0, got {n_bits}")
    return (int(n_bits) + WORD_BITS - 1) // WORD_BITS


def empty_bitset(n_bits: int) -> np.ndarray:
    """All-zeros set over ``n_bits`` elements."""
    return np.zeros(n_words(n_bits), dtype=np.uint64)


def pack_bits(mask: np.ndarray) -> np.ndarray:
    """Pack a boolean vector into ``uint64`` words (little-endian bits)."""
    mask = np.asarray(mask, dtype=bool)
    if mask.ndim != 1:
        raise ValueError(f"pack_bits needs a 1-d mask, got shape {mask.shape}")
    words = n_words(mask.size)
    packed = np.packbits(mask, bitorder="little")
    out = np.zeros(words * 8, dtype=np.uint8)
    out[:packed.size] = packed
    out = out.view(np.uint64)
    return out.byteswap() if _SWAP else out


def unpack_bits(words: np.ndarray, n_bits: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`: the first ``n_bits`` as a bool vector."""
    words = np.ascontiguousarray(words, dtype=np.uint64)
    if n_bits > words.size * WORD_BITS:
        raise ValueError(
            f"bitset of {words.size} words holds {words.size * WORD_BITS} "
            f"bits, asked for {n_bits}")
    if _SWAP:
        words = words.byteswap()
    return np.unpackbits(words.view(np.uint8),
                         bitorder="little")[:n_bits].astype(bool)


def set_bits(words: np.ndarray, idx: np.ndarray) -> None:
    """Set the bits named by ``idx`` in place (duplicates are fine)."""
    idx = np.asarray(idx, dtype=np.int64)
    if idx.size == 0:
        return
    np.bitwise_or.at(words, idx >> 6,
                     np.left_shift(np.uint64(1),
                                   (idx & 63).astype(np.uint64)))


def test_bits(words: np.ndarray, idx: np.ndarray) -> np.ndarray:
    """Membership mask for the vertices named by ``idx``."""
    idx = np.asarray(idx, dtype=np.int64)
    shifted = np.right_shift(words[idx >> 6],
                             (idx & 63).astype(np.uint64))
    return (shifted & np.uint64(1)).astype(bool)


def popcount(words: np.ndarray) -> int:
    """Total number of set bits."""
    words = np.ascontiguousarray(words, dtype=np.uint64)
    if _HAS_BITWISE_COUNT:
        return int(np.bitwise_count(words).sum())
    return int(_POPCOUNT8[words.view(np.uint8)].sum())


def nonzero_bits(words: np.ndarray, n_bits: int) -> np.ndarray:
    """Ascending indices of the set bits among the first ``n_bits``."""
    return np.flatnonzero(unpack_bits(words, n_bits)).astype(np.int64)


# ---------------------------------------------------------------------------
# Lane-batched (2-d) variants: one bitset per row, shared word layout.
# ---------------------------------------------------------------------------

def empty_bitmatrix(n_rows: int, n_bits: int) -> np.ndarray:
    """``(n_rows, n_words(n_bits))`` all-zeros matrix: one set per row."""
    if n_rows < 0:
        raise ValueError(f"n_rows must be >= 0, got {n_rows}")
    return np.zeros((int(n_rows), n_words(n_bits)), dtype=np.uint64)


def pack_bits_2d(mask: np.ndarray) -> np.ndarray:
    """Pack a ``(B, n)`` boolean matrix row-wise into ``uint64`` words."""
    mask = np.asarray(mask, dtype=bool)
    if mask.ndim != 2:
        raise ValueError(
            f"pack_bits_2d needs a 2-d mask, got shape {mask.shape}")
    rows, n_bits = mask.shape
    words = n_words(n_bits)
    packed = np.packbits(mask, axis=1, bitorder="little")
    out = np.zeros((rows, words * 8), dtype=np.uint8)
    out[:, :packed.shape[1]] = packed
    out = out.view(np.uint64)
    return out.byteswap() if _SWAP else out


def unpack_bits_2d(words: np.ndarray, n_bits: int) -> np.ndarray:
    """Inverse of :func:`pack_bits_2d`: first ``n_bits`` of each row."""
    words = np.ascontiguousarray(words, dtype=np.uint64)
    if words.ndim != 2:
        raise ValueError(
            f"unpack_bits_2d needs a 2-d matrix, got shape {words.shape}")
    if n_bits > words.shape[1] * WORD_BITS:
        raise ValueError(
            f"bitmatrix of {words.shape[1]} words holds "
            f"{words.shape[1] * WORD_BITS} bits per row, asked for {n_bits}")
    if _SWAP:
        words = words.byteswap()
    bits = np.unpackbits(words.view(np.uint8), axis=1, bitorder="little")
    return bits[:, :n_bits].astype(bool)


def set_bits_2d(words: np.ndarray, rows: np.ndarray,
                idx: np.ndarray) -> None:
    """Set bit ``idx[i]`` of row ``rows[i]`` in place (duplicates fine)."""
    rows = np.asarray(rows, dtype=np.int64)
    idx = np.asarray(idx, dtype=np.int64)
    if idx.size == 0:
        return
    np.bitwise_or.at(words, (rows, idx >> 6),
                     np.left_shift(np.uint64(1),
                                   (idx & 63).astype(np.uint64)))


def test_bits_2d(words: np.ndarray, rows: np.ndarray,
                 idx: np.ndarray) -> np.ndarray:
    """Membership mask: is bit ``idx[i]`` set in row ``rows[i]``?"""
    rows = np.asarray(rows, dtype=np.int64)
    idx = np.asarray(idx, dtype=np.int64)
    shifted = np.right_shift(words[rows, idx >> 6],
                             (idx & 63).astype(np.uint64))
    return (shifted & np.uint64(1)).astype(bool)


def nonzero_bits_2d(words: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``(rows, bits)`` of every set bit in a ``(R, W)`` matrix.

    Pairs come out in row-major order: all bits of row 0 ascending, then
    row 1, ...  ``bits`` spans the full ``W * 64`` range (callers that
    packed fewer logical bits never set the tail, so it never shows up).

    Two expansion paths, picked by a cheap packed popcount probe.  Dense
    matrices (>= 1/16 bits set) unpack to bytes and take one flat
    nonzero scan.  Sparse matrices skip the wide scan entirely: only the
    nonzero *bytes* are located, and each one expands through a
    byte -> bit-position table, so the work tracks the number of set
    bits instead of the matrix area.  Both paths produce the identical
    row-major pair stream.
    """
    words = np.ascontiguousarray(words, dtype=np.uint64)
    if words.ndim != 2:
        raise ValueError(
            f"nonzero_bits_2d needs a 2-d matrix, got shape {words.shape}")
    if _SWAP:
        words = words.byteswap()
    width = words.shape[1] * WORD_BITS
    if _HAS_BITWISE_COUNT:
        nbits = int(np.bitwise_count(words).sum())
    else:
        nbits = int(_POPCOUNT8[words.view(np.uint8)].sum())
    if nbits == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    if nbits * 16 >= words.size * WORD_BITS:
        # Dense: one flat scan + a shift/divide beats np.nonzero's 2-d
        # bookkeeping on the hot mega-level expansions.  Rows are whole
        # words, so the flat little-endian unpack (no axis machinery)
        # is already the row-major bit stream; the bool view is free
        # (unpackbits emits 0/1) and nonzero's bool kernel runs several
        # times faster than the uint8 one.
        bits = np.unpackbits(words.reshape(-1).view(np.uint8),
                             bitorder="little")
        pos = np.flatnonzero(bits.view(np.bool_))
    else:
        # Sparse: locate nonzero bytes, then table-expand their bits.
        bflat = words.reshape(-1).view(np.uint8)
        bpos = np.flatnonzero(bflat != 0)
        bval = bflat[bpos].astype(np.int64)
        cnt = _COUNT8_I64[bval]
        starts = np.cumsum(cnt) - cnt
        bidx = np.repeat(np.arange(bpos.size, dtype=np.int64), cnt)
        rank = np.arange(nbits, dtype=np.int64) - starts[bidx]
        pos = bpos[bidx] * 8 + _BITPOS8_FLAT[bval[bidx] * 8 + rank]
    if width & (width - 1) == 0:
        shift = width.bit_length() - 1
        rows = pos >> shift
        idx = pos & (width - 1)
    else:
        rows = pos // width
        idx = pos - rows * width
    return rows.astype(np.int64, copy=False), idx.astype(np.int64,
                                                         copy=False)


def popcount_2d(words: np.ndarray) -> np.ndarray:
    """Per-row set-bit counts of a ``(B, words)`` matrix (int64)."""
    words = np.ascontiguousarray(words, dtype=np.uint64)
    if words.ndim != 2:
        raise ValueError(
            f"popcount_2d needs a 2-d matrix, got shape {words.shape}")
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(words).sum(axis=1, dtype=np.int64)
    bytes_view = words.view(np.uint8).reshape(words.shape[0], -1)
    return _POPCOUNT8[bytes_view].sum(axis=1, dtype=np.int64)
