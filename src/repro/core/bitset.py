"""Bit-packed vertex sets over ``uint64`` words (the frontier engine's
working representation).

A set over ``n`` vertices is ``ceil(n / 64)`` little-endian ``uint64``
words: vertex ``v`` lives at bit ``v & 63`` of word ``v >> 6``.  This is
the layout GPU BFS codes keep in registers/shared memory for frontier
and visited bitmaps; here it buys the same thing in NumPy — set algebra
(`or`, `and-not`), membership tests, and population counts run over
``n / 64`` machine words instead of ``n`` bools.

All helpers are pure functions except :func:`set_bits`, which mutates in
place (the engine reuses its visited words across levels).  The packed
layout is byte-order independent: :func:`pack_bits`/:func:`unpack_bits`
normalize through little-endian byte views, so a set packed on any host
tests identically with the shift-based helpers.
"""

from __future__ import annotations

import sys

import numpy as np

__all__ = [
    "WORD_BITS",
    "n_words",
    "empty_bitset",
    "pack_bits",
    "unpack_bits",
    "set_bits",
    "test_bits",
    "popcount",
    "nonzero_bits",
]

WORD_BITS = 64

_SWAP = sys.byteorder != "little"

#: Per-byte population counts (popcount via one gather + sum).
_POPCOUNT8 = np.array([bin(i).count("1") for i in range(256)],
                      dtype=np.uint16)


def n_words(n_bits: int) -> int:
    """Words needed for a set over ``n_bits`` elements."""
    if n_bits < 0:
        raise ValueError(f"n_bits must be >= 0, got {n_bits}")
    return (int(n_bits) + WORD_BITS - 1) // WORD_BITS


def empty_bitset(n_bits: int) -> np.ndarray:
    """All-zeros set over ``n_bits`` elements."""
    return np.zeros(n_words(n_bits), dtype=np.uint64)


def pack_bits(mask: np.ndarray) -> np.ndarray:
    """Pack a boolean vector into ``uint64`` words (little-endian bits)."""
    mask = np.asarray(mask, dtype=bool)
    if mask.ndim != 1:
        raise ValueError(f"pack_bits needs a 1-d mask, got shape {mask.shape}")
    words = n_words(mask.size)
    packed = np.packbits(mask, bitorder="little")
    out = np.zeros(words * 8, dtype=np.uint8)
    out[:packed.size] = packed
    out = out.view(np.uint64)
    return out.byteswap() if _SWAP else out


def unpack_bits(words: np.ndarray, n_bits: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`: the first ``n_bits`` as a bool vector."""
    words = np.ascontiguousarray(words, dtype=np.uint64)
    if n_bits > words.size * WORD_BITS:
        raise ValueError(
            f"bitset of {words.size} words holds {words.size * WORD_BITS} "
            f"bits, asked for {n_bits}")
    if _SWAP:
        words = words.byteswap()
    return np.unpackbits(words.view(np.uint8),
                         bitorder="little")[:n_bits].astype(bool)


def set_bits(words: np.ndarray, idx: np.ndarray) -> None:
    """Set the bits named by ``idx`` in place (duplicates are fine)."""
    idx = np.asarray(idx, dtype=np.int64)
    if idx.size == 0:
        return
    np.bitwise_or.at(words, idx >> 6,
                     np.left_shift(np.uint64(1),
                                   (idx & 63).astype(np.uint64)))


def test_bits(words: np.ndarray, idx: np.ndarray) -> np.ndarray:
    """Membership mask for the vertices named by ``idx``."""
    idx = np.asarray(idx, dtype=np.int64)
    shifted = np.right_shift(words[idx >> 6],
                             (idx & 63).astype(np.uint64))
    return (shifted & np.uint64(1)).astype(bool)


def popcount(words: np.ndarray) -> int:
    """Total number of set bits."""
    words = np.ascontiguousarray(words, dtype=np.uint64)
    return int(_POPCOUNT8[words.view(np.uint8)].sum())


def nonzero_bits(words: np.ndarray, n_bits: int) -> np.ndarray:
    """Ascending indices of the set bits among the first ``n_bits``."""
    return np.flatnonzero(unpack_bits(words, n_bits)).astype(np.int64)
