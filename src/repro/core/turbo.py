"""Turbo execution core: the fused scheduler-agent hot loop.

``run_turbo`` merges the calendar-queue drain of
:class:`repro.sim.engine.EventLoop` with the :class:`WarpAgent`
expand/pop state machine into one monomorphic inner loop.  The generic
engine pays one ``agent.step()`` call, one ``StepOutcome`` consume, and a
chain of attribute reads per simulated step; the fused loop instead
inlines the three transitions that dominate every run — expand, refill,
and the pure idle poll — over local bindings of the structure-of-arrays
slabs preallocated by :class:`~repro.core.state.RunState` (hot entry
rows, the head/tail pointer slab, active masks, contention debt).

Everything else — steal victim selection, the two-phase reservation
steps, leader-warp inter-block stealing — falls back to the agent's
generic ``step()``, so the protocol code (and the ``repro.check``
invariant monitor hooks inside it) runs unchanged.

Counter accumulation: the hot counters (edges, pops, pushes, CAS stats,
idle polls, flush/refill stats, depth maxima) accumulate in loop locals
and merge into :class:`~repro.sim.trace.SimCounters` additively — at the
return points and before every ``on_step`` observer call, so any
instrumented consumer sees exact totals.  The merge is order-independent
(sums and maxima), so fallback steps that bump the same counters through
the object API compose correctly with unmerged local deltas.

Bit-exactness contract
----------------------
The fused loop replays the calendar scheduler's event order exactly
(FIFO buckets per distinct timestamp, termination polled before every
event) and charges identical costs, so cycles, steps, counters, traces,
and traversal output are bit-for-bit equal to the generic engine on both
schedulers.  The golden determinism tests and the ``repro.check`` oracle
ladder's turbo rung assert this on every run.

Eligibility: the loop only understands the homogeneous two-level
fastpath grid with no schedule perturbation; ``turbo_eligible`` gates
dispatch and :func:`repro.core.diggerbees.run_diggerbees` silently falls
back to the generic engine otherwise, so ``turbo=True`` is always safe.
"""

from __future__ import annotations

import gc
import heapq
from typing import Callable, Optional, Sequence

from repro.core.state import RunState
from repro.core.warp_dfs import WarpAgent, _Phase
from repro.sim.engine import (EngineResult, deadlocked_error,
                              non_positive_cost_error, over_budget_error)

__all__ = ["turbo_eligible", "run_turbo"]

#: The pristine claim method: when a mutation (``repro.check``) patches
#: ``RunState.try_claim_vertex``, the fused loop detects the mismatch and
#: routes claims through the patched method instead of its inline copy.
_ORIG_CLAIM = RunState.try_claim_vertex


def turbo_eligible(config) -> bool:
    """True when the fused loop can run ``config`` bit-identically.

    Requirements: two-level stacks (the loop addresses HotRings through
    the SoA slabs), the expand fast path (the inline transitions mirror
    it), no schedule perturbation (the fuzzer's randomized drain order
    cannot be fused), and not the explicit ``"heap"`` scheduler (that
    knob exists so golden tests can cross-check the heap drain; turbo
    replays the calendar order).
    """
    return (config.turbo and config.fastpath and config.two_level
            and config.perturb_seed is None and config.scheduler != "heap")


def run_turbo(
    state: RunState,
    agents: Sequence[WarpAgent],
    *,
    max_cycles: int,
    deadlock_window: Optional[int] = None,
    on_step: Optional[Callable[[int], None]] = None,
) -> EngineResult:
    """Drain the simulation with the fused loop (see module docstring).

    Mirrors ``EventLoop(..., scheduler="calendar", poll_interval=1)``
    exactly: identical event order, identical costs, identical
    termination observation point — hence identical ``EngineResult``.

    Cyclic GC is paused for the duration of the drain: the run state is
    millions of container objects, and a threshold-triggered gen-2
    collection mid-loop scans all of them for garbage that refcounting
    already reclaims (the loop allocates no cycles).  The previous GC
    state is restored on every exit path.
    """
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        return _drain(state, agents, max_cycles=max_cycles,
                      deadlock_window=deadlock_window, on_step=on_step)
    finally:
        if gc_was_enabled:
            gc.enable()


def _drain(
    state: RunState,
    agents: Sequence[WarpAgent],
    *,
    max_cycles: int,
    deadlock_window: Optional[int] = None,
    on_step: Optional[Callable[[int], None]] = None,
) -> EngineResult:
    config = state.config
    costs = state.costs
    counters = state.counters
    n_agents = len(agents)
    window = deadlock_window or max(10_000, 200 * n_agents)
    max_cycles = int(max_cycles)

    # Shared-state locals: the SoA slabs and adjacency mirrors.  Every
    # write goes through a view of the same storage the object APIs use,
    # so fallback steps and monitor sweeps observe a consistent world.
    rp = state.row_ptr_list
    ci = state.col_idx_list
    visited = state.visited_mv
    parent = memoryview(state.parent)
    masks = state.active_mask_slab
    debts = state.contention_debt_slab
    ptrs = state.hot_ptr_slab
    cptrs = state.cold_ptr_slab
    hsize = config.hot_size
    trace = state.trace
    record = state.record
    #: Local mirror of ``state.pending``.  Only expand pops/pushes change
    #: it (steals move entries, never create or retire them), so syncing
    #: it back before fallback steps / observer calls / returns — and
    #: re-reading after fallbacks — keeps both views exact.
    pending = state.pending

    claim = state.try_claim_vertex
    inline_claim = type(state).try_claim_vertex is _ORIG_CLAIM

    intra = config.enable_intra_steal
    inter = config.enable_inter_steal
    n_blocks = config.n_blocks
    wpb = config.warps_per_block

    # Cost constants (gstack penalty is zero: two-level only).
    c_pop = costs.hot_pop
    c_visit_base = costs.visit_base
    c_visit_edge = costs.visit_per_edge
    c_push = costs.hot_push
    c_cas = costs.visited_cas
    c_cas_retry = costs.cas_retry
    c_flush_base = costs.flush_base
    c_flush_entry = costs.flush_per_entry
    c_refill_base = costs.refill_base
    c_refill_entry = costs.refill_per_entry
    c_idle = costs.idle_poll
    backoff_max = costs.idle_backoff_max

    tpb = counters.tasks_per_block
    tpw = counters.tasks_per_warp
    # Claim tallies accumulate in flat lists (one slot per block / per
    # agent) and merge into the counters dicts at the flush points —
    # claims only ever happen in the inline expand, so no fallback path
    # races these.
    tpb_local = [0] * n_blocks
    tpw_local = [0] * (n_blocks * wpb)
    RUN = _Phase.RUN
    RESERVE_INTRA = _Phase.RESERVE_INTRA

    # Local counter deltas (merged at the flush points; see docstring).
    d_edges = d_cas = d_casf = d_pops = d_pushes = d_vis = 0
    d_polls = d_refills = d_refille = d_flushes = d_flushe = 0
    mx_hot = mx_cold = 0

    # One record per agent: the agent plus every per-warp binding the
    # inline transitions need, unpacked once per event.
    recs = []
    for a in agents:
        recs.append((
            a, a.stack, a.stack.cold, a.block_id, a.warp_id, a._bit,
            a.block_id * wpb + a.warp_id,  # global debt-slab index
            a._hv, a._ho, a._hpi, a._tpi,
            (a.block_id, a.warp_id),       # tasks_per_warp key
        ))

    pop_time = heapq.heappop
    push_time = heapq.heappush
    buckets = {0: recs}
    times = [0]
    now = 0
    steps = 0
    stale = 0

    while times:
        t = times[0]
        bucket = buckets[t]
        for rec in bucket:
            # Termination is observed *before* time advances to this
            # event — the exact point the generic engine polls it — so
            # `cycles` never includes an abandoned event.
            if pending == 0:
                times = None  # signal: terminated, not drained
                break
            if t > now:
                if t > max_cycles:
                    raise over_budget_error(max_cycles, t, steps)
                now = t
            agent = rec[0]
            done = False
            progress = True
            if agent.phase is RUN:
                (_, stack, cold, bid, wid, bit, gidx,
                 hv, ho, hpi, tpi, key) = rec
                head = ptrs[hpi]
                hot_empty = head == ptrs[tpi]
                g2 = gidx + gidx  # cold (top, bottom) slab pair
                if not hot_empty or cptrs[g2] != cptrs[g2 + 1]:
                    m = masks[bid]
                    if not m & bit:
                        masks[bid] = m | bit
                    agent.backoff = c_idle
                    debt = debts[gidx]
                    if debt:
                        debts[gidx] = 0
                    if hot_empty:  # cold is non-empty here: refill
                        moved = stack.refill()
                        d_refills += 1
                        d_refille += moved
                        if trace is not None:
                            record(now, bid, wid, "refill", (moved,))
                        cost = debt + c_refill_base + c_refill_entry * moved
                    else:
                        # ---- inline expand (mirrors WarpAgent._expand) --
                        pos = head - 1
                        if pos < 0:
                            pos = hsize - 1
                        u = hv[pos]
                        i = ho[pos]
                        row_end = rp[u + 1]
                        if i >= row_end:
                            # Adjacency exhausted: fast pop.
                            ptrs[hpi] = pos
                            d_pops += 1
                            pending -= 1
                            if trace is not None:
                                record(now, bid, wid, "pop", (u,))
                            cost = debt + c_pop
                        else:
                            wend = i + 32  # WARP_WIDTH
                            if wend > row_end:
                                wend = row_end
                            k = -1
                            for j in range(i, wend):
                                if not visited[ci[j]]:
                                    k = j
                                    break
                            cost = (debt + c_visit_base
                                    + c_visit_edge * (wend - i))
                            if k < 0:
                                # Whole window already visited.
                                d_edges += wend - i
                                if wend >= row_end:
                                    ptrs[hpi] = pos
                                    d_pops += 1
                                    pending -= 1
                                    cost += c_pop
                                    if trace is not None:
                                        record(now, bid, wid, "pop", (u,))
                                else:
                                    ho[pos] = wend
                            else:
                                d_edges += k - i + 1
                                v = ci[k]
                                ho[pos] = k + 1
                                if inline_claim:
                                    # Inlined try_claim_vertex.
                                    d_cas += 1
                                    if visited[v]:
                                        d_casf += 1
                                        claimed = False
                                    else:
                                        visited[v] = 1
                                        parent[v] = u
                                        d_vis += 1
                                        claimed = True
                                else:
                                    claimed = claim(v, u)
                                cost += c_cas
                                if not claimed:
                                    cost += c_cas_retry
                                else:
                                    tpb_local[bid] += 1
                                    tpw_local[gidx] += 1
                                    nxt = head + 1
                                    if nxt == hsize:
                                        nxt = 0
                                    if nxt == ptrs[tpi]:  # ring full
                                        moved = stack.flush()
                                        d_flushes += 1
                                        d_flushe += moved
                                        cost += (c_flush_base
                                                 + c_flush_entry * moved)
                                        if trace is not None:
                                            record(now, bid, wid, "flush",
                                                   (moved,))
                                        head = ptrs[hpi]
                                        nxt = head + 1
                                        if nxt == hsize:
                                            nxt = 0
                                    hv[head] = v
                                    ho[head] = rp[v]
                                    ptrs[hpi] = nxt
                                    depth = nxt - ptrs[tpi]
                                    if depth < 0:
                                        depth += hsize
                                    if depth > mx_hot:
                                        mx_hot = depth
                                    depth = cptrs[g2] - cptrs[g2 + 1]
                                    if depth > mx_cold:
                                        mx_cold = depth
                                    d_pushes += 1
                                    pending += 1
                                    cost += c_push
                                    if trace is not None:
                                        record(now, bid, wid, "visit",
                                               (u, v))
                else:
                    # Stack fully empty: idle.  Steal selection falls
                    # back to the generic idle handler (the agent clears
                    # its own mask bit there); the pure poll is inlined.
                    # Calling _idle directly skips step()'s pending /
                    # phase / emptiness re-checks, all of which this loop
                    # has already established.
                    m = masks[bid] & ~bit
                    if (intra and m) or (inter and wid == 0 and m == 0
                                         and n_blocks > 1):
                        state.pending = pending
                        outcome = agent._idle(now)
                        pending = state.pending
                        cost = outcome.cost
                        progress = outcome.made_progress
                        done = outcome.done
                    else:
                        masks[bid] = m
                        d_polls += 1
                        cost = agent.backoff
                        b = cost * 2
                        agent.backoff = (b if b < backoff_max
                                         else backoff_max)
                        progress = False
            else:
                # Reservation phases: generic two-phase steal protocol
                # (pending > 0 is established above, so step()'s
                # termination check is redundant here).
                state.pending = pending
                outcome = (agent._reserve_intra(now)
                           if agent.phase is RESERVE_INTRA
                           else agent._reserve_inter(now))
                pending = state.pending
                cost = outcome.cost
                progress = outcome.made_progress
                done = outcome.done

            steps += 1
            if on_step is not None:
                # Observers (the invariant monitor's sweeps) must see
                # exact global state: sync the mirror, merge the deltas.
                state.pending = pending
                counters.edges_traversed += d_edges
                counters.cas_attempts += d_cas
                counters.cas_failures += d_casf
                counters.pops += d_pops
                counters.pushes += d_pushes
                counters.vertices_visited += d_vis
                counters.idle_polls += d_polls
                counters.refills += d_refills
                counters.refill_entries += d_refille
                counters.flushes += d_flushes
                counters.flush_entries += d_flushe
                d_edges = d_cas = d_casf = d_pops = d_pushes = d_vis = 0
                d_polls = d_refills = d_refille = d_flushes = d_flushe = 0
                if mx_hot > counters.max_hot_depth:
                    counters.max_hot_depth = mx_hot
                if mx_cold > counters.max_cold_depth:
                    counters.max_cold_depth = mx_cold
                for b2i in range(n_blocks):
                    c2 = tpb_local[b2i]
                    if c2:
                        tpb[b2i] = tpb.get(b2i, 0) + c2
                        tpb_local[b2i] = 0
                for r2 in recs:
                    c2 = tpw_local[r2[6]]
                    if c2:
                        k2 = r2[11]
                        tpw[k2] = tpw.get(k2, 0) + c2
                        tpw_local[r2[6]] = 0
                on_step(steps)
            if progress:
                stale = 0
            else:
                stale += 1
                if stale > window:
                    raise deadlocked_error(stale, now)
            if done:
                continue
            if cost < 1:
                raise non_positive_cost_error(agent, cost)
            t2 = now + cost
            b2 = buckets.get(t2)
            if b2 is None:
                buckets[t2] = [rec]
                push_time(times, t2)
            else:
                b2.append(rec)
        if times is None:  # terminated mid-bucket
            break
        pop_time(times)
        del buckets[t]

    # Final merge: counters and the pending mirror become globally
    # visible exactly as the generic engine leaves them.
    state.pending = pending
    counters.edges_traversed += d_edges
    counters.cas_attempts += d_cas
    counters.cas_failures += d_casf
    counters.pops += d_pops
    counters.pushes += d_pushes
    counters.vertices_visited += d_vis
    counters.idle_polls += d_polls
    counters.refills += d_refills
    counters.refill_entries += d_refille
    counters.flushes += d_flushes
    counters.flush_entries += d_flushe
    if mx_hot > counters.max_hot_depth:
        counters.max_hot_depth = mx_hot
    if mx_cold > counters.max_cold_depth:
        counters.max_cold_depth = mx_cold
    for b2i in range(n_blocks):
        c2 = tpb_local[b2i]
        if c2:
            tpb[b2i] = tpb.get(b2i, 0) + c2
    for r2 in recs:
        c2 = tpw_local[r2[6]]
        if c2:
            k2 = r2[11]
            tpw[k2] = tpw.get(k2, 0) + c2
    return EngineResult(cycles=now, steps=steps, agents=n_agents,
                        exact_cycles=True)
