"""Linear-algebra BFS: bit-packed frontiers advanced by masked gathers.

This is the repo's third engine family, after the DFS simulation tiers
(fastpath / turbo / hive): a *real* level-synchronous traversal in the
GraphBLAST/BLEST mold.  The frontier and visited sets are bit-packed
``uint64`` vectors (:mod:`repro.core.bitset`); one level advance is a
masked gather over the CSR arrays — semantically the masked SpMV
``next = A^T x_frontier .* ~visited`` with the min-parent semiring —
with direction-optimizing push/pull switching on frontier density
(Beamer's bottom-up heuristic).

Result contract (the ``frontier-diff`` oracle rung pins all of it):

* ``visited`` equals ground-truth reachability (``serial_dfs`` /
  ``reachable_mask``);
* ``level`` equals :func:`repro.graphs.properties.bfs_levels` exactly;
* ``parent`` is the *minimum-parent BFS tree*: for every non-root
  visited vertex ``v``, ``parent[v]`` is the smallest-id neighbour of
  ``v`` on the previous level.  That makes the tree a deterministic
  function of the graph alone — push, pull, and auto-switched runs are
  bit-identical, which is what lets the serve layer cache and replay
  frontier answers like any other canonical payload.

Directed graphs run push-only: the pull step scans *in*-neighbours,
which the (symmetric-CSR) pull gather only sees on undirected graphs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core import bitset
from repro.errors import SimulationError
from repro.graphs.csr import CSRGraph
from repro.validate.reference import (
    ROOT_PARENT,
    TraversalResult,
    UNVISITED_PARENT,
)

__all__ = [
    "FrontierConfig",
    "FrontierResult",
    "run_frontier",
    "min_parent_tree",
    "FRONTIER_MODES",
]

FRONTIER_MODES = ("auto", "push", "pull")


@dataclass(frozen=True)
class FrontierConfig:
    """Knobs of the frontier engine.

    ``mode`` pins the traversal direction; ``"auto"`` switches per level
    with Beamer's heuristic: go bottom-up when the frontier's outgoing
    edges exceed ``1/alpha`` of the edges still touching unvisited
    vertices, return top-down when the frontier shrinks below
    ``n / beta`` vertices.  The mode never changes the result — only
    which side of the gather pays the scan.
    """

    mode: str = "auto"
    alpha: float = 14.0
    beta: float = 24.0

    def __post_init__(self) -> None:
        if self.mode not in FRONTIER_MODES:
            raise SimulationError(
                f"frontier mode must be one of {FRONTIER_MODES}, "
                f"got {self.mode!r}")
        if self.alpha <= 0 or self.beta <= 0:
            raise SimulationError(
                f"alpha/beta must be positive, got {self.alpha}/{self.beta}")


@dataclass(frozen=True)
class FrontierResult:
    """One frontier traversal plus its per-level execution profile."""

    traversal: TraversalResult
    level: np.ndarray            # int64, hop distance, -1 if unreachable
    n_levels: int
    pushes: int                  # levels advanced top-down
    pulls: int                   # levels advanced bottom-up
    edges_scanned: int           # gather work (MTEPS numerator)
    seconds: float

    @property
    def mteps(self) -> float:
        """Millions of scanned edges per second (0 for instant runs)."""
        if self.seconds <= 0:
            return 0.0
        return self.edges_scanned / self.seconds / 1e6


def _gather(rp: np.ndarray, ci: np.ndarray, verts: np.ndarray):
    """All CSR neighbours of ``verts``: ``(neighbours, sources)``.

    One vectorized multi-slice gather: the flat index of every adjacency
    entry is its row start plus an intra-row ramp.
    """
    starts = rp[verts]
    counts = rp[verts + 1] - starts
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    row0 = np.zeros(verts.size, dtype=np.int64)
    np.cumsum(counts[:-1], out=row0[1:])
    flat = np.repeat(starts - row0, counts) + np.arange(total, dtype=np.int64)
    return ci[flat], np.repeat(verts, counts)


def _min_per_dst(dst: np.ndarray, src: np.ndarray):
    """Per distinct ``dst``, the minimum ``src``: ``(dsts, parents)``."""
    order = np.lexsort((src, dst))
    dsort = dst[order]
    first = np.ones(dsort.size, dtype=bool)
    first[1:] = dsort[1:] != dsort[:-1]
    return dsort[first], src[order][first]


def run_frontier(graph: CSRGraph, root: int, *,
                 config: Optional[FrontierConfig] = None) -> FrontierResult:
    """Level-synchronous traversal of ``graph`` from ``root``."""
    config = config or FrontierConfig()
    graph._check_vertex(root)
    n = graph.n_vertices
    rp, ci = graph.row_ptr, graph.column_idx
    deg = rp[1:] - rp[:-1]
    mode = "push" if graph.directed else config.mode

    t0 = time.perf_counter()
    visited = bitset.empty_bitset(n)
    parent = np.full(n, UNVISITED_PARENT, dtype=np.int64)
    level = np.full(n, -1, dtype=np.int64)
    frontier = np.array([root], dtype=np.int64)
    bitset.set_bits(visited, frontier)
    parent[root] = ROOT_PARENT
    level[root] = 0

    # Unvisited-side edge mass for the push->pull switch.
    m_unvisited = int(deg.sum()) - int(deg[root])
    pushes = pulls = 0
    edges_scanned = 0
    depth = 0
    pulling = mode == "pull"

    while frontier.size:
        depth += 1
        if mode == "auto":
            m_frontier = int(deg[frontier].sum())
            if not pulling and m_frontier * config.alpha > m_unvisited:
                pulling = True
            elif pulling and frontier.size * config.beta < n:
                pulling = False

        if pulling:
            # Bottom-up: every unvisited vertex scans its own adjacency
            # for a frontier member; min such neighbour becomes parent.
            frontier_words = bitset.empty_bitset(n)
            bitset.set_bits(frontier_words, frontier)
            cand = bitset.nonzero_bits(~visited, n)
            neigh, dst = _gather(rp, ci, cand)
            edges_scanned += neigh.size
            in_frontier = bitset.test_bits(frontier_words, neigh)
            new_v, new_p = _min_per_dst(dst[in_frontier],
                                        neigh[in_frontier])
            pulls += 1
        else:
            # Top-down: the frontier pushes to unvisited neighbours; the
            # min pushing source wins the parent slot.
            neigh, src = _gather(rp, ci, frontier)
            edges_scanned += neigh.size
            unseen = ~bitset.test_bits(visited, neigh)
            new_v, new_p = _min_per_dst(neigh[unseen], src[unseen])
            pushes += 1

        if new_v.size == 0:
            break
        bitset.set_bits(visited, new_v)
        parent[new_v] = new_p
        level[new_v] = depth
        m_unvisited -= int(deg[new_v].sum())
        frontier = new_v

    seconds = time.perf_counter() - t0
    visited_mask = bitset.unpack_bits(visited, n)
    traversal = TraversalResult(
        root=root,
        visited=visited_mask,
        parent=parent,
        order=np.empty(0, dtype=np.int64),
        edges_traversed=edges_scanned,
    )
    reached = level[level >= 0]
    return FrontierResult(
        traversal=traversal,
        level=level,
        n_levels=int(reached.max()) + 1 if reached.size else 0,
        pushes=pushes,
        pulls=pulls,
        edges_scanned=edges_scanned,
        seconds=seconds,
    )


def min_parent_tree(graph: CSRGraph, levels: np.ndarray,
                    root: int) -> np.ndarray:
    """Reference min-parent array from an independent level assignment.

    For each visited non-root vertex, the smallest-id CSR neighbour on
    the previous level — the deterministic tie-break the engine promises.
    Used by the ``frontier-diff`` rung as an oracle that shares no code
    with the engine's per-level gathers.  Assumes symmetric adjacency
    (undirected CSR): it reads each vertex's own row as its in-edges.
    """
    rp, ci = graph.row_ptr, graph.column_idx
    parent = np.full(graph.n_vertices, UNVISITED_PARENT, dtype=np.int64)
    parent[root] = ROOT_PARENT
    verts = np.flatnonzero(levels >= 0).astype(np.int64)
    neigh, dst = _gather(rp, ci, verts)
    prev = levels[neigh] == levels[dst] - 1
    dsts, parents = _min_per_dst(dst[prev], neigh[prev])
    keep = dsts != root
    parent[dsts[keep]] = parents[keep]
    return parent
