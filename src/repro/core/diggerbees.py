"""DiggerBees driver: assemble the grid, run the engine, package results.

This is the public entry point of the core package::

    from repro.core import DiggerBeesConfig, run_diggerbees
    result = run_diggerbees(graph, root=0,
                            config=DiggerBeesConfig.v4(H100, sim_scale=0.25))
    print(result.mteps)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.core.config import DiggerBeesConfig
from repro.core.state import RunState
from repro.core.turbo import run_turbo, turbo_eligible
from repro.core.warp_dfs import WarpAgent
from repro.errors import SimulationError
from repro.graphs.csr import CSRGraph
from repro.sim.device import DeviceSpec, H100
from repro.sim.engine import EngineResult, EventLoop
from repro.sim.metrics import mteps as _mteps
from repro.sim.trace import SimCounters, TraceLog
from repro.validate.reference import TraversalResult

__all__ = ["DiggerBeesResult", "run_diggerbees", "package_result"]


@dataclass(frozen=True)
class DiggerBeesResult:
    """Complete outcome of one DiggerBees run."""

    traversal: TraversalResult
    cycles: int
    seconds: float
    counters: SimCounters
    config: DiggerBeesConfig
    device: DeviceSpec
    engine: EngineResult
    trace: Optional[TraceLog] = None

    @property
    def mteps(self) -> float:
        """Million traversed edges per second (simulated)."""
        return _mteps(self.traversal.edges_traversed, self.seconds)

    @property
    def n_visited(self) -> int:
        return self.traversal.n_visited

    def summary(self) -> dict:
        """Flat metrics dict for reports."""
        c = self.counters
        return {
            "mteps": self.mteps,
            "cycles": self.cycles,
            "seconds": self.seconds,
            "visited": self.n_visited,
            "edges": self.traversal.edges_traversed,
            "intra_steals": c.intra_steal_successes,
            "inter_steals": c.inter_steal_successes,
            "flushes": c.flushes,
            "refills": c.refills,
            "idle_polls": c.idle_polls,
            "engine_steps": self.engine.steps,
        }


def run_diggerbees(
    graph: CSRGraph,
    root: int,
    *,
    config: Optional[DiggerBeesConfig] = None,
    device: DeviceSpec = H100,
    check_invariants: bool = False,
    record_order: bool = False,
    instrument: Optional[Callable[[RunState], Optional[Callable[[int], None]]]] = None,
) -> DiggerBeesResult:
    """Run DiggerBees on ``graph`` from ``root`` on the simulated ``device``.

    Parameters
    ----------
    config:
        A :class:`DiggerBeesConfig`; defaults to a small v4-style grid
        (4 blocks) suitable for interactive use.  For paper-shaped
        experiments build configs with ``DiggerBeesConfig.version(...)``.
    check_invariants:
        Run the (expensive) post-run consistency checks; used by tests.
    record_order:
        Also populate ``traversal.order`` with the global discovery
        sequence (claim order across all warps).  This is an extension
        beyond the paper's Table 2 semantics — the order is a valid
        discovery order of *this* unordered run, not a lexicographic
        one — and it requires tracing, so it costs memory.
    instrument:
        Optional instrumentation factory (``repro.check``): called with
        the freshly built :class:`RunState` before the engine starts; it
        may attach an invariant monitor and return a per-step observer
        callback (or None) that the engine invokes after every step.

    Returns
    -------
    DiggerBeesResult
        Traversal output, simulated time, MTEPS, and full counters.
    """
    config = config or DiggerBeesConfig()
    if record_order and not config.trace:
        config = config.with_overrides(trace=True)
    state = RunState(graph, root, config, device)
    on_step = instrument(state) if instrument is not None else None
    agents = [
        WarpAgent(state, b, w)
        for b in range(config.n_blocks)
        for w in range(config.warps_per_block)
    ]
    if turbo_eligible(config):
        # Fused scheduler-agent hot loop: bit-identical EngineResult,
        # counters, and traversal output (see repro.core.turbo).
        engine = run_turbo(
            state, agents, max_cycles=config.max_cycles, on_step=on_step,
        )
    else:
        loop = EventLoop(
            agents,
            is_terminated=state.is_terminated,
            max_cycles=config.max_cycles,
            scheduler=config.scheduler,
            perturb_seed=config.perturb_seed,
            jitter=config.jitter,
            on_step=on_step,
        )
        engine = loop.run()

    if state.pending != 0:
        raise SimulationError(
            f"engine stopped with {state.pending} entries pending"
        )
    if check_invariants:
        state.check_invariants()
    return package_result(state, engine, record_order=record_order)


def package_result(state: RunState, engine: EngineResult, *,
                   record_order: bool = False) -> DiggerBeesResult:
    """Package a drained run into a :class:`DiggerBeesResult`.

    Shared by every execution tier (generic engine, turbo, hive): the
    pending-entry sanity check, traversal assembly, and simulated-time
    conversion are identical, so the tiers produce identical results by
    construction.
    """
    if state.pending != 0:
        raise SimulationError(
            f"engine stopped with {state.pending} entries pending"
        )
    root = state.root
    order = np.empty(0, dtype=np.int64)
    if record_order:
        # Trace events are appended in execution order (steps run
        # sequentially in the engine), so visit events give the global
        # claim sequence; the root is claimed at initialization.
        claimed = [ev.detail[1] for ev in state.trace.filter(kind="visit")]
        order = np.asarray([root] + claimed, dtype=np.int64)
        if state.trace.truncated:
            raise SimulationError(
                "trace truncated: discovery order incomplete; raise the "
                "TraceLog limit for graphs this large"
            )
    traversal = TraversalResult(
        root=root,
        visited=state.visited.astype(bool),
        parent=state.parent,
        order=order,
        edges_traversed=state.counters.edges_traversed,
    )
    device = state.device
    seconds = device.cycles_to_seconds(engine.cycles)
    return DiggerBeesResult(
        traversal=traversal,
        cycles=engine.cycles,
        seconds=seconds,
        counters=state.counters,
        config=state.config,
        device=device,
        engine=engine,
        trace=state.trace,
    )
