"""The paper's contribution: two-level stack + hierarchical block-level
stealing DFS (DiggerBees)."""

from repro.core.config import DiggerBeesConfig
from repro.core.diggerbees import DiggerBeesResult, run_diggerbees
from repro.core.multi_source import MultiSourceResult, run_diggerbees_multi
from repro.core.shard import ShardedResult, run_sharded
from repro.core.twolevel_stack import ColdSeg, HotRing, OneLevelStack, WarpStack

__all__ = [
    "DiggerBeesConfig",
    "run_diggerbees",
    "DiggerBeesResult",
    "run_diggerbees_multi",
    "MultiSourceResult",
    "run_sharded",
    "ShardedResult",
    "HotRing",
    "ColdSeg",
    "WarpStack",
    "OneLevelStack",
]
