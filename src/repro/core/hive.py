"""Hive engine: NumPy-batched lockstep execution of many simulations.

Every figure-shaped workload is a *sweep*: dozens to hundreds of
independent ``(graph, root, config)`` runs.  The turbo fused loop
removes per-event dispatch overhead inside one run but still pays the
full Python interpreter cost per run per event.  The hive engine
vectorizes one level up — over the **batch of simulations** — the way
GraphBLAST/Gunrock vectorize over a frontier: B independent runs
advance in lockstep, and the per-tick bookkeeping (event selection,
time advance, the dominant expand/pop transition) executes as grouped
NumPy array operations whose fixed cost is amortized across the whole
batch.

Mechanics
---------
All B runs share one :class:`~repro.core.state.BatchSlabs` allocation:
every per-run SoA slab (hot entry storage, hot/cold pointer pairs,
active masks, contention debt, visited/parent) is one array with a
leading batch axis, and each run's :class:`RunState` holds row views of
it.  Per engine tick:

1. **Compaction** — runs whose pending counter reached zero are
   finalized (local counter deltas merged back into their
   ``SimCounters``) and swap-removed from the active slot prefix, so B
   shrinks as the sweep drains.
2. **Selection** — a vectorized argmin over each run's per-agent
   ``(ready_at, seq)`` event keys picks every run's next event; the
   termination predicate is evaluated *before* the event, and time
   advances per run exactly as the calendar scheduler would.
3. **Classification** — gathered hot/cold pointers and phase flags
   split the selected events into *vector expand* (the ~80% case:
   non-empty HotRing, RUN phase), *vector poll* (pure idle backoff),
   and the protocol families: refills, steal selection, and two-phase
   reservations.
4. **Vector execution** — expands run as grouped gathers/scatters over
   the batch axis (window scan via one ``(k, W)`` visited gather, with
   ``W`` capped at the tick's widest remaining window); polls update
   masks/backoffs in bulk.  With ``config.hive_steal="vector"`` (the
   default) the protocol families run as three more batched passes —
   see *Vectorized steal protocol* below.  With ``"scalar"`` (the
   differential oracle) they run the agent's generic ``step()``
   exactly like turbo's fallback.
5. **Reschedule** — every selected agent is rescheduled at
   ``now + cost`` with the run's next sequence number.

Vectorized steal protocol
-------------------------
Lanes (batch rows) are independent runs, so cross-lane conflicts are
impossible and each protocol family groups into plain array passes:

* **Refills** — masked cold-to-hot transfers: counts/costs/debt in
  bulk, entries moved as at most two ring slices per lane straight
  from the ColdSeg's ``view_top`` into the HotRing slab, pointers
  advanced through the shared pointer slabs.
* **Steal selection** — the idle-entry mask clear and the victim scans
  run batched: intra lanes gather their block's HotRing pointer pairs
  as one ``(lanes, wpb)`` matrix (``select_victims_batch``), inter
  leader lanes replay block choice per lane (its Lemire RNG stream
  consumption is data-dependent; ``victim_policy="random"`` draws
  group through ``draw_bounded_many``) and scan the chosen block's
  ColdSeg pointers batched (``select_victim_warps_batch``).  A found
  plan parks kind/victim/token/remote in the run's steal slabs — the
  same two-phase observe-then-CAS split as the scalar agent.
* **Reservations** — one tick later the observed token is validated
  against the live pointer slab (the batched CAS); winners transfer
  level-sliced entries (intra: one masked flat gather/scatter across
  all winning lanes; inter: two ring slices per lane from
  ``view_bottom``), losers pay ``steal_fail`` and retry selection
  next tick, exactly the scalar conflict-resolution rule.

The passes replicate the scalar agent's costs, counters, RNG streams,
and pointer motion bit-for-bit; ``repro.check``'s hive-steal-diff rung
asserts it per run.  Any patched protocol function (the mutation
suite), attached monitor, or adversarial fuzz RNG routes the protocol
families back through the scalar fallback for the whole drain, so
instrumented semantics are preserved.

Bit-exactness contract
----------------------
Runs are independent (no shared mutable state across rows), and each
tick executes exactly one event per active run in that run's own
``(ready_at, seq)`` order with termination polled before it — i.e. the
hive engine *is* the calendar drain of each run, interleaved.  Costs,
counters, error messages, and traversal output are bit-for-bit
identical to turbo (and the generic engine) for every run regardless
of batch composition.  The differential ladder's hive rung and the
batch-vs-turbo tests assert this per run at several batch sizes.

Eligibility mirrors turbo minus the ``turbo`` flag itself (the batch
engine is an explicit opt-in tier): two-level stacks, expand fast
path, no schedule perturbation, calendar scheduler, and no tracing
(per-event trace logs are inherently scalar).
"""

from __future__ import annotations

import gc
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core import inter_steal, intra_steal
from repro.core.config import DiggerBeesConfig
from repro.core.diggerbees import DiggerBeesResult, package_result
from repro.core.state import BatchSlabs, RunState
from repro.core.turbo import _ORIG_CLAIM
from repro.core.twolevel_stack import ColdSeg, HotRing, WarpStack
from repro.core.warp_dfs import WarpAgent, _Phase
from repro.errors import SimulationError
from repro.graphs.csr import CSRGraph
from repro.sim.device import DeviceSpec, H100
from repro.sim.engine import (EngineResult, deadlocked_error,
                              non_positive_cost_error, over_budget_error)
from repro.utils.fastrand import draw_bounded_many

__all__ = ["hive_eligible", "hive_compatible", "run_hive"]

#: Sentinel event key larger than any schedulable (ready_at, seq).
_FAR = np.int64(2 ** 62)

_AR32 = np.arange(32, dtype=np.int64)  # WARP_WIDTH scan window

# Originals of every function/method the vectorized protocol passes
# bypass, captured at import.  The mutation suite (repro.check) patches
# these module/class attributes; a per-drain identity probe routes the
# protocol families back through the scalar fallback whenever any
# differs, so every seeded mutation still executes and gets caught.
_ORIG_INTRA_SELECT = intra_steal.select_victim
_ORIG_INTRA_EXEC = intra_steal.execute_steal
_ORIG_INTER_SELECT = inter_steal.select_victim
_ORIG_INTER_BLOCK = inter_steal.select_victim_block
_ORIG_INTER_EXEC = inter_steal.execute_steal
_ORIG_REFILL = WarpStack.refill
_ORIG_POP_BATCH = ColdSeg.pop_batch
_ORIG_PUSH_BATCH = ColdSeg.push_batch
_ORIG_STEAL_BOTTOM = ColdSeg.steal_from_bottom
_ORIG_TAKE_TAIL = HotRing.take_from_tail
_ORIG_PUT_BATCH = HotRing.put_batch


def _protocol_patched() -> bool:
    """True when any steal/refill-protocol code has been monkeypatched."""
    return (intra_steal.select_victim is not _ORIG_INTRA_SELECT
            or intra_steal.execute_steal is not _ORIG_INTRA_EXEC
            or inter_steal.select_victim is not _ORIG_INTER_SELECT
            or inter_steal.select_victim_block is not _ORIG_INTER_BLOCK
            or inter_steal.execute_steal is not _ORIG_INTER_EXEC
            or WarpStack.refill is not _ORIG_REFILL
            or ColdSeg.pop_batch is not _ORIG_POP_BATCH
            or ColdSeg.push_batch is not _ORIG_PUSH_BATCH
            or ColdSeg.steal_from_bottom is not _ORIG_STEAL_BOTTOM
            or HotRing.take_from_tail is not _ORIG_TAKE_TAIL
            or HotRing.put_batch is not _ORIG_PUT_BATCH)


def hive_eligible(config: DiggerBeesConfig) -> bool:
    """True when the hive engine can run ``config`` bit-identically.

    Same gate as ``turbo_eligible`` except the ``turbo`` flag itself is
    irrelevant (hive is its own dispatch tier) and tracing is excluded:
    the vector expand cannot append per-event trace records.
    """
    return (config.fastpath and config.two_level
            and config.perturb_seed is None and config.scheduler != "heap"
            and not config.trace)


def hive_compatible(a: DiggerBeesConfig, b: DiggerBeesConfig) -> bool:
    """True when two configs can share one batch (equal modulo seed).

    The lockstep slabs require identical grid geometry and cost
    structure across the batch; roots and RNG seeds are free to differ
    per run.
    """
    return a == b or a.with_overrides(seed=b.seed) == b


def run_hive(
    graph: CSRGraph,
    tasks: Sequence[Tuple[int, DiggerBeesConfig]],
    *,
    device: DeviceSpec = H100,
    batch: Optional[int] = None,
    stats: Optional[dict] = None,
) -> List[DiggerBeesResult]:
    """Run ``tasks`` = ``[(root, config), ...]`` on ``graph``, batched.

    All tasks must share the graph and device and have hive-eligible,
    mutually compatible configs (equal modulo ``seed``).  ``batch``
    caps the lockstep width; ``None`` runs the whole task list as one
    batch.  Results come back in task order and are bit-identical to
    ``run_diggerbees`` / turbo per task.

    ``stats``, when given a dict, receives execution-path accounting
    summed over all batches: ``events_total``, ``events_fallback``
    (events routed through the scalar per-agent step), the vectorized
    protocol pass totals (``vector_refills``, ``vector_steal_selects``,
    ``vector_reserves_intra``, ``vector_reserves_inter``), and the
    derived ``fallback_lane_fraction``.  Under ``hive_steal="vector"``
    on an unpatched run the fallback fraction is 0.0; the micro-bench
    records it per case so a silent fallback regression is visible.

    Failure semantics: any run raising (over-budget, deadlock,
    non-positive cost) aborts its whole batch with the exact exception
    the scalar engines would raise for that run.
    """
    if not tasks:
        if stats is not None:
            stats.setdefault("events_total", 0)
            stats.setdefault("events_fallback", 0)
            stats.setdefault("fallback_lane_fraction", 0.0)
        return []
    base = tasks[0][1]
    for root, config in tasks:
        if not hive_eligible(config):
            raise SimulationError(
                f"config for root {root} is not hive-eligible (needs "
                f"two-level + fastpath, no perturbation/trace, calendar "
                f"scheduler)"
            )
        if not hive_compatible(base, config):
            raise SimulationError(
                f"config for root {root} differs from the batch's beyond "
                f"the seed; split into separate run_hive calls"
            )
    width = len(tasks) if batch is None else max(1, int(batch))
    results: List[DiggerBeesResult] = []
    for lo in range(0, len(tasks), width):
        results.extend(_run_batch(graph, tasks[lo:lo + width], device, stats))
    if stats is not None:
        total = stats.get("events_total", 0)
        stats["fallback_lane_fraction"] = (
            stats.get("events_fallback", 0) / total if total else 0.0)
    return results


def _run_batch(graph, tasks, device, stats=None) -> List[DiggerBeesResult]:
    config = tasks[0][1]
    slabs = BatchSlabs(len(tasks), config, graph.n_vertices)
    states: List[RunState] = []
    agents: List[List[WarpAgent]] = []
    for row, (root, cfg) in enumerate(tasks):
        st = RunState(graph, root, cfg, device, slabs=slabs, slab_row=row)
        states.append(st)
        agents.append([
            WarpAgent(st, b, w)
            for b in range(cfg.n_blocks)
            for w in range(cfg.warps_per_block)
        ])
    # Pause cyclic GC for the drain, exactly like turbo: the batch state
    # is millions of container objects and the loop allocates no cycles.
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        engines = _drain_batch(slabs, states, agents, stats)
    finally:
        if gc_was_enabled:
            gc.enable()
    return [package_result(st, eng) for st, eng in zip(states, engines)]


def _drain_batch(slabs: BatchSlabs, states: List[RunState],
                 agents: List[List[WarpAgent]],
                 stats=None) -> List[EngineResult]:
    B = slabs.batch
    config = states[0].config
    costs = states[0].costs
    A = slabs.n_agents
    H = slabs.hot_size
    n_blocks = slabs.n_blocks
    wpb = config.warps_per_block
    max_cycles = int(config.max_cycles)
    window = max(10_000, 200 * A)

    intra = config.enable_intra_steal
    inter_ok = config.enable_inter_steal and n_blocks > 1

    c_pop = costs.hot_pop
    c_visit_base = costs.visit_base
    c_visit_edge = costs.visit_per_edge
    c_claim = costs.visited_cas + costs.hot_push
    c_flush_base = costs.flush_base
    c_flush_entry = costs.flush_per_entry
    c_idle = costs.idle_poll
    backoff_max = costs.idle_backoff_max

    # Steal/refill protocol constants (see warp_dfs._idle/_reserve_*).
    c_refill_base = costs.refill_base
    c_refill_entry = costs.refill_per_entry
    c_steal_fail = costs.steal_fail
    c_intra_base = costs.steal_intra_base
    c_intra_entry = costs.steal_intra_per_entry
    c_inter_base = costs.steal_inter_base
    c_inter_entry = costs.steal_inter_per_entry
    c_remote_base = costs.steal_remote_base
    c_remote_entry = costs.steal_remote_per_entry
    debt_intra = costs.victim_debt_intra
    debt_inter = costs.victim_debt_inter
    debt_remote = costs.victim_debt_remote
    extra_intra = costs.steal_scan_per_warp * wpb
    extra_inter = costs.steal_scan_per_warp * wpb + 40
    refill_batch = config.refill_batch
    hot_cutoff = config.hot_cutoff
    cold_cutoff = config.cold_cutoff
    intra_amount = config.intra_steal_amount
    inter_amount = config.inter_steal_amount
    random_policy = config.victim_policy == "random"
    bpg = config.blocks_per_gpu

    # Per-drain probes (hoisted out of the tick loop: patches are
    # installed before run_hive, never mid-drain).  A patched claim
    # routes expands through the generic step; any patched protocol
    # function, attached monitor, or fuzz RNG disables the vectorized
    # protocol so the instrumented scalar code executes instead.  The
    # amount gates exclude degenerate configs whose steal transfer
    # could not fit an empty HotRing (the scalar path would raise
    # StackOverflowError; keep that behaviour byte-for-byte).
    claims_patched = type(states[0]).try_claim_vertex is not _ORIG_CLAIM
    vector_protocol = (
        config.hive_steal == "vector"
        and states[0].monitor is None
        and states[0].fuzz_rng is None
        and not _protocol_patched()
        and (not intra or intra_amount <= H - 1)
        and (not inter_ok or inter_amount <= H - 1)
    )

    graph = states[0].graph
    rp = np.ascontiguousarray(graph.row_ptr, dtype=np.int64)
    ci = np.ascontiguousarray(graph.column_idx, dtype=np.int64)

    # Flat views over the batch slabs.  In-place slot swaps (compaction)
    # and all scatters write through these, so the per-run object APIs
    # (fallback steps, finalization) always observe current values.
    HVf = slabs.hot_vertex.reshape(-1)
    HOf = slabs.hot_offset.reshape(-1)
    HPf = slabs.hot_ptr.reshape(-1)
    CPf = slabs.cold_ptr.reshape(-1)
    AMf = slabs.active_mask.reshape(-1)
    DBf = slabs.debt.reshape(-1)
    VISf = slabs.visited.reshape(-1)
    PARf = slabs.parent.reshape(-1)
    SKf = slabs.steal_kind.reshape(-1)
    SVf = slabs.steal_victim.reshape(-1)
    STf = slabs.steal_token.reshape(-1)
    SRf = slabs.steal_remote.reshape(-1)
    n_vertices = slabs.visited.shape[1]
    # Pointer-pair column offsets of one block's warps (vector scans).
    off2 = 2 * np.arange(wpb, dtype=np.int64)
    _ARI = np.arange(intra_amount, dtype=np.int64)

    # Engine arrays are *slot*-indexed: the active runs always occupy
    # the prefix [0, nact).  ``rows`` maps slot -> slab row (rows are
    # pinned: RunState views cannot move), so slab gathers index through
    # it while scheduling state compacts in place.
    times = np.zeros((B, A), dtype=np.int64)
    seqs = np.tile(np.arange(A, dtype=np.int64), (B, 1))
    seq_ctr = np.full(B, A, dtype=np.int64)  # engine steps == seq_ctr - A
    now = np.zeros(B, dtype=np.int64)
    stale = np.zeros(B, dtype=np.int64)
    pend = np.array([st.pending for st in states], dtype=np.int64)
    backoff = np.full((B, A), c_idle, dtype=np.int64)
    phase_run = np.ones((B, A), dtype=bool)
    rows = np.arange(B, dtype=np.int64)
    # Row-derived gather bases, swapped alongside ``rows`` at compaction
    # so every per-tick slab index is one add instead of multiply + add.
    rowsA = rows * A
    rows2A = rows * (2 * A)
    rowsNB = rows * n_blocks
    rowsNV = rows * n_vertices
    # Batched counter deltas, merged into SimCounters at finalization
    # (additive sums + maxima — order-independent, like turbo's locals).
    # The inline expand's CAS/visit/push contributions move in lockstep
    # (one claim == one CAS == one push), so a single ``d_claims`` delta
    # backs all three counters; finalization splits them apart.
    d_edges = np.zeros(B, dtype=np.int64)
    d_claims = np.zeros(B, dtype=np.int64)
    d_pops = np.zeros(B, dtype=np.int64)
    d_polls = np.zeros(B, dtype=np.int64)
    # Protocol-event deltas (vector passes only; zero under the scalar
    # fallback, whose step() writes SimCounters directly).
    d_refills = np.zeros(B, dtype=np.int64)
    d_refill_entries = np.zeros(B, dtype=np.int64)
    d_intra_att = np.zeros(B, dtype=np.int64)
    d_intra_succ = np.zeros(B, dtype=np.int64)
    d_intra_ent = np.zeros(B, dtype=np.int64)
    d_inter_att = np.zeros(B, dtype=np.int64)
    d_inter_succ = np.zeros(B, dtype=np.int64)
    d_inter_ent = np.zeros(B, dtype=np.int64)
    d_remote_succ = np.zeros(B, dtype=np.int64)
    d_remote_ent = np.zeros(B, dtype=np.int64)
    d_cas_att = np.zeros(B, dtype=np.int64)
    d_cas_fail = np.zeros(B, dtype=np.int64)
    mx_hot = np.zeros(B, dtype=np.int64)
    mx_cold = np.zeros(B, dtype=np.int64)
    tpb2 = np.zeros((B, n_blocks), dtype=np.int64)
    tpw2 = np.zeros((B, A), dtype=np.int64)
    tflat = times.reshape(-1)
    sflat = seqs.reshape(-1)
    bflat = backoff.reshape(-1)
    pflat = phase_run.reshape(-1)
    tpbf = tpb2.reshape(-1)
    tpwf = tpw2.reshape(-1)
    ARA = np.arange(B, dtype=np.int64) * A  # slot-flat bases (static)

    eng_arrays = (times, seqs, seq_ctr, now, stale, pend, backoff,
                  phase_run, rows, rowsA, rows2A, rowsNB, rowsNV,
                  d_edges, d_claims, d_pops, d_polls,
                  d_refills, d_refill_entries,
                  d_intra_att, d_intra_succ, d_intra_ent,
                  d_inter_att, d_inter_succ, d_inter_ent,
                  d_remote_succ, d_remote_ent, d_cas_att, d_cas_fail,
                  mx_hot, mx_cold, tpb2, tpw2)

    results: List[Optional[EngineResult]] = [None] * B
    RUN = _Phase.RUN

    # Execution-path accounting for run_hive's ``stats`` payload.
    ev_total = 0
    ev_fb = 0
    ev_rf = 0
    ev_sel = 0
    ev_ri = 0
    ev_rl = 0

    def finalize(slot: int) -> None:
        row = int(rows[slot])
        st = states[row]
        c = st.counters
        claims = int(d_claims[slot])
        c.edges_traversed += int(d_edges[slot])
        c.cas_attempts += claims + int(d_cas_att[slot])
        c.cas_failures += int(d_cas_fail[slot])
        c.pops += int(d_pops[slot])
        c.pushes += claims
        c.vertices_visited += claims
        c.idle_polls += int(d_polls[slot])
        c.refills += int(d_refills[slot])
        c.refill_entries += int(d_refill_entries[slot])
        c.intra_steal_attempts += int(d_intra_att[slot])
        c.intra_steal_successes += int(d_intra_succ[slot])
        c.intra_steal_entries += int(d_intra_ent[slot])
        c.inter_steal_attempts += int(d_inter_att[slot])
        c.inter_steal_successes += int(d_inter_succ[slot])
        c.inter_steal_entries += int(d_inter_ent[slot])
        c.remote_steal_successes += int(d_remote_succ[slot])
        c.remote_steal_entries += int(d_remote_ent[slot])
        if int(mx_hot[slot]) > c.max_hot_depth:
            c.max_hot_depth = int(mx_hot[slot])
        if int(mx_cold[slot]) > c.max_cold_depth:
            c.max_cold_depth = int(mx_cold[slot])
        tpb = c.tasks_per_block
        for b in range(n_blocks):
            v = int(tpb2[slot, b])
            if v:
                tpb[b] = tpb.get(b, 0) + v
        tpw = c.tasks_per_warp
        for g in range(A):
            v = int(tpw2[slot, g])
            if v:
                key = (g // wpb, g % wpb)
                tpw[key] = tpw.get(key, 0) + v
        st.pending = 0
        results[row] = EngineResult(cycles=int(now[slot]),
                                    steps=int(seq_ctr[slot]) - A,
                                    agents=A, exact_cycles=True)

    nact = B
    while nact:
        # ---- compaction: retire runs observed terminated --------------
        # (The termination predicate is polled before each run's next
        # event — the exact observation point of the generic engine.)
        if not pend[:nact].all():
            fin = (pend[:nact] == 0).nonzero()[0]
            for slot in fin[::-1]:
                slot = int(slot)
                finalize(slot)
                last = nact - 1
                if slot != last:
                    for arr in eng_arrays:
                        arr[[slot, last]] = arr[[last, slot]]
                nact = last
            if nact == 0:
                break

        na = nact
        r_ = rows[:na]

        # ---- selection: per-run argmin over (ready_at, seq) -----------
        sub = times[:na]
        tmin = sub.min(axis=1)
        sel = np.where(sub == tmin[:, None], seqs[:na], _FAR).argmin(axis=1)

        # ---- time advance + budget ------------------------------------
        # ``now`` never exceeds max_cycles, so tmin > max_cycles implies
        # this event advances time past the budget — the engine's exact
        # raise point.
        nview = now[:na]
        if int(tmin.max()) > max_cycles:
            s = int((tmin > max_cycles).argmax())
            raise over_budget_error(max_cycles, int(tmin[s]),
                                    int(seq_ctr[s]) - A)
        np.maximum(nview, tmin, out=nview)

        # ---- classification -------------------------------------------
        idxA = ARA[:na] + sel    # slot-flat (engine arrays)
        sidxA = rowsA[:na] + sel  # slab-flat (batch slabs)
        hbase = rows2A[:na] + sel + sel
        head = HPf[hbase]
        tail = HPf[hbase + 1]
        ctop = CPf[hbase]
        cbot = CPf[hbase + 1]
        bid = sel // wpb
        wid = sel - bid * wpb
        bit = np.left_shift(1, wid)
        ami = rowsNB[:na] + bid
        am = AMf[ami]
        others = am & ~bit

        run_m = pflat[idxA]
        hot_ne = head != tail
        expand_m = run_m & hot_ne
        idle_m = run_m ^ expand_m           # RUN with empty hot ring
        refill_m = idle_m & (ctop != cbot)
        pure_idle = idle_m ^ refill_m       # cold segment empty too
        if intra:
            steal_m = pure_idle & (others != 0)
            if inter_ok:
                steal_m |= pure_idle & (wid == 0) & (others == 0)
        elif inter_ok:
            steal_m = pure_idle & (wid == 0) & (others == 0)
        else:
            steal_m = np.zeros(na, dtype=bool)
        poll_m = pure_idle ^ steal_m        # steal_m is a pure_idle subset
        if vector_protocol:
            # Refills, steal selects, and reservations (~run_m) all run
            # as the batched passes below: nothing protocol-shaped left.
            fallback_m = np.zeros(na, dtype=bool)
        else:
            fallback_m = ~run_m | refill_m | steal_m
        # A patched claim (repro.check mutations) must see every claim:
        # route all expands through the generic step, like turbo.
        if claims_patched:
            fallback_m = fallback_m | expand_m
            expand_m = np.zeros(na, dtype=bool)

        # Every selected event lands in exactly one of expand/poll/
        # fallback, so ``cost`` is fully overwritten each tick.
        cost = np.empty(na, dtype=np.int64)
        progress = np.ones(na, dtype=bool)

        # ---- vector expand (mirrors WarpAgent._expand) ----------------
        e = expand_m.nonzero()[0]
        if e.size:
            se = sel[e]
            he = head[e]
            hb_e = hbase[e]
            idxAe = idxA[e]
            sdi = sidxA[e]
            eb = sdi * H  # flat base of this ring's entries
            pos = he - 1
            np.add(pos, H, out=pos, where=pos < 0)
            ep = eb + pos
            u = HVf[ep]
            i0 = HOf[ep]
            row_end = rp[u + 1]
            # Entering a work step: set mask bit, reset backoff, pay debt.
            AMf[ami[e]] = am[e] | bit[e]
            bflat[idxAe] = c_idle
            debt = DBf[sdi]
            DBf[sdi] = 0
            ce = np.empty(e.size, dtype=np.int64)

            plain_pop = i0 >= row_end
            pp = plain_pop.nonzero()[0]
            if pp.size:
                epp = e[pp]
                HPf[hb_e[pp]] = pos[pp]
                d_pops[epp] += 1
                pend[epp] -= 1
                ce[pp] = debt[pp] + c_pop

            sc = (~plain_pop).nonzero()[0]
            if sc.size:
                esc = e[sc]
                i_s = i0[sc]
                wend = i_s + 32  # WARP_WIDTH
                np.minimum(wend, row_end[sc], out=wend)
                span = wend - i_s
                W = int(span.max())  # widest window this tick (<= 32)
                widx = i_s[:, None] + _AR32[:W]
                valid = widx < wend[:, None]
                nb = ci[np.where(valid, widx, 0)]
                unvis = valid & (VISf[rowsNV[esc][:, None] + nb] == 0)
                has = unvis.any(axis=1)
                kk = unvis.argmax(axis=1)  # first unvisited lane
                ce[sc] = debt[sc] + c_visit_base + c_visit_edge * span

                nf = (~has).nonzero()[0]
                if nf.size:  # whole window visited
                    g = sc[nf]
                    eg = esc[nf]
                    d_edges[eg] += span[nf]
                    exhaust = wend[nf] >= row_end[g]
                    ex = exhaust.nonzero()[0]
                    if ex.size:
                        gg = g[ex]
                        egg = eg[ex]
                        HPf[hb_e[gg]] = pos[gg]
                        d_pops[egg] += 1
                        pend[egg] -= 1
                        ce[gg] += c_pop
                    keep = (~exhaust).nonzero()[0]
                    if keep.size:
                        HOf[ep[g[keep]]] = wend[nf[keep]]

                fo = has.nonzero()[0]
                if fo.size:  # claim + push
                    g = sc[fo]
                    eg = esc[fo]
                    k = i_s[fo] + kk[fo]
                    d_edges[eg] += k - i_s[fo] + 1
                    v = ci[k]
                    HOf[ep[g]] = k + 1
                    # Inline claim: the scan and the claim read the same
                    # visited row with no intervening mutation (runs are
                    # independent), so the CAS always wins — exactly the
                    # step-atomicity argument turbo relies on.
                    d_claims[eg] += 1
                    vb = rowsNV[eg] + v
                    VISf[vb] = 1
                    PARf[vb] = u[g]
                    tpbf[eg * n_blocks + bid[eg]] += 1
                    tpwf[idxAe[g]] += 1

                    head_f = he[g]  # fancy gathers: fresh, mutable copies
                    tail_f = tail[eg]
                    ctop_f = ctop[eg]
                    cbot_f = cbot[eg]
                    nxt = head_f + 1
                    nxt[nxt == H] = 0
                    full = (nxt == tail_f).nonzero()[0]
                    for j in full:  # ring full: scalar flush (rare)
                        j = int(j)
                        slot = int(eg[j])
                        arow = int(sel[slot])
                        st = states[int(rows[slot])]
                        moved = agents[int(rows[slot])][arow].stack.flush()
                        st.counters.flushes += 1
                        st.counters.flush_entries += moved
                        gj = int(g[j])
                        ce[gj] += c_flush_base + c_flush_entry * moved
                        hb2 = int(hb_e[gj])
                        head_f[j] = HPf[hb2]  # "head" policy retracts it
                        tail_f[j] = HPf[hb2 + 1]
                        ctop_f[j] = CPf[hb2]
                        cbot_f[j] = CPf[hb2 + 1]
                        n2 = int(head_f[j]) + 1
                        nxt[j] = 0 if n2 == H else n2
                    HVf[eb[g] + head_f] = v
                    HOf[eb[g] + head_f] = rp[v]
                    HPf[hb_e[g]] = nxt
                    depth = nxt - tail_f
                    np.add(depth, H, out=depth, where=depth < 0)
                    mx_hot[eg] = np.maximum(mx_hot[eg], depth)
                    mx_cold[eg] = np.maximum(mx_cold[eg], ctop_f - cbot_f)
                    pend[eg] += 1
                    ce[g] += c_claim
            cost[e] = ce

        # ---- vector poll ----------------------------------------------
        p = poll_m.nonzero()[0]
        if p.size:
            AMf[ami[p]] = others[p]  # clear own bit (idle entry)
            d_polls[p] += 1
            bi = idxA[p]
            cp = bflat[bi]
            bflat[bi] = np.minimum(cp * 2, backoff_max)
            cost[p] = cp
            progress[p] = False

        if vector_protocol:
            # ---- vector refill (cold -> hot, mirrors step()'s branch) -
            rf = refill_m.nonzero()[0]
            if rf.size:
                ev_rf += rf.size
                # Entering a work step: set mask bit, reset backoff,
                # pay contention debt accrued from steals against us.
                AMf[ami[rf]] = am[rf] | bit[rf]
                bflat[idxA[rf]] = c_idle
                sdr = sidxA[rf]
                debt = DBf[sdr]
                DBf[sdr] = 0
                # Hot is empty here and refill_batch < hot_size, so the
                # scalar min(..., free_slots) term never binds.
                cnt = np.minimum(refill_batch, ctop[rf] - cbot[rf])
                d_refills[rf] += 1
                d_refill_entries[rf] += cnt
                cost[rf] = debt + c_refill_base + c_refill_entry * cnt
                for j, s in enumerate(rf):
                    s = int(s)
                    n = int(cnt[j])
                    cold = agents[int(rows[s])][int(sel[s])].stack.cold
                    cv, co = cold.view_top(n)
                    e0 = int(sidxA[s]) * H
                    hd = int(head[s])
                    end = hd + n
                    if end <= H:
                        HVf[e0 + hd:e0 + end] = cv
                        HOf[e0 + hd:e0 + end] = co
                    else:
                        k2 = H - hd
                        HVf[e0 + hd:e0 + H] = cv[:k2]
                        HOf[e0 + hd:e0 + H] = co[:k2]
                        HVf[e0:e0 + end - H] = cv[k2:]
                        HOf[e0:e0 + end - H] = co[k2:]
                nh = head[rf] + cnt
                np.subtract(nh, H, out=nh, where=nh >= H)
                HPf[hbase[rf]] = nh
                CPf[hbase[rf]] = ctop[rf] - cnt

            # ---- vector steal select (two-phase step 1: observe) ------
            stl = steal_m.nonzero()[0]
            if stl.size:
                ev_sel += stl.size
                AMf[ami[stl]] = others[stl]  # clear own bit (idle entry)
                if intra:
                    intra_l = others[stl] != 0
                    si = stl[intra_l]
                    li = stl[~intra_l]
                else:
                    si = stl[:0]
                    li = stl
                if si.size:
                    pidx = (rows2A[si] + 2 * wpb * bid[si])[:, None] + off2
                    victim, token, _, ok = intra_steal.select_victims_batch(
                        HPf[pidx], HPf[pidx + 1], H, wid[si], hot_cutoff)
                    hit = si[ok]
                    if hit.size:
                        sd = sidxA[hit]
                        SKf[sd] = 1
                        SVf[sd] = bid[hit] * wpb + victim[ok]
                        STf[sd] = token[ok]
                        pflat[idxA[hit]] = False
                        cost[hit] = extra_intra
                    miss = si[~ok]
                    if miss.size:  # no peer above cutoff: poll + scan cost
                        d_polls[miss] += 1
                        bi = idxA[miss]
                        cp = bflat[bi]
                        bflat[bi] = np.minimum(cp * 2, backoff_max)
                        cost[miss] = extra_intra + cp
                        progress[miss] = False
                if li.size:
                    vbs = np.full(li.size, -1, dtype=np.int64)
                    rem = np.zeros(li.size, dtype=bool)
                    if random_policy:
                        # Single uniform draw per leader: groupable.
                        if bpg >= 2:
                            gens = [agents[int(rows[s])][int(sel[s])].rng
                                    for s in li]
                            draws = ((bid[li] // bpg) * bpg
                                     + draw_bounded_many(gens, 0, bpg))
                            vbs = np.where(draws == bid[li], -1, draws)
                    else:
                        # two_choice consumes a data-dependent number of
                        # draws (bounded-retry sampling): replay the
                        # scalar block choice per lane, on the lane's
                        # own RNG stream.
                        for j, s in enumerate(li):
                            s = int(s)
                            row = int(rows[s])
                            chosen = inter_steal.select_victim_block(
                                states[row], int(bid[s]),
                                agents[row][int(sel[s])].rng)
                            if chosen is not None:
                                vbs[j] = chosen[0]
                                rem[j] = chosen[1]
                    have = vbs >= 0
                    planned = np.zeros(li.size, dtype=bool)
                    hl = li[have]
                    if hl.size:
                        cidx = ((rows2A[hl] + 2 * wpb * vbs[have])[:, None]
                                + off2)
                        vw, token, ok = inter_steal.select_victim_warps_batch(
                            CPf[cidx], CPf[cidx + 1], cold_cutoff)
                        hit = hl[ok]
                        if hit.size:
                            sd = sidxA[hit]
                            SKf[sd] = 2
                            SVf[sd] = vbs[have][ok] * wpb + vw[ok]
                            STf[sd] = token[ok]
                            SRf[sd] = rem[have][ok]
                            pflat[idxA[hit]] = False
                            cost[hit] = extra_inter
                        planned[have.nonzero()[0][ok]] = True
                    miss = li[~planned]
                    if miss.size:
                        d_polls[miss] += 1
                        bi = idxA[miss]
                        cp = bflat[bi]
                        bflat[bi] = np.minimum(cp * 2, backoff_max)
                        cost[miss] = extra_inter + cp
                        progress[miss] = False

            # ---- vector reservations (two-phase step 2: CAS) ----------
            if not run_m.all():
                rv = (~run_m).nonzero()[0]
                sd_rv = sidxA[rv]
                kinds = SKf[sd_rv]
                SKf[sd_rv] = 0
                pflat[idxA[rv]] = True  # phase -> RUN, win or lose
                vg = SVf[sd_rv]
                ik = (kinds == 1).nonzero()[0]
                if ik.size:
                    ev_ri += ik.size
                    ri = rv[ik]
                    vgi = vg[ik]
                    d_intra_att[ri] += 1
                    vb2 = rows2A[ri] + 2 * vgi
                    vhead = HPf[vb2]
                    vtail = HPf[vb2 + 1]
                    # The CAS: token still equal to the observed tail,
                    # and the victim still at or above the cutoff.
                    tok_ok = vtail == STf[sd_rv[ik]]
                    vrest = vhead - vtail
                    np.add(vrest, H, out=vrest, where=vrest < 0)
                    d_cas_att[ri[tok_ok]] += 1
                    succ = tok_ok & (vrest >= hot_cutoff)
                    fl = (~succ).nonzero()[0]
                    if fl.size:
                        rl_f = ri[fl]
                        d_cas_fail[rl_f] += 1
                        cost[rl_f] = c_steal_fail
                        progress[rl_f] = False
                    sk = succ.nonzero()[0]
                    if sk.size:
                        rk = ri[sk]
                        vgk = vgi[sk]
                        amt = np.minimum(intra_amount, vrest[sk])
                        # Grouped slot copies: thief rings are empty
                        # (victim != thief, and a reserving warp cannot
                        # gain entries), so src/dst never overlap.
                        src = vtail[sk][:, None] + _ARI
                        np.subtract(src, H, out=src, where=src >= H)
                        dst = head[rk][:, None] + _ARI
                        np.subtract(dst, H, out=dst, where=dst >= H)
                        keep = _ARI < amt[:, None]
                        sfl = (((rowsA[rk] + vgk) * H)[:, None] + src)[keep]
                        dfl = ((sidxA[rk] * H)[:, None] + dst)[keep]
                        HVf[dfl] = HVf[sfl]
                        HOf[dfl] = HOf[sfl]
                        nt = vtail[sk] + amt
                        np.subtract(nt, H, out=nt, where=nt >= H)
                        HPf[vb2[sk] + 1] = nt
                        nh = head[rk] + amt
                        np.subtract(nh, H, out=nh, where=nh >= H)
                        HPf[hbase[rk]] = nh
                        AMf[ami[rk]] = am[rk] | bit[rk]
                        DBf[rowsA[rk] + vgk] += debt_intra
                        d_intra_succ[rk] += 1
                        d_intra_ent[rk] += amt
                        bflat[idxA[rk]] = c_idle
                        # Scalar cost uses the plan's constant amount,
                        # not the clamped transfer size.
                        cost[rk] = c_intra_base + c_intra_entry * intra_amount
                il = (kinds == 2).nonzero()[0]
                if il.size:
                    ev_rl += il.size
                    rl = rv[il]
                    vgl = vg[il]
                    d_inter_att[rl] += 1
                    cb2 = rows2A[rl] + 2 * vgl
                    vtop = CPf[cb2]
                    vbot = CPf[cb2 + 1]
                    tok_ok = vbot == STf[sd_rv[il]]
                    clen = vtop - vbot
                    d_cas_att[rl[tok_ok]] += 1
                    succ = tok_ok & (clen >= cold_cutoff)
                    fl = (~succ).nonzero()[0]
                    if fl.size:
                        rl_f = rl[fl]
                        d_cas_fail[rl_f] += 1
                        cost[rl_f] = c_steal_fail
                        progress[rl_f] = False
                    sk = succ.nonzero()[0]
                    if sk.size:
                        rk = rl[sk]
                        vgk = vgl[sk]
                        amt = np.minimum(inter_amount, clen[sk])
                        rm = SRf[sd_rv[il][sk]]
                        for j, s in enumerate(rk):
                            s = int(s)
                            n = int(amt[j])
                            cold = agents[int(rows[s])][int(vgk[j])].stack.cold
                            cv, co = cold.view_bottom(n)
                            e0 = int(sidxA[s]) * H
                            hd = int(head[s])
                            end = hd + n
                            if end <= H:
                                HVf[e0 + hd:e0 + end] = cv
                                HOf[e0 + hd:e0 + end] = co
                            else:
                                k2 = H - hd
                                HVf[e0 + hd:e0 + H] = cv[:k2]
                                HOf[e0 + hd:e0 + H] = co[:k2]
                                HVf[e0:e0 + end - H] = cv[k2:]
                                HOf[e0:e0 + end - H] = co[k2:]
                        CPf[cb2[sk] + 1] = vbot[sk] + amt
                        nh = head[rk] + amt
                        np.subtract(nh, H, out=nh, where=nh >= H)
                        HPf[hbase[rk]] = nh
                        AMf[ami[rk]] = am[rk] | bit[rk]
                        DBf[rowsA[rk] + vgk] += np.where(
                            rm, debt_remote, debt_inter)
                        d_inter_succ[rk] += 1
                        d_inter_ent[rk] += amt
                        rr = rk[rm]
                        if rr.size:
                            d_remote_succ[rr] += 1
                            d_remote_ent[rr] += amt[rm]
                        bflat[idxA[rk]] = c_idle
                        cost[rk] = np.where(
                            rm,
                            c_remote_base + c_remote_entry * inter_amount,
                            c_inter_base + c_inter_entry * inter_amount)

        # ---- fallback: generic per-run step (protocol paths) ----------
        ev_total += na
        fb = fallback_m.nonzero()[0]
        ev_fb += fb.size
        for slot in fb:
            slot = int(slot)
            row = int(rows[slot])
            st = states[row]
            ag = agents[row][int(sel[slot])]
            bi = int(idxA[slot])
            st.pending = int(pend[slot])
            ag.backoff = int(bflat[bi])
            out = ag.step(int(now[slot]))
            c = out.cost
            if c < 1 and not out.done:
                raise non_positive_cost_error(ag, c)
            pend[slot] = st.pending
            bflat[bi] = ag.backoff
            pflat[bi] = ag.phase is RUN
            cost[slot] = c
            progress[slot] = out.made_progress

        # ---- deadlock guard -------------------------------------------
        sview = stale[:na]
        if progress.all():
            sview[:] = 0
        else:
            sview[progress] = 0
            np.add(sview, 1, out=sview, where=~progress)
            dead = (sview > window).nonzero()[0]
            if dead.size:
                s = int(dead[0])
                raise deadlocked_error(int(sview[s]), int(now[s]))

        # ---- reschedule -----------------------------------------------
        tflat[idxA] = nview + cost
        sflat[idxA] = seq_ctr[:na]
        seq_ctr[:na] += 1

    if any(r is None for r in results):  # pragma: no cover - defensive
        missing = [i for i, r in enumerate(results) if r is None]
        raise SimulationError(
            f"hive drain ended with unfinished runs {missing}"
        )
    if stats is not None:
        stats["events_total"] = stats.get("events_total", 0) + ev_total
        stats["events_fallback"] = stats.get("events_fallback", 0) + ev_fb
        stats["vector_refills"] = stats.get("vector_refills", 0) + ev_rf
        stats["vector_steal_selects"] = (
            stats.get("vector_steal_selects", 0) + ev_sel)
        stats["vector_reserves_intra"] = (
            stats.get("vector_reserves_intra", 0) + ev_ri)
        stats["vector_reserves_inter"] = (
            stats.get("vector_reserves_inter", 0) + ev_rl)
    return results  # ordered by slab row == task order
