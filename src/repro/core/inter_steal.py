"""Inter-block work stealing (paper §3.5, Algorithm 4, Figure 3b).

Executed only by the **leader warp** (warp 0) of an **idle block** (all
active-mask bits clear).  Four steps, split across two simulator events:

1. **Victim block selection** — power-of-two-choices with load awareness:
   sample two active blocks at random and keep the one with higher
   cumulative workload.  (``victim_policy="random"`` degrades this to a
   single uniform sample: the Figure 9 baseline.)
2. **Victim warp selection** — the warp with maximum ``cold_rest = top -
   bottom`` in the victim block, provided it reaches ``cold_cutoff``.
   Both selections happen in one simulator step and record the observed
   ``bottom`` in the plan.
3. **Work reservation** — a later step CAS-validates ``bottom`` (Algorithm
   4 line 20); competing leaders lose and restart.
4. **Remote transfer** — ``threadfence()`` then an asynchronous copy of
   ``cold_cutoff / 2`` entries from the victim's ColdSeg (global memory)
   into the leader's HotRing; the leader and its block turn active.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.state import RunState
from repro.core.twolevel_stack import WarpStack

__all__ = ["InterStealPlan", "select_victim", "select_victim_block",
           "select_victim_warps_batch", "execute_steal"]


@dataclass(frozen=True)
class InterStealPlan:
    """Outcome of victim block+warp selection.

    ``remote`` marks a cross-GPU steal (multi-GPU extension): same CAS
    protocol, NVLink pricing.
    """

    victim_block: int
    victim_warp: int
    observed_bottom: int
    observed_rest: int
    amount: int
    remote: bool = False


def _sample_active_blocks(state: RunState, my_block: int,
                          rng, k: int,
                          gpu_id=None) -> list:
    """Sample up to ``k`` active blocks (!= mine), with bounded retries.

    Mirrors the hardware reality that the leader probes a few random mask
    words rather than scanning all blocks.  With ``gpu_id`` set, sampling
    is restricted to that GPU's block range (same-GPU stealing); with
    ``gpu_id=None`` any block qualifies (remote fallback).
    """
    cfg = state.config
    if gpu_id is None:
        lo, hi = 0, cfg.n_blocks
    else:
        lo = gpu_id * cfg.blocks_per_gpu
        hi = lo + cfg.blocks_per_gpu
    amask = state.active_mask_slab  # direct slab reads: skip property dispatch
    draw = rng.integers
    found = []
    n_found = 0
    max_attempts = 4 * k + 8
    for _ in range(max_attempts):
        b = int(draw(lo, hi))
        if b == my_block:
            continue
        if amask[b]:  # inlined `not .idle`
            found.append(b)
            n_found += 1
            if n_found == k:
                break
    return found


def select_victim_block(state: RunState, my_block: int, rng):
    """Step 1 of Algorithm 4 alone: pick a victim *block* (or None).

    Returns ``(victim_block, remote)`` or None.  Factored out of
    :func:`select_victim` so the hive engine's batched leader pass can
    replay the block choice — including its exact RNG stream
    consumption, which is data-dependent through the bounded-retry
    sampling loop and therefore cannot be grouped across lanes — while
    vectorizing the per-warp cold-rest scan that follows
    (:func:`select_victim_warps_batch`).
    """
    cfg = state.config
    my_gpu = state.blocks[my_block].gpu_id
    if cfg.victim_policy == "two_choice":
        remote = False
        candidates = _sample_active_blocks(state, my_block, rng, 2,
                                           gpu_id=my_gpu)
        if not candidates and cfg.n_gpus > 1:
            # Multi-GPU extension: when this whole GPU is dry, its leader
            # block falls back to NVLink-priced remote stealing.
            if (state.gpu_idle(my_gpu)
                    and my_block == state.gpu_leader_block(my_gpu)):
                candidates = _sample_active_blocks(state, my_block, rng, 2)
                remote = True
        if not candidates:
            return None
        # Load-aware choice: higher cumulative workload wins (first wins
        # ties, matching max() semantics on the sampled order).
        if len(candidates) == 1:
            vb = candidates[0]
        else:
            b0, b1 = candidates
            blocks = state.blocks
            vb = (b0 if blocks[b0].workload() >= blocks[b1].workload()
                  else b1)
        return vb, remote
    # "random": the Figure 9 baseline — a uniformly random block with
    # no activity or load awareness, so probes frequently land on
    # idle/empty blocks and work spreads slowly and unevenly.
    if cfg.blocks_per_gpu < 2:
        return None
    lo = my_gpu * cfg.blocks_per_gpu
    vb = lo + int(rng.integers(0, cfg.blocks_per_gpu))
    if vb == my_block:
        return None
    return vb, False


def select_victim_warps_batch(tops: np.ndarray, bottoms: np.ndarray,
                              cutoff: int):
    """Vectorized step 2 of Algorithm 4 across independent leader lanes.

    ``tops``/``bottoms`` are ``(lanes, n_warps)`` gathers of each chosen
    victim block's ColdSeg pointer pairs.  Per lane this replays the
    scalar scan exactly: ``cold_rest = top - bottom`` per warp and a
    strict ``>`` maximum, so ``argmax`` breaks ties on the first warp at
    the maximum, like the scalar loop.  Returns ``(victim_warp, token,
    ok)``; ``token`` is the observed bottom (the reservation CAS token)
    and ``ok`` marks lanes whose best rest reaches ``cutoff``.
    """
    rest = tops - bottoms
    lanes = np.arange(rest.shape[0])
    victim = rest.argmax(axis=1)
    best = rest[lanes, victim]
    token = bottoms[lanes, victim]
    return victim, token, best >= cutoff


def select_victim(state: RunState, my_block: int,
                  rng) -> Optional[InterStealPlan]:
    """Steps 1-2 of Algorithm 4: pick a victim block, then its fullest warp.

    ``rng`` is the leader's ``Generator`` or its bit-exact
    :class:`repro.utils.fastrand.BoundedDraws` replica — only the
    two-argument ``integers(lo, hi)`` surface is used.

    Returns None when no active block was found or no warp in the chosen
    block reaches ``cold_cutoff``.
    """
    chosen = select_victim_block(state, my_block, rng)
    if chosen is None:
        return None
    vb, remote = chosen

    victim_block = state.blocks[vb]
    cutoff = state.config.cold_cutoff
    fuzz = state.fuzz_rng
    if fuzz is not None:
        # Adversarial fuzzing: random qualifying warp instead of the
        # deterministic fullest one (see intra_steal.select_victim).
        qualifying = [
            (w, rest) for w in range(victim_block.n_warps)
            if (rest := victim_block.cold_rest(w)) >= cutoff
        ]
        if not qualifying:
            return None
        best_warp, best_rest = qualifying[fuzz.randrange(len(qualifying))]
    else:
        best_rest = 0
        best_warp = -1
        stacks = victim_block.stacks
        for w in range(victim_block.n_warps):
            # Inlined cold_rest: this scan runs on every leader victim
            # selection, so it avoids the per-warp call chain.
            s = stacks[w]
            rest = (s.cold.top - s.cold.bottom
                    if type(s) is WarpStack else 0)
            if rest > best_rest:
                best_rest = rest
                best_warp = w
        if best_warp < 0 or best_rest < cutoff:
            return None
    stack = victim_block.stacks[best_warp]
    return InterStealPlan(
        victim_block=vb,
        victim_warp=best_warp,
        observed_bottom=stack.cold.bottom,
        observed_rest=best_rest,
        amount=state.config.inter_steal_amount,
        remote=remote,
    )


def execute_steal(state: RunState, my_block: int, leader_warp: int,
                  plan: InterStealPlan) -> bool:
    """Steps 3-4 of Algorithm 4: CAS ``bottom``, fence, remote transfer.

    Returns True on success; False when a competing leader (or the
    victim's own refill) invalidated the observation.
    """
    counters = state.counters
    counters.inter_steal_attempts += 1
    victim_block = state.blocks[plan.victim_block]
    victim_stack = victim_block.stacks[plan.victim_warp]
    if not isinstance(victim_stack, WarpStack):
        counters.cas_failures += 1
        return False

    cold = victim_stack.cold
    if cold.bottom != plan.observed_bottom:
        counters.cas_failures += 1
        return False
    counters.cas_attempts += 1
    if len(cold) < state.config.cold_cutoff:
        counters.cas_failures += 1
        return False

    amount = min(plan.amount, len(cold))
    token_at_commit = cold.bottom
    verts, offs = cold.steal_from_bottom(amount)
    monitor = state.monitor
    if monitor is not None:
        monitor.on_steal(
            kind="remote" if plan.remote else "inter",
            victim=(plan.victim_block, plan.victim_warp),
            thief=(my_block, leader_warp),
            verts=verts,
            token_at_commit=token_at_commit,
            observed_token=plan.observed_bottom,
            amount=amount,
            observed_rest=plan.observed_rest,
        )

    # threadfence(); then cuda::memcpy_async ColdSeg[victim] -> HotRing[leader].
    thief_block = state.blocks[my_block]
    thief_stack = thief_block.stacks[leader_warp]
    if isinstance(thief_stack, WarpStack):
        thief_stack.hot.put_batch(verts, offs)
    else:
        thief_stack.put_batch(verts, offs)

    thief_block.set_active(leader_warp, True)
    # Victim-side contention on the ColdSeg bottom pointer in global memory
    # (heavier when the CAS arrived over NVLink).
    victim_block.contention_debt[plan.victim_warp] += (
        state.costs.victim_debt_remote if plan.remote
        else state.costs.victim_debt_inter)
    counters.inter_steal_successes += 1
    counters.inter_steal_entries += amount
    if plan.remote:
        counters.remote_steal_successes += 1
        counters.remote_steal_entries += amount
    return True
